"""Verilog emission: round-trips through our own parser."""

import random

from repro.designs import lzc_example_verilog
from repro.ir.evaluate import evaluate_total, random_env
from repro.rtl import emit_verilog, module_to_ir


def roundtrip(outputs, widths, trials=300, input_ranges=None, seed=3):
    text = emit_verilog(outputs, "rt", input_ranges or {})
    back = module_to_ir(text)
    rng = random.Random(seed)
    for _ in range(trials):
        env = random_env(widths, rng)
        for name in outputs:
            assert evaluate_total(outputs[name], env) == evaluate_total(
                back[name], env
            ), (name, env)
    return text


def test_arith_roundtrip():
    src = (
        "module m (input [7:0] a, input [7:0] b, output [8:0] s, output p);"
        "assign s = a + b; assign p = (a ^ b) > (a & b); endmodule"
    )
    outs = module_to_ir(src)
    roundtrip(outs, {"a": 8, "b": 8})


def test_mux_and_shift_roundtrip():
    src = (
        "module m (input [7:0] a, input [2:0] s, output [7:0] y);"
        "assign y = s[0] ? a >> s : a | ~a; endmodule"
    )
    outs = module_to_ir(src)
    roundtrip(outs, {"a": 8, "s": 3})

def test_lzc_roundtrip():
    outs = module_to_ir(lzc_example_verilog())
    text = roundtrip(outs, {"x": 8, "y": 8})
    assert "casez" in text  # LZC re-emitted as the idiomatic ladder


def test_shared_subterms_emitted_once():
    from repro.ir import var

    x = var("x", 8)
    shared = x + 1
    out = (shared & 255) | (shared ^ 255)
    text = emit_verilog({"out": out}, "m")
    assert sum("x +" in line for line in text.splitlines()) == 1
