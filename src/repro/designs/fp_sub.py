"""The floating-point subtractor case study (Section V, Figure 2).

``fp_sub_behavioural_*`` is the naive architecture of Figure 2a: sort the
operands, align the smaller mantissa with a full-width right shift, subtract
at ``man_width*3 + 1 + 1`` bits (42 for half precision), renormalize with an
LZC and a full-width left shift, and slice the output mantissa.

``fp_sub_dual_path_ir`` is the near-path / far-path architecture of Figure
2b, hand-written from the computer-arithmetic literature [Beaumont-Smith'99,
Farmwald'81].  It is used as the reference point the automated tool is
compared against (and as a fixture proving our equivalence checker catches
real architectural rewrites).

Mantissas carry the implicit leading one (11 bits for half precision);
exponent handling beyond the difference is out of scope, exactly as in the
paper ("we omitted input sorting and exponent difference calculation blocks"
from the optimized figure — both architectures here share them).
"""

from __future__ import annotations

from repro.intervals import IntervalSet
from repro.ir import expr as ir
from repro.ir.expr import Expr


def _lzc_casez(name: str, subject: str, width: int, count_width: int) -> str:
    """Generate the idiomatic casez LZC ladder."""
    arms = []
    for k in range(width):
        pattern = "0" * k + "1" + "?" * (width - 1 - k)
        arms.append(f"      {width}'b{pattern}: {name} = {k};")
    arms.append(f"      default: {name} = {width};")
    return (
        f"  reg [{count_width - 1}:0] {name};\n"
        "  always @(*) begin\n"
        f"    casez ({subject})\n" + "\n".join(arms) + "\n"
        "    endcase\n"
        "  end"
    )


def fp_sub_behavioural_verilog(exp_width: int = 5, man_width: int = 10) -> str:
    """Figure 2a as (generated) Verilog."""
    m = man_width + 1          # mantissa incl. implicit one
    pad = 3 * man_width + 1    # zeros appended so no alignment bit is lost
    w = m + pad                # subtractor width (42 for half precision)
    count_w = max(w.bit_length(), 1)
    lzc = _lzc_casez("lz", "sub", w, count_w)
    return f"""
module fp_sub_behavioural (
  input [{m - 1}:0] MA,
  input [{m - 1}:0] MB,
  input [{exp_width - 1}:0] ea,
  input [{exp_width - 1}:0] eb,
  output [{man_width - 1}:0] out
);
  wire a_bigger = (ea > eb) | ((ea == eb) & (MA >= MB));
  wire [{m - 1}:0] max_m = a_bigger ? MA : MB;
  wire [{m - 1}:0] min_m = a_bigger ? MB : MA;
  wire [{exp_width - 1}:0] expdiff = a_bigger ? ea - eb : eb - ea;
  wire [{w - 1}:0] left = {{max_m, {pad}'d0}};
  wire [{w - 1}:0] right = {{min_m, {pad}'d0}} >> expdiff;
  wire [{w - 1}:0] sub = left - right;
{lzc}
  wire [{w - 1}:0] norm = sub << lz;
  assign out = norm[{w - 2}:{w - 1 - man_width}];
endmodule
"""


def fp_sub_input_ranges(exp_width: int = 5, man_width: int = 10) -> dict[str, IntervalSet]:
    """Input constraints: mantissas carry the implicit leading one."""
    m = man_width + 1
    return {
        "MA": IntervalSet.of(1 << man_width, (1 << m) - 1),
        "MB": IntervalSet.of(1 << man_width, (1 << m) - 1),
    }


def fp_sub_behavioural_ir(exp_width: int = 5, man_width: int = 10) -> Expr:
    """Figure 2a built directly in the IR (identical function)."""
    from repro.rtl import module_to_ir

    return module_to_ir(fp_sub_behavioural_verilog(exp_width, man_width))["out"]


def fp_sub_dual_path_ir(exp_width: int = 5, man_width: int = 10) -> Expr:
    """Figure 2b: the near-path / far-path architecture.

    Near path (``expdiff <= 1``): a 1-bit alignment shift, a narrow
    subtraction (``man_width + 2`` bits), a full renormalization shift.

    Far path (``expdiff > 1``): a ``man_width + 3``-bit subtraction of the
    aligned-and-stickied smaller mantissa, and a single-bit renormalization.
    No catastrophic cancellation can occur, so the LZC is narrow.
    """
    m = man_width + 1
    ma, mb = ir.var("MA", m), ir.var("MB", m)
    ea, eb = ir.var("ea", exp_width), ir.var("eb", exp_width)

    a_bigger = Expr(
        ir.ops.OR,
        (),
        (
            ir.gt(ea, eb),
            Expr(ir.ops.AND, (), (ir.eq(ea, eb), ir.ge(ma, mb))),
        ),
    )
    max_m = ir.mux(a_bigger, ma, mb)
    min_m = ir.mux(a_bigger, mb, ma)
    expdiff = ir.mux(a_bigger, ea - eb, eb - ea)

    # ---- near path: expdiff in {0, 1} -----------------------------------
    near_w = m + 1  # 12 bits for half precision
    near_shift = ir.mux(ir.eq(expdiff, 0), max_m << 0, max_m << 1)
    near_sub = ir.trunc(near_shift - min_m, near_w)
    near_lzc = ir.lzc(near_sub, near_w)
    near_norm = ir.trunc(near_sub << near_lzc, near_w)
    near_out = ir.slice_(near_norm, near_w - 2, near_w - 1 - man_width)

    # ---- far path: expdiff >= 2, no cancellation -------------------------
    # T = (max << 2) - ceil(min / 2^(d-2))  ==  full_sub >> (pad - 2),
    # with ceil(x / 2^k) = ((x - 1) >> k) + 1 for x >= 1 — the hardware
    # form of the sticky bit (the increment rides the subtractor carry-in).
    far_w = m + 2  # 13 bits for half precision
    d2 = expdiff - 2
    ceil_min = ((min_m - 1) >> d2) + 1
    far_t = ir.trunc((max_m << 2) - ceil_min, far_w)
    far_lzc = ir.lzc(far_t, far_w)  # provably 0 or 1
    far_norm = ir.trunc(far_t << far_lzc, far_w)
    far_out = ir.slice_(far_norm, far_w - 2, far_w - 1 - man_width)

    return ir.mux(ir.gt(expdiff, 1), far_out, near_out)
