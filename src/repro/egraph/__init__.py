"""A from-scratch equality-saturation engine (the `egg` substrate).

The paper builds its RTL optimizer on the Rust `egg` library (Willsey et al.,
POPL 2021).  This package reimplements the same machinery in Python:

* :mod:`~repro.egraph.unionfind` — disjoint sets with path halving,
* :mod:`~repro.egraph.enode` — canonicalizable e-nodes,
* :mod:`~repro.egraph.core` — the flat struct-of-arrays storage and
  congruence engine (hashcons over signature tuples, eager union-time
  re-keying, egg-style e-class analyses, compact pickling),
* :mod:`~repro.egraph.egraph` — the object-shaped ``EGraph``/``EClass`` API,
  a thin façade over the core,
* :mod:`~repro.egraph.legacy` — the previous per-object engine, kept as a
  differential-testing oracle,
* :mod:`~repro.egraph.pattern` — pattern language and generic e-matching,
* :mod:`~repro.egraph.query` — compiled multi-pattern e-matching (all active
  patterns lowered into one per-op query plan over the core arrays),
* :mod:`~repro.egraph.rewrite` — declarative and dynamic rewrite rules,
* :mod:`~repro.egraph.runner` — saturation runner with a backoff scheduler,
* :mod:`~repro.egraph.extract` — cost-directed extraction,
* :mod:`~repro.egraph.serialize` — persistent e-graph artifacts (versioned
  save/load format for warm starts) and cross-graph absorption (stitching).
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.enode import ENode
from repro.egraph.core import CoreGraph, GraphSnapshot
from repro.egraph.egraph import Analysis, EClass, EGraph
from repro.egraph.legacy import LegacyEGraph
from repro.egraph.pattern import AttrVar, Pattern, PatternNode, PatternVar, parse_pattern
from repro.egraph.rewrite import Rewrite, rewrite, birewrite
from repro.egraph.runner import Runner, RunnerReport, StopReason
from repro.egraph.extract import (
    AstDepthCost,
    AstSizeCost,
    CostFunction,
    ExtractReport,
    Extractor,
)
from repro.egraph.serialize import (
    EGraphFormatError,
    EGraphHeader,
    SavedEGraph,
    absorb_graph,
    load_egraph,
    read_header,
    save_egraph,
)

__all__ = [
    "UnionFind",
    "ENode",
    "CoreGraph",
    "GraphSnapshot",
    "EGraph",
    "EClass",
    "LegacyEGraph",
    "Analysis",
    "Pattern",
    "PatternVar",
    "PatternNode",
    "AttrVar",
    "parse_pattern",
    "Rewrite",
    "rewrite",
    "birewrite",
    "Runner",
    "RunnerReport",
    "StopReason",
    "Extractor",
    "ExtractReport",
    "CostFunction",
    "AstSizeCost",
    "AstDepthCost",
    "EGraphFormatError",
    "EGraphHeader",
    "SavedEGraph",
    "absorb_graph",
    "load_egraph",
    "read_header",
    "save_egraph",
]
