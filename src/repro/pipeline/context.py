"""The shared mutable state threaded through pipeline stages.

A :class:`PipelineContext` is created empty (plus input constraints), and
each :class:`~repro.pipeline.stages.Stage` reads what earlier stages
produced and writes what it computes: ``Ingest`` fills ``roots`` and the
e-graph, ``Saturate`` appends a runner report, ``Extract`` fills the
optimized trees and their model costs, ``Verify`` the equivalence verdicts,
``Emit`` the Verilog artifact.  ``timings`` records per-stage wall time in
execution order (stage labels may repeat in phased schedules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.egraph import EGraph
from repro.egraph.runner import RunnerReport
from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.synth.cost import DelayArea
from repro.verify import EquivalenceResult


@dataclass
class PipelineContext:
    """Everything a pipeline run reads and produces."""

    #: Input-domain constraints (the paper's "input constraints").
    input_ranges: dict[str, IntervalSet] = field(default_factory=dict)
    #: Verilog source for :class:`~repro.pipeline.stages.Ingest` (optional —
    #: IR roots may be supplied directly instead).
    source: str | None = None
    #: Named design roots (one entry per output port).
    roots: dict[str, Expr] = field(default_factory=dict)
    #: The shared e-graph (built by ``Ingest``).
    egraph: EGraph | None = None
    #: Root e-class ids, parallel to ``roots``.
    root_ids: dict[str, int] = field(default_factory=dict)
    #: One report per ``Saturate`` stage, in execution order.
    reports: list[RunnerReport] = field(default_factory=list)
    #: Extracted (optimized) trees, parallel to ``roots``.
    extracted: dict[str, Expr] = field(default_factory=dict)
    #: One :class:`~repro.egraph.extract.ExtractReport` per ``Extract``
    #: stage, in execution order (``status="deadline"`` marks an anytime
    #: checkpoint cut short by the budget).
    extract_reports: list[Any] = field(default_factory=list)
    #: Section IV-D model cost of the behavioural tree, per output.
    original_costs: dict[str, DelayArea] = field(default_factory=dict)
    #: Model cost of the extracted tree, per output.
    optimized_costs: dict[str, DelayArea] = field(default_factory=dict)
    #: Equivalence verdicts, per output (filled by ``Verify``).
    equivalence: dict[str, EquivalenceResult] = field(default_factory=dict)
    #: ``(stage label, seconds)`` in execution order.
    timings: list[tuple[str, float]] = field(default_factory=list)
    #: Free-form stage outputs (e.g. ``Emit`` stores ``"verilog"``).
    artifacts: dict[str, Any] = field(default_factory=dict)
    #: The run's resource governor (one accounted budget pool all stages
    #: draw from; see :mod:`repro.pipeline.budget`).  ``None`` = ungoverned:
    #: every stage keeps its own knobs.
    governor: Any = None
    #: Cone decomposition chosen by a ``Shard`` stage
    #: (a :class:`repro.analysis.sharding.ShardPlan`), if one ran.
    shard_plan: Any = None
    #: Per-shard outcomes (:class:`repro.pipeline.shard.ShardResult`), in
    #: plan order; ``MergeShards`` folds these into the fields above.
    shard_results: list[Any] = field(default_factory=list)

    # ------------------------------------------------------------- accessors
    @property
    def report(self) -> RunnerReport | None:
        """The last saturation report (the common single-phase case)."""
        return self.reports[-1] if self.reports else None

    @property
    def total_seconds(self) -> float:
        """Wall time across all stages run so far."""
        return sum(seconds for _label, seconds in self.timings)

    def stage_timings(self) -> dict[str, float]:
        """Per-stage seconds keyed by label (repeats suffixed ``#2``, ...)."""
        out: dict[str, float] = {}
        seen: dict[str, int] = {}
        for label, seconds in self.timings:
            count = seen.get(label, 0) + 1
            seen[label] = count
            out[label if count == 1 else f"{label}#{count}"] = seconds
        return out

    def require_egraph(self) -> EGraph:
        """The e-graph, or a clear error when ``Ingest`` has not run."""
        if self.egraph is None:
            raise RuntimeError(
                "pipeline context has no e-graph yet — run an Ingest stage "
                "before rewriting/extraction stages"
            )
        return self.egraph
