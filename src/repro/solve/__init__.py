"""Governed exact-optimization subsystem: ILP extraction + Pareto fronts.

Three modules, all stdlib-only (no external solver — the repo's constraint
is a pure-python toolchain):

* :mod:`~repro.solve.ilp` — e-graph extraction stated as the 0/1 integer
  program it really is (node/class variables, root/choice/implication rows,
  lazy cycle exclusion), solved by an anytime branch-and-bound that warm
  starts from the greedy extractor's selection;
* :mod:`~repro.solve.extract_opt` — the pipeline stage plugging that solver
  in behind the existing ``Extract`` hook, per output cone, with greedy
  fallback and governor-charged spend;
* :mod:`~repro.solve.pareto` — genuine Pareto-front characterization of the
  area-delay trade-off (epsilon-constraint and weighted-scalarization
  modes) with per-point provenance, which the legacy
  :func:`~repro.synth.sweep.area_delay_sweep` now wraps.
"""

from repro.solve.ilp import (
    Candidate,
    ExtractionProblem,
    SolveResult,
    brute_force,
    evaluate_selection,
    extraction_problem,
    feasible_selection,
    solve_extraction,
)
from repro.solve.extract_opt import OptimalExtract
from repro.solve.pareto import (
    ParetoFront,
    ParetoPoint,
    ParetoSweep,
    pareto_front,
    sweep_points,
)

__all__ = [
    "Candidate",
    "ExtractionProblem",
    "SolveResult",
    "extraction_problem",
    "evaluate_selection",
    "feasible_selection",
    "solve_extraction",
    "brute_force",
    "OptimalExtract",
    "ParetoPoint",
    "ParetoFront",
    "ParetoSweep",
    "pareto_front",
    "sweep_points",
]
