"""Pareto-front characterization: dominance, provenance, sweep parity.

The front's contract: dominance-free, never worse than the greedy sweep it
generalizes (every legacy sweep point is dominated-or-equaled by a front
point), honest provenance (``optimal`` only when the architecture space was
exhausted), and the legacy :func:`area_delay_sweep` wrapper keeps its
area-monotonicity and ``met`` honesty unchanged.
"""

from __future__ import annotations

import pytest

from repro.ir import var
from repro.pipeline import Budget, Extract, Ingest, Pipeline, Saturate
from repro.solve.pareto import ParetoSweep, pareto_front, sweep_points
from repro.synth.sweep import area_delay_sweep, min_delay_point, synthesize_at


def adder_tree():
    """Three adder instances -> 27 configurations: exhaustible."""
    a, b, c, d = (var(n, 8) for n in "abcd")
    return (a + b) + (c + d)


class FakeClock:
    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


# ------------------------------------------------------------------ the front
class TestParetoFront:
    def test_epsilon_front_is_dominance_free_and_proved(self):
        front = pareto_front(adder_tree(), mode="epsilon", points=8)
        assert front.status == "optimal"
        assert front.tags == 3
        assert len(front.points) >= 2
        for earlier, later in zip(front.points, front.points[1:], strict=False):
            assert earlier.delay < later.delay
            assert earlier.area > later.area  # dominated points filtered
        assert all(p.provenance == "optimal" for p in front.points)

    def test_front_contains_the_greedy_sweeps_best_points(self):
        """Every legacy sweep point is matched-or-beaten by a front point
        at its target — the front is a superset of the greedy knowledge."""
        expr = adder_tree()
        front = pareto_front(expr, mode="epsilon", points=8)
        for legacy in area_delay_sweep(expr, points=8):
            best = front.point_for_target(legacy.target)
            assert best is not None
            assert best.area <= legacy.area + 1e-9

    def test_weighted_mode_yields_supported_subset(self):
        expr = adder_tree()
        epsilon = pareto_front(expr, mode="epsilon", points=8)
        weighted = pareto_front(expr, mode="weighted", points=8)
        assert weighted.status == "optimal"
        eps_pairs = {(p.delay, p.area) for p in epsilon.points}
        # Supported points are Pareto points: each weighted optimum is on
        # (or equal to) the epsilon-characterized front.
        for point in weighted.points:
            assert not any(
                other.delay <= point.delay
                and other.area < point.area
                for other in epsilon.points
            )
        assert {(p.delay, p.area) for p in weighted.points} <= eps_pairs | {
            (p.delay, p.area) for p in weighted.points
        }

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="pareto mode"):
            pareto_front(adder_tree(), mode="lexicographic")

    def test_eval_quota_degrades_provenance_not_correctness(self):
        front = pareto_front(adder_tree(), mode="epsilon", points=6, max_evals=3)
        assert front.status in ("incumbent", "greedy")
        for earlier, later in zip(front.points, front.points[1:], strict=False):
            assert earlier.delay < later.delay and earlier.area > later.area

    def test_expired_deadline_keeps_anchor_points(self):
        clock = FakeClock(start=10.0, tick=0.0)
        front = pareto_front(
            adder_tree(), mode="epsilon", points=6, deadline=1.0, clock=clock
        )
        assert front.status == "greedy"
        assert len(front.points) >= 1  # the forced anchors still exist


# ------------------------------------------------------------ legacy wrapper
class TestSweepWrapper:
    def test_area_monotone_and_met_honest(self):
        expr = adder_tree()
        points = area_delay_sweep(expr, points=8)
        assert len(points) == 8
        for earlier, later in zip(points, points[1:], strict=False):
            assert later.area <= earlier.area + 1e-9
        for point in points:
            if point.met:
                assert point.delay <= point.target + 1e-9

    def test_never_worse_than_the_pure_greedy_chain(self):
        expr = adder_tree()
        floor = min_delay_point(expr)
        for point in sweep_points(expr, points=6):
            greedy = synthesize_at(expr, point.target)
            if greedy.met:
                assert point.met
                assert point.area <= greedy.area + 1e-9
        assert floor.met

    def test_registry_design_sweep_still_monotone(self):
        """The Figure 3 regeneration path, end to end on a real design."""
        from repro.designs.registry import get_design
        from repro.rtl import module_to_ir

        design = get_design("lzc_example")
        roots = module_to_ir(design.verilog)
        expr = roots[design.output]
        points = area_delay_sweep(expr, design.input_ranges, points=6)
        for earlier, later in zip(points, points[1:], strict=False):
            assert later.area <= earlier.area + 1e-9


# ------------------------------------------------------------------ the stage
class TestParetoSweepStage:
    def _ctx(self, *, budget=None, clock=None, mode="epsilon"):
        return Pipeline(
            [
                Ingest(roots={"out": adder_tree()}),
                Saturate(iter_limit=1, node_limit=4_000),
                Extract(),
                ParetoSweep(mode=mode),
            ]
        ).run(budget=budget, clock=clock)

    def test_artifact_and_summary_land(self):
        ctx = self._ctx()
        artifact = ctx.artifacts["pareto"]
        assert artifact["mode"] == "epsilon"
        assert "out" in artifact["fronts"]
        front = artifact["fronts"]["out"]
        assert front["points"]
        assert artifact["summary"].startswith("epsilon:")
        areas = [p["area"] for p in front["points"]]
        assert areas == sorted(areas, reverse=True)  # dominance-free

    def test_governed_stage_charges_the_ledger(self):
        clock = FakeClock(tick=0.001)
        ctx = self._ctx(budget=Budget(time_s=10**6), clock=clock)
        row = ctx.governor.ledger["pareto"]
        assert row["spent"]["time_s"] > 0

    def test_expired_deadline_never_raises(self):
        clock = FakeClock(start=0.0, tick=10.0)
        ctx = self._ctx(budget=Budget(time_s=0.5), clock=clock)
        artifact = ctx.artifacts["pareto"]
        assert artifact["status"] in ("greedy", "incumbent", "optimal")

    def test_bad_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="pareto mode"):
            ParetoSweep(mode="nope")
