"""The e-graph API: a thin façade over the flat struct-of-arrays core.

This keeps the `egg` design (Willsey et al., POPL 2021) and the public
surface the rest of the repo programs against:

* :meth:`EGraph.add_enode` interns an e-node through the hashcons;
* :meth:`EGraph.union` merges two e-classes *without* immediately restoring
  congruence;
* :meth:`EGraph.rebuild` restores the congruence invariant and re-runs the
  e-class analyses to their (sound) fixpoint.

The representation, however, now lives in :class:`repro.egraph.core.CoreGraph`:
e-nodes and classes are rows in parallel int arrays, not Python objects.
:class:`EClass` is a zero-copy *view* — its ``nodes`` and ``parents``
properties materialize :class:`~repro.egraph.enode.ENode` values from the
arrays on demand — and every ``EGraph`` method is a one-hop delegation.  Hot
consumers (the runner's compiled e-matching, the extractor, sharding) reach
through :attr:`EGraph.core` and work on the arrays directly; everything else
keeps the object-shaped API unchanged.  The previous per-object engine
survives as :class:`repro.egraph.legacy.LegacyEGraph` for differential
testing.

E-class analyses implement the egg ``Analysis`` interface (``make`` /
``join`` / ``modify``).  ``join`` is called both when classes merge and when
a new e-node enters an existing class; for the interval analysis of the paper
the join is set *intersection* (all members of a class evaluate identically,
so every member's approximation is valid for the whole class — see the
authors' companion paper arXiv:2205.14989).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.egraph.core import Analysis, CoreGraph, GraphSnapshot
from repro.egraph.enode import ENode
from repro.ir import ops
from repro.ir.expr import Expr
from repro.ir.ops import Op

__all__ = ["Analysis", "EClass", "EGraph", "merge_callback"]


class EClass:
    """Read-through view of one equivalence class in the flat core.

    Mirrors the old object ``EClass`` surface (``id`` / ``nodes`` /
    ``parents`` / ``data`` / ``rev``) but owns no storage: every property
    reads the core arrays at access time, so a held view stays current as
    the class grows — while absorbed classes leave the view dangling, exactly
    as a held object ``EClass`` went stale before.
    """

    __slots__ = ("_core", "id")

    def __init__(self, core: CoreGraph, class_id: int) -> None:
        self._core = core
        self.id = class_id

    @property
    def nodes(self) -> tuple[ENode, ...]:
        """The member e-nodes, as (cached) value views over the arrays."""
        core = self._core
        view = core.node_enode
        return tuple(view(nid) for nid in core.class_nodes[self.id])

    @property
    def parents(self) -> dict[ENode, int]:
        """Parent set, keyed by the parent e-node (value: owning class id).

        Materialized from the core's nid-level parent index; dead entries
        (congruence duplicates killed since insertion) are filtered out.
        """
        core = self._core
        alive = core.node_alive
        node_class = core.node_class
        view = core.node_enode
        return {
            view(nid): node_class[nid]
            for nid in core.class_parents[self.id]
            if alive[nid]
        }

    @property
    def data(self) -> dict[str, Any]:
        """Analysis data slots (the live dict — writes are visible)."""
        return self._core.class_data[self.id]

    @property
    def rev(self) -> int:
        """Membership revision: bumped whenever the member set changes.
        Analyses use it to key per-class membership caches — see
        :func:`repro.analysis.constr.constr_candidates`."""
        return self._core.class_rev[self.id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EClass(id={self.id}, nodes={len(self._core.class_nodes[self.id])})"


class EGraph:
    """A hashconsed, analysis-carrying e-graph (façade over the flat core)."""

    __slots__ = ("core", "_class_views")

    def __init__(self, analyses: Iterable[Analysis] = ()) -> None:
        #: The flat storage + congruence engine.  Hot paths consume this
        #: directly; the façade methods below are thin delegations.
        self.core = CoreGraph(analyses, owner=self)
        self._class_views: dict[int, EClass] = {}

    @property
    def analyses(self) -> tuple[Analysis, ...]:
        return self.core.analyses

    @property
    def version(self) -> int:
        """Incremented on every successful union; rewrite runners use this
        to detect saturation."""
        return self.core.version

    # ------------------------------------------------------------------ sizes
    def find(self, class_id: int) -> int:
        """Canonical id of the class containing ``class_id``."""
        return self.core.uf.find(class_id)

    @property
    def class_count(self) -> int:
        """Number of canonical e-classes."""
        return self.core.n_classes

    @property
    def node_count(self) -> int:
        """Total number of e-nodes across all classes (O(1))."""
        return self.core.n_nodes

    @property
    def is_clean(self) -> bool:
        """True when no congruence or analysis work is pending (holds
        directly after :meth:`rebuild`)."""
        return self.core.is_clean

    def classes(self) -> Iterator[EClass]:
        """Iterate canonical e-classes (snapshot; safe to mutate during)."""
        getitem = self.__getitem__
        return iter([getitem(cid) for cid in self.core.class_ids()])

    def __getitem__(self, class_id: int) -> EClass:
        root = self.core.uf.find(class_id)
        view = self._class_views.get(root)
        if view is None:
            if self.core.class_nodes[root] is None:
                raise KeyError(class_id)
            view = EClass(self.core, root)
            self._class_views[root] = view
        return view

    def data(self, class_id: int, analysis: str) -> Any:
        """Analysis data of the class, by analysis name."""
        return self.core.class_data[self.core.uf.find(class_id)][analysis]

    def set_data(self, class_id: int, analysis: str, value: Any) -> None:
        """Overwrite analysis data (used to seed input assumptions).

        ``modify`` re-runs on the class itself — seeding a range that proves
        the class constant must materialize the CONST node — and the parents
        are requeued so the new data propagates upward on the next rebuild.
        """
        self.core.set_data(class_id, analysis, value)

    # ------------------------------------------------------------------- add
    def add_enode(self, enode: ENode) -> int:
        """Intern an e-node, returning its (possibly existing) class id."""
        return self.core.add(enode.op, enode.attrs, enode.children)

    def add_node(self, op: Op, attrs: tuple = (), children: Iterable[int] = ()) -> int:
        """Intern an e-node given as raw parts (no :class:`ENode` built)."""
        return self.core.add(op, attrs, tuple(children))

    def add_expr(self, expr: Expr) -> int:
        """Insert a whole expression tree; returns the root class id."""
        add = self.core.add
        memo: dict[Expr, int] = {}
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, ready = stack.pop()
            if node in memo:
                continue
            if not ready:
                stack.append((node, True))
                stack.extend((c, False) for c in node.children if c not in memo)
                continue
            kids = tuple(memo[c] for c in node.children)
            memo[node] = add(node.op, node.attrs, kids)
        return memo[expr]

    def add_const(self, value: int) -> int:
        """Intern a CONST leaf."""
        return self.core.add(ops.CONST, (int(value),), ())

    # ----------------------------------------------------------------- lookup
    def lookup(self, enode: ENode) -> int | None:
        """Class id of an e-node if it is interned, else None."""
        return self.core.lookup(enode.op, enode.attrs, enode.children)

    def class_const(self, class_id: int) -> int | None:
        """The CONST value of a class if it contains a literal node."""
        return self.core.class_const(class_id)

    def nodes_by_op(self) -> dict[Op, list[tuple[int, ENode]]]:
        """Index op -> [(class id, e-node)], from the core's per-op index.

        Class ids are canonical at snapshot time (the core keeps
        ``node_class`` canonical for alive nodes); searchers that cache the
        index across unions still resolve through :meth:`find`, as
        :func:`~repro.egraph.pattern.ematch` does.
        """
        core = self.core
        node_class = core.node_class
        view = core.node_enode
        return {
            core.ops[op_id]: [(node_class[nid], view(nid)) for nid in sub]
            for op_id, sub in enumerate(core.op_nodes)
            if sub
        }

    # ------------------------------------------------------------------ union
    def union(self, a: int, b: int) -> int:
        """Assert that classes ``a`` and ``b`` are equal; returns the root."""
        return self.core.union(a, b)

    # ---------------------------------------------------------------- rebuild
    def rebuild(self, analysis_budget: int = 200_000) -> int:
        """Restore congruence and re-run analyses to a (sound) fixpoint.

        Returns the number of unions performed during the repair.  The
        ``analysis_budget`` caps upward-propagation work; stopping early is
        sound because interval data only ever *tightens* through joins.
        """
        return self.core.rebuild(analysis_budget)

    # --------------------------------------------------------------- snapshot
    def snapshot(self, data: bool = True) -> GraphSnapshot:
        """Read-only view for exporters (see :class:`GraphSnapshot`)."""
        return self.core.snapshot(data)

    # ----------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        """Assert engine invariants, array-level and view-level.

        First the core checks its flat representation (hashcons, congruence,
        parent/op indices, counters).  Then the object-shaped façade views
        are cross-checked against the arrays: every view node must round-trip
        through ``lookup`` to its class, parent views must resolve and really
        reference their child class, and the counters must agree with a full
        sweep over the views — the same contract the object engine asserted.
        """
        self.core.check_invariants()
        find = self.core.uf.find

        seen: dict[ENode, int] = {}
        swept_nodes = 0
        swept_classes = 0
        for eclass in self.classes():
            swept_classes += 1
            assert find(eclass.id) == eclass.id, "non-canonical class retained"
            for node in eclass.nodes:
                swept_nodes += 1
                assert node.canonical(find) == node, (
                    f"façade exposes non-canonical node {node}"
                )
                owner = self.lookup(node)
                assert owner == eclass.id, (
                    f"lookup maps {node} to {owner}, expected {eclass.id}"
                )
                if node in seen:
                    assert seen[node] == eclass.id, f"congruence violated at {node}"
                seen[node] = eclass.id
            for penode, pid in eclass.parents.items():
                owner = self.lookup(penode)
                assert owner is not None, f"parent {penode} missing from hashcons"
                assert owner == find(pid), (
                    f"parent entry {penode} claims owner {find(pid)}, "
                    f"hashcons says {owner}"
                )
                assert eclass.id in {find(c) for c in penode.children}, (
                    f"parent {penode} recorded on class {eclass.id} but does "
                    f"not reference it"
                )
        assert self.node_count == swept_nodes, (
            f"node_count counter {self.node_count} != view sweep {swept_nodes}"
        )
        assert self.class_count == swept_classes, (
            f"class_count counter {self.class_count} != view sweep {swept_classes}"
        )

        # The per-op index, seen through the façade, must agree with a full
        # rescan of the class views.
        expected = {
            node: eclass.id for eclass in self.classes() for node in eclass.nodes
        }
        indexed: dict[ENode, int] = {}
        for op, pairs in self.nodes_by_op().items():
            for class_id, node in pairs:
                assert node.op is op, f"op-index files {node} under {op}"
                indexed[node] = find(class_id)
        assert indexed == expected, "op-index disagrees with class sweep"

    # ------------------------------------------------------------ extraction
    def any_expr(self, class_id: int) -> Expr:
        """Some expression from the class (smallest node count, greedy)."""
        from repro.egraph.extract import AstSizeCost, Extractor

        return Extractor(self, AstSizeCost()).expr_of(class_id)

    def dump(self, limit: int = 50) -> str:
        """Human-readable snapshot for debugging."""
        lines = []
        for cls in sorted(self.snapshot(data=False).classes, key=lambda c: c.id)[
            :limit
        ]:
            nodes = ", ".join(repr(n) for n in sorted(cls.nodes, key=repr))
            lines.append(f"c{cls.id}: {nodes}")
        return "\n".join(lines)

    # ---------------------------------------------------------------- pickling
    def __reduce__(self):
        """Delegate to the core's compact array pickling."""
        return (_egraph_from_core, (self.core,))


def _egraph_from_core(core: CoreGraph) -> EGraph:
    """Unpickling hook: re-attach a façade to a revived core."""
    egraph = EGraph.__new__(EGraph)
    egraph.core = core
    egraph._class_views = {}
    core.owner = egraph
    return egraph


def merge_callback(egraph: EGraph, pairs: Iterable[tuple[int, int]]) -> int:
    """Union every pair then rebuild; returns union count (helper)."""
    count = 0
    for a, b in pairs:
        egraph.union(a, b)
        count += 1
    egraph.rebuild()
    return count
