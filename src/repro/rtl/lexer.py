"""Tokenizer for the Verilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "logic", "reg",
    "assign", "always", "always_comb", "begin", "end", "case", "casez",
    "endcase", "default", "if", "else", "function", "endfunction",
    "signed", "parameter", "localparam",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<sized>\d+\s*'\s*[bodhBODH]\s*[0-9a-fA-FxXzZ?_]+)
  | (?P<number>\d[\d_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><<<|>>>|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:(){}\[\],;@#.'])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'kw' | 'ident' | 'number' | 'sized' | 'op' | 'eof'
    text: str
    line: int


class LexError(ValueError):
    """Input contains a character the lexer does not understand."""


def tokenize(source: str) -> list[Token]:
    """Tokenize Verilog source; comments and whitespace are dropped."""
    tokens: list[Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            snippet = source[position : position + 20]
            raise LexError(f"line {line}: cannot tokenize {snippet!r}")
        text = match.group(0)
        kind = match.lastgroup
        if kind == "ident":
            tokens.append(
                Token("kw" if text in KEYWORDS else "ident", text, line)
            )
        elif kind == "number":
            tokens.append(Token("number", text, line))
        elif kind == "sized":
            tokens.append(Token("sized", re.sub(r"\s+", "", text), line))
        elif kind == "op":
            tokens.append(Token("op", text, line))
        line += text.count("\n")
        position = match.end()
    tokens.append(Token("eof", "", line))
    return tokens


def parse_sized_literal(text: str) -> tuple[int, int]:
    """Parse ``8'hFF`` style literals; returns (width, value).

    ``x``/``z`` digits are rejected (combinational datapaths only); ``?`` is
    accepted only by the casez label parser, not here.
    """
    width_text, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    if any(c in "xXzZ?" for c in digits):
        raise LexError(f"unsupported x/z/? digits in literal {text!r}")
    width = int(width_text)
    value = int(digits, base)
    if value >= (1 << width):
        value %= 1 << width
    return width, value
