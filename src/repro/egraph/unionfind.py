"""Disjoint-set forest with path compression and union by size."""

from __future__ import annotations


class UnionFind:
    """Union-find over dense integer ids created by :meth:`make_set`."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def find(self, item: int) -> int:
        """Canonical representative of ``item`` (with path compression)."""
        root = item
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def in_same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def union(self, a: int, b: int) -> tuple[int, int]:
        """Merge the sets of ``a`` and ``b``.

        Returns ``(root, absorbed)`` — the surviving canonical id and the id
        that was absorbed (equal when already unified).  Union by size keeps
        find paths short.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra, ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra, rb
