"""Word-level arithmetic, comparison and bitwise algebra.

All identities hold over exact integer semantics (see DESIGN.md); rules whose
right-hand side drops an operand are automatically totality-guarded by
:func:`~repro.rewrites.soundness.drule`.
"""

from __future__ import annotations

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, dynamic
from repro.ir import ops
from repro.rewrites.soundness import boolean, drule, nonneg


def arith_rules() -> list[Rewrite]:
    """The base arithmetic rule set."""
    rules = [
        # --- commutativity / associativity --------------------------------
        drule("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        drule("mul-comm", "(* ?a ?b)", "(* ?b ?a)"),
        drule("add-assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
        drule("add-assoc-rev", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        drule("and-comm", "(& ?a ?b)", "(& ?b ?a)"),
        drule("or-comm", "(| ?a ?b)", "(| ?b ?a)"),
        drule("xor-comm", "(^ ?a ?b)", "(^ ?b ?a)"),
        drule("min-comm", "(min ?a ?b)", "(min ?b ?a)"),
        drule("max-comm", "(max ?a ?b)", "(max ?b ?a)"),
        # --- identities ----------------------------------------------------
        drule("add-zero", "(+ ?a 0)", "?a"),
        drule("sub-zero", "(- ?a 0)", "?a"),
        drule("sub-self", "(- ?a ?a)", "0"),
        drule("mul-one", "(* ?a 1)", "?a"),
        drule("mul-zero", "(* ?a 0)", "0"),
        drule("min-self", "(min ?a ?a)", "?a"),
        drule("max-self", "(max ?a ?a)", "?a"),
        drule("or-zero", "(| ?a 0)", "?a", nonneg("a")),
        drule("xor-zero", "(^ ?a 0)", "?a", nonneg("a")),
        drule("and-zero", "(& ?a 0)", "0", nonneg("a")),
        drule("and-self", "(& ?a ?a)", "?a", nonneg("a")),
        drule("or-self", "(| ?a ?a)", "?a", nonneg("a")),
        drule("xor-self", "(^ ?a ?a)", "0", nonneg("a")),
        # --- add/sub algebra ------------------------------------------------
        drule("sub-add-cancel", "(- (+ ?a ?b) ?b)", "?a"),
        drule("add-sub-cancel", "(+ (- ?a ?b) ?b)", "?a"),
        drule("sub-sub", "(- (- ?a ?b) ?c)", "(- ?a (+ ?b ?c))"),
        drule("sub-sub-rev", "(- ?a (+ ?b ?c))", "(- (- ?a ?b) ?c)"),
        drule("sub-of-sub", "(- ?a (- ?b ?c))", "(+ (- ?a ?b) ?c)"),
        drule("neg-as-sub", "(neg ?a)", "(- 0 ?a)"),
        drule("sub-as-neg", "(- 0 ?a)", "(neg ?a)"),
        drule("neg-neg", "(neg (neg ?a))", "?a"),
        drule("add-neg", "(+ ?a (neg ?b))", "(- ?a ?b)"),
        drule("sub-neg", "(- ?a (neg ?b))", "(+ ?a ?b)"),
        drule("sub-swap", "(neg (- ?a ?b))", "(- ?b ?a)"),
        # --- comparison symmetry --------------------------------------------
        drule("lt-gt", "(< ?a ?b)", "(> ?b ?a)"),
        drule("gt-lt", "(> ?a ?b)", "(< ?b ?a)"),
        drule("le-ge", "(<= ?a ?b)", "(>= ?b ?a)"),
        drule("ge-le", "(>= ?a ?b)", "(<= ?b ?a)"),
        drule("eq-comm", "(== ?a ?b)", "(== ?b ?a)"),
        drule("ne-comm", "(!= ?a ?b)", "(!= ?b ?a)"),
        # --- abs / min / max ------------------------------------------------
        drule("abs-as-mux", "(abs ?a)", "(mux (< ?a 0) (neg ?a) ?a)"),
        drule("mux-as-abs", "(mux (< ?a 0) (neg ?a) ?a)", "(abs ?a)"),
        drule("abs-neg", "(abs (neg ?a))", "(abs ?a)"),
        drule("min-as-mux", "(min ?a ?b)", "(mux (< ?a ?b) ?a ?b)"),
        drule("max-as-mux", "(max ?a ?b)", "(mux (> ?a ?b) ?a ?b)"),
        # --- boolean simplification (guarded to {0,1} operands) -------------
        drule("lnot-lnot", "(lnot (lnot ?a))", "?a", boolean("a")),
        drule("ne-zero-bool", "(!= ?a 0)", "?a", boolean("a")),
        drule("eq-zero-lnot", "(== ?a 0)", "(lnot ?a)"),
        drule("lnot-as-eq", "(lnot ?a)", "(== ?a 0)"),
    ]
    rules.append(mul_pow2_to_shl())
    return rules


def mul_pow2_to_shl() -> Rewrite:
    """``a * 2^k -> a << k`` for constant powers of two (strength reduction)."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.MUL, ()):
            for position in (0, 1):
                value = egraph.class_const(enode.children[position])
                if value is not None and value > 0 and (value & (value - 1)) == 0:
                    other = enode.children[1 - position]
                    yield egraph.find(class_id), {
                        "a": other,
                        "k": value.bit_length() - 1,
                    }

    def apply(egraph: EGraph, env: dict, class_id: int):
        shift = egraph.add_const(env["k"])
        return egraph.add_node(ops.SHL, (), (egraph.find(env["a"]), shift))

    return dynamic("mul-pow2-shl", search, apply)
