"""A from-scratch equality-saturation engine (the `egg` substrate).

The paper builds its RTL optimizer on the Rust `egg` library (Willsey et al.,
POPL 2021).  This package reimplements the same machinery in Python:

* :mod:`~repro.egraph.unionfind` — disjoint sets with path compression,
* :mod:`~repro.egraph.enode` — canonicalizable e-nodes,
* :mod:`~repro.egraph.egraph` — hashconsed e-graph with deferred congruence
  rebuilding and egg-style e-class analyses,
* :mod:`~repro.egraph.pattern` — pattern language and e-matching,
* :mod:`~repro.egraph.rewrite` — declarative and dynamic rewrite rules,
* :mod:`~repro.egraph.runner` — saturation runner with a backoff scheduler,
* :mod:`~repro.egraph.extract` — cost-directed extraction.
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.enode import ENode
from repro.egraph.egraph import Analysis, EClass, EGraph
from repro.egraph.pattern import AttrVar, Pattern, PatternNode, PatternVar, parse_pattern
from repro.egraph.rewrite import Rewrite, rewrite, birewrite
from repro.egraph.runner import Runner, RunnerReport, StopReason
from repro.egraph.extract import (
    AstDepthCost,
    AstSizeCost,
    CostFunction,
    ExtractReport,
    Extractor,
)

__all__ = [
    "UnionFind",
    "ENode",
    "EGraph",
    "EClass",
    "Analysis",
    "Pattern",
    "PatternVar",
    "PatternNode",
    "AttrVar",
    "parse_pattern",
    "Rewrite",
    "rewrite",
    "birewrite",
    "Runner",
    "RunnerReport",
    "StopReason",
    "Extractor",
    "ExtractReport",
    "CostFunction",
    "AstSizeCost",
    "AstDepthCost",
]
