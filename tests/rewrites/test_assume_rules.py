"""Table I: each ASSUME rewrite fires and does what the paper says."""

from repro.analysis import DatapathAnalysis, range_of
from repro.egraph import EGraph, Runner
from repro.egraph.enode import ENode
from repro.intervals import IntervalSet
from repro.ir import ops, var
from repro.ir.expr import assume, const, eq, gt, lnot, lt, mux
from repro.pipeline.budget import Budget
from repro.rewrites.assume import (
    assume_distribute_rule,
    assume_merge_nested_rule,
    assume_mux_prune_rule,
    assume_rules,
    assume_true_elim_rule,
    mux_branch_assume_rule,
)


def graph(expr, **ranges):
    g = EGraph([DatapathAnalysis(dict(ranges))])
    root = g.add_expr(expr)
    g.rebuild()
    return g, root


def run(g, rules, iters=4):
    return Runner(g, rules, budget=Budget(iters=iters, nodes=4000)).run()


class TestRow1MuxBranchAssume:
    def test_wraps_branches(self):
        x = var("x", 8)
        g, root = graph(mux(gt(x, 2), x + 1, x - 1))
        run(g, [mux_branch_assume_rule()])
        cond = g.add_expr(gt(x, 2))
        then_cls = g.add_expr(x + 1)
        wrapped = g.lookup(ENode(ops.ASSUME, (), (then_cls, cond)))
        assert wrapped is not None
        # The new mux is merged into the original class.
        not_cond = g.lookup(ENode(ops.LNOT, (), (g.find(cond),)))
        assert not_cond is not None
        else_wrapped = g.lookup(
            ENode(ops.ASSUME, (), (g.add_expr(x - 1), g.find(not_cond)))
        )
        new_mux = g.lookup(
            ENode(ops.MUX, (), (g.find(cond), g.find(wrapped), g.find(else_wrapped)))
        )
        assert g.find(new_mux) == g.find(root)

    def test_idempotent(self):
        x = var("x", 8)
        g, _ = graph(mux(gt(x, 2), x + 1, x - 1))
        run(g, [mux_branch_assume_rule()])
        nodes_after_first = g.node_count
        report = run(g, [mux_branch_assume_rule()], iters=2)
        assert report.stop_reason.value == "saturated"
        assert g.node_count == nodes_after_first


class TestRow2Distribute:
    def test_pushes_through_strict_op(self):
        x = var("x", 8)
        c = gt(x, 2)
        g, root = graph(assume(x + 1, c))
        run(g, [assume_distribute_rule()])
        assumed_x = g.lookup(
            ENode(ops.ASSUME, (), (g.add_expr(x), g.add_expr(c)))
        )
        assert assumed_x is not None
        rebuilt = g.lookup(
            ENode(
                ops.ADD,
                (),
                (
                    g.find(assumed_x),
                    g.find(
                        g.lookup(
                            ENode(ops.ASSUME, (), (g.add_expr(const(1)), g.add_expr(c)))
                        )
                    ),
                ),
            )
        )
        assert g.find(rebuilt) == g.find(root)

    def test_distribution_enables_refinement(self):
        """The paper's chain: distribute, refine, exploit."""
        x = var("x", 8)
        g, root = graph(assume(x + 100, gt(x, 200)))
        run(g, assume_rules())
        # x under the constraint is [201, 255], so x+100 is [301, 355].
        assert range_of(g, root).issubset(IntervalSet.of(301, 355))


class TestRow3MergeNested:
    def test_constraint_sets_unite(self):
        x = var("x", 8)
        c1, c2 = gt(x, 2), lt(x, 9)
        g, root = graph(assume(assume(x, c1), c2))
        run(g, [assume_merge_nested_rule()])
        merged = g.lookup(
            ENode(
                ops.ASSUME,
                (),
                (g.add_expr(x), g.add_expr(c1), g.add_expr(c2)),
            )
        )
        assert merged is not None and g.find(merged) == g.find(root)
        assert range_of(g, root) == IntervalSet.of(3, 8)


class TestRows45MuxPrune:
    def test_true_branch_selected(self):
        x = var("x", 8)
        c = gt(x, 2)
        g, root = graph(assume(mux(c, x + 1, x - 1), c))
        run(g, [assume_mux_prune_rule()])
        pruned = g.lookup(
            ENode(ops.ASSUME, (), (g.add_expr(x + 1), g.add_expr(c)))
        )
        assert pruned is not None and g.find(pruned) == g.find(root)

    def test_false_branch_via_negated_constraint(self):
        x = var("x", 8)
        c = gt(x, 2)
        g, root = graph(assume(mux(c, x + 1, x - 1), lnot(c)))
        run(g, [assume_mux_prune_rule()])
        pruned = g.lookup(
            ENode(ops.ASSUME, (), (g.add_expr(x - 1), g.add_expr(lnot(c))))
        )
        assert pruned is not None and g.find(pruned) == g.find(root)


class TestAssumeTrueElim:
    def test_always_true_constraint_discharges(self):
        x = var("x", 8)
        g, root = graph(assume(x + 1, gt(const(5), 2)))
        g.rebuild()
        run(g, [assume_true_elim_rule()])
        assert g.find(root) == g.find(g.add_expr(x + 1))

    def test_unknown_constraint_stays(self):
        x = var("x", 8)
        g, root = graph(assume(x + 1, gt(x, 2)))
        run(g, [assume_true_elim_rule()])
        assert g.find(root) != g.find(g.add_expr(x + 1))


class TestPaperNegationExample:
    def test_a_eq_zero_branch(self):
        """a==0 ? a : -a  ==  a==0 ? 0 : -a  (Section IV-B)."""
        a = var("a", 8)
        g, root = graph(mux(eq(a, 0), a, -a))
        run(g, assume_rules(), iters=5)
        cond = g.add_expr(eq(a, 0))
        zero = g.add_expr(const(0))
        folded = g.lookup(ENode(ops.ASSUME, (), (g.find(zero), g.find(cond))))
        assert folded is not None, "ASSUME(a, a==0) must fold to ASSUME(0, a==0)"
