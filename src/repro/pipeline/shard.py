"""Intra-design sharding: fan output cones through per-shard pipelines.

The :class:`Shard` stage slices the ingested design into shared-nothing
cones (per output, or clustered by shared-subexpression weight — see
:mod:`repro.analysis.sharding`), runs each cone through its *own*
Ingest → [CaseSplit] → Saturate → Extract pipeline — its own e-graph, its
own analysis state, its own budget — and :class:`MergeShards` folds the
extracted expressions, costs and saturation reports back into the enclosing
context, where ``Verify`` / ``Emit`` /
:func:`~repro.pipeline.session.record_from_context` work exactly as in a
monolithic run.

Because shards are plain picklable value objects (:class:`ShardTask`), the
fan-out optionally goes over a :class:`~concurrent.futures.ProcessPoolExecutor`
— and since :class:`~repro.pipeline.session.Session` already fans *designs*
out over processes, a batch of large designs parallelizes at two levels:
designs across the pool, cones within each design.  When the nested pool
cannot start (daemonic worker processes cannot have children) the stage
falls back to inline execution and says so: the run records carry
``pool: "inline" | "process"`` so perf numbers are never silently
serialized.

Budget-aware orchestration (see :mod:`repro.pipeline.budget`): a schedule
may carry a shared :class:`Budget` — or the enclosing pipeline a
:class:`ResourceGovernor` — and the stage splits it across shards by a
named policy (``fair`` / ``weighted`` by cone size / ``adaptive``, where a
fast shard's unspent wall time flows to the slow ones).  Every child
inherits the parent's *absolute* deadline, which is the fix for the classic
sharded-deadline bug: a slow shard no longer restarts the whole
``time_limit``, so an N-shard run cannot overshoot its deadline N-fold.

Why this scales: equality saturation is super-linear in e-graph size, and a
node limit is a *shared* budget monolithically — one greedy cone starves
every other output.  Shard-per-cone gives each output the full budget and
never pays for cross-cone e-node collisions (ROVER's decomposition insight,
applied to the paper's flow).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.analysis import DatapathAnalysis
from repro.analysis.sharding import ConeShard, ShardPlan, plan_shards, should_shard
from repro.egraph import EGraph, absorb_graph
from repro.egraph.runner import RunnerReport
from repro.ir.cones import cone_inputs
from repro.ir.expr import Expr
from repro.pipeline.budget import (
    Budget,
    BudgetPool,
    ResourceGovernor,
    allocator_for,
    concurrent_children,
    spend_dict,
)
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import CaseSplit, Extract, Ingest, Saturate
from repro.rewrites import compose_rules
from repro.synth.cost import DelayArea


@dataclass(frozen=True)
class ShardSchedule:
    """Picklable per-shard saturation/extraction knobs.

    Mirrors the single-phase knobs of :class:`~repro.pipeline.session.Job`:
    a worker process rebuilds the actual ``Saturate``/``Extract`` stages from
    this spec, so no rule object (which may close over unpicklable state)
    ever crosses the process boundary.

    ``budget`` puts the whole *fan-out* (not each shard) under one shared
    quota, split across shards by ``budget_policy``; per-shard allocations
    intersect with the classic per-shard knobs.  ``splits`` carries
    designer case-split conditions — each shard applies exactly those whose
    support its cone can see (monolithic ``CaseSplit`` composes with the
    sharded flow instead of being dropped).
    """

    iter_limit: int = 8
    node_limit: int = 30_000
    time_limit: float = 60.0
    split_threshold: int | None = 1
    enable_assume: bool = True
    enable_condition: bool = True
    strip_assumes: bool = False
    check_invariants: bool = False
    budget: Budget | None = None
    budget_policy: str = "adaptive"
    splits: tuple[Expr, ...] = ()
    #: Ship each shard's saturated e-graph back with its result (compact
    #: ``__reduce__`` pickling across the process boundary) so a stitch
    #: phase can re-union them; off by default — graphs dwarf the extracted
    #: trees, so plain merges shouldn't pay the shipping cost.
    ship_egraph: bool = False


@dataclass(frozen=True)
class ShardTask:
    """One unit of shard work (shippable to a worker process).

    ``budget`` is this shard's allocation out of the fan-out's shared pool
    (None = ungoverned).  Its absolute deadline stays meaningful across the
    process boundary: ``time.monotonic`` is CLOCK_MONOTONIC, shared by all
    processes on the machine.
    """

    shard: ConeShard
    schedule: ShardSchedule
    budget: Budget | None = None


@dataclass
class ShardResult:
    """Picklable outcome of one shard's pipeline run."""

    name: str
    outputs: tuple[str, ...]
    extracted: dict[str, Expr]
    original_costs: dict[str, DelayArea]
    optimized_costs: dict[str, DelayArea]
    reports: list[RunnerReport]
    wall_s: float
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Allocated-vs-spent ledger row: ``{"allocated": {...}?, "spent": {...}}``.
    budget: dict = field(default_factory=dict)
    #: Extraction outcome inside the shard: "complete" | "deadline" (empty
    #: for pre-anytime results).
    extract_status: str = ""
    #: The shard's saturated e-graph and its output → class-id map, shipped
    #: only when the schedule set ``ship_egraph`` (None/{} otherwise).
    egraph: EGraph | None = None
    root_ids: dict[str, int] = field(default_factory=dict)

    @property
    def stop_reasons(self) -> tuple[str, ...]:
        return tuple(report.stop_reason.value for report in self.reports)


def sliced_splits(
    splits: tuple[Expr, ...], shard: ConeShard
) -> tuple[Expr, ...]:
    """The designer case splits whose support this shard's cone can see.

    A condition over inputs the cone never reads cannot specialize anything
    inside the shard (its ASSUME branches refine variables no cone operator
    consumes), so it is sliced away rather than dragging foreign inputs
    into the shard's e-graph.
    """
    if not splits:
        return ()
    visible = set(cone_inputs(shard.roots.values()))
    return tuple(
        split for split in splits if set(cone_inputs([split])) <= visible
    )


def shard_pipeline_stages(
    schedule: ShardSchedule,
    splits: tuple[Expr, ...] = (),
) -> list:
    """The stage list a schedule expands to inside a shard.

    The shard's budget allocation is not intersected here: a budgeted
    :func:`run_shard_task` installs a shard-local governor and every stage
    (saturation *and* extraction) draws from it.
    """
    rules = compose_rules(
        schedule.split_threshold,
        schedule.enable_assume,
        schedule.enable_condition,
    )
    base = Budget(
        iters=schedule.iter_limit,
        nodes=schedule.node_limit,
        time_s=schedule.time_limit,
    )
    stages: list = []
    if splits:
        stages.append(CaseSplit(splits))
    stages += [
        Saturate(
            rules,
            budget=base,
            check_invariants=schedule.check_invariants,
        ),
        Extract(strip_assumes=schedule.strip_assumes),
    ]
    return stages


def run_shard_task(task: ShardTask, clock=None) -> ShardResult:
    """Run one shard to a result.  Top-level so process pools can pickle it.

    A budgeted task runs its whole pipeline under its own
    :class:`~repro.pipeline.budget.ResourceGovernor`, so the shard's
    *extraction* draws from the shard's pool share too (the anytime
    extractor races the shard's deadline and checkpoints on expiry),
    instead of only saturation being governed.  ``clock`` injects a fake
    wall clock for deterministic ledger tests; pool dispatch omits it.
    """
    from repro.pipeline.pipeline import Pipeline  # package-import cycle

    timer = clock if clock is not None else time.perf_counter
    started = timer()
    splits = sliced_splits(task.schedule.splits, task.shard)
    ctx = Pipeline(
        [
            Ingest(roots=task.shard.roots),
            *shard_pipeline_stages(task.schedule, splits=splits),
        ]
    ).run(
        input_ranges=task.shard.input_ranges,
        budget=task.budget,
        budget_policy=task.schedule.budget_policy,
        clock=clock,
    )
    wall = timer() - started
    if ctx.governor is not None:
        governor = ctx.governor
        ledger = {
            "spent": spend_dict(
                time_s=wall,
                nodes=governor.spent_nodes,
                iters=governor.spent_iters,
                matches=governor.spent_matches,
                bdd_nodes=governor.spent_bdd_nodes,
            )
        }
    else:
        ledger = {
            "spent": spend_dict(
                time_s=wall,
                nodes=sum(report.nodes for report in ctx.reports),
                iters=sum(len(report.iterations) for report in ctx.reports),
                matches=sum(report.matches_applied for report in ctx.reports),
            )
        }
    if task.budget is not None:
        ledger["allocated"] = task.budget.as_dict(include_deadline=False)
    return ShardResult(
        name=task.shard.name,
        outputs=task.shard.outputs,
        extracted=dict(ctx.extracted),
        original_costs=dict(ctx.original_costs),
        optimized_costs=dict(ctx.optimized_costs),
        reports=list(ctx.reports),
        wall_s=wall,
        stage_timings=ctx.stage_timings(),
        budget=ledger,
        extract_status=",".join(
            sorted({report.status for report in ctx.extract_reports})
        ),
        egraph=ctx.egraph if task.schedule.ship_egraph else None,
        root_ids=dict(ctx.root_ids) if task.schedule.ship_egraph else {},
    )


def _nested_pool_available() -> bool:
    """Whether a nested process pool can start here.

    Daemonic workers (e.g. ``multiprocessing.Pool`` children) cannot have
    children of their own; trying raises deep inside the executor, so the
    shard fan-out would die — or worse, silently serialize without saying
    so.  The check is explicit and the chosen substrate is recorded.
    """
    return not multiprocessing.current_process().daemon


class Shard:
    """Slice the ingested design into cones and optimize each independently.

    ``max_shards=None`` shards per output; ``max_shards=K`` clusters cones by
    shared-subexpression weight down to at most ``K`` shards.  With
    ``auto_threshold`` set, sharding only engages when the design is
    multi-output *and* its DAG size reaches the threshold — smaller designs
    run as a single shard (equivalent to the monolithic flow), so the stage
    can sit unconditionally in a pipeline.  ``parallel=True`` fans shards out
    over a process pool (shards are shared-nothing by construction), falling
    back to inline execution — recorded, not silent — when a nested pool
    cannot start.

    When the schedule carries a budget (or the context a governor), shards
    draw per-shard allocations from the shared pool: serially through a
    live :class:`~repro.pipeline.budget.BudgetPool` (the adaptive policy
    recycles fast shards' slack), concurrently as quota shares under the
    parent's absolute deadline (wall time is not additive across concurrent
    shards — the deadline is the binding constraint).
    """

    name = "shard"
    #: Charges per-shard ledger rows itself; the pipeline must not add a
    #: generic wall-time row on top.
    self_charging = True

    def __init__(
        self,
        schedule: ShardSchedule | None = None,
        max_shards: int | None = None,
        auto_threshold: int | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.schedule = schedule if schedule is not None else ShardSchedule()
        self.max_shards = max_shards
        self.auto_threshold = auto_threshold
        self.parallel = parallel
        self.max_workers = max_workers

    def plan(self, ctx: PipelineContext) -> ShardPlan:
        """The shard plan this stage would execute on the context."""
        if not ctx.roots:
            raise RuntimeError("Shard needs an Ingest stage to run first")
        if self.auto_threshold is not None and not should_shard(
            ctx.roots, self.auto_threshold
        ):
            return plan_shards(ctx.roots, ctx.input_ranges, max_shards=1)
        return plan_shards(ctx.roots, ctx.input_ranges, max_shards=self.max_shards)

    def _parent_budget(self, ctx: PipelineContext) -> Budget | None:
        """The shared pool this fan-out draws from, if any.

        A schedule budget with no governor installs one on the context, so
        allocation/spend always lands in one uniform ledger.
        """
        schedule_budget = self.schedule.budget
        if ctx.governor is None and schedule_budget is not None:
            ctx.governor = ResourceGovernor(
                schedule_budget, policy=self.schedule.budget_policy
            )
            return ctx.governor.remaining()
        if ctx.governor is not None:
            remaining = ctx.governor.remaining()
            if schedule_budget is not None:
                remaining = remaining.intersect(schedule_budget)
            return remaining
        return None

    def run(self, ctx: PipelineContext) -> None:
        plan = self.plan(ctx)
        ctx.shard_plan = plan
        schedule = self.schedule
        if schedule.splits:
            # Per-shard slicing must *cover* the designer's splits: a
            # condition whose inputs span several cones lands in no shard,
            # and silently dropping it would be worse than refusing (fewer
            # shards keep the spanning inputs in one cone).
            covered: set[Expr] = set()
            for shard in plan.shards:
                covered.update(sliced_splits(schedule.splits, shard))
            dropped = [s for s in schedule.splits if s not in covered]
            if dropped:
                raise ValueError(
                    f"case splits {dropped} read inputs spanning multiple "
                    "shards, so no shard's cone can see them — cluster to "
                    "fewer shards or run these splits monolithically"
                )
        parent = self._parent_budget(ctx)
        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        allocator = allocator_for(schedule.budget_policy)
        weights = [float(max(shard.size, 1)) for shard in plan.shards]
        tasks = [ShardTask(shard, schedule) for shard in plan.shards]

        results: list[ShardResult] | None = None
        pool_kind = "inline"
        if self.parallel and len(tasks) > 1 and _nested_pool_available():
            results = self._run_process_pool(tasks, parent, allocator, weights, clock)
            if results is not None:
                pool_kind = "process"
        if results is None:
            results = self._run_inline(tasks, parent, allocator, weights, clock)
        ctx.shard_results = results
        ctx.artifacts["shard_pool"] = pool_kind
        if governor is not None:
            for result in results:
                spent = result.budget.get("spent", {})
                governor.charge(
                    f"shard:{result.name}",
                    time_s=spent.get("time_s", result.wall_s),
                    nodes=spent.get("nodes", 0),
                    iters=spent.get("iters", 0),
                    matches=spent.get("matches", 0),
                    bdd_nodes=spent.get("bdd_nodes", 0),
                    allocated=result.budget.get("allocated"),
                )

    # ------------------------------------------------------------- substrates
    def _run_process_pool(
        self, tasks, parent, allocator, weights, clock
    ) -> list[ShardResult] | None:
        """Concurrent fan-out; ``None`` means "fall back to inline".

        Concurrent shards race the parent's absolute deadline rather than
        receiving wall-time slices (wall time is not additive across
        concurrency); countable quotas split by the policy's shares.
        """
        budgeted = tasks
        if parent is not None:
            children = concurrent_children(parent, weights, allocator, clock())
            budgeted = [
                replace(task, budget=child)
                for task, child in zip(tasks, children, strict=True)
            ]
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(run_shard_task, budgeted))
        except OSError:
            # Pool never came up (fd/process limits, sandboxing): the
            # shards are pure functions, rerunning inline is safe.
            return None

    def _run_inline(
        self, tasks, parent, allocator, weights, clock
    ) -> list[ShardResult]:
        """Serial fan-out with live draw/settle budget accounting."""
        if parent is None:
            return [run_shard_task(task) for task in tasks]
        pool = BudgetPool(parent, weights, allocator, clock=clock)
        results = []
        for task in tasks:
            child = pool.draw()
            result = run_shard_task(replace(task, budget=child))
            spent = result.budget.get("spent", {})
            pool.settle(
                nodes=spent.get("nodes", 0),
                iters=spent.get("iters", 0),
                matches=spent.get("matches", 0),
                bdd_nodes=spent.get("bdd_nodes", 0),
            )
            results.append(result)
        return results


class MergeShards:
    """Fold per-shard results back into the enclosing context.

    After the merge the context looks exactly like a monolithic
    Saturate+Extract run over every output — downstream ``Verify``/``Emit``
    stages and record condensation apply unchanged.  Per-shard wall times
    land in ``ctx.artifacts["shard_walls"]`` (and from there in
    ``RunRecord.shard_walls``), per-shard allocated-vs-spent ledgers in
    ``ctx.artifacts["shard_budgets"]``; saturation reports append in shard
    order.

    ``stitch=True`` adds the governed cross-cone **stitch phase** after the
    plain merge: the shipped shard e-graphs (``ShardSchedule.ship_egraph``)
    are absorbed into one graph seeded with the full design's roots — the
    hashcons re-unites the shared subexpressions per-output cones explored
    separately — then a short budgeted saturation (``stitch`` ledger row)
    lets rewrites cross the old cone boundaries, and a re-extraction
    (``stitch-extract`` row) harvests the recovered sharing.  Per output the
    *better* of stitched vs plain-merge survives, so stitching is never
    costlier than the plain merge by construction; the phase's outcome lands
    in ``ctx.artifacts["stitch"]``/``["stitch_status"]`` and the stitched
    graph stays on ``ctx.egraph`` for ``SaveEGraph``.
    """

    name = "merge-shards"
    #: Charges its own ledger row (net of the inner stitch stages, which
    #: charge ``stitch``/``stitch-extract`` themselves).
    self_charging = True

    def __init__(
        self,
        stitch: bool = False,
        stitch_rules=None,
        stitch_iters: int = 2,
        stitch_node_limit: int | None = None,
        stitch_time_limit: float = 10.0,
    ) -> None:
        self.stitch = stitch
        self.stitch_rules = stitch_rules
        self.stitch_iters = stitch_iters
        self.stitch_node_limit = stitch_node_limit
        self.stitch_time_limit = stitch_time_limit

    def run(self, ctx: PipelineContext) -> None:
        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        started = clock()
        if not ctx.shard_results:
            raise RuntimeError("MergeShards needs a Shard stage to run first")
        merged_outputs: set[str] = set()
        for result in ctx.shard_results:
            overlap = merged_outputs & set(result.outputs)
            if overlap:
                raise RuntimeError(
                    f"shard {result.name!r} re-merges outputs {sorted(overlap)}"
                )
            merged_outputs.update(result.outputs)
            ctx.extracted.update(result.extracted)
            ctx.original_costs.update(result.original_costs)
            ctx.optimized_costs.update(result.optimized_costs)
            ctx.reports.extend(result.reports)
        missing = set(ctx.roots) - merged_outputs
        if missing:
            raise RuntimeError(f"shard plan dropped outputs {sorted(missing)}")
        ctx.artifacts["shard_walls"] = {
            result.name: round(result.wall_s, 6) for result in ctx.shard_results
        }
        ledgers = {
            result.name: result.budget
            for result in ctx.shard_results
            if result.budget
        }
        if ledgers:
            ctx.artifacts["shard_budgets"] = ledgers
        inner = self._stitch(ctx) if self.stitch else 0.0
        if governor is not None:
            # Own row: the merge bookkeeping only — the stitch stages have
            # already charged their rows, double-charging their wall here
            # would sink the ledger-coverage invariant from above.
            governor.charge(
                self.name, time_s=max(0.0, clock() - started - inner)
            )

    # ----------------------------------------------------------- stitch phase
    def _stitch(self, ctx: PipelineContext) -> float:
        """Run the stitch phase; returns the inner stages' wall seconds."""
        shipped = [r for r in ctx.shard_results if r.egraph is not None]
        if not shipped or len(shipped) != len(ctx.shard_results):
            # A schedule without ship_egraph (or a partial ship) cannot
            # stitch soundly — the plain merge stands.
            ctx.artifacts["stitch_status"] = "skipped:no-graphs"
            return 0.0
        plain_extracted = dict(ctx.extracted)
        plain_costs = dict(ctx.optimized_costs)
        # One graph, the whole design: seeding with the original roots
        # restores every cross-cone shared subexpression, and absorbing the
        # shard graphs layers each cone's proven equivalences on top.
        egraph = EGraph([DatapathAnalysis(ctx.input_ranges)])
        root_ids = {
            name: egraph.add_expr(expr) for name, expr in ctx.roots.items()
        }
        egraph.rebuild()
        for result in shipped:
            mapping = absorb_graph(egraph, result.egraph)
            for output, shard_root in result.root_ids.items():
                src = result.egraph.find(shard_root)
                if output in root_ids and src in mapping:
                    egraph.union(root_ids[output], mapping[src])
        egraph.rebuild()
        ctx.egraph = egraph
        ctx.root_ids = root_ids
        node_limit = (
            self.stitch_node_limit
            if self.stitch_node_limit is not None
            # Headroom over the absorbed size: the budget caps *absolute*
            # graph size, and the stitched graph starts near the shards' sum.
            else egraph.node_count + 10_000
        )
        rules = (
            self.stitch_rules if self.stitch_rules is not None else compose_rules()
        )
        saturate = Saturate(
            rules,
            iter_limit=self.stitch_iters,
            node_limit=node_limit,
            time_limit=self.stitch_time_limit,
            label="stitch",
        )
        saturate.run(ctx)
        Extract(label="stitch-extract").run(ctx)
        inner = ctx.reports[-1].total_time + ctx.extract_reports[-1].total_time
        # Keep-min guarantee: per output the better of stitched vs plain
        # merge survives, so the phase can only close the gap to monolithic,
        # never widen it.
        improved = 0
        reverted = 0
        for output, base in plain_costs.items():
            stitched = ctx.optimized_costs.get(output)
            if stitched is None or stitched.key > base.key:
                ctx.extracted[output] = plain_extracted[output]
                ctx.optimized_costs[output] = base
                reverted += 1
            elif stitched.key < base.key:
                improved += 1
        status = f"stitched:improved={improved}/{len(plain_costs)}"
        ctx.artifacts["stitch_status"] = status
        ctx.artifacts["stitch"] = {
            "improved": improved,
            "reverted": reverted,
            "outputs": len(plain_costs),
            "nodes": egraph.node_count,
            "classes": egraph.class_count,
        }
        return inner
