"""Elaboration: Verilog AST -> word-level IR.

Width semantics (IEEE-1364-lite, see package docstring): every assignment
establishes a *context width* ``max(target width, RHS self-determined
width)``; context-determined operators (+ - * & | ^ ~ ?: and a shift's left
operand) evaluate exactly inside the context and the elaborator inserts an
explicit ``TRUNC`` wherever Verilog semantics would wrap — at the assignment
itself and in front of every non-modular consumer (shift LHS, comparison and
logical operands, concat parts).  The optimizer's interval analysis then
deletes each wrap it can prove redundant.

``casez`` priority ladders that encode a leading-zero count (the idiomatic
Verilog LZC of Section V) are recognized structurally and become the IR's
``LZC`` operator; other case statements elaborate to equality-guarded mux
chains.
"""

from __future__ import annotations

from repro.ir import expr as ir
from repro.ir.expr import Expr
from repro.rtl import ast


class ElaborationError(ValueError):
    """The module uses constructs outside the supported subset."""


_UNSIZED_WIDTH = 32


def self_width(node, nets: dict[str, ast.Net]) -> int:
    """IEEE self-determined width of an expression."""
    if isinstance(node, ast.VNum):
        return node.width if node.width is not None else _UNSIZED_WIDTH
    if isinstance(node, ast.VId):
        net = nets.get(node.name)
        if net is None:
            raise ElaborationError(f"undeclared identifier {node.name!r}")
        return net.width
    if isinstance(node, ast.VUnary):
        if node.op in ("!", "&", "|", "^"):
            return 1
        return self_width(node.operand, nets)
    if isinstance(node, ast.VBinary):
        if node.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return 1
        if node.op in ("<<", ">>"):
            return self_width(node.left, nets)
        return max(self_width(node.left, nets), self_width(node.right, nets))
    if isinstance(node, ast.VTernary):
        return max(self_width(node.if_true, nets), self_width(node.if_false, nets))
    if isinstance(node, ast.VConcat):
        return sum(self_width(p, nets) for p in node.parts)
    if isinstance(node, ast.VRepl):
        return node.times * self_width(node.operand, nets)
    if isinstance(node, ast.VIndex):
        return 1
    if isinstance(node, ast.VRange):
        return node.hi - node.lo + 1
    raise ElaborationError(f"unknown AST node {node!r}")


class _Elaborator:
    def __init__(self, module: ast.Module) -> None:
        self.module = module
        self.nets = module.nets
        self.wires: dict[str, Expr] = {}

    # -------------------------------------------------------------- plumbing
    def region(self, node) -> Expr:
        """Elaborate at the node's self width, wrapped (a region boundary)."""
        width = self_width(node, self.nets)
        return ir.trunc(self.elab(node, width), width)

    def to_bool(self, node) -> Expr:
        """Condition value: nonzero test unless already one bit."""
        if self_width(node, self.nets) == 1:
            return self.region(node)
        return ir.ne(self.region(node), 0)

    # ------------------------------------------------------------ expression
    def elab(self, node, ctx: int) -> Expr:
        if isinstance(node, ast.VNum):
            return ir.const(node.value)
        if isinstance(node, ast.VId):
            return self._lookup(node.name)
        if isinstance(node, ast.VUnary):
            return self._unary(node, ctx)
        if isinstance(node, ast.VBinary):
            return self._binary(node, ctx)
        if isinstance(node, ast.VTernary):
            return ir.mux(
                self.to_bool(node.cond),
                self.elab(node.if_true, ctx),
                self.elab(node.if_false, ctx),
            )
        if isinstance(node, ast.VConcat):
            return self._concat(list(node.parts))
        if isinstance(node, ast.VRepl):
            return self._concat([node.operand] * node.times)
        if isinstance(node, ast.VIndex):
            base = self.region(node.base)
            if isinstance(node.index, ast.VNum):
                return ir.slice_(base, node.index.value, node.index.value)
            return ir.trunc(Expr(ir.ops.SHR, (), (base, self.region(node.index))), 1)
        if isinstance(node, ast.VRange):
            return ir.slice_(self.region(node.base), node.hi, node.lo)
        raise ElaborationError(f"unknown AST node {node!r}")

    def _lookup(self, name: str) -> Expr:
        net = self.nets.get(name)
        if net is None:
            raise ElaborationError(f"undeclared identifier {name!r}")
        if net.direction == "input":
            return ir.var(name, net.width)
        if name not in self.wires:
            raise ElaborationError(
                f"{name!r} used before assignment (source must be topological)"
            )
        return self.wires[name]

    def _unary(self, node: ast.VUnary, ctx: int) -> Expr:
        if node.op == "-":
            return -self.elab(node.operand, ctx)
        if node.op == "~":
            wrapped = ir.trunc(self.elab(node.operand, ctx), ctx)
            return ir.bitnot(wrapped, ctx)
        if node.op == "!":
            return ir.lnot(self.region(node.operand))
        operand = self.region(node.operand)
        width = self_width(node.operand, self.nets)
        if node.op == "|":
            return ir.ne(operand, 0)
        if node.op == "&":
            return ir.eq(operand, (1 << width) - 1)
        if node.op == "^":
            raise ElaborationError("XOR reduction is not supported")
        raise ElaborationError(f"unknown unary {node.op!r}")

    def _binary(self, node: ast.VBinary, ctx: int) -> Expr:
        op = node.op
        if op in ("+", "-", "*", "&", "|", "^"):
            left = self.elab(node.left, ctx)
            right = self.elab(node.right, ctx)
            if op in ("&", "|", "^"):
                # Bitwise operators need in-range (non-negative) operands.
                left = ir.trunc(left, ctx)
                right = ir.trunc(right, ctx)
            table = {"+": ir.ops.ADD, "-": ir.ops.SUB, "*": ir.ops.MUL,
                     "&": ir.ops.AND, "|": ir.ops.OR, "^": ir.ops.XOR}
            return Expr(table[op], (), (left, right))
        if op in ("<<", ">>"):
            left = ir.trunc(self.elab(node.left, ctx), ctx)
            right = self.region(node.right)
            table = {"<<": ir.ops.SHL, ">>": ir.ops.SHR}
            return Expr(table[op], (), (left, right))
        if op in ("<", "<=", ">", ">=", "==", "!="):
            width = max(
                self_width(node.left, self.nets), self_width(node.right, self.nets)
            )
            left = ir.trunc(self.elab(node.left, width), width)
            right = ir.trunc(self.elab(node.right, width), width)
            table = {"<": ir.ops.LT, "<=": ir.ops.LE, ">": ir.ops.GT,
                     ">=": ir.ops.GE, "==": ir.ops.EQ, "!=": ir.ops.NE}
            return Expr(table[op], (), (left, right))
        if op == "&&":
            return Expr(ir.ops.AND, (), (self.to_bool(node.left), self.to_bool(node.right)))
        if op == "||":
            return Expr(ir.ops.OR, (), (self.to_bool(node.left), self.to_bool(node.right)))
        raise ElaborationError(f"unknown binary {op!r}")

    def _concat(self, parts: list) -> Expr:
        acc = self.region(parts[0])
        for part in parts[1:]:
            width = self_width(part, self.nets)
            acc = Expr(ir.ops.SHL, (), (acc, ir.const(width))) + self.region(part)
        return acc

    # ------------------------------------------------------------ statements
    def run(self) -> None:
        """Elaborate all assignments, tolerating any statement order.

        Statements whose operands are not yet available are retried until a
        full pass makes no progress (then a genuine use-before-def or a
        combinational cycle is reported).
        """
        pending: list = list(self.module.assigns) + list(self.module.cases)
        while pending:
            stuck: list = []
            failure: ElaborationError | None = None
            for item in pending:
                try:
                    if isinstance(item, ast.CaseStmt):
                        self._case(item)
                    else:
                        self._assign(*item)
                except ElaborationError as err:
                    if "before assignment" not in str(err):
                        raise
                    failure = err
                    stuck.append(item)
            if len(stuck) == len(pending):
                raise failure if failure else ElaborationError("no progress")
            pending = stuck

    def _assign(self, name: str, rhs) -> None:
        net = self.nets.get(name)
        if net is None:
            raise ElaborationError(f"assignment to undeclared {name!r}")
        ctx = max(net.width, self_width(rhs, self.nets))
        self.wires[name] = ir.trunc(self.elab(rhs, ctx), net.width)

    def _case(self, case: ast.CaseStmt) -> None:
        net = self.nets.get(case.target)
        if net is None:
            raise ElaborationError(f"case assigns undeclared {case.target!r}")
        subject_width = self_width(case.subject, self.nets)
        subject = self.region(case.subject)

        lzc_width = _recognize_lzc(case, subject_width)
        if lzc_width is not None:
            self.wires[case.target] = ir.trunc(
                ir.lzc(subject, lzc_width), net.width
            )
            return

        widths = [net.width, subject_width]
        widths += [self_width(rhs, self.nets) for _, rhs in case.arms]
        if case.default is not None:
            widths.append(self_width(case.default, self.nets))
        ctx = max(widths)

        if case.default is not None:
            acc = self.elab(case.default, ctx)
        else:
            acc = ir.const(0)
        for label, rhs in reversed(case.arms):
            masked = subject if label.mask == (1 << label.width) - 1 else (
                Expr(ir.ops.AND, (), (subject, ir.const(label.mask)))
            )
            cond = ir.eq(masked, label.value)
            acc = ir.mux(cond, self.elab(rhs, ctx), acc)
        self.wires[case.target] = ir.trunc(acc, net.width)


def _recognize_lzc(case: ast.CaseStmt, subject_width: int) -> int | None:
    """Detect the idiomatic casez priority ladder computing an LZC.

    Pattern for width ``w``: arm ``k`` has label ``0^k 1 ?^(w-k-1)`` and body
    ``k``; the all-zero subject (default or explicit zero label) yields
    ``w``.  Returns ``w`` on match, else None.
    """
    if not case.is_casez:
        return None
    w = subject_width
    arms = list(case.arms)
    zero_result: ast.VNum | None = None
    if arms and arms[-1][0].mask == (1 << w) - 1 and arms[-1][0].value == 0:
        label, rhs = arms.pop()
        if isinstance(rhs, ast.VNum):
            zero_result = rhs
    if len(arms) != w:
        return None
    for k, (label, rhs) in enumerate(arms):
        if label.width != w:
            return None
        expected_value = 1 << (w - 1 - k)
        expected_mask = ((1 << (k + 1)) - 1) << (w - 1 - k)
        if label.value != expected_value or label.mask != expected_mask:
            return None
        if not isinstance(rhs, ast.VNum) or rhs.value != k:
            return None
    if zero_result is None:
        default = case.default
        if not isinstance(default, ast.VNum) or default.value != w:
            return None
    elif zero_result.value != w:
        return None
    return w


def elaborate(module: ast.Module) -> dict[str, Expr]:
    """Elaborate every output of the module to an IR expression."""
    worker = _Elaborator(module)
    worker.run()
    out: dict[str, Expr] = {}
    for net in module.outputs:
        if net.name not in worker.wires:
            raise ElaborationError(f"output {net.name!r} is never assigned")
        out[net.name] = worker.wires[net.name]
    return out


def module_to_ir(source: str) -> dict[str, Expr]:
    """Parse + elaborate in one call."""
    from repro.rtl.parser import parse_module

    return elaborate(parse_module(source))
