"""Budget-aware shard orchestration + case-split/shard composition.

The acceptance case for the resource-governance redesign: ``stress_wide``
with 8 shards and a 2-second budget finishes in ~the budget (the old flow
handed every shard the whole ``time_limit``, so 8 slow shards could take 8x
the deadline), per-shard allocated-vs-spent ledgers land in the
:class:`~repro.pipeline.session.RunRecord`, and the execution substrate
(``inline`` vs ``process``) is recorded instead of silently degrading.

Also the ``CaseSplit``+``Shard`` composition satellite: designer case
splits are cone-sliced per shard (each shard applies exactly the splits its
cone can see), proved against the split-monolithic flow on a registry
design.
"""

from __future__ import annotations

import time

import pytest

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import get_design
from repro.ir.expr import gt, var
from repro.pipeline import (
    Budget,
    CaseSplit,
    Extract,
    Ingest,
    Job,
    MergeShards,
    Pipeline,
    RunRecord,
    Saturate,
    Shard,
    ShardSchedule,
    execute_job,
)
import repro.pipeline.shard as shard_mod
from repro.pipeline.shard import ShardTask, sliced_splits
from repro.rewrites import compose_rules
from repro.rtl import module_to_ir
from repro.verify import check_equivalent

FAST = dict(iter_limit=2, node_limit=8_000)


class TestBudgetedShardOrchestration:
    def test_acceptance_8_shards_respect_a_2s_budget(self):
        """The ROADMAP lever: a slow shard must not inherit the whole time
        limit.  Unbudgeted, 8 shards x a 10s per-shard limit could run for
        80s; under a 2s shared budget the whole fan-out lands within 1.25x
        of the deadline (plus a little un-governed extract/merge overhead).
        """
        job = Job(
            name="budgeted",
            design="stress_wide",
            iter_limit=8,          # enough work that the budget must bind
            node_limit=50_000,
            time_limit=10.0,       # per-shard knob the budget must override
            auto_shard_nodes=1,
            budget=Budget(time_s=2.0),
        )
        started = time.monotonic()
        record = execute_job(job)
        wall = time.monotonic() - started
        assert record.status == "ok", record.error
        assert record.shards == 8
        assert wall <= 2.0 * 1.25 + 0.5, (
            f"8-shard run took {wall:.2f}s against a 2s budget"
        )
        # Every output still comes back optimized.
        assert record.optimized_delay <= record.original_delay

    def test_per_shard_ledgers_land_in_the_run_record(self):
        record = execute_job(
            Job(
                name="ledger",
                design="stress_wide",
                auto_shard_nodes=1,
                budget=Budget(time_s=5.0),
                **FAST,
            )
        )
        assert record.status == "ok", record.error
        block = record.budget
        assert block["policy"] == "adaptive"
        assert block["allocated"] == {"time_s": 5.0}
        shard_rows = {
            label: row
            for label, row in block["stages"].items()
            if label.startswith("shard:")
        }
        assert set(shard_rows) == {f"shard:out{k}" for k in range(8)}
        for row in shard_rows.values():
            assert row["allocated"]["time_s"] > 0
            assert row["spent"]["time_s"] > 0
            assert row["spent"]["iters"] >= 1
        # Totals aggregate the shard spends.
        assert block["spent"]["iters"] == sum(
            row["spent"]["iters"] for row in shard_rows.values()
        )
        # And the whole block survives the record's JSON round trip.
        clone = RunRecord.from_json(record.to_json())
        assert clone.budget == record.budget

    def test_serial_run_records_inline_pool(self):
        record = execute_job(
            Job(name="inline", design="stress_wide", auto_shard_nodes=1, **FAST)
        )
        assert record.shard_pool == "inline"

    def test_parallel_run_records_process_pool(self):
        record = execute_job(
            Job(
                name="proc",
                design="stress_wide",
                auto_shard_nodes=1,
                shard_parallel=True,
                budget=Budget(time_s=10.0),
                **FAST,
            )
        )
        assert record.status == "ok", record.error
        assert record.shard_pool == "process"
        assert set(record.budget["stages"]) >= {f"shard:out{k}" for k in range(8)}

    def test_parallel_falls_back_inline_when_pool_unavailable(self, monkeypatch):
        """The old flow silently serialized when a nested pool could not
        start; now the substrate is recorded so perf numbers stay honest."""
        monkeypatch.setattr(shard_mod, "_nested_pool_available", lambda: False)
        record = execute_job(
            Job(
                name="fallback",
                design="stress_wide",
                auto_shard_nodes=1,
                shard_parallel=True,
                **FAST,
            )
        )
        assert record.status == "ok", record.error
        assert record.shard_pool == "inline"

    def test_monolithic_record_has_no_pool_or_ledger(self):
        record = execute_job(Job(name="mono", design="lzc_example", **FAST))
        assert record.shard_pool == ""
        assert record.budget == {}

    def test_tightly_budgeted_outputs_remain_equivalent(self):
        """A budget can only cut exploration short — never soundness."""
        design = get_design("stress_wide")
        schedule = ShardSchedule(
            iter_limit=8, node_limit=50_000, budget=Budget(time_s=0.5)
        )
        ctx = Pipeline(
            [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
        ).run(input_ranges=design.input_ranges)
        cones = module_to_ir(design.verilog)
        assert set(ctx.extracted) == set(cones)
        for output in ("out0", "out5"):
            verdict = check_equivalent(
                cones[output], ctx.extracted[output], design.input_ranges
            )
            assert verdict.ok, f"{output} differs at {verdict.counterexample}"

    def test_weighted_policy_allocates_by_cone_size(self):
        design = get_design("stress_wide")
        schedule = ShardSchedule(
            budget=Budget(time_s=4.0), budget_policy="weighted", **FAST
        )
        ctx = Pipeline(
            [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
        ).run(input_ranges=design.input_ranges)
        ledgers = ctx.artifacts["shard_budgets"]
        sizes = {shard.name: shard.size for shard in ctx.shard_plan.shards}
        # Odd lanes (which fold in the previous lane's sum) have larger
        # cones and must receive at least the allocation of their smaller
        # even neighbour.
        assert sizes["out1"] > sizes["out0"]
        assert (
            ledgers["out1"]["allocated"]["time_s"]
            > ledgers["out0"]["allocated"]["time_s"]
        )


# ---------------------------------------------------- CaseSplit composition
def _mono_split(design, splits):
    return Pipeline(
        [
            Ingest(source=design.verilog),
            CaseSplit(splits),
            Saturate(compose_rules(), **FAST),
            Extract(),
        ]
    ).run(input_ranges=design.input_ranges)


def _sharded_split(design, splits):
    schedule = ShardSchedule(splits=tuple(splits), **FAST)
    return Pipeline(
        [Ingest(source=design.verilog, seed_egraph=False), Shard(schedule), MergeShards()]
    ).run(input_ranges=design.input_ranges)


class TestCaseSplitComposesWithSharding:
    SPLITS = (gt(var("x0", 8), 200),)

    def test_splits_are_cone_sliced_per_shard(self):
        """Each shard applies exactly the designer splits its cone can see:
        x0 feeds out0 (directly) and out1 (odd lanes fold in sum0), and no
        other lane."""
        design = get_design("stress_wide")
        ctx = _sharded_split(design, self.SPLITS)
        for shard in ctx.shard_plan.shards:
            visible = sliced_splits(self.SPLITS, shard)
            if shard.name in ("out0", "out1"):
                assert visible == self.SPLITS
            else:
                assert visible == ()

    def test_split_plus_shard_equals_split_monolithic(self):
        """The registry-design proof: under limits where both flows
        complete, sharding a case-split design changes no extracted cost."""
        design = get_design("stress_wide")
        mono = _mono_split(design, self.SPLITS)
        sharded = _sharded_split(design, self.SPLITS)
        assert set(sharded.extracted) == set(mono.extracted)
        for output in mono.roots:
            assert (
                sharded.optimized_costs[output].key
                == mono.optimized_costs[output].key
            ), f"split+shard diverged from split-monolithic on {output}"

    def test_split_shard_outputs_equivalent_to_original_cones(self):
        design = get_design("stress_wide")
        sharded = _sharded_split(design, self.SPLITS)
        cones = module_to_ir(design.verilog)
        for output in ("out0", "out1"):
            verdict = check_equivalent(
                cones[output], sharded.extracted[output], design.input_ranges
            )
            assert verdict.ok, f"{output} differs at {verdict.counterexample}"

    def test_cross_cone_split_is_refused_not_dropped(self):
        """A split whose inputs span several cones lands in no shard; the
        stage must refuse loudly rather than silently optimize less."""
        design = get_design("stress_wide")
        # x0 lives in out0/out1's cones, x6 in out6/out7's: no single
        # per-output shard sees both.
        spanning = (gt(var("x0", 8) + var("x6", 8), 300),)
        with pytest.raises(ValueError, match="spanning multiple shards"):
            _sharded_split(design, spanning)

    def test_small_iteration_pool_is_not_floored_to_zero(self):
        """4 pooled iterations across 8 shards must still do work (the
        naive floor hands every shard int(0.5) = 0 iterations)."""
        design = get_design("stress_wide")
        schedule = ShardSchedule(
            iter_limit=8,
            node_limit=8_000,
            budget=Budget(iters=4),
            budget_policy="fair",
        )
        ctx = Pipeline(
            [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
        ).run(input_ranges=design.input_ranges)
        total_iters = sum(len(r.iterations) for r in ctx.reports)
        assert 1 <= total_iters <= 4  # the pool is spent, never overspent

    def test_optimizer_user_splits_compose_with_sharding(self):
        """The preset no longer refuses user splits in the sharded flow."""
        design = get_design("stress_wide")
        config = OptimizerConfig(
            iter_limit=2, node_limit=8_000, auto_shard_nodes=1, verify=False
        )
        tool = DatapathOptimizer(design.input_ranges, config)
        module = tool.optimize_verilog(design.verilog, user_splits=self.SPLITS)
        assert set(module.outputs) == {f"out{k}" for k in range(8)}

    def test_splits_survive_the_task_pickle_boundary(self):
        import pickle

        design = get_design("stress_wide")
        ctx = Pipeline(
            [Ingest(source=design.verilog, seed_egraph=False)]
        ).run(input_ranges=design.input_ranges)
        schedule = ShardSchedule(splits=self.SPLITS, **FAST)
        stage = Shard(schedule)
        plan = stage.plan(ctx)
        task = ShardTask(plan.shards[0], schedule)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.schedule.splits == self.SPLITS


class TestScheduleBudgetWithoutGovernor:
    def test_schedule_budget_installs_a_governor(self):
        """A budget on the schedule alone still produces a uniform ledger."""
        design = get_design("stress_wide")
        schedule = ShardSchedule(budget=Budget(time_s=5.0), **FAST)
        ctx = Pipeline(
            [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
        ).run(input_ranges=design.input_ranges)
        assert ctx.governor is not None
        assert ctx.governor.budget == Budget(time_s=5.0)
        assert set(ctx.governor.ledger) >= {f"shard:out{k}" for k in range(8)}
        # Any extra rows are wall-only charges from non-shard stages (the
        # governor was installed by Shard, so only later stages appear).
        extras = set(ctx.governor.ledger) - {f"shard:out{k}" for k in range(8)}
        assert extras <= {"merge-shards"}

    def test_children_never_outlive_the_parent_deadline(self):
        design = get_design("stress_wide")
        schedule = ShardSchedule(budget=Budget(time_s=5.0), **FAST)
        ctx = Pipeline(
            [Ingest(source=design.verilog), Shard(schedule), MergeShards()]
        ).run(input_ranges=design.input_ranges)
        for result in ctx.shard_results:
            allocated = result.budget["allocated"]
            # Every shard's window fits inside the shared pool's window.
            assert allocated["time_s"] <= 5.0 + 1e-6
