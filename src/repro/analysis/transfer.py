"""Pure interval transfer functions, shared by the e-class analysis and the
tree-level range analysis used when lowering extracted designs to gates."""

from __future__ import annotations

from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.ops import Op


#: Memo table for :func:`iset_transfer`.  Interval sets are hash-consed, so
#: keys hash cheaply; the same (op, attrs, child ranges) triple recurs
#: constantly during rebuild and the bound keeps worst-case memory flat.
_TRANSFER_CACHE: dict[tuple, IntervalSet] = {}
_TRANSFER_CACHE_CAP = 1 << 17


def iset_transfer(op: Op, attrs: tuple, kids: list[IntervalSet]) -> IntervalSet:
    """Abstract one operator over already-computed child ranges (memoized).

    Handles every IR operator except the leaves (VAR/CONST) and ASSUME
    (whose refinement needs e-graph context).  MUX uses the condition's
    truthiness to drop provably-unreachable branches.
    """
    key = (op, attrs, tuple(kids))
    cached = _TRANSFER_CACHE.get(key)
    if cached is not None:
        return cached
    result = _iset_transfer(op, attrs, kids)
    if len(_TRANSFER_CACHE) >= _TRANSFER_CACHE_CAP:
        _TRANSFER_CACHE.clear()
    _TRANSFER_CACHE[key] = result
    return result


def _iset_transfer(op: Op, attrs: tuple, kids: list[IntervalSet]) -> IntervalSet:
    if op is ops.MUX:
        cond, if_true, if_false = kids
        verdict = cond.truthiness()
        if verdict is True:
            return if_true
        if verdict is False:
            return if_false
        return if_true.union(if_false)

    a = kids[0] if kids else IntervalSet.empty()
    b = kids[1] if len(kids) > 1 else IntervalSet.empty()

    if op is ops.ADD:
        return a.add(b)
    if op is ops.SUB:
        return a.sub(b)
    if op is ops.MUL:
        return a.mul(b)
    if op is ops.NEG:
        return a.neg()
    if op is ops.SHL:
        return a.shl(b)
    if op is ops.SHR:
        return a.shr(b)
    if op is ops.AND:
        return a.bit_and(b)
    if op is ops.OR:
        return a.bit_or(b)
    if op is ops.XOR:
        return a.bit_xor(b)
    if op is ops.NOT:
        (width,) = attrs
        return a.bit_not(width)
    if op is ops.LNOT:
        return a.logical_not()
    if op is ops.LT:
        return a.cmp_lt(b)
    if op is ops.LE:
        return a.cmp_le(b)
    if op is ops.GT:
        return a.cmp_gt(b)
    if op is ops.GE:
        return a.cmp_ge(b)
    if op is ops.EQ:
        return a.cmp_eq(b)
    if op is ops.NE:
        return a.cmp_ne(b)
    if op is ops.LZC:
        (width,) = attrs
        return a.lzc(width)
    if op is ops.TRUNC:
        (width,) = attrs
        return a.trunc_mod(1 << width)
    if op is ops.SLICE:
        hi, lo = attrs
        return a.shr(IntervalSet.point(lo)).trunc_mod(1 << (hi - lo + 1))
    if op is ops.CONCAT:
        (rhs_width,) = attrs
        lsbs = b.intersect(IntervalSet.unsigned(rhs_width))
        msbs = a.intersect(IntervalSet.of(0, None))
        return msbs.shl(IntervalSet.point(rhs_width)).add(lsbs)
    if op is ops.ABS:
        return a.abs()
    if op is ops.MIN:
        return a.min_with(b)
    if op is ops.MAX:
        return a.max_with(b)
    return IntervalSet.top()
