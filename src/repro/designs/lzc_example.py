"""The Figure 1 example: ``LZC(x + y)`` under the input constraint ``x >= 128``.

The constraint implies ``x + y >= 128``, so the 9-bit sum has at most one
leading zero and the 9-bit LZC narrows to a 2-bit LZC of the top two bits —
the rewrite Figure 1 adds to the e-graph (``LZC(a) -> LZC(a >> 7)``).
"""

from __future__ import annotations

from repro.intervals import IntervalSet


def lzc_example_verilog() -> str:
    """Figure 1's initial design."""
    arms = []
    for k in range(9):
        pattern = "0" * k + "1" + "?" * (8 - k)
        arms.append(f"      9'b{pattern}: lz = {k};")
    arms.append("      default: lz = 9;")
    body = "\n".join(arms)
    return f"""
module lzc_example (
  input [7:0] x,
  input [7:0] y,
  output [3:0] out
);
  wire [8:0] sum = x + y;
  reg [3:0] lz;
  always @(*) begin
    casez (sum)
{body}
    endcase
  end
  assign out = lz;
endmodule
"""


def lzc_example_input_ranges() -> dict[str, IntervalSet]:
    """The Figure 1 input constraint ``x >= 128``."""
    return {"x": IntervalSet.of(128, 255)}
