"""The float <-> unorm conversion benchmarks (Section VI, Table III).

``float_to_unorm`` converts a half-precision float known to be at most 1 in
magnitude into an 11-bit unorm, rounding down (DirectX conversion rules):
``floor((2^10 + m) * (2^11 - 1) * 2^(e - 25))``, with the ``e == 15`` case
(value exactly 1.0) clamped to the all-ones code.  The multiply by
``2^11 - 1`` is written shift-and-subtract, as hardware would.

``unorm_to_float`` normalizes an 11-bit unorm into (exponent, mantissa)
half-float fields with the zero input special-cased onto its own path — the
structure the paper highlights: the tool must propagate the ``u != 0``
domain restriction into the LZC/normalize logic.  (The original Intel RTL is
proprietary; this reconstruction keeps the documented structure.)
"""

from __future__ import annotations

from repro.intervals import IntervalSet


def float_to_unorm_verilog() -> str:
    """Half float (<= 1.0, exponent in [1, 15]) to unorm11, round down."""
    return """
module float_to_unorm (
  input [4:0] e,
  input [9:0] m,
  output [10:0] out
);
  wire [10:0] sig = {1'b1, m};
  wire [21:0] scaled = {sig, 11'd0} - sig;
  wire [4:0] sh = 5'd25 - e;
  wire [10:0] shifted = scaled >> sh;
  assign out = (e >= 15) ? 11'd2047 : shifted;
endmodule
"""


def float_to_unorm_input_ranges() -> dict[str, IntervalSet]:
    """Normals at most 1.0: exponent field in [1, 15]."""
    return {"e": IntervalSet.of(1, 15)}


def unorm_to_float_verilog() -> str:
    """Unorm11 to half-float fields; zero input on a separate path."""
    lzc_arms = []
    for k in range(11):
        pattern = "0" * k + "1" + "?" * (10 - k)
        lzc_arms.append(f"      11'b{pattern}: lz = {k};")
    lzc_arms.append("      default: lz = 11;")
    arms = "\n".join(lzc_arms)
    return f"""
module unorm_to_float (
  input [10:0] u,
  output [14:0] out
);
  reg [3:0] lz;
  always @(*) begin
    casez (u)
{arms}
    endcase
  end
  wire [10:0] norm = u << lz;
  wire [4:0] e = 5'd14 - lz;
  wire [9:0] frac = norm[9:0];
  wire [14:0] packed = {{e, frac}};
  assign out = (u == 0) ? 15'd0 : packed;
endmodule
"""
