"""RTL frontend and backend (the Yosys + sv2v substitute).

* :mod:`~repro.rtl.lexer` / :mod:`~repro.rtl.parser` — a combinational
  (System)Verilog subset: ANSI/non-ANSI ports, ``assign``, wire declarations
  with initializers, ``always_comb``/``always @*`` blocks holding
  ``case``/``casez`` statements, the full expression grammar the paper's
  benchmarks need (ternaries, shifts, comparisons, concatenation,
  replication, bit/part selects, sized literals).
* :mod:`~repro.rtl.elaborate` — AST to IR with IEEE-1364-lite width
  semantics: expressions evaluate exactly over the integers and explicit
  ``TRUNC`` nodes are inserted where Verilog would wrap (assignment
  boundaries and self-determined contexts); the optimizer's range analysis
  then removes every provably redundant wrap, which is precisely the
  paper's bitwidth-reduction story.  ``casez`` priority ladders that
  implement a leading-zero count are *recognized* and mapped to the IR's
  first-class ``LZC`` operator (Section V).
* :mod:`~repro.rtl.emit` — IR back to synthesizable Verilog with one wire
  per shared subterm.

Limitations (documented, verified irrelevant to the paper's benchmarks):
no ``signed`` declarations, no sequential logic, no hierarchies.
"""

from repro.rtl.parser import ParseError, parse_module
from repro.rtl.elaborate import ElaborationError, elaborate, module_to_ir
from repro.rtl.emit import emit_verilog

__all__ = [
    "parse_module",
    "ParseError",
    "elaborate",
    "module_to_ir",
    "ElaborationError",
    "emit_verilog",
]
