"""Elaboration semantics against hand-computed references."""

import random

import pytest

from repro.ir.evaluate import evaluate_total, random_env
from repro.rtl import ElaborationError, module_to_ir


def check(src, ref, widths, trials=400, seed=1):
    outs = module_to_ir(src)
    rng = random.Random(seed)
    for _ in range(trials):
        env = random_env(widths, rng)
        want = ref(env)
        for name, expr in outs.items():
            got = evaluate_total(expr, env)
            assert got == want[name], (name, env, got, want[name])


class TestWidthSemantics:
    def test_assignment_truncates(self):
        check(
            "module m (input [7:0] a, input [7:0] b, output [7:0] y);"
            "assign y = a + b; endmodule",
            lambda e: {"y": (e["a"] + e["b"]) & 0xFF},
            {"a": 8, "b": 8},
        )

    def test_wide_target_keeps_carry(self):
        check(
            "module m (input [7:0] a, input [7:0] b, output [8:0] y);"
            "assign y = a + b; endmodule",
            lambda e: {"y": e["a"] + e["b"]},
            {"a": 8, "b": 8},
        )

    def test_shift_in_narrow_context_wraps_first(self):
        # IEEE: (a + b) wraps at the 8-bit context before the >> 1.
        check(
            "module m (input [7:0] a, input [7:0] b, output [7:0] y);"
            "assign y = (a + b) >> 1; endmodule",
            lambda e: {"y": ((e["a"] + e["b"]) & 0xFF) >> 1},
            {"a": 8, "b": 8},
        )

    def test_shift_in_wide_context_keeps_carry(self):
        check(
            "module m (input [7:0] a, input [7:0] b, output [8:0] y);"
            "assign y = (a + b) >> 1; endmodule",
            lambda e: {"y": (e["a"] + e["b"]) >> 1},
            {"a": 8, "b": 8},
        )

    def test_unary_minus_wraps_at_context(self):
        check(
            "module m (input [3:0] a, output [3:0] y);"
            "assign y = -a; endmodule",
            lambda e: {"y": (-e["a"]) & 0xF},
            {"a": 4},
        )

    def test_bitnot_at_context_width(self):
        check(
            "module m (input [3:0] a, output [3:0] y);"
            "assign y = ~a; endmodule",
            lambda e: {"y": e["a"] ^ 0xF},
            {"a": 4},
        )

    def test_comparison_with_unsized_literal(self):
        # Unsized literals are 32-bit (IEEE), so a + 1 keeps its carry in
        # the comparison context.
        check(
            "module m (input [3:0] a, input [3:0] b, output y);"
            "assign y = a + 1 > b; endmodule",
            lambda e: {"y": int((e["a"] + 1) > e["b"])},
            {"a": 4, "b": 4},
        )

    def test_comparison_self_determined_wraps(self):
        # With a *sized* literal the addition wraps at 4 bits before the
        # comparison (self-determined context).
        check(
            "module m (input [3:0] a, input [3:0] b, output y);"
            "assign y = a + 4'd1 > b; endmodule",
            lambda e: {"y": int(((e["a"] + 1) & 0xF) > e["b"])},
            {"a": 4, "b": 4},
        )

    def test_concat_parts_self_determined(self):
        check(
            "module m (input [3:0] a, input [3:0] b, output [7:0] y);"
            "assign y = {a, b}; endmodule",
            lambda e: {"y": (e["a"] << 4) | e["b"]},
            {"a": 4, "b": 4},
        )

    def test_logic_ops(self):
        check(
            "module m (input [3:0] a, input [3:0] b, output y);"
            "assign y = (a != 0) && !(b == 3) || (a > b); endmodule",
            lambda e: {
                "y": int((e["a"] != 0 and e["b"] != 3) or e["a"] > e["b"])
            },
            {"a": 4, "b": 4},
        )

    def test_indexing(self):
        check(
            "module m (input [7:0] a, input [2:0] i, output y, output [3:0] z);"
            "assign y = a[i]; assign z = a[6:3]; endmodule",
            lambda e: {
                "y": (e["a"] >> e["i"]) & 1,
                "z": (e["a"] >> 3) & 0xF,
            },
            {"a": 8, "i": 3},
        )


class TestStatements:
    def test_out_of_order_assignments(self):
        check(
            """
            module m (input [3:0] a, output [4:0] y);
              assign y = t;
              wire [4:0] t = a + 1;
            endmodule
            """,
            lambda e: {"y": e["a"] + 1},
            {"a": 4},
        )

    def test_combinational_cycle_rejected(self):
        with pytest.raises(ElaborationError):
            module_to_ir(
                "module m (input a, output y); wire t; wire u;"
                "assign t = u; assign u = t; assign y = t; endmodule"
            )

    def test_generic_case_priority(self):
        check(
            """
            module m (input [1:0] s, output [3:0] y);
              reg [3:0] y;
              always @(*) begin
                case (s)
                  2'd0: y = 10;
                  2'd1: y = 11;
                  default: y = 15;
                endcase
              end
            endmodule
            """,
            lambda e: {"y": {0: 10, 1: 11}.get(e["s"], 15)},
            {"s": 2},
        )

    def test_lzc_recognition(self):
        src = """
        module m (input [3:0] a, output [2:0] y);
          reg [2:0] y;
          always @(*) begin
            casez (a)
              4'b1???: y = 0;
              4'b01??: y = 1;
              4'b001?: y = 2;
              4'b0001: y = 3;
              default: y = 4;
            endcase
          end
        endmodule
        """
        outs = module_to_ir(src)
        from repro.ir import ops

        assert any(n.op is ops.LZC for n in outs["y"].walk())
        check(src, lambda e: {"y": 4 - e["a"].bit_length()}, {"a": 4})

    def test_non_lzc_casez_still_correct(self):
        # Looks almost like an LZC ladder but bodies differ: must not be
        # recognized, and must still evaluate correctly as a priority chain.
        src = """
        module m (input [2:0] a, output [3:0] y);
          reg [3:0] y;
          always @(*) begin
            casez (a)
              3'b1??: y = 7;
              3'b01?: y = 1;
              3'b001: y = 2;
              default: y = 3;
            endcase
          end
        endmodule
        """
        from repro.ir import ops

        outs = module_to_ir(src)
        assert not any(n.op is ops.LZC for n in outs["y"].walk())

        def ref(e):
            a = e["a"]
            if a & 4:
                return {"y": 7}
            if a & 2:
                return {"y": 1}
            if a & 1:
                return {"y": 2}
            return {"y": 3}

        check(src, ref, {"a": 3})
