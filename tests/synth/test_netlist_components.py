"""Gate-level netlist: components vs brute force, STA, constant folding."""

import itertools
import random

import pytest

from repro.synth import components as comp
from repro.synth.netlist import Netlist, Signal


def make_inputs(nl, widths):
    return {name: nl.add_input(name, w) for name, w in widths.items()}


class TestGatePrimitives:
    def test_constant_folding(self):
        nl = Netlist()
        a = nl.add_input("a", 1)[0]
        assert nl.g_and(a, nl.zero) == nl.zero
        assert nl.g_and(a, nl.one) == a
        assert nl.g_or(a, nl.zero) == a
        assert nl.g_xor(a, a) == nl.zero
        assert nl.g_not(nl.zero) == nl.one
        assert len(nl.gates) == 0  # everything folded

    def test_structural_hashing(self):
        nl = Netlist()
        a, b = nl.add_input("a", 1)[0], nl.add_input("b", 1)[0]
        g1 = nl.g_and(a, b)
        g2 = nl.g_and(b, a)  # symmetric: same gate
        assert g1 == g2
        assert len(nl.gates) == 1

    def test_mux_gate(self):
        nl = Netlist()
        s, a, b = (nl.add_input(n, 1)[0] for n in "sab")
        out = nl.g_mux(s, a, b)
        nl.set_output("y", Signal([out]))
        for sv, av, bv in itertools.product((0, 1), repeat=3):
            got = nl.simulate({"s": sv, "a": av, "b": bv})["y"]
            assert got == (av if sv else bv)


@pytest.mark.parametrize("arch", comp.ADDER_ARCHS)
@pytest.mark.parametrize("width", [1, 3, 4, 7, 8])
def test_adders_exhaustive_small(arch, width):
    nl = Netlist()
    ins = make_inputs(nl, {"a": width, "b": width})
    out, carry = comp.adder(nl, ins["a"], ins["b"], nl.zero, arch)
    nl.set_output("s", Signal(out + [carry]))
    step = max(1, (1 << width) // 16)
    for a in range(0, 1 << width, step):
        for b in range(0, 1 << width, step):
            assert nl.simulate({"a": a, "b": b})["s"] == a + b


@pytest.mark.parametrize("arch", comp.ADDER_ARCHS)
def test_subtractor(arch):
    nl = Netlist()
    ins = make_inputs(nl, {"a": 6, "b": 6})
    out, carry = comp.subtractor(nl, ins["a"], ins["b"], arch)
    nl.set_output("d", Signal(out))
    nl.set_output("no_borrow", Signal([carry]))
    rng = random.Random(0)
    for _ in range(200):
        a, b = rng.randrange(64), rng.randrange(64)
        result = nl.simulate({"a": a, "b": b})
        assert result["d"] == (a - b) % 64
        assert result["no_borrow"] == int(a >= b)


def test_sklansky_is_log_depth():
    for width in (8, 16, 32):
        ripple, prefix = Netlist(), Netlist()
        for nl in (ripple, prefix):
            make_inputs(nl, {"a": width, "b": width})
        r_out, _ = comp.ripple_adder(ripple, ripple.inputs["a"], ripple.inputs["b"], ripple.zero)
        s_out, _ = comp.sklansky_adder(prefix, prefix.inputs["a"], prefix.inputs["b"], prefix.zero)
        ripple.set_output("s", Signal(r_out))
        prefix.set_output("s", Signal(s_out))
        assert prefix.critical_path_delay() < ripple.critical_path_delay()
        assert prefix.area() > ripple.area()  # the classic trade-off


def test_less_than_signed_unsigned():
    nl = Netlist()
    ins = make_inputs(nl, {"a": 4, "b": 4})
    unsigned = comp.less_than(nl, ins["a"], ins["b"], signed=False)
    signed = comp.less_than(nl, ins["a"], ins["b"], signed=True)
    nl.set_output("u", Signal([unsigned]))
    nl.set_output("s", Signal([signed]))
    for a in range(16):
        for b in range(16):
            got = nl.simulate({"a": a, "b": b})
            assert got["u"] == int(a < b)
            sa = a - 16 if a >= 8 else a
            sb = b - 16 if b >= 8 else b
            assert got["s"] == int(sa < sb)


def test_barrel_shifter_right_with_fill():
    nl = Netlist()
    ins = make_inputs(nl, {"v": 8, "s": 3})
    out = comp.barrel_shifter(nl, ins["v"], ins["s"], left=False, fill=nl.zero)
    nl.set_output("y", Signal(out))
    rng = random.Random(1)
    for _ in range(200):
        v, s = rng.randrange(256), rng.randrange(8)
        assert nl.simulate({"v": v, "s": s})["y"] == v >> s


def test_barrel_shifter_left():
    nl = Netlist()
    ins = make_inputs(nl, {"v": 8, "s": 3})
    out = comp.barrel_shifter(nl, ins["v"], ins["s"], left=True, fill=nl.zero)
    nl.set_output("y", Signal(out))
    for v in (0, 1, 0x55, 0xFF):
        for s in range(8):
            assert nl.simulate({"v": v, "s": s})["y"] == (v << s) & 0xFF


@pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 11])
def test_lzc_tree_exhaustive(width):
    nl = Netlist()
    ins = make_inputs(nl, {"v": width})
    out = comp.lzc_tree(nl, ins["v"], max((width).bit_length(), 1) + 1)
    nl.set_output("y", Signal(out))
    for v in range(1 << width):
        assert nl.simulate({"v": v})["y"] == width - v.bit_length(), v


def test_array_multiplier():
    nl = Netlist()
    ins = make_inputs(nl, {"a": 5, "b": 5})
    out = comp.array_multiplier(nl, ins["a"], ins["b"], 10)
    nl.set_output("p", Signal(out))
    for a in range(0, 32, 3):
        for b in range(0, 32, 3):
            assert nl.simulate({"a": a, "b": b})["p"] == a * b


class TestTiming:
    def test_arrival_monotone_along_gates(self):
        nl = Netlist()
        ins = make_inputs(nl, {"a": 4, "b": 4})
        out, _ = comp.ripple_adder(nl, ins["a"], ins["b"], nl.zero)
        nl.set_output("s", Signal(out))
        arrival = nl.arrival_times()
        for gate in nl.gates:
            for i in gate.inputs:
                assert arrival[gate.output] > arrival.get(i, 0.0)

    def test_critical_tags_point_at_components(self):
        nl = Netlist()
        ins = make_inputs(nl, {"a": 8, "b": 8})
        nl.push_tag("adder0")
        out, _ = comp.ripple_adder(nl, ins["a"], ins["b"], nl.zero)
        nl.pop_tag()
        nl.set_output("s", Signal(out))
        assert "adder0" in nl.critical_tags()
