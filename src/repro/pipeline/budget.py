"""Hierarchical resource budgets: one accounted pool for the whole flow.

The paper runs equality saturation "until saturation or a node / iteration /
time limit" — the whole flow is *resource-bounded* search, and how the bound
is spent decides the result quality (ROVER spends it in phases to scale to
real RTL).  Before this module the limits were smeared across five
uncoordinated layers (``Runner`` kwargs, ``Saturate`` knobs,
``ShardSchedule``, ``Job``/``OptimizerConfig`` fields, CLI flags), each
restarting its own clock: a slow shard inherited the *whole* ``time_limit``,
so an 8-shard run could overshoot its deadline eightfold.

This module makes the bound a first-class value:

* :class:`Budget` — an immutable quota bundle: wall-clock span and/or an
  *absolute* monotonic deadline, plus e-node / iteration / e-match quotas
  and a BDD-node quota for equivalence checking.
  ``None`` components are unlimited.  Budgets are picklable, and because
  ``time.monotonic`` is ``CLOCK_MONOTONIC`` (system-wide on Linux), an
  absolute deadline stays meaningful across process-pool fan-out.
* :class:`BudgetAllocator` policies — :class:`FairSplit`,
  :class:`WeightedSplit` (∝ cone size) and :class:`AdaptiveSplit`, which
  draws every child from the *live* remaining pool so unspent budget from
  fast shards flows to slow ones.
* :class:`BudgetPool` — sequential draw/settle accounting for a serial
  fan-out (shards in one process, jobs in one session).
* :class:`ResourceGovernor` — the per-run ledger threaded through
  :class:`~repro.pipeline.context.PipelineContext`: stages intersect their
  own knobs with :meth:`ResourceGovernor.remaining` and
  :meth:`~ResourceGovernor.charge` what they spent, so nested stages share
  ONE deadline instead of each restarting the clock, and every run record
  can report allocated-vs-spent per stage and per shard.

This module deliberately imports nothing from the rest of the package: the
engine-level :class:`~repro.egraph.runner.Runner` consumes budgets too, and
keeping this file stdlib-only keeps that dependency cycle-free.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

Clock = Callable[[], float]


def _min_opt(a, b):
    """Min where ``None`` means unlimited."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


@dataclass(frozen=True)
class Budget:
    """A quota bundle for resource-bounded saturation.  ``None`` = unlimited.

    ``time_s`` is a relative wall-clock span (starts when the consumer
    starts); ``deadline`` is an absolute ``time.monotonic`` instant.  A
    budget may carry both — the effective deadline is whichever comes first
    (:meth:`deadline_at`) — which is how a child stage inherits its parent's
    deadline instead of restarting the clock.
    """

    time_s: float | None = None
    deadline: float | None = None
    nodes: int | None = None
    iters: int | None = None
    matches: int | None = None
    #: BDD node quota for equivalence checking: a ``Verify`` stage stops
    #: growing BDDs once the pool is dry and degrades to randomized trials.
    bdd_nodes: int | None = None

    # ------------------------------------------------------------ construction
    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    @classmethod
    def of_ms(cls, milliseconds: float, **kwargs) -> "Budget":
        """A wall-clock budget from milliseconds (the CLI's ``--budget-ms``)."""
        return cls(time_s=milliseconds / 1000.0, **kwargs)

    # -------------------------------------------------------------- predicates
    @property
    def is_unlimited(self) -> bool:
        return (
            self.time_s is None
            and self.deadline is None
            and self.nodes is None
            and self.iters is None
            and self.matches is None
            and self.bdd_nodes is None
        )

    # ------------------------------------------------------------- combinators
    def deadline_at(self, start: float) -> float:
        """Absolute deadline for a run starting at ``start`` (inf = none)."""
        candidates = []
        if self.time_s is not None:
            candidates.append(start + self.time_s)
        if self.deadline is not None:
            candidates.append(self.deadline)
        return min(candidates) if candidates else math.inf

    def intersect(self, other: "Budget") -> "Budget":
        """The tighter of two budgets, componentwise."""
        return Budget(
            time_s=_min_opt(self.time_s, other.time_s),
            deadline=_min_opt(self.deadline, other.deadline),
            nodes=_min_opt(self.nodes, other.nodes),
            iters=_min_opt(self.iters, other.iters),
            matches=_min_opt(self.matches, other.matches),
            bdd_nodes=_min_opt(self.bdd_nodes, other.bdd_nodes),
        )

    def scaled(self, fraction: float) -> "Budget":
        """A ``fraction`` share of every quota (deadline passes through —
        an absolute instant cannot be scaled, only inherited)."""

        def part(value, integer=False):
            if value is None:
                return None
            share = value * fraction
            return int(share) if integer else share

        return Budget(
            time_s=part(self.time_s),
            deadline=self.deadline,
            nodes=part(self.nodes, integer=True),
            iters=part(self.iters, integer=True),
            matches=part(self.matches, integer=True),
            bdd_nodes=part(self.bdd_nodes, integer=True),
        )

    # ------------------------------------------------------------ serialization
    def as_dict(self, include_deadline: bool = True) -> dict:
        """JSON-ready quota dict; unlimited components are omitted."""
        out: dict = {}
        for key in ("time_s", "deadline", "nodes", "iters", "matches", "bdd_nodes"):
            if key == "deadline" and not include_deadline:
                continue
            value = getattr(self, key)
            if value is not None:
                out[key] = round(value, 6) if isinstance(value, float) else value
        return out


def spend_dict(
    *,
    time_s: float = 0.0,
    nodes: int = 0,
    iters: int = 0,
    matches: int = 0,
    bdd_nodes: int = 0,
) -> dict:
    """The canonical ledger "spent" shape."""
    return {
        "time_s": round(time_s, 6),
        "nodes": nodes,
        "iters": iters,
        "matches": matches,
        "bdd_nodes": bdd_nodes,
    }


# ------------------------------------------------------------------ allocators
class BudgetAllocator:
    """Split a parent budget across weighted children.

    :meth:`split` is the up-front allocation (used for concurrent fan-out and
    property-tested to never sum above the parent); serial fan-out goes
    through :class:`BudgetPool`, which consults :attr:`adaptive` to decide
    whether children draw fixed up-front shares or live remaining-pool
    shares.
    """

    name = "fair"
    #: Adaptive policies draw from the live remaining pool, so unspent
    #: budget returned by fast children flows to the slow ones.
    adaptive = False

    def shares(self, weights: Sequence[float]) -> list[float]:
        """Per-child fractions, summing to 1."""
        count = len(weights)
        return [1.0 / count] * count if count else []

    def split(self, budget: Budget, weights: Sequence[float]) -> list[Budget]:
        """Up-front children; componentwise the children never sum above
        the parent.  Countable quotas allocate ceil-then-clamp (greedy
        largest-first in share order), so a small nonzero parent quota is
        never floored into an all-zero fan-out."""
        remaining = {
            quota: getattr(budget, quota)
            for quota in ("nodes", "iters", "matches", "bdd_nodes")
        }
        children = []
        for share in self.shares(weights):
            counts = {}
            for quota, left in remaining.items():
                total = getattr(budget, quota)
                if total is None:
                    counts[quota] = None
                else:
                    allocation = min(math.ceil(total * share), left)
                    remaining[quota] = left - allocation
                    counts[quota] = allocation
            children.append(
                Budget(
                    time_s=None if budget.time_s is None else budget.time_s * share,
                    deadline=budget.deadline,
                    **counts,
                )
            )
        return children


class FairSplit(BudgetAllocator):
    """Every child gets an equal share, regardless of size."""

    name = "fair"


class WeightedSplit(BudgetAllocator):
    """Children get shares proportional to their weights (cone sizes)."""

    name = "weighted"

    def shares(self, weights: Sequence[float]) -> list[float]:
        total = float(sum(weights))
        if total <= 0:
            return super().shares(weights)
        return [float(w) / total for w in weights]


class AdaptiveSplit(WeightedSplit):
    """Weighted shares drawn from the *live* pool: a child that finishes
    under budget implicitly refunds its slack to every later child."""

    name = "adaptive"
    adaptive = True


class VerifyAwareSplit(AdaptiveSplit):
    """Adaptive allocation that reserves a tail slice of the wall for
    verification.

    A saturate-heavy run under one shared deadline historically drained the
    whole pool before ``Verify`` started, pushing every equivalence check
    into ``method="timeout"`` degradation — a ``Budget.bdd_nodes`` quota is
    dead capital without wall time left to spend it in.  Under this policy
    the :class:`ResourceGovernor` holds back ``verify_tail`` of the wall
    window from search-side stages (``Saturate``, ``Extract``, shard
    fan-outs all see a *work deadline*), while ``Verify`` races the full
    deadline — so the BDD quota is actually reachable.  Quota splitting
    across children is inherited from :class:`AdaptiveSplit` (children
    still never collectively overspend the parent, componentwise).
    """

    name = "verify-aware"
    #: Fraction of the wall window reserved for the Verify stage.
    verify_tail = 0.25


ALLOCATORS: dict[str, BudgetAllocator] = {
    policy.name: policy
    for policy in (FairSplit(), WeightedSplit(), AdaptiveSplit(), VerifyAwareSplit())
}


def allocator_for(name: str) -> BudgetAllocator:
    """Look up an allocation policy by name (``fair|weighted|adaptive``)."""
    try:
        return ALLOCATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown budget policy {name!r}; have {sorted(ALLOCATORS)}"
        ) from None


class BudgetPool:
    """Live draw/settle accounting for a *serial* weighted fan-out.

    ``draw()`` hands the next child its allocation — a fixed up-front share
    for non-adaptive policies, or its weighted fraction of whatever is
    *actually* left for :class:`AdaptiveSplit` — always capped by the pool's
    remaining quotas and carrying the pool's absolute deadline, so the
    children can never collectively overspend the parent.  ``settle()``
    debits the quotas a child really consumed (time debits itself through
    the shared deadline).
    """

    def __init__(
        self,
        parent: Budget,
        weights: Sequence[float],
        allocator: BudgetAllocator,
        clock: Clock | None = None,
    ) -> None:
        self.parent = parent
        self.allocator = allocator
        self.clock: Clock = clock if clock is not None else time.monotonic
        self.weights = [max(float(w), 1e-9) for w in weights]
        self.started = self.clock()
        self.deadline = parent.deadline_at(self.started)
        self.total_time = (
            None if math.isinf(self.deadline) else self.deadline - self.started
        )
        self.nodes_left = parent.nodes
        self.iters_left = parent.iters
        self.matches_left = parent.matches
        self.bdd_nodes_left = parent.bdd_nodes
        self._shares = allocator.shares(self.weights)
        self._index = 0

    # ----------------------------------------------------------------- queries
    def time_left(self) -> float | None:
        if math.isinf(self.deadline):
            return None
        return max(0.0, self.deadline - self.clock())

    # ------------------------------------------------------------ draw / settle
    def draw(self) -> Budget:
        """The next child's budget (children are drawn in weight order)."""
        index = self._index
        self._index += 1
        time_left = self.time_left()
        if self.allocator.adaptive:
            weight_left = sum(self.weights[index:]) or 1.0
            fraction = self.weights[index] / weight_left
            time_share = None if time_left is None else time_left * fraction
            nodes = self._adaptive_share(self.nodes_left, fraction)
            iters = self._adaptive_share(self.iters_left, fraction)
            matches = self._adaptive_share(self.matches_left, fraction)
            bdd_nodes = self._adaptive_share(self.bdd_nodes_left, fraction)
        else:
            fraction = self._shares[index] if index < len(self._shares) else 0.0
            time_share = (
                None
                if self.total_time is None
                else min(self.total_time * fraction, time_left)
            )
            nodes = self._fixed_share(self.parent.nodes, self.nodes_left, fraction)
            iters = self._fixed_share(self.parent.iters, self.iters_left, fraction)
            matches = self._fixed_share(
                self.parent.matches, self.matches_left, fraction
            )
            bdd_nodes = self._fixed_share(
                self.parent.bdd_nodes, self.bdd_nodes_left, fraction
            )
        return Budget(
            time_s=time_share,
            deadline=None if math.isinf(self.deadline) else self.deadline,
            nodes=nodes,
            iters=iters,
            matches=matches,
            bdd_nodes=bdd_nodes,
        )

    @staticmethod
    def _adaptive_share(left, fraction):
        # Ceil, so a dribble of remaining quota still reaches the children
        # instead of flooring to an all-zero fan-out; clamped to the pool.
        return None if left is None else min(math.ceil(left * fraction), left)

    @staticmethod
    def _fixed_share(total, left, fraction):
        if total is None:
            return None
        return min(math.ceil(total * fraction), left)

    def settle(
        self,
        *,
        nodes: int = 0,
        iters: int = 0,
        matches: int = 0,
        bdd_nodes: int = 0,
    ) -> None:
        """Debit what a drawn child actually spent."""
        if self.nodes_left is not None:
            self.nodes_left = max(0, self.nodes_left - nodes)
        if self.iters_left is not None:
            self.iters_left = max(0, self.iters_left - iters)
        if self.matches_left is not None:
            self.matches_left = max(0, self.matches_left - matches)
        if self.bdd_nodes_left is not None:
            self.bdd_nodes_left = max(0, self.bdd_nodes_left - bdd_nodes)


def concurrent_children(
    parent: Budget,
    weights: Sequence[float],
    allocator: BudgetAllocator,
    now: float,
) -> list[Budget]:
    """Children for a *concurrent* fan-out (shards or jobs on a pool).

    Wall time is not additive across concurrency, so children get no
    ``time_s`` slices — they all race the parent's absolute deadline
    (meaningful across processes: ``time.monotonic`` is machine-wide).
    Countable quotas split by the policy's shares.
    """
    deadline = parent.deadline_at(now)
    children = allocator.split(
        replace(parent, time_s=None, deadline=None), weights
    )
    if math.isinf(deadline):
        return children
    return [replace(child, deadline=deadline) for child in children]


# ------------------------------------------------------------------- governor
class ResourceGovernor:
    """The accounted pool one pipeline run draws from.

    Created when a run is given a :class:`Budget` (``Pipeline.run(budget=…)``,
    ``Job.budget``, CLI ``--budget-ms``) and threaded through the context.
    Stages intersect their own knobs with :meth:`remaining` — which carries
    the governor's *absolute* deadline, fixing the historic bug where every
    nested ``Saturate`` restarted the clock — and :meth:`charge` their spend
    into a per-label ledger that :class:`~repro.pipeline.session.RunRecord`
    reports as allocated-vs-spent per stage and per shard.

    ``nodes`` in the governor's ledger means e-nodes *grown* (independent
    e-graphs sum; repeated stages on one graph don't double-charge its seed
    size).
    """

    def __init__(
        self,
        budget: Budget,
        clock: Clock | None = None,
        policy: str = "fair",
    ) -> None:
        self.budget = budget
        self.clock: Clock = clock if clock is not None else time.monotonic
        self.policy = policy
        self.started = self.clock()
        self.deadline = budget.deadline_at(self.started)
        #: Fraction of the wall window held back from search-side stages
        #: (nonzero only under a verify-aware policy).
        self.verify_tail = getattr(ALLOCATORS.get(policy), "verify_tail", 0.0)
        if math.isinf(self.deadline) or self.verify_tail <= 0.0:
            self.work_deadline = self.deadline
        else:
            # Saturate/Extract/shard fan-outs stop here; Verify races the
            # full deadline, so the reserved tail is verification's alone.
            self.work_deadline = self.started + (
                (self.deadline - self.started) * (1.0 - self.verify_tail)
            )
        self.spent_nodes = 0
        self.spent_iters = 0
        self.spent_matches = 0
        self.spent_bdd_nodes = 0
        #: label -> {"allocated": quota dict | None, "spent": spend dict}
        self.ledger: dict[str, dict] = {}

    # ----------------------------------------------------------------- queries
    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining(self) -> Budget:
        """The unspent pool as a child budget (the search-side view).

        Time comes back as the governor's *absolute* deadline (never a fresh
        relative span), so however many stages draw from the pool they all
        race one clock.  Under a verify-aware policy this is the *work*
        deadline — the reserved tail is only reachable through
        :attr:`deadline` itself, which ``Verify`` races directly.
        """
        return Budget(
            deadline=None if math.isinf(self.work_deadline) else self.work_deadline,
            nodes=self._left(self.budget.nodes, self.spent_nodes),
            iters=self._left(self.budget.iters, self.spent_iters),
            matches=self._left(self.budget.matches, self.spent_matches),
            bdd_nodes=self._left(self.budget.bdd_nodes, self.spent_bdd_nodes),
        )

    @staticmethod
    def _left(quota, spent):
        return None if quota is None else max(0, quota - spent)

    def exhausted(self) -> bool:
        """True once any governed quota has run dry."""
        if not math.isinf(self.deadline) and self.clock() >= self.deadline:
            return True
        remaining = self.remaining()
        return any(
            quota is not None and quota <= 0
            for quota in (
                remaining.nodes,
                remaining.iters,
                remaining.matches,
                remaining.bdd_nodes,
            )
        )

    # ---------------------------------------------------------------- charging
    def charge(
        self,
        label: str,
        *,
        time_s: float = 0.0,
        nodes: int = 0,
        iters: int = 0,
        matches: int = 0,
        bdd_nodes: int = 0,
        allocated: Budget | dict | None = None,
    ) -> None:
        """Record spend under ``label`` (repeat labels accumulate)."""
        entry = self.ledger.setdefault(
            label, {"allocated": None, "spent": spend_dict()}
        )
        if allocated is not None:
            quota = (
                allocated.as_dict(include_deadline=False)
                if isinstance(allocated, Budget)
                else dict(allocated)
            )
            if entry["allocated"] is None:
                entry["allocated"] = quota
            else:
                for key, value in quota.items():
                    entry["allocated"][key] = entry["allocated"].get(key, 0) + value
        spent = entry["spent"]
        spent["time_s"] = round(spent["time_s"] + time_s, 6)
        spent["nodes"] += nodes
        spent["iters"] += iters
        spent["matches"] += matches
        spent["bdd_nodes"] += bdd_nodes
        self.spent_nodes += nodes
        self.spent_iters += iters
        self.spent_matches += matches
        self.spent_bdd_nodes += bdd_nodes

    def charge_report(self, label: str, report, allocated=None) -> None:
        """Fold a :class:`~repro.egraph.runner.RunnerReport`'s spend in.

        Delegates to the report's own accounting (``nodes_grown`` charges
        the pre-rebuild peak, so a NODE_LIMIT stop always drains the pool).
        """
        self.charge(
            label,
            time_s=report.total_time,
            nodes=report.nodes_grown,
            iters=len(report.iterations),
            matches=report.matches_applied,
            allocated=allocated,
        )

    # ------------------------------------------------------------ serialization
    def as_dict(self) -> dict:
        """The run record's ``budget`` block: pool, totals, per-label ledger."""
        return {
            "policy": self.policy,
            "allocated": self.budget.as_dict(include_deadline=False),
            "spent": spend_dict(
                time_s=self.elapsed(),
                nodes=self.spent_nodes,
                iters=self.spent_iters,
                matches=self.spent_matches,
                bdd_nodes=self.spent_bdd_nodes,
            ),
            "stages": {
                label: {
                    "allocated": entry["allocated"],
                    "spent": dict(entry["spent"]),
                }
                for label, entry in self.ledger.items()
            },
        }
