"""True Pareto-front characterization of the area-delay trade-off.

The legacy sweep (:func:`repro.synth.sweep.area_delay_sweep`) regenerates
Figure 3 by running the greedy critical-path upgrader at a grid of delay
targets — each point is *a* implementation meeting the target, not the best
one.  This module characterizes the front properly over the architecture
space (one choice from :data:`~repro.synth.components.ADDER_ARCHS` per adder
instance):

* **epsilon-constraint** mode: per delay target ``T``, minimize area subject
  to ``delay <= T`` — the classic scalarization that reaches *every* Pareto
  point, supported or not;
* **weighted** mode: minimize ``w·delay + (1-w)·area`` (floor-normalized)
  over a weight grid — the supported points a linear objective can see.

Both modes share one :class:`_Space`: every lowered configuration is
measured once and memoized, so a sweep's targets reuse each other's
synthesis runs (the greedy chain re-lowers from scratch per target).  When
the architecture space is small enough (``3^tags`` within ``max_evals``)
the space is enumerated exhaustively and every front point carries
``provenance="optimal"`` — a *proved* front.  Otherwise the greedy chain
seeds each target and a bounded downgrade descent refines it
(``provenance="incumbent"``); a deadline or evaluation-quota expiry keeps
whatever was measured (``provenance="greedy"``).  Dominated points are
filtered from the front in all modes.

:func:`sweep_points` is the compatibility surface behind
:func:`~repro.synth.sweep.area_delay_sweep`: same targets, same
``SynthesisPoint`` semantics, same prefix-min monotonicity — but each point
may be substituted by a cheaper configuration the shared space discovered,
so the wrapper is never worse than the greedy sweep it replaces.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.pipeline.budget import Budget
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import _stage_window
from repro.synth.components import ADDER_ARCHS
from repro.synth.lower import lower_to_netlist

__all__ = [
    "ParetoPoint",
    "ParetoFront",
    "ParetoSweep",
    "pareto_front",
    "sweep_points",
]

_DEFAULT_ARCH = ADDER_ARCHS[0]  # "ripple"
_FASTEST_ARCH = ADDER_ARCHS[-1]  # "sklansky"


# ------------------------------------------------------------------- artifact
@dataclass(frozen=True)
class ParetoPoint:
    """One point on (or candidate for) the front, with its provenance.

    ``provenance`` is ``"optimal"`` when the point came out of an exhaustive
    enumeration of the architecture space (it is provably the min-area
    implementation at its delay), ``"incumbent"`` when a bounded search
    found it, and ``"greedy"`` when the budget expired before the search ran
    and the greedy chain's output stands.  ``target`` is set in
    epsilon-constraint mode, ``weight`` in weighted mode.
    """

    delay: float
    area: float
    arch_choices: dict[str, str] = field(default_factory=dict)
    provenance: str = "incumbent"
    target: float | None = None
    weight: float | None = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak dominance: no worse in both axes, better in one."""
        return (
            self.delay <= other.delay
            and self.area <= other.area
            and (self.delay < other.delay or self.area < other.area)
        )

    def as_dict(self) -> dict:
        payload: dict = {
            "delay": round(self.delay, 6),
            "area": round(self.area, 6),
            "provenance": self.provenance,
            "arch_choices": dict(self.arch_choices),
        }
        if self.target is not None:
            payload["target"] = round(self.target, 6)
        if self.weight is not None:
            payload["weight"] = round(self.weight, 6)
        return payload


@dataclass
class ParetoFront:
    """The dominance-filtered front plus the run's governance receipt.

    ``status`` summarizes the whole characterization the way the solver's
    :class:`~repro.solve.ilp.SolveResult` does: ``"optimal"`` — the space
    was exhausted, the front is proved; ``"incumbent"`` — bounded search
    completed but without a proof; ``"greedy"`` — the evaluation budget or
    deadline cut even the search short.
    """

    mode: str  # "epsilon" | "weighted"
    points: tuple[ParetoPoint, ...]
    status: str
    evals: int = 0
    tags: int = 0

    def point_for_target(self, target: float) -> ParetoPoint | None:
        """Min-area front point meeting ``target`` (None below the floor)."""
        best = None
        for point in self.points:
            if point.delay <= target and (best is None or point.area < best.area):
                best = point
        return best

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "status": self.status,
            "evals": self.evals,
            "tags": self.tags,
            "points": [point.as_dict() for point in self.points],
        }


def _dominance_filter(points: list[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """Drop dominated and duplicate points; sort by delay ascending."""
    kept: list[ParetoPoint] = []
    for point in sorted(points, key=lambda p: (p.delay, p.area)):
        if kept and kept[-1].area <= point.area:
            continue  # dominated by (or duplicating) a faster-or-equal point
        kept.append(point)
    return tuple(kept)


# ---------------------------------------------------------------------- space
@dataclass(frozen=True)
class _Config:
    """One measured architecture assignment."""

    choices: tuple[tuple[str, str], ...]  # sorted (tag, arch) pairs
    delay: float
    area: float
    critical: tuple[str, ...]  # critical-path tags, for the greedy chain

    def choices_dict(self) -> dict[str, str]:
        return dict(self.choices)


class _Space:
    """Memoized architecture space of one design.

    Every distinct choice assignment is lowered and timed at most once, and
    the memo is shared across all targets/weights of a characterization —
    the structural win over the per-target greedy chain.  ``measure``
    returns ``None`` once the evaluation quota or deadline is hit (and
    flags ``truncated``); ``force=True`` bypasses the quota for the two
    anchor configurations a front cannot do without.
    """

    def __init__(
        self,
        expr: Expr,
        input_ranges: Mapping[str, IntervalSet] | None,
        max_evals: int = 400,
        deadline: float | None = None,
        clock=None,
    ) -> None:
        self.expr = expr
        self.input_ranges = input_ranges
        self.max_evals = max_evals
        self.deadline = math.inf if deadline is None else deadline
        self.clock = clock if clock is not None else time.monotonic
        self.evals = 0
        self.truncated = False
        self._memo: dict[tuple[tuple[str, str], ...], _Config] = {}
        self._last_adder_tags: tuple[str, ...] = ()
        self.measure({}, force=True)  # the all-ripple anchor names the tags
        self.tags: tuple[str, ...] = tuple(sorted(self._last_adder_tags))
        self._tag_set = set(self.tags)

    def measure(
        self, choices: Mapping[str, str], force: bool = False
    ) -> _Config | None:
        key = tuple(sorted(choices.items()))
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if not force and (
            self.evals >= self.max_evals or self.clock() > self.deadline
        ):
            self.truncated = True
            return None
        self.evals += 1
        lowered = lower_to_netlist(
            self.expr, self.input_ranges, dict(choices), default_arch=_DEFAULT_ARCH
        )
        self._last_adder_tags = tuple(lowered.adder_tags)
        config = _Config(
            choices=key,
            delay=lowered.netlist.critical_path_delay(),
            area=lowered.netlist.area(),
            critical=tuple(lowered.netlist.critical_tags()),
        )
        self._memo[key] = config
        return config

    def configs(self) -> list[_Config]:
        return list(self._memo.values())

    @property
    def space_size(self) -> int:
        return len(ADDER_ARCHS) ** len(self.tags)


# --------------------------------------------------------------------- search
def _greedy_chain(space: _Space, target: float, max_upgrades: int = 200):
    """The legacy critical-path upgrader, replayed through the memo.

    Same policy as :func:`repro.synth.sweep.synthesize_at` — upgrade the
    first upgradeable instance on the critical path until the target is met
    or nothing upgrades — so its output is exactly what the greedy sweep
    would have produced (modulo shared memoization).
    """
    choices: dict[str, str] = {}
    config = space.measure({}, force=True)
    for _ in range(max_upgrades):
        if config.delay <= target:
            break
        upgraded = False
        for tag in config.critical:
            if tag not in space._tag_set:
                continue
            current = choices.get(tag, _DEFAULT_ARCH)
            position = ADDER_ARCHS.index(current)
            if position + 1 < len(ADDER_ARCHS):
                choices[tag] = ADDER_ARCHS[position + 1]
                upgraded = True
                break
        if not upgraded:
            break
        step = space.measure(choices)
        if step is None:
            break  # budget expired mid-chain: keep the best config reached
        config = step
    return config


def _downgrade_descent(space: _Space, config: _Config, target: float) -> _Config:
    """Shrink area under the delay constraint, one downgrade at a time."""
    improved = True
    while improved:
        improved = False
        choices = config.choices_dict()
        for tag in space.tags:
            current = choices.get(tag, _DEFAULT_ARCH)
            position = ADDER_ARCHS.index(current)
            if position == 0:
                continue
            trial = dict(choices)
            lower = ADDER_ARCHS[position - 1]
            if lower == _DEFAULT_ARCH:
                trial.pop(tag, None)
            else:
                trial[tag] = lower
            measured = space.measure(trial)
            if measured is None:
                return config
            if measured.delay <= target and measured.area < config.area:
                config = measured
                improved = True
                break
    return config


def _explore(space: _Space, targets: list[float]) -> str:
    """Populate the memo; returns the characterization status."""
    if space.tags and space.space_size <= max(0, space.max_evals - space.evals):
        complete = True
        for assignment in itertools.product(ADDER_ARCHS, repeat=len(space.tags)):
            choices = {
                tag: arch
                for tag, arch in zip(space.tags, assignment, strict=True)
                if arch != _DEFAULT_ARCH
            }
            if space.measure(choices) is None:
                complete = False
                break
        if complete:
            return "optimal"
        return "greedy"
    if not space.tags:
        # Nothing to choose: the single configuration is trivially optimal.
        return "optimal"
    ran_all = True
    for target in targets:
        seed = _greedy_chain(space, target)
        _downgrade_descent(space, seed, target)
        if space.truncated:
            ran_all = False
            break
    return "incumbent" if ran_all else "greedy"


# ----------------------------------------------------------------- the fronts
def pareto_front(
    expr: Expr,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    mode: str = "epsilon",
    points: int = 10,
    slack_factor: float = 2.5,
    max_evals: int = 400,
    weights: list[float] | None = None,
    deadline: float | None = None,
    clock=None,
) -> ParetoFront:
    """Characterize the area-delay front of ``expr``'s architecture space."""
    if mode not in ("epsilon", "weighted"):
        raise ValueError(f"unknown pareto mode: {mode!r}")
    space = _Space(expr, input_ranges, max_evals, deadline, clock)
    fastest = space.measure(
        {tag: _FASTEST_ARCH for tag in space.tags}, force=True
    )
    floor = fastest.delay
    top = floor * slack_factor
    targets = [
        floor + (top - floor) * i / max(points - 1, 1) for i in range(points)
    ]
    status = _explore(space, targets)
    configs = space.configs()

    selected: list[ParetoPoint] = []
    if mode == "epsilon":
        for target in targets:
            feasible = [c for c in configs if c.delay <= target]
            if not feasible:
                continue
            best = min(feasible, key=lambda c: (c.area, c.delay))
            selected.append(
                ParetoPoint(
                    delay=best.delay,
                    area=best.area,
                    arch_choices=best.choices_dict(),
                    provenance=status,
                    target=target,
                )
            )
    else:
        grid = weights
        if grid is None:
            grid = [i / max(points - 1, 1) for i in range(points)]
        # Floor-normalize so a weight means the same thing across designs.
        delay_scale = max(floor, 1.0)
        area_scale = max((c.area for c in configs), default=1.0) or 1.0
        for weight in grid:
            best = min(
                configs,
                key=lambda c, weight=weight: (
                    weight * c.delay / delay_scale
                    + (1.0 - weight) * c.area / area_scale,
                    c.delay,
                    c.area,
                ),
            )
            selected.append(
                ParetoPoint(
                    delay=best.delay,
                    area=best.area,
                    arch_choices=best.choices_dict(),
                    provenance=status,
                    weight=weight,
                )
            )

    return ParetoFront(
        mode=mode,
        points=_dominance_filter(selected),
        status=status,
        evals=space.evals,
        tags=len(space.tags),
    )


def sweep_points(
    expr: Expr,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    points: int = 10,
    slack_factor: float = 2.5,
    max_evals: int = 400,
) -> list:
    """The legacy sweep's series, upgraded by the shared space.

    Same target grid, same :class:`~repro.synth.sweep.SynthesisPoint`
    semantics, same prefix-min area-monotonicity — but every target may be
    substituted by a cheaper measured configuration, so no point is ever
    worse than what the greedy sweep produced.
    """
    from repro.synth.sweep import SynthesisPoint, min_delay_point

    space = _Space(expr, input_ranges, max_evals)
    floor = min_delay_point(expr, input_ranges)
    top = floor.delay * slack_factor
    targets = [
        floor.delay + (top - floor.delay) * i / max(points - 1, 1)
        for i in range(points)
    ]
    _explore(space, targets)
    configs = space.configs()

    points_out: list = []
    best: object | None = None  # smallest-area point so far (prefix-min)
    for target in targets:
        chain = _greedy_chain(space, target)
        point = SynthesisPoint(
            target=target,
            delay=chain.delay,
            area=chain.area,
            met=chain.delay <= target,
            arch_choices=chain.choices_dict(),
        )
        # The space may know a cheaper implementation at this target than
        # the greedy chain found (shared memoization across targets, or the
        # exhaustive enumeration).
        feasible = [c for c in configs if c.delay <= target]
        if feasible:
            candidate = min(feasible, key=lambda c: (c.area, c.delay))
            if candidate.area < point.area:
                point = SynthesisPoint(
                    target=target,
                    delay=candidate.delay,
                    area=candidate.area,
                    met=True,
                    arch_choices=candidate.choices_dict(),
                )
        if best is not None and best.delay <= target and best.area < point.area:
            point = SynthesisPoint(
                target=target,
                delay=best.delay,
                area=best.area,
                met=True,
                arch_choices=dict(best.arch_choices),
            )
        if best is None or (point.area, point.delay) < (best.area, best.delay):
            best = point
        points_out.append(point)
    return points_out


# ---------------------------------------------------------------------- stage
class ParetoSweep:
    """Pipeline stage: characterize each extracted output's front.

    Appended after extraction when a job asks for ``pareto="epsilon"`` or
    ``"weighted"``.  Self-charging like Extract/Verify: its wall spend lands
    in the governor's ledger under ``"pareto"``, and a governed deadline
    truncates the characterization (the front's ``status`` says so) instead
    of raising.  Results go to ``ctx.artifacts["pareto"]``.
    """

    name = "pareto"
    self_charging = True

    def __init__(
        self,
        mode: str = "epsilon",
        points: int = 10,
        slack_factor: float = 2.5,
        max_evals: int = 400,
        label: str | None = None,
    ) -> None:
        if mode not in ("epsilon", "weighted"):
            raise ValueError(f"unknown pareto mode: {mode!r}")
        self.mode = mode
        self.points = points
        self.slack_factor = slack_factor
        self.max_evals = max_evals
        if label is not None:
            self.name = label

    def run(self, ctx: PipelineContext) -> None:
        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        started = clock()
        deadline = None
        if governor is not None and not math.isinf(governor.work_deadline):
            deadline = governor.work_deadline
        fronts: dict[str, dict] = {}
        statuses: list[str] = []
        try:
            source = ctx.extracted if ctx.extracted else ctx.roots
            for name, expr in source.items():
                front = pareto_front(
                    expr,
                    ctx.input_ranges,
                    mode=self.mode,
                    points=self.points,
                    slack_factor=self.slack_factor,
                    max_evals=self.max_evals,
                    deadline=deadline,
                    clock=clock,
                )
                fronts[name] = front.as_dict()
                statuses.append(front.status)
        finally:
            elapsed = clock() - started
            worst = "optimal"
            for status in statuses:
                if status == "greedy":
                    worst = "greedy"
                    break
                if status == "incumbent":
                    worst = "incumbent"
            total = sum(len(front["points"]) for front in fronts.values())
            ctx.artifacts["pareto"] = {
                "mode": self.mode,
                "status": worst if statuses else "greedy",
                "fronts": fronts,
                "summary": f"{self.mode}:{worst if statuses else 'greedy'}:{total}",
            }
            if governor is not None:
                governor.charge(
                    self.name,
                    time_s=elapsed,
                    allocated=(
                        Budget(time_s=round(_stage_window(deadline, started), 6))
                        if deadline is not None
                        else None
                    ),
                )
