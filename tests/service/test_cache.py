"""The content-addressed result cache: canonical keys and the two tiers.

The canonicalization property the service leans on: a design resubmitted
after an alpha-renaming of its inputs or a reordering of commutative
operands is *the same problem* and must hit; any semantic change (a
constant, a width, an operator, a range constraint) must miss.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import IntervalSet
from repro.ir import ops, var
from repro.ir.expr import Expr, const
from repro.pipeline import Budget, Job, RunRecord, execute_job
from repro.service import (
    ResultCache,
    budget_class,
    canonical_digest,
    job_cache_key,
)

FAST = dict(iter_limit=2, node_limit=8_000)

NAMES = ("x", "y", "z", "w")

_LEAVES = st.one_of(
    st.sampled_from(NAMES).map(lambda n: var(n, 4)),
    st.integers(0, 7).map(const),
)

_BINARY_OPS = (ops.ADD, ops.MUL, ops.SUB, ops.MIN, ops.MAX, ops.AND)


def _branch(children):
    return st.tuples(st.sampled_from(_BINARY_OPS), children, children).map(
        lambda t: Expr(t[0], (), (t[1], t[2]))
    )


EXPRS = st.recursive(_LEAVES, _branch, max_leaves=12)

PERMUTATIONS = st.permutations(NAMES)


def _rename(expr: Expr, mapping: dict[str, str]) -> Expr:
    if expr.is_var:
        return var(mapping[expr.var_name], expr.var_width)
    kids = tuple(_rename(child, mapping) for child in expr.children)
    return Expr(expr.op, expr.attrs, kids)


def _commute(expr: Expr, flip) -> Expr:
    """Reorder commutative children by the draw stream ``flip``."""
    kids = tuple(_commute(child, flip) for child in expr.children)
    if expr.op in ops.COMMUTATIVE and len(kids) == 2 and flip():
        kids = (kids[1], kids[0])
    return Expr(expr.op, expr.attrs, kids)


class TestCanonicalDigestProperties:
    @settings(max_examples=100, deadline=None)
    @given(expr=EXPRS, perm=PERMUTATIONS, flips=st.randoms(use_true_random=False))
    def test_alpha_renaming_and_commuting_preserve_the_digest(
        self, expr, perm, flips
    ):
        mapping = dict(zip(NAMES, perm, strict=True))
        twisted = _commute(_rename(expr, mapping), lambda: flips.random() < 0.5)
        assert canonical_digest(expr) == canonical_digest(twisted)

    @settings(max_examples=100, deadline=None)
    @given(expr=EXPRS, perm=PERMUTATIONS)
    def test_renaming_carries_range_constraints_along(self, expr, perm):
        mapping = dict(zip(NAMES, perm, strict=True))
        ranges = {"x": IntervalSet.of(1, 5)}
        renamed_ranges = {mapping["x"]: IntervalSet.of(1, 5)}
        assert canonical_digest(expr, ranges) == canonical_digest(
            _rename(expr, mapping), renamed_ranges
        )

    @settings(max_examples=100, deadline=None)
    @given(expr=EXPRS, delta=st.integers(1, 3))
    def test_shifting_any_constant_changes_the_digest(self, expr, delta):
        consts = [n for n in expr.walk() if n.is_const]
        if not consts:
            return

        def bump(node: Expr) -> Expr:
            if node is consts[0]:
                return const(node.value + delta)
            return Expr(
                node.op, node.attrs, tuple(bump(c) for c in node.children)
            )

        assert canonical_digest(expr) != canonical_digest(bump(expr))

    def test_distinct_occurrence_profiles_are_distinct(self):
        x, y = var("x", 8), var("y", 8)
        assert canonical_digest(x + x) != canonical_digest(x + y)
        assert canonical_digest((x + y) + x) == canonical_digest((y + x) + x)

    def test_widths_and_noncommutative_order_are_semantic(self):
        assert canonical_digest(var("x", 8) + var("y", 8)) != canonical_digest(
            var("x", 8) + var("y", 4)
        )
        x, y = var("x", 8), var("y", 8)
        # x - y is alpha-equivalent to y - x (swap the names)...
        assert canonical_digest(x - y) == canonical_digest(y - x)
        # ...but not to x - x, and MUX arms don't commute.
        assert canonical_digest(x - y) != canonical_digest(x - x)

    def test_multi_output_hashing_ignores_output_names(self):
        x, y = var("x", 8), var("y", 8)
        assert canonical_digest({"a": x + y, "b": x - y}) == canonical_digest(
            {"p": x - y, "q": x + y}
        )


class TestCacheKeys:
    def test_budget_class_ignores_absolute_deadlines(self):
        assert budget_class(
            Budget(time_s=2.0, deadline=1000.0)
        ) == budget_class(Budget(time_s=2.0, deadline=2000.0))
        assert budget_class(Budget(time_s=2.0)) != budget_class(
            Budget(time_s=3.0)
        )
        assert budget_class(None) == "unbudgeted"

    def test_schedule_knobs_are_part_of_the_key(self):
        base = Job(name="a", design="lzc_example")
        assert job_cache_key(base) == job_cache_key(
            replace(base, name="renamed")
        )
        for change in (
            dict(iter_limit=1),
            dict(verify=True),
            dict(budget=Budget(iters=5)),
            dict(phases=(("structural",),)),
        ):
            assert job_cache_key(base) != job_cache_key(
                replace(base, **change)
            ), change


class TestResultCache:
    def test_cache_hit_round_trips_byte_identical(self):
        record = execute_job(
            Job(name="orig", design="lzc_example", budget=Budget(time_s=5.0), **FAST)
        )
        assert record.status == "ok", record.error
        cache = ResultCache()
        key = job_cache_key(Job(name="orig", design="lzc_example", **FAST))
        assert cache.put(key, record)
        hit = cache.get(key)
        assert hit is not None and hit.cache_hit is True
        # Apart from the cache-hit provenance flag, the served record is
        # byte-identical to the stored one.
        assert replace(hit, cache_hit=False).to_json() == record.to_json()
        # And the stored entry itself was not mutated by serving it.
        assert cache.get(key).to_json() == hit.to_json()

    def test_error_records_are_never_admitted(self):
        cache = ResultCache()
        bad = RunRecord(job="x", design="y", status="error", error="boom")
        assert not cache.put("k", bad)
        assert cache.get("k") is None
        assert cache.stats()["misses"] == 1

    def test_lru_evicts_the_coldest_entry(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            cache.put(f"k{i}", RunRecord(job=f"j{i}", design="d"))
        assert cache.get("k0") is None  # evicted
        assert cache.get("k2").job == "j2"

    def test_disk_tier_survives_a_restart(self, tmp_path):
        path = tmp_path / "cache.json"
        first = ResultCache(capacity=4, path=path)
        first.put("k", RunRecord(job="j", design="d", nodes=7))
        assert first.persist() == 1

        reborn = ResultCache(capacity=4, path=path)
        assert reborn.load() == 1
        hit = reborn.get("k")
        assert hit.nodes == 7 and hit.cache_hit is True
        # The promoted entry now also serves from memory.
        assert reborn.stats()["memory_entries"] == 1

    def test_persist_refreshes_stale_disk_entries(self, tmp_path):
        """The PR-8 regression: ``persist`` used ``setdefault``, so a
        same-key record updated in memory never reached disk.  Put, persist,
        put a fresher record under the same key, persist, reload: the disk
        tier must serve the fresher record."""
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=4, path=path)
        cache.put("k", RunRecord(job="j", design="d", nodes=1))
        assert cache.persist() == 1
        cache.put("k", RunRecord(job="j", design="d", nodes=2))
        assert cache.persist() == 1

        reborn = ResultCache(capacity=4, path=path)
        reborn.load()
        assert reborn.get("k").nodes == 2

    def test_corrupt_disk_tier_degrades_to_empty(self, tmp_path, caplog):
        """A torn write (pre-atomic-persist crash) must not kill startup."""
        path = tmp_path / "cache.json"
        good = ResultCache(capacity=4, path=path)
        good.put("k", RunRecord(job="j", design="d"))
        good.persist()
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        reborn = ResultCache(capacity=4, path=path)
        with caplog.at_level("WARNING", logger="repro.service.cache"):
            assert reborn.load() == 0
        assert "starting empty" in caplog.text
        assert reborn.get("k") is None
        # The tier is usable again: persisting rewrites a clean file.
        reborn.put("k2", RunRecord(job="j2", design="d"))
        assert reborn.persist() == 1
        assert ResultCache(capacity=4, path=path).load() == 1

    def test_non_dict_disk_payload_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('["not", "a", "mapping"]')
        cache = ResultCache(capacity=4, path=path)
        assert cache.load() == 0
        assert cache.get("k") is None

    def test_persist_is_atomic_no_temp_droppings(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=4, path=path)
        cache.put("k", RunRecord(job="j", design="d"))
        cache.persist()
        cache.persist()
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]


class TestEGraphArtifactTier:
    def test_pathless_cache_has_no_artifact_tier(self):
        cache = ResultCache()
        assert cache.egraph_dir is None
        assert cache.egraph_path("fam") is None
        assert cache.get_egraph("fam") is None
        assert cache.stats()["egraph_artifacts"] == 0

    def test_artifact_round_trip_through_the_tier(self, tmp_path):
        from repro.egraph import EGraph, save_egraph
        from repro.ir import ops

        cache = ResultCache(path=tmp_path / "cache.json")
        assert cache.get_egraph("fam") is None  # nothing saved yet

        g = EGraph()
        root = g.add_node(ops.VAR, ("x", 4))
        g.rebuild()
        save_egraph(cache.egraph_path("fam"), g, {"out": root})
        found = cache.get_egraph("fam")
        assert found == cache.egraph_path("fam")
        assert cache.stats()["egraph_artifacts"] == 1

    def test_invalid_artifacts_are_ignored_not_fatal(self, tmp_path):
        cache = ResultCache(path=tmp_path / "cache.json")
        path = cache.egraph_path("fam")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an artifact\n")
        assert cache.get_egraph("fam") is None

    def test_warm_family_is_label_keyed_not_content_keyed(self):
        from repro.service import warm_family

        base = Job(name="a", design="lzc_example", **FAST)
        # Same label + schedule: same family, whatever the content will be.
        assert warm_family(base) == warm_family(replace(base, name="b"))
        assert warm_family(base) == warm_family(
            replace(base, source="module m(input x, output y); endmodule")
        )
        # Different ruleset knobs: a different family.
        assert warm_family(base) != warm_family(
            replace(base, enable_assume=False)
        )
        # Exploration limits deliberately do NOT split families: a deeper
        # saturated graph is still a sound seed.
        assert warm_family(base) == warm_family(replace(base, iter_limit=9))
