"""Emit optimized IR back to synthesizable Verilog.

Every distinct subterm becomes one wire (so common subexpressions are shared
in the output RTL, as the e-graph guarantees structurally).  Widths come
from the tree range analysis; ranges that go negative emit ``signed`` wires.
``LZC`` emits the idiomatic casez ladder the frontend recognizes, making
emit -> parse a true round trip.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import expr_ranges
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr


def emit_verilog(
    outputs: Mapping[str, Expr],
    module_name: str = "design",
    input_ranges: Mapping[str, IntervalSet] | None = None,
) -> str:
    """Render a module with the given output expressions."""
    return _Emitter(dict(outputs), module_name, dict(input_ranges or {})).render()


class _Emitter:
    def __init__(
        self,
        outputs: dict[str, Expr],
        module_name: str,
        input_ranges: dict[str, IntervalSet],
    ) -> None:
        self.outputs = outputs
        self.module_name = module_name
        self.ranges: dict[Expr, IntervalSet] = {}
        for root in outputs.values():
            self.ranges.update(expr_ranges(root, input_ranges))
        self.names: dict[Expr, str] = {}
        self.decls: list[str] = []
        self.body: list[str] = []
        self.case_blocks: list[str] = []
        self._counter = 0

    # ---------------------------------------------------------------- naming
    def _width_of(self, node: Expr) -> tuple[int, bool]:
        iset = self.ranges[node]
        width = iset.storage_width() or 1
        low = iset.min()
        return max(width, 1), bool(low is not None and low < 0)

    def _fresh(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _wire(self, node: Expr, rhs: str, force_case: bool = False) -> str:
        name = self._fresh()
        width, signed = self._width_of(node)
        sign = " signed" if signed else ""
        if force_case:
            self.decls.append(f"  reg{sign} [{width - 1}:0] {name};")
            self.case_blocks.append(rhs.replace("@NAME@", name))
        else:
            self.decls.append(f"  wire{sign} [{width - 1}:0] {name};")
            self.body.append(f"  assign {name} = {rhs};")
        self.names[node] = name
        return name

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        ports = []
        seen_inputs: dict[str, int] = {}
        for root in self.outputs.values():
            for node in root.walk():
                if node.op is ops.VAR:
                    seen_inputs[node.var_name] = node.var_width
        for name in sorted(seen_inputs):
            ports.append(f"  input [{seen_inputs[name] - 1}:0] {name}")
        out_lines = []
        for out_name, root in self.outputs.items():
            width, signed = self._width_of(root)
            sign = " signed" if signed else ""
            ports.append(f"  output{sign} [{width - 1}:0] {out_name}")
            out_lines.append(f"  assign {out_name} = {self.emit(root)};")

        header = f"module {self.module_name} (\n" + ",\n".join(ports) + "\n);"
        lines = [header, *self.decls, *self.body, *self.case_blocks, *out_lines,
                 "endmodule", ""]
        return "\n".join(lines)

    def emit(self, node: Expr) -> str:
        if node in self.names:
            return self.names[node]
        name = self._emit_node(node)
        self.names[node] = name
        return name

    def _emit_node(self, node: Expr) -> str:
        op = node.op
        if op is ops.VAR:
            return node.var_name
        if op is ops.CONST:
            width, _ = self._width_of(node)
            value = node.value
            if value < 0:
                return self._wire(node, f"-{width}'d{-value}")
            return f"{width}'d{value}"
        if op is ops.ASSUME:
            return self.emit(node.children[0])

        kids = [self.emit(c) for c in node.children]

        if op is ops.MUX:
            return self._wire(node, f"{kids[0]} != 0 ? {kids[1]} : {kids[2]}")
        if op is ops.TRUNC:
            (width,) = node.attrs
            inner = self.emit(node.children[0])
            inner_width, _ = self._width_of(node.children[0])
            if inner_width <= width:
                return inner
            return self._wire(node, f"{inner}[{width - 1}:0]")
        if op is ops.SLICE:
            hi, lo = node.attrs
            return self._wire(node, f"{kids[0]}[{hi}:{lo}]")
        if op is ops.CONCAT:
            (rhs_width,) = node.attrs
            return self._wire(node, f"{{{kids[0]}, {kids[1]}[{rhs_width - 1}:0]}}")
        if op is ops.NOT:
            return self._wire(node, f"~{kids[0]}")
        if op is ops.LNOT:
            return self._wire(node, f"{kids[0]} == 0 ? 1'd1 : 1'd0")
        if op is ops.NEG:
            return self._wire(node, f"-{kids[0]}")
        if op is ops.ABS:
            a = kids[0]
            return self._wire(node, f"{a} < 0 ? -{a} : {a}")
        if op is ops.MIN:
            a, b = kids
            return self._wire(node, f"{a} < {b} ? {a} : {b}")
        if op is ops.MAX:
            a, b = kids
            return self._wire(node, f"{a} > {b} ? {a} : {b}")
        if op is ops.LZC:
            return self._emit_lzc(node, kids[0])

        symbol = {
            ops.ADD: "+", ops.SUB: "-", ops.MUL: "*", ops.SHL: "<<",
            ops.SHR: ">>", ops.AND: "&", ops.OR: "|", ops.XOR: "^",
            ops.LT: "<", ops.LE: "<=", ops.GT: ">", ops.GE: ">=",
            ops.EQ: "==", ops.NE: "!=",
        }.get(op)
        if symbol is None:
            raise ValueError(f"cannot emit operator {op}")
        return self._wire(node, f"{kids[0]} {symbol} {kids[1]}")

    def _emit_lzc(self, node: Expr, operand: str) -> str:
        """Emit the casez priority ladder for a leading-zero count."""
        (width,) = node.attrs
        operand_width, _ = self._width_of(node.children[0])
        if operand_width != width:
            padded = self._fresh("z")
            self.decls.append(f"  wire [{width - 1}:0] {padded};")
            self.body.append(f"  assign {padded} = {operand};")
            operand = padded
        arms = []
        for k in range(width):
            pattern = "0" * k + "1" + "?" * (width - 1 - k)
            arms.append(f"      {width}'b{pattern}: @NAME@ = {k};")
        arms.append(f"      default: @NAME@ = {width};")
        block = (
            "  always @(*) begin\n"
            f"    casez ({operand})\n" + "\n".join(arms) + "\n"
            "    endcase\n"
            "  end"
        )
        return self._wire(node, block, force_case=True)
