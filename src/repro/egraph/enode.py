"""E-nodes: operator + attributes + child e-class ids.

An e-node is the e-graph analogue of one :class:`~repro.ir.expr.Expr` level:
children are e-class ids instead of subtrees.  E-nodes are hashable and are
the keys of the e-graph's hashcons.

``ASSUME`` e-nodes canonicalize their constraint tail as a *sorted set* of
e-class ids, which makes the constraint argument of the paper's ``ASSUME``
order-insensitive and duplicate-free by construction.
"""

from __future__ import annotations

from repro.ir import ops
from repro.ir.ops import Op


class ENode:
    """One operator application over e-class ids.

    Immutable by convention, with the hash computed once at construction —
    e-nodes are hashed constantly (hashcons, op-index, worklist dedup,
    analysis memo keys) and the cached hash keeps those lookups cheap.
    """

    __slots__ = ("op", "attrs", "children", "_hash")

    op: Op
    attrs: tuple
    children: tuple[int, ...]

    def __init__(self, op: Op, attrs: tuple = (), children: tuple[int, ...] = ()) -> None:
        self.op = op
        self.attrs = attrs
        self.children = children
        self._hash = hash((op, attrs, children))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ENode):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.attrs == other.attrs
            and self.children == other.children
        )

    def canonical(self, find) -> "ENode":
        """Rewrite child ids through ``find`` (a callable id -> root id).

        Returns ``self`` (no allocation) when every child is already
        canonical — the common case on a freshly rebuilt graph.
        """
        children = self.children
        if not children:
            return self
        if self.op is ops.ASSUME:
            head = find(children[0])
            tail = tuple(sorted({find(c) for c in children[1:]}))
            fresh = (head,) + tail
            if fresh == children:
                return self
            return ENode(self.op, self.attrs, fresh)
        fresh = tuple(find(c) for c in children)
        if fresh == children:
            return self
        return ENode(self.op, self.attrs, fresh)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        if self.op is ops.VAR:
            return f"Var({self.attrs[0]}:{self.attrs[1]})"
        if self.op is ops.CONST:
            return f"Const({self.attrs[0]})"
        attrs = f"<{','.join(map(str, self.attrs))}>" if self.attrs else ""
        kids = ",".join(f"c{c}" for c in self.children)
        return f"{self.op.name}{attrs}({kids})"
