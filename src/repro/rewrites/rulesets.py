"""Curated rule sets for the optimizer's phases (see DESIGN.md).

The paper runs "a set of parameterized and generalized constraint-aware
rewrites at the word level" for a number of iterations.  We group the rules
so the driver (:mod:`repro.opt`) can schedule them the way Section V
describes: split & assume first, then constraint exploitation, then
narrowing.
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite
from repro.rewrites.arith import arith_rules
from repro.rewrites.assume import assume_rules
from repro.rewrites.casesplit import casesplit_rules
from repro.rewrites.condition import condition_rules
from repro.rewrites.mux import mux_cond_const_rule, mux_pull_rule, mux_rules
from repro.rewrites.range_rules import range_rules
from repro.rewrites.shift import shift_rules

__all__ = [
    "arith_rules",
    "shift_rules",
    "mux_rules",
    "assume_rules",
    "condition_rules",
    "range_rules",
    "casesplit_rules",
    "all_rules",
    "structural_ruleset",
    "assume_ruleset",
    "condition_ruleset",
    "narrowing_ruleset",
    "casesplit_ruleset",
    "RULESETS",
    "ruleset",
    "compose_rules",
]


def structural_ruleset() -> list[Rewrite]:
    """Domain-free word-level identities: arithmetic, shifts, muxes."""
    rules: list[Rewrite] = []
    rules += arith_rules()
    rules += shift_rules()
    rules += mux_rules()
    rules += [mux_pull_rule(), mux_cond_const_rule()]
    return rules


def assume_ruleset() -> list[Rewrite]:
    """Table I: ASSUME introduction, distribution, merging, mux pruning."""
    return assume_rules()


def condition_ruleset() -> list[Rewrite]:
    """Section IV-C condition rewriting (comparison re-association)."""
    return condition_rules()


def narrowing_ruleset() -> list[Rewrite]:
    """Range-driven narrowing: truncation removal, width reduction."""
    return range_rules()


def casesplit_ruleset(threshold: int = 1) -> list[Rewrite]:
    """Section V case splitting at the given threshold."""
    return casesplit_rules(threshold)


#: Named ruleset registry for phased schedules (CLI / Session job specs
#: reference rulesets by these names).  ``casesplit`` uses the default
#: threshold; use :func:`casesplit_ruleset` directly to parameterize it.
RULESETS: dict[str, object] = {
    "structural": structural_ruleset,
    "assume": assume_ruleset,
    "condition": condition_ruleset,
    "narrowing": narrowing_ruleset,
    "casesplit": casesplit_ruleset,
}


def ruleset(name: str) -> list[Rewrite]:
    """Look up one named ruleset (see :data:`RULESETS`)."""
    if name not in RULESETS:
        raise KeyError(f"unknown ruleset {name!r}; have {sorted(RULESETS)}")
    return RULESETS[name]()


#: Composition cache: (split_threshold, enable_assume, enable_condition) →
#: rule list.  Safe because :class:`Rewrite` objects are stateless (the
#: runner tracks once-rule firing per run, not on the rule), so one shared
#: rule object can serve any number of concurrent jobs — which is exactly
#: what the service daemon does, rebuilding nothing per submission.
_COMPOSE_CACHE: dict[tuple[int | None, bool, bool], tuple[Rewrite, ...]] = {}


def compose_rules(
    split_threshold: int | None = 1,
    enable_assume: bool = True,
    enable_condition: bool = True,
) -> list[Rewrite]:
    """Explicit composition of the optimizer's default schedule.

    This is the single-phase rule selection :class:`~repro.opt.optimizer.
    OptimizerConfig` runs (the ablation switches drop whole rulesets rather
    than filtering rules by name prefix); phased schedules compose the same
    rulesets across several ``Saturate`` stages instead.

    Compositions are memoized per parameter triple; callers get a fresh
    list each time (mutate freely) over shared, stateless rule objects.
    """
    key = (split_threshold, enable_assume, enable_condition)
    cached = _COMPOSE_CACHE.get(key)
    if cached is None:
        rules = structural_ruleset()
        if enable_assume:
            rules += assume_ruleset()
        if enable_condition:
            rules += condition_ruleset()
        rules += narrowing_ruleset()
        if split_threshold is not None:
            rules += casesplit_ruleset(split_threshold)
        cached = _COMPOSE_CACHE[key] = tuple(rules)
    return list(cached)


def all_rules(split_threshold: int | None = 1) -> list[Rewrite]:
    """Everything, for single-phase runs on small designs.

    ``split_threshold=None`` omits the case-split rule (ablation hook).
    """
    return compose_rules(split_threshold)
