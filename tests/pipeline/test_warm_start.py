"""Warm-start contract: persisted e-graphs seed later runs soundly.

* **exact resubmission** — re-running an unedited design from its own
  artifact extracts the *identical* cost as the cold run on every registry
  design (the artifact already consumed the schedule, so saturation is
  skipped, not replayed from a bigger seed);
* **edited resubmission** — an edited design re-interns into the persisted
  graph (``hit:…:delta``), re-saturates, and its outputs stay equivalent
  to the edited source;
* **degradation** — every incompatibility (missing/corrupt artifact,
  different schedule, different input ranges) is a *cold start with
  provenance*, bit-identical in outcome to never having warm-started.
"""

from __future__ import annotations

import pytest

from repro.designs import DESIGNS, get_design
from repro.pipeline import (
    Extract,
    Ingest,
    Job,
    Pipeline,
    SaveEGraph,
    Saturate,
    WarmStart,
    execute_job,
)
from repro.rewrites import compose_rules
from repro.rtl import module_to_ir
from repro.verify import check_equivalent

ITERS = 3
NODE_LIMIT = 8_000


def _cold(design, save_path=None, schedule=""):
    stages = [
        Ingest(source=design.verilog),
        Saturate(compose_rules(), iter_limit=ITERS, node_limit=NODE_LIMIT),
    ]
    if save_path is not None:
        stages.append(SaveEGraph(save_path, schedule=schedule))
    stages.append(Extract())
    return Pipeline(stages).run(input_ranges=design.input_ranges)


def _warm(design, artifact, schedule="", source=None, input_ranges=None):
    return Pipeline(
        [
            Ingest(source=source or design.verilog, seed_egraph=False),
            WarmStart(artifact, schedule=schedule),
            Saturate(compose_rules(), iter_limit=ITERS, node_limit=NODE_LIMIT),
            Extract(),
        ]
    ).run(
        input_ranges=design.input_ranges
        if input_ranges is None
        else input_ranges
    )


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_unedited_warm_start_extracts_identical_cost(name, tmp_path):
    design = get_design(name)
    artifact = tmp_path / f"{name}.egraph"
    cold = _cold(design, save_path=artifact, schedule="k")
    warm = _warm(design, artifact, schedule="k")

    status = warm.artifacts["warm_start"]
    assert status.startswith("hit:") and not status.endswith(":delta"), status
    # An exact hit consumes no fresh saturation: the artifact is the
    # schedule's own fixpoint.
    assert warm.reports[-1].stop_reason.value == "saturated"
    assert warm.reports[-1].iterations == []
    for output in cold.roots:
        assert (
            warm.optimized_costs[output].key == cold.optimized_costs[output].key
        ), f"warm {name}:{output} diverged from cold"


def test_edited_design_warm_starts_as_delta_and_stays_sound(tmp_path):
    design = get_design("lzc_example")
    artifact = tmp_path / "lzc_example.egraph"
    _cold(design, save_path=artifact, schedule="k")

    # Edit: expose a second output whose cone the artifact has never seen
    # (a genuinely new e-node, so the delta must re-saturate).
    edited = design.verilog.replace(
        "output [3:0] out", "output [3:0] out,\n  output [7:0] out2"
    ).replace("endmodule", "  assign out2 = x & y;\nendmodule")
    assert edited != design.verilog
    warm = _warm(design, artifact, schedule="k", source=edited)
    status = warm.artifacts["warm_start"]
    assert status.startswith("hit:") and status.endswith(":delta"), status
    # The delta re-saturates for real.
    assert warm.reports[-1].iterations, "delta run must saturate"

    cones = module_to_ir(edited)
    assert set(warm.extracted) == set(cones)
    for output, optimized in warm.extracted.items():
        verdict = check_equivalent(
            cones[output], optimized, design.input_ranges
        )
        assert verdict.ok, f"{output} differs at {verdict.counterexample}"


def test_empty_delta_edit_skips_saturation(tmp_path):
    """An edit whose cones re-intern without adding a single e-node (here:
    exposing an already-explored subexpression as a new output) has no
    delta to saturate — the warm run goes straight to extraction."""
    design = get_design("lzc_example")
    artifact = tmp_path / "lzc_example.egraph"
    cold = _cold(design, save_path=artifact, schedule="k")

    edited = design.verilog.replace(
        "output [3:0] out", "output [3:0] out,\n  output [8:0] out2"
    ).replace("endmodule", "  assign out2 = x + y;\nendmodule")
    warm = _warm(design, artifact, schedule="k", source=edited)
    status = warm.artifacts["warm_start"]
    assert status.startswith("hit:") and status.endswith(":delta"), status
    assert warm.reports[-1].stop_reason.value == "saturated"
    assert warm.reports[-1].iterations == []
    # The unchanged output extracts the cold run's exact cost; the new
    # output is sound against its edited cone.
    assert (
        warm.optimized_costs["out"].key == cold.optimized_costs["out"].key
    )
    cones = module_to_ir(edited)
    for output, optimized in warm.extracted.items():
        verdict = check_equivalent(
            cones[output], optimized, design.input_ranges
        )
        assert verdict.ok, f"{output} differs at {verdict.counterexample}"


class TestColdFallbacks:
    """Every incompatibility degrades to a cold run with provenance."""

    @pytest.fixture()
    def design(self):
        return get_design("lzc_example")

    def _assert_cold_matches(self, design, warm, reason):
        assert warm.artifacts["warm_start"] == f"cold:{reason}"
        cold = _cold(design)
        for output in cold.roots:
            assert (
                warm.optimized_costs[output].key
                == cold.optimized_costs[output].key
            )

    def test_missing_artifact(self, design, tmp_path):
        warm = _warm(design, tmp_path / "nope.egraph")
        self._assert_cold_matches(design, warm, "io")

    def test_schedule_mismatch(self, design, tmp_path):
        artifact = tmp_path / "a.egraph"
        _cold(design, save_path=artifact, schedule="old-schedule")
        warm = _warm(design, artifact, schedule="new-schedule")
        self._assert_cold_matches(design, warm, "schedule")

    def test_corrupt_artifact(self, design, tmp_path):
        artifact = tmp_path / "a.egraph"
        _cold(design, save_path=artifact)
        blob = artifact.read_bytes()
        cut = blob.index(b"\n") + 40  # keep the header, truncate the payload
        artifact.write_bytes(blob[:cut])
        warm = _warm(design, artifact)
        self._assert_cold_matches(design, warm, "payload")

    def test_input_range_mismatch_is_a_cold_start(self, design, tmp_path):
        from repro.intervals import IntervalSet

        artifact = tmp_path / "a.egraph"
        _cold(design, save_path=artifact)
        # Same design, different domain assumptions: the persisted analysis
        # baked the old ranges into every class, so reuse would be unsound.
        warm = _warm(
            design, artifact, input_ranges={"x": IntervalSet.of(0, 3)}
        )
        assert warm.artifacts["warm_start"] == "cold:input-ranges"


class TestJobIntegration:
    def test_job_save_then_warm_round_trip(self, tmp_path):
        artifact = tmp_path / "fam.egraph"
        cold = execute_job(
            Job(
                name="c",
                design="lzc_example",
                iter_limit=ITERS,
                node_limit=NODE_LIMIT,
                save_egraph=str(artifact),
            )
        )
        assert cold.status == "ok" and artifact.exists()
        assert cold.warm_start == ""
        warm = execute_job(
            Job(
                name="w",
                design="lzc_example",
                iter_limit=ITERS,
                node_limit=NODE_LIMIT,
                warm_start=str(artifact),
            )
        )
        assert warm.status == "ok"
        assert warm.warm_start.startswith("hit:")
        assert warm.optimized_area == cold.optimized_area
        assert warm.optimized_delay == cold.optimized_delay

    def test_warm_start_refuses_sharded_schedules(self):
        record = execute_job(
            Job(
                name="bad",
                design="stress_wide",
                shards=4,
                warm_start="whatever.egraph",
            )
        )
        assert record.status == "error"
        assert "monolithic" in record.error

    def test_edited_source_job_inherits_registry_ranges(self, tmp_path):
        design = get_design("lzc_example")
        artifact = tmp_path / "fam.egraph"
        execute_job(
            Job(
                name="c",
                design="lzc_example",
                iter_limit=ITERS,
                node_limit=NODE_LIMIT,
                save_egraph=str(artifact),
            )
        )
        record = execute_job(
            Job(
                name="w",
                design="lzc_example",
                source=design.verilog,  # same-label resubmission by source
                iter_limit=ITERS,
                node_limit=NODE_LIMIT,
                warm_start=str(artifact),
            )
        )
        assert record.status == "ok"
        # Ranges inherited from the registry design keep the artifact's
        # input-range check green: this is a warm hit, not cold:input-ranges.
        assert record.warm_start.startswith("hit:")
