"""Canonical finite unions of integer intervals (the abstract domain A).

An :class:`IntervalSet` is an immutable, sorted, pairwise-disjoint,
non-adjacent tuple of :class:`~repro.intervals.interval.Interval`.  It is the
e-class analysis data of the paper (Section III-B): a conservative
over-approximation of every non-``*`` evaluation of the expressions in an
e-class.

Instances are hash-consed: constructing a set whose canonical parts tuple was
seen before returns the *same* object, so the equality-saturation hot path
(which recomputes identical ranges millions of times) compares and hashes
mostly by identity.  The intern table is a bounded cache — clearing it is
always sound because ``__eq__`` stays structural.

All transfer functions are *sound*: for concrete values ``a in A`` and
``b in B``, ``op(a, b) in A.op(B)``.  The test-suite checks this exhaustively
on small sets and by randomized sampling (hypothesis) on large ones.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.intervals.bitops import max_and, max_or, max_xor, min_and, min_or, min_xor
from repro.intervals.interval import Interval

#: Widening cap: maximum number of disjoint intervals kept per set.  Beyond
#: this, the pairs separated by the smallest gaps are hulled together.  The
#: paper notes the domain "incurs additional computational complexity"; the
#: cap keeps the analysis linear in practice while remaining sound.
DEFAULT_MAX_INTERVALS = 12


def _add_bound(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def _canonicalize(parts: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort, merge overlapping/adjacent intervals, drop nothing."""
    items = sorted(
        parts,
        key=lambda iv: (iv.lo is not None, iv.lo if iv.lo is not None else 0),
    )
    merged: list[Interval] = []
    for item in items:
        if merged and merged[-1].overlaps_or_adjacent(item):
            merged[-1] = merged[-1].hull(item)
        else:
            merged.append(item)
    return tuple(merged)


def _coalesce(parts: tuple[Interval, ...], cap: int) -> tuple[Interval, ...]:
    """Hull together smallest-gap neighbours until at most ``cap`` remain."""
    items = list(parts)
    while len(items) > cap:
        best_index = 0
        best_gap: int | None = None
        for i in range(len(items) - 1):
            hi = items[i].hi
            lo = items[i + 1].lo
            if hi is None or lo is None:
                gap = None
            else:
                gap = lo - hi
            if gap is not None and (best_gap is None or gap < best_gap):
                best_gap = gap
                best_index = i
        items[best_index : best_index + 2] = [
            items[best_index].hull(items[best_index + 1])
        ]
    return tuple(items)


#: Intern table mapping canonical parts tuples to their unique instance.
_INTERN: dict[tuple[Interval, ...], "IntervalSet"] = {}
_INTERN_CAP = 1 << 16


class IntervalSet:
    """Immutable canonical union of integer intervals (hash-consed)."""

    __slots__ = ("parts", "_hash")

    parts: tuple[Interval, ...]

    def __new__(cls, parts: Iterable[Interval] = ()) -> "IntervalSet":
        parts = tuple(parts)
        cached = _INTERN.get(parts)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.parts = parts
        self._hash = hash(parts)
        if len(_INTERN) >= _INTERN_CAP:
            _INTERN.clear()
        _INTERN[parts] = self
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.parts == other.parts

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Unpickling must route through ``__new__`` *with* the parts so the
        # result is interned.  Pickle's default slots protocol calls
        # ``__new__(cls)`` with no arguments — which returns the interned
        # empty set — and then overwrites its slots in place, corrupting the
        # intern table for every later ``IntervalSet.empty()`` in the
        # receiving process.  (Shard fan-out pickles range contexts across
        # process boundaries, so this path is load-bearing.)
        return (IntervalSet, (self.parts,))

    # ----------------------------------------------------------- constructors
    @staticmethod
    def empty() -> "IntervalSet":
        """The empty set (an infeasible / dead e-class)."""
        return IntervalSet(())

    @staticmethod
    def top() -> "IntervalSet":
        """All of Z."""
        return IntervalSet((Interval(None, None),))

    @staticmethod
    def of(lo: int | None, hi: int | None) -> "IntervalSet":
        """Single interval ``[lo, hi]`` (``None`` bounds are infinite)."""
        return IntervalSet((Interval(lo, hi),))

    @staticmethod
    def point(value: int) -> "IntervalSet":
        """The singleton ``{value}``."""
        return IntervalSet((Interval(value, value),))

    @staticmethod
    def unsigned(width: int) -> "IntervalSet":
        """The full range of a ``width``-bit unsigned value."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if width == 0:
            return IntervalSet.point(0)
        return IntervalSet.of(0, (1 << width) - 1)

    @staticmethod
    def from_intervals(
        parts: Iterable[Interval], cap: int = DEFAULT_MAX_INTERVALS
    ) -> "IntervalSet":
        """Canonicalize an arbitrary collection of intervals."""
        return IntervalSet(_coalesce(_canonicalize(parts), cap))

    @staticmethod
    def from_values(values: Iterable[int]) -> "IntervalSet":
        """Exact set of the given concrete integers."""
        return IntervalSet.from_intervals(
            (Interval(v, v) for v in set(values)), cap=10**9
        )

    # ------------------------------------------------------------- predicates
    @property
    def is_empty(self) -> bool:
        return not self.parts

    @property
    def is_top(self) -> bool:
        return len(self.parts) == 1 and self.parts[0] == Interval(None, None)

    @property
    def bounded(self) -> bool:
        return all(p.bounded for p in self.parts)

    def as_point(self) -> int | None:
        """The single contained value, or ``None`` if not a singleton."""
        if len(self.parts) == 1 and self.parts[0].is_point:
            return self.parts[0].lo
        return None

    def min(self) -> int | None:
        """Least element (``None`` when empty or unbounded below)."""
        if not self.parts:
            return None
        return self.parts[0].lo

    def max(self) -> int | None:
        """Greatest element (``None`` when empty or unbounded above)."""
        if not self.parts:
            return None
        return self.parts[-1].hi

    def contains(self, value: int) -> bool:
        return any(p.contains(value) for p in self.parts)

    def __contains__(self, value: int) -> bool:
        return self.contains(value)

    def issubset(self, other: "IntervalSet") -> bool:
        """True when every element of self lies in ``other``."""
        return all(
            any(q.contains_interval(p) for q in other.parts) for p in self.parts
        )

    def size(self) -> int | None:
        """Total number of integers, or ``None`` when infinite."""
        total = 0
        for p in self.parts:
            s = p.size()
            if s is None:
                return None
            total += s
        return total

    def iter_values(self, limit: int = 1 << 20) -> Iterator[int]:
        """Iterate all members (bounded sets only; guarded by ``limit``)."""
        count = self.size()
        if count is None or count > limit:
            raise ValueError(f"set too large to enumerate: {self}")
        for p in self.parts:
            yield from range(p.lo, p.hi + 1)

    # ---------------------------------------------------------------- set ops
    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet.from_intervals(self.parts + other.parts)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        # Identity/TOP fast paths: interning makes `is` checks meaningful and
        # the rebuild hot loop intersects with TOP and with itself constantly.
        if self is other:
            return self
        if self.is_top or other.is_empty:
            return other
        if other.is_top or self.is_empty:
            return self
        pieces = []
        for p in self.parts:
            for q in other.parts:
                both = p.intersect(q)
                if both is not None:
                    pieces.append(both)
        return IntervalSet.from_intervals(pieces)

    def remove_point(self, value: int) -> "IntervalSet":
        """Set difference with the singleton ``{value}`` (the != constraint)."""
        pieces: list[Interval] = []
        for p in self.parts:
            if not p.contains(value):
                pieces.append(p)
                continue
            if p.lo is None or p.lo < value:
                pieces.append(Interval(p.lo, value - 1))
            if p.hi is None or p.hi > value:
                pieces.append(Interval(value + 1, p.hi))
        return IntervalSet.from_intervals(pieces)

    def hull(self) -> "IntervalSet":
        """Convex hull (single interval)."""
        if not self.parts:
            return self
        return IntervalSet.of(self.min(), self.max())

    # ------------------------------------------------------------- arithmetic
    def _pairwise(
        self,
        other: "IntervalSet",
        combine: Callable[[Interval, Interval], Iterable[Interval]],
    ) -> "IntervalSet":
        pieces: list[Interval] = []
        for p in self.parts:
            for q in other.parts:
                pieces.extend(combine(p, q))
        return IntervalSet.from_intervals(pieces)

    def add(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise sum."""

        def combine(p: Interval, q: Interval) -> list[Interval]:
            return [Interval(_add_bound(p.lo, q.lo), _add_bound(p.hi, q.hi))]

        return self._pairwise(other, combine)

    def neg(self) -> "IntervalSet":
        """Pointwise negation."""
        pieces = [
            Interval(
                None if p.hi is None else -p.hi,
                None if p.lo is None else -p.lo,
            )
            for p in self.parts
        ]
        return IntervalSet.from_intervals(pieces)

    def sub(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise difference."""
        return self.add(other.neg())

    def mul(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise product (corner evaluation; TOP if unbounded)."""

        def combine(p: Interval, q: Interval) -> list[Interval]:
            if not (p.bounded and q.bounded):
                return [Interval(None, None)]
            corners = [p.lo * q.lo, p.lo * q.hi, p.hi * q.lo, p.hi * q.hi]
            return [Interval(min(corners), max(corners))]

        return self._pairwise(other, combine)

    @staticmethod
    def _split_at_zero(p: Interval) -> list[Interval]:
        """Split an interval into its negative and non-negative pieces."""
        if p.lo is not None and p.lo >= 0:
            return [p]
        if p.hi is not None and p.hi < 0:
            return [p]
        return [Interval(p.lo, -1), Interval(0, p.hi)]

    def shl(self, amount: "IntervalSet") -> "IntervalSet":
        """Pointwise ``x << s`` (``x * 2**s``); negative shifts excluded."""
        amount = amount.intersect(IntervalSet.of(0, None))

        def combine(p: Interval, q: Interval) -> list[Interval]:
            if not p.bounded or q.hi is None:
                return [Interval(None, None)]
            out = []
            for piece in self._split_at_zero(p):
                corners = [
                    piece.lo << q.lo,
                    piece.lo << q.hi,
                    piece.hi << q.lo,
                    piece.hi << q.hi,
                ]
                out.append(Interval(min(corners), max(corners)))
            return out

        if amount.is_empty or self.is_empty:
            return IntervalSet.empty()
        return self._pairwise(amount, combine)

    def shr(self, amount: "IntervalSet") -> "IntervalSet":
        """Pointwise arithmetic/floor ``x >> s``; negative shifts excluded."""
        amount = amount.intersect(IntervalSet.of(0, None))

        def combine(p: Interval, q: Interval) -> list[Interval]:
            if not p.bounded:
                return [Interval(None, None)]
            hi_s = q.hi
            if hi_s is None:
                # x >> inf tends to 0 (x >= 0) or -1 (x < 0); include both
                # limits alongside the smallest-shift corners.
                hi_s = max(abs(p.lo), abs(p.hi)).bit_length() + 1
            out = []
            for piece in self._split_at_zero(p):
                corners = [
                    piece.lo >> q.lo,
                    piece.lo >> hi_s,
                    piece.hi >> q.lo,
                    piece.hi >> hi_s,
                ]
                out.append(Interval(min(corners), max(corners)))
            return out

        if amount.is_empty or self.is_empty:
            return IntervalSet.empty()
        return self._pairwise(amount, combine)

    def abs(self) -> "IntervalSet":
        """Pointwise absolute value."""
        pieces = []
        for p in self.parts:
            for piece in self._split_at_zero(p):
                if piece.hi is not None and piece.hi < 0:
                    lo = None if piece.hi is None else -piece.hi
                    hi = None if piece.lo is None else -piece.lo
                    pieces.append(Interval(lo, hi))
                else:
                    pieces.append(piece)
        return IntervalSet.from_intervals(pieces)

    def min_with(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise ``min(a, b)``."""

        def combine(p: Interval, q: Interval) -> list[Interval]:
            if p.lo is None or q.lo is None:
                lo = None
            else:
                lo = min(p.lo, q.lo)
            if p.hi is None:
                hi = q.hi
            elif q.hi is None:
                hi = p.hi
            else:
                hi = min(p.hi, q.hi)
            return [Interval(lo, hi)]

        return self._pairwise(other, combine)

    def max_with(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise ``max(a, b)``."""
        return self.neg().min_with(other.neg()).neg()

    def trunc_mod(self, modulus: int) -> "IntervalSet":
        """Conservative ``x mod p`` per eq. (5) of the paper.

        ``[l, u] mod p`` is ``[l mod p, u mod p]`` when ``floor(l/p) ==
        floor(u/p)`` (the interval lies within one modular block) and the full
        ``[0, p-1]`` otherwise.
        """
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        pieces = []
        for p in self.parts:
            if not p.bounded or (p.lo // modulus) != (p.hi // modulus):
                pieces.append(Interval(0, modulus - 1))
            else:
                pieces.append(Interval(p.lo % modulus, p.hi % modulus))
        return IntervalSet.from_intervals(pieces)

    # ----------------------------------------------------------------- bitwise
    def _nonneg_box(self) -> tuple[int, int] | None:
        """Bounded non-negative hull ``(lo, hi)`` or ``None``."""
        lo, hi = self.min(), self.max()
        if lo is None or hi is None or lo < 0:
            return None
        return lo, hi

    def _bitwise(
        self,
        other: "IntervalSet",
        lo_fn: Callable[[int, int, int, int], int],
        hi_fn: Callable[[int, int, int, int], int],
    ) -> "IntervalSet":
        if self.is_empty or other.is_empty:
            return IntervalSet.empty()
        a = self._nonneg_box()
        b = other._nonneg_box()
        if a is None or b is None:
            return IntervalSet.top()

        def combine(p: Interval, q: Interval) -> list[Interval]:
            return [
                Interval(lo_fn(p.lo, p.hi, q.lo, q.hi), hi_fn(p.lo, p.hi, q.lo, q.hi))
            ]

        return self._pairwise(other, combine)

    def bit_and(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise ``a & b`` (non-negative operands; else TOP)."""
        return self._bitwise(other, min_and, max_and)

    def bit_or(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise ``a | b`` (non-negative operands; else TOP)."""
        return self._bitwise(other, min_or, max_or)

    def bit_xor(self, other: "IntervalSet") -> "IntervalSet":
        """Pointwise ``a ^ b`` (non-negative operands; else TOP)."""
        return self._bitwise(other, min_xor, max_xor)

    def bit_not(self, width: int) -> "IntervalSet":
        """Pointwise ``(2**width - 1) - a`` — exact (affine)."""
        mask = (1 << width) - 1
        return IntervalSet.point(mask).sub(self)

    def lzc(self, width: int) -> "IntervalSet":
        """Leading-zero count of a ``width``-bit value.

        Values outside ``[0, 2**width)`` evaluate to ``*`` concretely and are
        excluded.  On an interval ``[l, u]`` the count ranges contiguously
        over ``[width - bit_length(u), width - bit_length(l)]``.
        """
        clipped = self.intersect(IntervalSet.unsigned(width))
        pieces = [
            Interval(width - p.hi.bit_length(), width - p.lo.bit_length())
            for p in clipped.parts
        ]
        return IntervalSet.from_intervals(pieces)

    # -------------------------------------------------------------- comparisons
    def _compare(
        self, other: "IntervalSet", definitely: Callable[[], bool | None]
    ) -> "IntervalSet":
        if self.is_empty or other.is_empty:
            return IntervalSet.empty()
        verdict = definitely()
        if verdict is True:
            return IntervalSet.point(1)
        if verdict is False:
            return IntervalSet.point(0)
        return IntervalSet.of(0, 1)

    def cmp_lt(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a < b`` as a subset of {0, 1}."""

        def verdict() -> bool | None:
            if _hi_lt(self.max(), other.min()):
                return True
            if _lo_ge(self.min(), other.max()):
                return False
            return None

        return self._compare(other, verdict)

    def cmp_le(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a <= b`` as a subset of {0, 1}."""
        return other.cmp_lt(self).logical_not()

    def cmp_gt(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a > b`` as a subset of {0, 1}."""
        return other.cmp_lt(self)

    def cmp_ge(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a >= b`` as a subset of {0, 1}."""
        return self.cmp_lt(other).logical_not()

    def cmp_eq(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a == b`` as a subset of {0, 1}."""

        def verdict() -> bool | None:
            a, b = self.as_point(), other.as_point()
            if a is not None and a == b:
                return True
            if self.intersect(other).is_empty:
                return False
            return None

        return self._compare(other, verdict)

    def cmp_ne(self, other: "IntervalSet") -> "IntervalSet":
        """Abstract ``a != b`` as a subset of {0, 1}."""
        return self.cmp_eq(other).logical_not()

    def logical_not(self) -> "IntervalSet":
        """Abstract C-style ``!a`` (1 iff a == 0) as a subset of {0, 1}."""
        if self.is_empty:
            return self
        if self.as_point() == 0:
            return IntervalSet.point(1)
        if not self.contains(0):
            return IntervalSet.point(0)
        return IntervalSet.of(0, 1)

    def truthiness(self) -> bool | None:
        """True / False when the set is definitely nonzero / zero, else None."""
        if self.as_point() == 0:
            return False
        if not self.is_empty and not self.contains(0):
            return True
        return None

    # ------------------------------------------------------------------ widths
    def unsigned_width(self) -> int | None:
        """Minimum unsigned bitwidth holding every member, or ``None``."""
        lo, hi = self.min(), self.max()
        if lo is None or hi is None or lo < 0:
            return None
        return max(hi.bit_length(), 1)

    def signed_width(self) -> int | None:
        """Minimum two's-complement bitwidth holding every member."""
        lo, hi = self.min(), self.max()
        if lo is None or hi is None:
            return None
        if lo >= 0:
            return max(hi.bit_length(), 1) + 1
        return max(hi.bit_length() + 1, (-lo - 1).bit_length() + 1, 1)

    def storage_width(self) -> int | None:
        """Bits needed in hardware: unsigned if possible, else signed."""
        width = self.unsigned_width()
        if width is not None:
            return width
        return self.signed_width()

    def __repr__(self) -> str:
        if not self.parts:
            return "{}"
        return " u ".join(repr(p) for p in self.parts)


def _hi_lt(a: int | None, b: int | None) -> bool:
    """max bound ``a`` strictly below min bound ``b`` (None = infinite)."""
    return a is not None and b is not None and a < b


def _lo_ge(a: int | None, b: int | None) -> bool:
    """min bound ``a`` at or above max bound ``b`` (None = infinite)."""
    return a is not None and b is not None and a >= b
