"""Property-based soundness tests for every IntervalSet transfer function.

The defining property of the abstract domain: for concrete members
``x in A`` and ``y in B``, ``op(x, y) in A.op(B)``.  Hypothesis drives the
operand sets and the sampled members.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import IntervalSet


@st.composite
def iset_and_member(draw, lo=-200, hi=200):
    """A bounded interval set together with one of its members."""
    n = draw(st.integers(1, 3))
    pieces = []
    for _ in range(n):
        a = draw(st.integers(lo, hi))
        b = draw(st.integers(lo, hi))
        pieces.append((min(a, b), max(a, b)))
    iset = IntervalSet.empty()
    for a, b in pieces:
        iset = iset.union(IntervalSet.of(a, b))
    index = draw(st.integers(0, len(iset.parts) - 1))
    piece = iset.parts[index]
    member = draw(st.integers(piece.lo, piece.hi))
    return iset, member


@given(iset_and_member(), iset_and_member())
def test_add_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert (x + y) in a.add(b)


@given(iset_and_member(), iset_and_member())
def test_sub_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert (x - y) in a.sub(b)


@given(iset_and_member(), iset_and_member())
def test_mul_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert (x * y) in a.mul(b)


@given(iset_and_member())
def test_neg_abs_sound(ab):
    a, x = ab
    assert (-x) in a.neg()
    assert abs(x) in a.abs()


@given(iset_and_member(), iset_and_member(lo=0, hi=12))
def test_shifts_sound(ab, cd):
    (a, x), (s, k) = ab, cd
    assert (x << k) in a.shl(s)
    assert (x >> k) in a.shr(s)


@given(iset_and_member(), iset_and_member(), st.integers(1, 64))
def test_mod_sound(ab, cd, p):
    (a, x), (_, _) = ab, cd
    assert (x % p) in a.trunc_mod(p)


@given(iset_and_member(lo=0, hi=511), st.integers(9, 12))
def test_lzc_sound(ab, width):
    a, x = ab
    if x < (1 << width):
        assert (width - x.bit_length()) in a.lzc(width)


@given(iset_and_member(lo=0, hi=255), iset_and_member(lo=0, hi=255))
def test_bitwise_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert (x & y) in a.bit_and(b)
    assert (x | y) in a.bit_or(b)
    assert (x ^ y) in a.bit_xor(b)


@given(iset_and_member(lo=0, hi=255), st.integers(8, 10))
def test_bitnot_sound(ab, width):
    a, x = ab
    assert (((1 << width) - 1) - x) in a.bit_not(width)


@given(iset_and_member(), iset_and_member())
def test_minmax_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert min(x, y) in a.min_with(b)
    assert max(x, y) in a.max_with(b)


@given(iset_and_member(), iset_and_member())
def test_comparisons_sound(ab, cd):
    (a, x), (b, y) = ab, cd
    assert int(x < y) in a.cmp_lt(b)
    assert int(x <= y) in a.cmp_le(b)
    assert int(x > y) in a.cmp_gt(b)
    assert int(x >= y) in a.cmp_ge(b)
    assert int(x == y) in a.cmp_eq(b)
    assert int(x != y) in a.cmp_ne(b)


@given(iset_and_member(), iset_and_member())
def test_union_intersect_membership(ab, cd):
    (a, x), (b, y) = ab, cd
    assert x in a.union(b)
    assert y in a.union(b)
    both = a.intersect(b)
    if x in b:
        assert x in both


@given(iset_and_member())
def test_canonical_no_overlap_no_adjacency(ab):
    a, _ = ab
    for left, right in zip(a.parts, a.parts[1:], strict=False):
        assert left.hi + 1 < right.lo, f"non-canonical: {a}"


@settings(max_examples=30)
@given(iset_and_member(), iset_and_member())
def test_width_covers_members(ab, cd):
    (a, x), _ = ab, cd
    width = a.storage_width()
    assert width is not None
    if a.min() >= 0:
        assert x < (1 << width)
    else:
        assert -(1 << (width - 1)) <= x < (1 << (width - 1))
