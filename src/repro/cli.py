"""Command-line interface: ``python -m repro <file.v> [options]``.

Optimizes every output of a Verilog module and writes the optimized module
to stdout (or ``-o``), with a cost/equivalence report on stderr.  Input
range constraints use ``name=lo:hi`` syntax::

    python -m repro design.v --range x=128:255 --iters 8 -o out.v
"""

from __future__ import annotations

import argparse
import sys

from repro import DatapathOptimizer, OptimizerConfig
from repro.intervals import IntervalSet


def parse_range(text: str) -> tuple[str, IntervalSet]:
    """Parse ``name=lo:hi`` into an input constraint."""
    try:
        name, span = text.split("=", 1)
        lo, hi = span.split(":", 1)
        return name.strip(), IntervalSet.of(int(lo), int(hi))
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"expected name=lo:hi, got {text!r}"
        ) from err


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint-aware datapath optimization using e-graphs "
        "(Coward et al., DAC 2023).",
    )
    parser.add_argument("source", help="Verilog file (combinational subset)")
    parser.add_argument("-o", "--output", help="write optimized Verilog here")
    parser.add_argument(
        "--range", dest="ranges", type=parse_range, action="append", default=[],
        metavar="NAME=LO:HI", help="input domain constraint (repeatable)",
    )
    parser.add_argument("--iters", type=int, default=8, help="saturation iterations")
    parser.add_argument("--nodes", type=int, default=30_000, help="e-graph node limit")
    parser.add_argument("--no-verify", action="store_true", help="skip equivalence check")
    parser.add_argument("--no-split", action="store_true", help="disable case splitting")
    parser.add_argument(
        "--module-name", default="optimized", help="name of the emitted module"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.source) as handle:
        source = handle.read()

    config = OptimizerConfig(
        iter_limit=args.iters,
        node_limit=args.nodes,
        verify=not args.no_verify,
        split_threshold=None if args.no_split else 1,
    )
    tool = DatapathOptimizer(dict(args.ranges), config)
    module = tool.optimize_verilog(source)

    for name, result in module.outputs.items():
        before, after = result.original_cost, result.optimized_cost
        verdict = result.equivalence if result.equivalence else "not checked"
        print(
            f"{name}: delay {before.delay:.1f} -> {after.delay:.1f}, "
            f"area {before.area:.1f} -> {after.area:.1f}  [{verdict}]",
            file=sys.stderr,
        )

    text = module.emit_verilog(args.module_name)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
