"""Cost-directed extraction of the best design from a saturated e-graph.

This is egg's standard bottom-up extraction (Section IV-D of the paper): a
fixpoint computes the cheapest cost achievable for every e-class, then the
best expression is rebuilt top-down.

``ASSUME`` nodes are *wires*: the paper treats them "as assignment statements
in the implementation phase", so extraction costs an ASSUME exactly its
guarded child and (by default) strips the wrapper from the extracted
expression.  Constraint children never contribute hardware.

Cost functions are pluggable; the delay/area model of the paper lives in
:mod:`repro.synth.cost` and plugs in here.

Extraction is *anytime*: the fixpoint is a worklist whose intermediate
``_best`` table is always a sound (if not yet optimal) choice per costed
class, so a deadline (an absolute instant on an injectable clock — the same
pattern as :class:`~repro.egraph.runner.Runner`) can cut the refinement
short and the extractor hands back its best-so-far checkpoint.  The loop
polls the clock once per worklist step, so an expiring budget is overshot
by at most one step.
"""

from __future__ import annotations

import math
import time
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.ir import ops
from repro.ir.expr import Expr


class CostFunction:
    """Interface: assign a totally ordered cost to choosing an e-node."""

    def enode_cost(
        self, egraph: EGraph, class_id: int, enode: ENode, child_costs: list
    ) -> Any:
        """Cost of ``enode`` given the best costs of its children."""
        raise NotImplementedError


class AstSizeCost(CostFunction):
    """Number of operators in the extracted tree (egg's ``AstSize``)."""

    def enode_cost(self, egraph, class_id, enode, child_costs):
        return 1 + sum(child_costs)


class AstDepthCost(CostFunction):
    """Height of the extracted tree (egg's ``AstDepth``)."""

    def enode_cost(self, egraph, class_id, enode, child_costs):
        return 1 + max(child_costs, default=0)


@dataclass
class ExtractReport:
    """Outcome of one extraction stage (the anytime contract's receipt).

    ``status`` is ``"complete"`` when the cost fixpoint drained its worklist
    and ``"deadline"`` when the budget cut it short; ``roots`` records, per
    output, whether the best-so-far checkpoint was used (``"extracted"``) or
    extraction never costed the root and the behavioural tree was returned
    unchanged (``"fallback"``).
    """

    status: str  # "complete" | "deadline"
    total_time: float = 0.0
    #: Worklist steps the fixpoint executed (the anytime loop's granularity).
    steps: int = 0
    #: Per-output outcome: name -> "extracted" | "fallback".
    roots: dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "total_time_s": round(self.total_time, 6),
            "steps": self.steps,
            "roots": dict(self.roots),
        }


class Extractor:
    """Compute best costs for every class and rebuild best expressions.

    ``deadline`` is an absolute instant on ``clock`` (``time.monotonic`` by
    default, injectable for deterministic tests).  When it passes, the cost
    fixpoint stops within one worklist step and :attr:`complete` turns
    ``False``; the costs computed so far remain a sound checkpoint — any
    class already costed extracts to a valid (possibly sub-optimal) tree,
    and :meth:`try_expr_of` reports the rest as unextractable instead of
    raising.
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_fn: CostFunction,
        strip_assumes: bool = True,
        deadline: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.egraph = egraph
        self.cost_fn = cost_fn
        self.strip_assumes = strip_assumes
        self.deadline = math.inf if deadline is None else deadline
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        #: Worklist steps executed by the fixpoint.
        self.steps = 0
        #: False when the deadline cut the fixpoint short.
        self.complete = True
        self._best: dict[int, tuple[Any, ENode]] = {}
        self._memo: dict[int, Expr] = {}
        if hasattr(egraph, "core") and hasattr(cost_fn, "own_cost"):
            self._run_fixpoint_core()
        else:
            self._run_fixpoint()

    # --------------------------------------------------------------- fixpoint
    def _candidates(self, class_id: int) -> Iterable[ENode]:
        return self.egraph[class_id].nodes

    def _enode_cost(self, class_id: int, enode: ENode) -> Any:
        """Cost of one e-node, or None when some child is still uncosted."""
        find = self.egraph.find
        if enode.op is ops.ASSUME:
            entry = self._best.get(find(enode.children[0]))
            return None if entry is None else entry[0]
        child_costs = []
        for child in enode.children:
            entry = self._best.get(find(child))
            if entry is None:
                return None
            child_costs.append(entry[0])
        return self.cost_fn.enode_cost(self.egraph, class_id, enode, child_costs)

    def _run_fixpoint(self) -> None:
        """Parent-driven worklist to the best-cost fixpoint.

        Every class is visited once bottom-up (creation order approximates a
        topological order), and a class is revisited only when one of its
        children improved — instead of whole-graph sweeps repeated until
        quiescence.
        """
        find = self.egraph.find
        clock = self.clock
        bounded = not math.isinf(self.deadline)
        pending: deque[int] = deque()
        queued: set[int] = set()
        for eclass in self.egraph.classes():
            pending.append(eclass.id)
            queued.add(eclass.id)
        while pending:
            # Anytime poll: one read per step keeps the overshoot at one
            # worklist step, and costs nothing when the run is ungoverned.
            if bounded and clock() > self.deadline:
                self.complete = False
                break
            self.steps += 1
            class_id = pending.popleft()
            queued.discard(class_id)
            root = find(class_id)
            eclass = self.egraph[root]
            current = self._best.get(root)
            improved = False
            for enode in eclass.nodes:
                cost = self._enode_cost(root, enode)
                if cost is None:
                    continue
                if current is None or cost < current[0]:
                    current = (cost, enode)
                    improved = True
            if not improved:
                continue
            self._best[root] = current
            for pid in eclass.parents.values():
                parent = find(pid)
                if parent not in queued:
                    pending.append(parent)
                    queued.add(parent)

    def _run_fixpoint_core(self) -> None:
        """Flat-core fixpoint for decomposable delay/area cost functions.

        Same worklist as :meth:`_run_fixpoint`, but over the core's int
        arrays: candidates are nids iterated straight from the member sets
        (no :class:`ENode` views), each node's *own* (delay, area) is cached
        by nid, and the combine — ``delay = own + max(children)``,
        ``area = own + sum(children)``, ASSUME = its guarded child — runs on
        plain floats, with comparison keys built by ``cost_fn.key`` and full
        cost objects materialized only when a class's best improves (so the
        anytime ``_best`` checkpoint stays identical to the generic path's).
        """
        core = self.egraph.core
        cost_fn = self.cost_fn
        own_cost = cost_fn.own_cost
        key_fn = cost_fn.key
        from_parts = cost_fn.cost_from_parts
        clock = self.clock
        bounded = not math.isinf(self.deadline)
        find = core.uf.find
        node_first = core.node_first
        node_nkids = core.node_nkids
        node_alive = core.node_alive
        node_class = core.node_class
        node_op = core.node_op
        kids_buf = core.kids
        class_nodes = core.class_nodes
        class_parents = core.class_parents
        node_enode = core.node_enode
        assume_id = core.op_ids.get(ops.ASSUME, -1)

        #: root -> (key, delay, area); mirrors ``_best`` without objects.
        fast: dict[int, tuple] = {}
        #: Own (delay, area) of each node (child-independent), as flat
        #: columns with a NaN not-yet-computed sentinel — a dict of tuples
        #: here is live exactly when the graph peaks, and would put the
        #: flat path's peak bytes above the object engine's.
        nan = math.nan
        own_delay = array("d", [nan]) * len(node_op)
        own_area = array("d", [nan]) * len(node_op)
        pending: deque[int] = deque()
        queued: set[int] = set()
        for class_id in core.class_ids():
            pending.append(class_id)
            queued.add(class_id)
        while pending:
            if bounded and clock() > self.deadline:
                self.complete = False
                break
            self.steps += 1
            root = find(pending.popleft())
            queued.discard(root)
            current = fast.get(root)
            best_nid = -1
            for nid in class_nodes[root]:
                first = node_first[nid]
                if node_op[nid] == assume_id:
                    entry = fast.get(find(kids_buf[first]))
                    if entry is None:
                        continue
                    key, delay, area = entry
                else:
                    delay = 0.0
                    area = 0.0
                    for i in range(first, first + node_nkids[nid]):
                        entry = fast.get(find(kids_buf[i]))
                        if entry is None:
                            break
                        if entry[1] > delay:
                            delay = entry[1]
                        area += entry[2]
                    else:
                        d = own_delay[nid]
                        if d != d:  # NaN: not computed yet
                            parts = own_cost(self.egraph, root, node_enode(nid))
                            own_delay[nid] = d = parts[0]
                            own_area[nid] = parts[1]
                        delay += d
                        area += own_area[nid]
                        key = key_fn(delay, area)
                        if current is None or key < current[0]:
                            current = (key, delay, area)
                            best_nid = nid
                    continue
                if current is None or key < current[0]:
                    current = (key, delay, area)
                    best_nid = nid
            if best_nid < 0:
                continue
            fast[root] = current
            self._best[root] = (
                from_parts(current[1], current[2]),
                node_enode(best_nid),
            )
            for pid in class_parents[root]:
                if not node_alive[pid]:
                    continue
                parent = node_class[pid]
                if parent not in queued:
                    pending.append(parent)
                    queued.add(parent)

    # ---------------------------------------------------------------- queries
    def selection(self) -> dict[int, ENode]:
        """Best-so-far e-node choice per costed class (a copy).

        The greedy fixpoint's solution as a flat class -> e-node map: the
        warm-start incumbent the ILP extraction objective
        (:mod:`repro.solve`) seeds its branch-and-bound with.  Chains of
        zero-cost wires can make the raw map cyclic (the same zero-progress
        cycles :meth:`expr_of` path-guards around), so consumers needing a
        guaranteed-acyclic selection repair it through
        :func:`repro.solve.ilp.feasible_selection`.
        """
        return {cid: entry[1] for cid, entry in self._best.items()}

    def has_cost(self, class_id: int) -> bool:
        """Whether the (possibly truncated) fixpoint costed this class."""
        return self.egraph.find(class_id) in self._best

    def try_expr_of(self, class_id: int) -> Expr | None:
        """Best-so-far expression for the class, or ``None``.

        The anytime entry point: a deadline-truncated fixpoint may have left
        this class uncosted (or costed only through a cycle with no acyclic
        alternative yet) — both come back as ``None`` so a governed caller
        can fall back to its own checkpoint instead of handling exceptions.
        """
        if not self.has_cost(class_id):
            return None
        try:
            return self.expr_of(class_id)
        except (KeyError, _CycleError):
            return None

    def cost_of(self, class_id: int) -> Any:
        """Best cost for the class (raises if unextractable)."""
        entry = self._best.get(self.egraph.find(class_id))
        if entry is None:
            raise KeyError(f"class {class_id} has no extractable expression")
        return entry[0]

    def best_enode(self, class_id: int) -> ENode:
        """The e-node realizing the best cost."""
        entry = self._best.get(self.egraph.find(class_id))
        if entry is None:
            raise KeyError(f"class {class_id} has no extractable expression")
        return entry[1]

    def expr_of(self, class_id: int) -> Expr:
        """Rebuild the cheapest expression for the class.

        A path guard tolerates zero-progress cycles (e.g. chains of ASSUME
        wires): when the best e-node would revisit a class already on the
        current path, the next-cheapest e-node is used instead.
        """
        return self._build(self.egraph.find(class_id), frozenset())

    def _build(self, class_id: int, path: frozenset[int]) -> Expr:
        find = self.egraph.find
        class_id = find(class_id)
        if class_id in self._memo:
            return self._memo[class_id]
        if class_id in path:
            raise _CycleError(class_id)
        path = path | {class_id}

        ranked = []
        for enode in self._candidates(class_id):
            cost = self._enode_cost(class_id, enode)
            if cost is not None:
                ranked.append((cost, repr(enode), enode))
        ranked.sort(key=lambda t: (t[0], t[1]))
        if not ranked:
            raise KeyError(f"class {class_id} has no extractable expression")

        last_error: _CycleError | None = None
        for _cost, _tag, enode in ranked:
            try:
                expr = self._build_enode(enode, path)
            except _CycleError as err:
                last_error = err
                continue
            self._memo[class_id] = expr
            return expr
        raise last_error if last_error else KeyError(class_id)

    def _build_enode(self, enode: ENode, path: frozenset[int]) -> Expr:
        if enode.op is ops.ASSUME:
            guarded = self._build(enode.children[0], path)
            if self.strip_assumes:
                return guarded
            constraints = tuple(
                self._build(c, path) for c in enode.children[1:]
            )
            return Expr(ops.ASSUME, (), (guarded,) + constraints)
        kids = tuple(self._build(c, path) for c in enode.children)
        return Expr(enode.op, enode.attrs, kids)


class _CycleError(Exception):
    """Internal: the chosen e-node closes a cycle on the current path."""

    def __init__(self, class_id: int) -> None:
        super().__init__(f"extraction cycle through class {class_id}")
        self.class_id = class_id
