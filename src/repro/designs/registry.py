"""Registry of the paper's benchmark designs (drives Table III / benches)."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.designs.conversions import (
    float_to_unorm_input_ranges,
    float_to_unorm_verilog,
    unorm_to_float_verilog,
)
from repro.designs.fp_sub import fp_sub_behavioural_verilog, fp_sub_input_ranges
from repro.designs.interpolation import interpolation_verilog
from repro.designs.lzc_example import lzc_example_input_ranges, lzc_example_verilog
from repro.designs.stress import stress_wide_input_ranges, stress_wide_verilog
from repro.intervals import IntervalSet


@dataclass
class Design:
    """One benchmark: Verilog source, primary output, domain constraints."""

    name: str
    verilog: str
    output: str
    input_ranges: dict[str, IntervalSet] = field(default_factory=dict)
    #: tool iterations used by the paper for this class of design.
    iterations: int = 6
    node_limit: int = 20_000
    description: str = ""


def _designs() -> dict[str, Design]:
    return {
        "fp_sub": Design(
            name="fp_sub",
            verilog=fp_sub_behavioural_verilog(),
            output="out",
            input_ranges=fp_sub_input_ranges(),
            iterations=11,
            node_limit=30_000,
            description="half-precision FP subtract mantissa datapath (Fig. 2a)",
        ),
        "float_to_unorm": Design(
            name="float_to_unorm",
            verilog=float_to_unorm_verilog(),
            output="out",
            input_ranges=float_to_unorm_input_ranges(),
            description="half float (<=1) to unorm11, round down (DirectX)",
        ),
        "interpolation": Design(
            name="interpolation",
            verilog=interpolation_verilog(),
            output="out",
            description="four-pixel bilinear interpolation with clamping",
        ),
        "unorm_to_float": Design(
            name="unorm_to_float",
            verilog=unorm_to_float_verilog(),
            output="out",
            description="unorm11 to half-float fields, zero special-cased",
        ),
        "lzc_example": Design(
            name="lzc_example",
            verilog=lzc_example_verilog(),
            output="out",
            input_ranges=lzc_example_input_ranges(),
            description="Figure 1: LZC(x+y) under x >= 128",
        ),
        "stress_wide": Design(
            name="stress_wide",
            verilog=stress_wide_verilog(),
            output="out0",
            input_ranges=stress_wide_input_ranges(),
            iterations=4,
            # Deliberately tight: eight cones fit four iterations in one
            # shared e-graph under this budget only because the flat core
            # dedups transient rewrite products eagerly (the old per-object
            # engine stopped on the node limit mid-apply), while any single
            # cone fits comfortably — the sharding and engine-throughput
            # workload (see repro.pipeline.shard and BENCH_perf.json's
            # stress_wide series).
            node_limit=8_000,
            description="8-lane wide multi-output stress design (sharding)",
        ),
    }


DESIGNS: dict[str, Design] = _designs()


def get_design(name: str) -> Design:
    """Look up a benchmark design by name."""
    if name not in DESIGNS:
        raise KeyError(f"unknown design {name!r}; have {sorted(DESIGNS)}")
    return DESIGNS[name]


def design_names() -> list[str]:
    """All registry design names, sorted (drives batch sessions / the CLI)."""
    return sorted(DESIGNS)


#: Elaborated-roots memo for :func:`design_roots` (keyed by design name).
_ROOTS_CACHE: dict[str, dict] = {}


def design_roots(name: str) -> dict:
    """The design's elaborated IR roots (output name → ``Expr``), memoized.

    The service's content-addressed cache keys on the *structure* of a
    design rather than its name, which means hashing the elaborated DAG on
    every submission; parsing the Verilog once per design (rather than once
    per job) keeps that cheap.  Callers must treat the returned mapping and
    its trees as immutable (``Expr`` already is).
    """
    roots = _ROOTS_CACHE.get(name)
    if roots is None:
        from repro.rtl import module_to_ir

        roots = _ROOTS_CACHE[name] = module_to_ir(get_design(name).verilog)
    return roots
