"""The optimizer pipeline: ingest -> rewrite (phased) -> extract -> verify."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis import DatapathAnalysis
from repro.egraph import EGraph, Extractor, Runner, RunnerReport
from repro.egraph.rewrite import Rewrite
from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.opt.report import model_cost
from repro.rewrites import all_rules
from repro.rewrites.casesplit import case_split_on
from repro.rtl import emit_verilog, module_to_ir
from repro.synth.cost import DelayArea, DelayAreaCost, default_key
from repro.verify import EquivalenceResult, check_equivalent


@dataclass
class OptimizerConfig:
    """Knobs of the tool (defaults follow the paper's settings)."""

    #: equality-saturation iterations (the paper's case study uses 11; the
    #: small Section VI cases use 6).
    iter_limit: int = 8
    node_limit: int = 30_000
    time_limit: float = 60.0
    #: case-split threshold for ``a - (b >> c)`` (Section V splits at c > 1);
    #: None disables case splitting.
    split_threshold: int | None = 1
    #: ablation switches (benchmarks exercise these).
    enable_assume: bool = True
    enable_condition_rewriting: bool = True
    #: verify the optimized design against the original after extraction.
    verify: bool = True
    #: assert e-graph invariants after every runner iteration (tests only;
    #: the check sweeps the whole graph).
    check_invariants: bool = False
    #: extraction objective key (delay, area) -> ordering key.
    extraction_key = staticmethod(default_key)

    def rules(self) -> list[Rewrite]:
        selected = all_rules(self.split_threshold)
        if not self.enable_assume:
            selected = [r for r in selected if not r.name.startswith(("assume", "mux-branch"))]
        if not self.enable_condition_rewriting:
            selected = [r for r in selected if not r.name.startswith("cond-")]
        return selected


@dataclass
class OptimizationResult:
    """Everything produced for one design root."""

    original: Expr
    optimized: Expr
    original_cost: DelayArea
    optimized_cost: DelayArea
    report: RunnerReport
    equivalence: EquivalenceResult | None
    runtime: float
    input_ranges: dict[str, IntervalSet] = field(default_factory=dict)

    @property
    def delay_improvement(self) -> float:
        """Fractional model-delay reduction (0.33 = 33% faster)."""
        if self.original_cost.delay == 0:
            return 0.0
        return 1.0 - self.optimized_cost.delay / self.original_cost.delay

    @property
    def area_improvement(self) -> float:
        """Fractional model-area reduction."""
        if self.original_cost.area == 0:
            return 0.0
        return 1.0 - self.optimized_cost.area / self.original_cost.area

    def emit_verilog(self, module_name: str = "optimized", output: str = "out") -> str:
        """Render the optimized design as Verilog."""
        return emit_verilog({output: self.optimized}, module_name, self.input_ranges)


@dataclass
class ModuleResult:
    """Results for a whole module (one entry per output port)."""

    outputs: dict[str, OptimizationResult]
    egraph: EGraph
    report: RunnerReport

    def emit_verilog(self, module_name: str = "optimized") -> str:
        exprs = {name: r.optimized for name, r in self.outputs.items()}
        ranges = next(iter(self.outputs.values())).input_ranges if self.outputs else {}
        return emit_verilog(exprs, module_name, ranges)


class DatapathOptimizer:
    """Parse, rewrite, extract, verify — the paper's tool."""

    def __init__(
        self,
        input_ranges: Mapping[str, IntervalSet] | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        self.input_ranges = dict(input_ranges or {})
        self.config = config if config is not None else OptimizerConfig()

    # ----------------------------------------------------------------- entry
    def optimize_expr(
        self, expr: Expr, user_splits: Sequence[Expr] = ()
    ) -> OptimizationResult:
        """Optimize a single IR expression."""
        result = self.optimize_exprs({"out": expr}, user_splits)
        return result.outputs["out"]

    def optimize_verilog(
        self, source: str, user_splits: Sequence[Expr] = ()
    ) -> ModuleResult:
        """Optimize every output of a Verilog module (joint e-graph)."""
        return self.optimize_exprs(module_to_ir(source), user_splits)

    def optimize_exprs(
        self, roots: Mapping[str, Expr], user_splits: Sequence[Expr] = ()
    ) -> ModuleResult:
        """Optimize several roots sharing one e-graph."""
        started = time.perf_counter()
        egraph = EGraph([DatapathAnalysis(self.input_ranges)])
        root_ids = {name: egraph.add_expr(e) for name, e in roots.items()}
        egraph.rebuild()
        for name, root_id in root_ids.items():
            for split in user_splits:
                case_split_on(egraph, root_id, split)

        runner = Runner(
            egraph,
            self.config.rules(),
            iter_limit=self.config.iter_limit,
            node_limit=self.config.node_limit,
            time_limit=self.config.time_limit,
            check_invariants=self.config.check_invariants,
        )
        report = runner.run()

        cost_fn = DelayAreaCost(self.config.extraction_key)
        # ASSUME wrappers are kept in the extracted tree: the tree-level
        # range analysis re-derives the constraint refinements from them, so
        # netlist lowering and Verilog emission see the reduced bitwidths.
        extractor = Extractor(egraph, cost_fn, strip_assumes=False)
        outputs: dict[str, OptimizationResult] = {}
        for name, expr in roots.items():
            optimized = extractor.expr_of(root_ids[name])
            equivalence = None
            if self.config.verify:
                equivalence = check_equivalent(expr, optimized, self.input_ranges)
                if equivalence.equivalent is False:
                    raise AssertionError(
                        f"optimizer produced a non-equivalent design for "
                        f"{name!r} at {equivalence.counterexample}"
                    )
            outputs[name] = OptimizationResult(
                original=expr,
                optimized=optimized,
                original_cost=model_cost(expr, self.input_ranges),
                optimized_cost=model_cost(optimized, self.input_ranges),
                report=report,
                equivalence=equivalence,
                runtime=time.perf_counter() - started,
                input_ranges=dict(self.input_ranges),
            )
        return ModuleResult(outputs=outputs, egraph=egraph, report=report)
