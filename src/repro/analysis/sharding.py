"""Shard planning: slice a multi-output design into shared-nothing cones.

ROVER (the paper's successor) scales to real RTL by decomposing designs and
optimizing the pieces independently; this module is that decomposition for
our pipeline.  A :class:`ConeShard` is a group of output cones plus exactly the
input-range context those cones can observe — nothing else crosses the shard
boundary, so shards can saturate in separate e-graphs (or separate
processes) and the results merge by output name.

Planning modes:

* **per-output** (the default): one shard per output port.
* **clustered** (``max_shards=K``): outputs are agglomerated greedily by
  :func:`~repro.ir.cones.shared_weight` — the pair of clusters sharing the
  most operator subterms merges first — until at most ``K`` shards remain.
  Cones that genuinely share hardware co-optimize in one e-graph; unrelated
  cones stay apart.

The planner never mutates its inputs, and every produced shard carries its
own ``dict`` copies: two shards share no mutable state (property-tested in
``tests/analysis/test_cone_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.intervals import IntervalSet
from repro.ir.cones import cone_inputs, cone_size
from repro.ir.expr import Expr, subterms


@dataclass(frozen=True)
class ConeShard:
    """One shared-nothing slice of a design: cones + their range context."""

    name: str
    roots: dict[str, Expr]
    input_ranges: dict[str, IntervalSet]

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self.roots)

    @property
    def size(self) -> int:
        """DAG size of the shard's cone."""
        return cone_size(self.roots.values())


@dataclass(frozen=True)
class ShardPlan:
    """The result of planning: shards plus whole-design measurements."""

    shards: tuple[ConeShard, ...]
    #: DAG size of the whole design (all outputs, shared subterms counted once).
    design_size: int

    @property
    def is_trivial(self) -> bool:
        """A plan that would not split anything."""
        return len(self.shards) <= 1

    def outputs(self) -> tuple[str, ...]:
        return tuple(name for shard in self.shards for name in shard.roots)


def cone_shard(
    name: str,
    roots: Mapping[str, Expr],
    input_ranges: Mapping[str, IntervalSet] | None = None,
) -> ConeShard:
    """A shard over ``roots`` carrying only the ranges its cone can see."""
    inputs = cone_inputs(roots.values())
    ranges = {
        var: iset
        for var, iset in dict(input_ranges or {}).items()
        if var in inputs
    }
    return ConeShard(name=name, roots=dict(roots), input_ranges=ranges)


def plan_shards(
    roots: Mapping[str, Expr],
    input_ranges: Mapping[str, IntervalSet] | None = None,
    max_shards: int | None = None,
) -> ShardPlan:
    """Slice ``roots`` into per-output shards, clustered down to ``max_shards``.

    With ``max_shards=None`` every output gets its own shard.  With
    ``max_shards=K`` the per-output cones are agglomerated greedily by
    shared-subexpression weight until at most ``K`` remain; ties merge the
    pair with the smallest combined cone first (balancing shard sizes), then
    by output-name order (deterministic plans).
    """
    if max_shards is not None and max_shards < 1:
        raise ValueError(f"max_shards must be >= 1, got {max_shards}")
    names = sorted(roots)
    clusters: list[list[str]] = [[name] for name in names]

    if max_shards is not None:
        # One subterm walk per output; merges union the precomputed sets, so
        # a round costs set operations over cluster pairs, not tree walks.
        cluster_subs: list[set[Expr]] = [subterms([roots[name]]) for name in names]
        while len(clusters) > max_shards:
            best: tuple | None = None
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    shared = cluster_subs[i] & cluster_subs[j]
                    weight = sum(1 for node in shared if node.children)
                    combined = len(cluster_subs[i] | cluster_subs[j])
                    rank = (weight, -combined, clusters[i][0], clusters[j][0])
                    if best is None or rank > best[0]:
                        best = (rank, i, j)
            assert best is not None
            _rank, i, j = best
            clusters[i] = sorted(clusters[i] + clusters[j])
            cluster_subs[i] |= cluster_subs[j]
            del clusters[j]
            del cluster_subs[j]

    shards = tuple(
        cone_shard(
            "+".join(member),
            {name: roots[name] for name in member},
            input_ranges,
        )
        for member in clusters
    )
    return ShardPlan(shards=shards, design_size=cone_size(roots.values()))


def should_shard(
    roots: Mapping[str, Expr],
    node_threshold: int | None,
) -> bool:
    """Auto-split policy: shard when the design is wide *and* large.

    A single-output design cannot be cone-sharded at all; a small
    multi-output design saturates fine monolithically (and cross-output
    sharing helps it).  Splitting pays once the combined DAG would eat the
    node budget before any one cone finishes exploring.
    """
    if node_threshold is None or len(roots) < 2:
        return False
    return cone_size(roots.values()) >= node_threshold
