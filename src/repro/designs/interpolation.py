"""The interpolation kernel benchmark (Section VI, Table III).

The paper's kernel is a proprietary Intel media module "computing an
interpolation between four pixels and clamping the output", where "for
certain clamping thresholds, the tool automatically detects that the
threshold can never be met and optimizes the clamping away", and where
"naive interval arithmetic would not suffice".

This reconstruction keeps every documented property:

* a 2-D bilinear interpolation over four pixels with 4-bit weights,
* a mode mux selecting between the filtered result and a bypass path offset
  into a disjoint code range (media kernels tag passthrough blocks this
  way), and
* a sentinel remap whose guard ``blend == 300`` falls in the *gap* between
  the two paths' value ranges — provably dead with the union abstraction
  ``[0, 255] U [512, 767]``, but not with any single-interval (hull)
  analysis, since the hull ``[0, 767]`` contains 300, and
* an output clamp at a threshold (1000) above the reachable maximum.

The dead-code elimination (Section VI's ``c ? a : b -> b`` when
``A[[c]] == [0,0]``) plus the clamp removal reproduce the paper's claimed
mechanism end to end.
"""

from __future__ import annotations


def interpolation_verilog() -> str:
    """Four-pixel bilinear interpolation with range-gated correction."""
    return """
module interpolation (
  input [7:0] p00,
  input [7:0] p01,
  input [7:0] p10,
  input [7:0] p11,
  input [3:0] wx,
  input [3:0] wy,
  input mode,
  output [9:0] out
);
  wire [4:0] ix = 5'd16 - wx;
  wire [4:0] iy = 5'd16 - wy;
  wire [12:0] top = p00 * ix + p01 * wx;
  wire [12:0] bot = p10 * ix + p11 * wx;
  wire [17:0] acc = top * iy + bot * wy;
  wire [7:0] pixel = (acc + 18'd128) >> 8;
  wire [9:0] bypass = {2'b10, p00};
  wire [9:0] blend = mode ? bypass : {2'b00, pixel};
  wire is_sentinel = blend == 10'd300;
  wire [9:0] corrected = is_sentinel ? 10'd299 : blend;
  assign out = (corrected > 10'd1000) ? 10'd1000 : corrected;
endmodule
"""
