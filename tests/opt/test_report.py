"""Cost reporting helpers."""

from repro.intervals import IntervalSet
from repro.ir import gt, lzc, mux, var
from repro.opt import format_comparison, model_cost


def test_model_cost_tracks_widths():
    x, y = var("x", 8), var("y", 8)
    narrow = model_cost(x + y, {"x": IntervalSet.of(0, 3), "y": IntervalSet.of(0, 3)})
    wide = model_cost(x + y)
    assert narrow.area < wide.area
    assert narrow.delay <= wide.delay


def test_model_cost_uses_refinements():
    """Figure 1 again, at the reporting layer: the constrained LZC design
    must model-cost less than the unconstrained one."""
    x, y = var("x", 8), var("y", 8)
    design = lzc(x + y, 9)
    constrained = model_cost(design, {"x": IntervalSet.of(128, 255)})
    free = model_cost(design)
    assert constrained.area <= free.area


def test_mux_condition_costs():
    x, y = var("x", 8), var("y", 8)
    cost = model_cost(mux(gt(x, y), x, y))
    assert cost.delay > 0 and cost.area > 0


def test_format_comparison_table():
    text = format_comparison(
        [("fp_sub", 10.0, 100.0, 8.0, 60.0), ("other", 5.0, 50.0, 5.0, 40.0)]
    )
    assert "fp_sub" in text
    assert "-20%" in text or "-20 %" in text.replace("( ", "(")
    assert "-40%" in text.replace(" ", "") or "-40" in text
