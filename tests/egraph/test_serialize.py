"""Persistent e-graph artifacts: format round-trips, pickling purity,
and graph absorption.

The properties the warm-start/stitch machinery leans on:

* **round-trip fidelity** — save/load (and plain pickling) preserve the
  union-find partition, the node/class counts, and every invariant;
* **pickling purity** — ``CoreGraph.__reduce__`` never mutates the graph
  being pickled (the PR-8 regression: it used to rebuild in place);
* **header honesty** — compatibility questions (format, digest, schedule)
  are answered from the one-line header, and every mismatch is a typed
  :class:`EGraphFormatError`, never a crash or a silent wrong answer;
* **absorption soundness** — ``absorb_graph`` maps every source class to a
  target class such that source-equal stays target-equal.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import (
    EGraph,
    EGraphFormatError,
    absorb_graph,
    load_egraph,
    read_header,
    save_egraph,
)
from repro.egraph.serialize import FORMAT_VERSION
from repro.ir import ops


@st.composite
def workload(draw):
    """A random sequence of add/union operations over small signatures."""
    n_leaves = draw(st.integers(2, 5))
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 999), st.integers(0, 999)),
            min_size=1,
            max_size=40,
        )
    )
    return n_leaves, steps


def _build(load) -> tuple[EGraph, list[int]]:
    n_leaves, steps = load
    g = EGraph()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    unary = [ops.NEG, ops.ABS, ops.LNOT]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(unary[x % 3], (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        else:
            g.union(a, b)
    g.rebuild()
    return g, ids


def _partition(g: EGraph, ids: list[int]) -> list[frozenset[int]]:
    classes: dict[int, set[int]] = {}
    for i in ids:
        classes.setdefault(g.find(i), set()).add(i)
    return sorted(
        (frozenset(members) for members in classes.values()), key=sorted
    )


class TestPicklingPurity:
    """``__reduce__`` must never mutate the graph being pickled."""

    def _dirty_graph(self) -> EGraph:
        """A graph with genuinely pending work: congruent parents whose
        children were unioned but not yet rebuilt."""
        g = EGraph()
        a = g.add_node(ops.VAR, ("a", 4))
        s = g.add_node(ops.VAR, ("s", 4))
        s2 = g.add_node(ops.VAR, ("s2", 4))
        g.add_node(ops.ADD, (), (s, a))
        g.add_node(ops.ADD, (), (s2, a))
        g.union(s, s2)
        return g

    def test_pickling_a_dirty_graph_changes_nothing(self):
        g = self._dirty_graph()
        core = g.core
        assert not core.is_clean, "scenario must have pending work"
        version = core.version
        pending = list(core.pending_pairs)
        node_count = g.node_count

        blob = pickle.dumps(g)

        assert core.version == version
        assert list(core.pending_pairs) == pending
        assert not core.is_clean
        assert g.node_count == node_count

        # The *clone* that went over the wire is rebuilt and consistent.
        loaded = pickle.loads(blob)
        assert loaded.core.is_clean
        loaded.core.check_invariants()

    def test_loaded_clone_matches_a_rebuilt_original(self):
        g = self._dirty_graph()
        loaded = pickle.loads(pickle.dumps(g))
        g.rebuild()
        assert loaded.node_count == g.node_count
        assert loaded.class_count == g.class_count

    @settings(max_examples=40, deadline=None)
    @given(workload())
    def test_round_trip_preserves_the_partition(self, load):
        g, ids = _build(load)
        before = _partition(g, ids)
        loaded = pickle.loads(pickle.dumps(g))
        assert _partition(loaded, ids) == before
        assert loaded.node_count == g.node_count
        assert loaded.class_count == g.class_count
        loaded.core.check_invariants()


class TestSaveLoadFormat:
    @settings(max_examples=25, deadline=None)
    @given(load=workload())
    def test_save_load_round_trips_the_graph(self, load, tmp_path_factory):
        g, ids = _build(load)
        path = tmp_path_factory.mktemp("artifacts") / "g.egraph"
        roots = {"out": g.find(ids[0])}
        header = save_egraph(
            path, g, roots, digest="d" * 64, schedule="sched"
        )
        assert header.nodes == g.node_count
        assert header.classes == g.class_count
        saved = load_egraph(path, expect_digest="d" * 64, expect_schedule="sched")
        assert saved.root_ids == roots
        assert _partition(saved.egraph, ids) == _partition(g, ids)
        saved.egraph.core.check_invariants()

    def test_header_reads_without_unpickling(self, tmp_path):
        g, ids = _build((2, [(1, 0, 1)]))
        path = tmp_path / "g.egraph"
        save_egraph(
            path, g, {"a": ids[0], "b": ids[1]}, digest="x", schedule="y"
        )
        header = read_header(path)
        assert header.format == FORMAT_VERSION
        assert header.digest == "x"
        assert header.schedule == "y"
        assert header.roots == ("a", "b")
        assert header.nodes == g.node_count

    def test_input_ranges_travel_with_the_artifact(self, tmp_path):
        from repro.intervals import IntervalSet

        g, ids = _build((2, [(1, 0, 1)]))
        path = tmp_path / "g.egraph"
        ranges = {"v0": IntervalSet.of(3, 12)}
        save_egraph(path, g, {"out": ids[0]}, input_ranges=ranges)
        assert load_egraph(path).input_ranges == ranges

    @pytest.mark.parametrize(
        "corruption, reason",
        [
            (lambda p: p.unlink(), "io"),
            (lambda p: p.write_bytes(b"\xff\xfe garbage\n"), "header"),
            (lambda p: p.write_bytes(b'{"magic": "other"}\npayload'), "magic"),
            (
                lambda p: p.write_bytes(
                    b'{"magic": "repro-egraph", "format": 99}\npayload'
                ),
                "version",
            ),
            (
                lambda p: p.write_bytes(
                    p.read_bytes()[: len(p.read_bytes()) // 2 + 60]
                ),
                "payload",
            ),
        ],
        ids=["missing", "bad-header", "bad-magic", "future-version", "truncated"],
    )
    def test_damage_is_a_typed_error_never_a_crash(
        self, tmp_path, corruption, reason
    ):
        g, ids = _build((2, [(1, 0, 1), (1, 1, 0), (0, 0, 0)]))
        path = tmp_path / "g.egraph"
        save_egraph(path, g, {"out": ids[0]})
        corruption(path)
        with pytest.raises(EGraphFormatError) as err:
            load_egraph(path)
        assert err.value.reason == reason

    def test_digest_and_schedule_mismatches_are_refused(self, tmp_path):
        g, ids = _build((2, [(1, 0, 1)]))
        path = tmp_path / "g.egraph"
        save_egraph(path, g, {"out": ids[0]}, digest="aaa", schedule="s1")
        with pytest.raises(EGraphFormatError) as err:
            load_egraph(path, expect_digest="bbb")
        assert err.value.reason == "digest"
        with pytest.raises(EGraphFormatError) as err:
            load_egraph(path, expect_schedule="s2")
        assert err.value.reason == "schedule"
        # The matching expectations load fine.
        assert load_egraph(path, expect_digest="aaa", expect_schedule="s1")

    def test_save_is_atomic_no_temp_droppings(self, tmp_path):
        g, ids = _build((2, [(1, 0, 1)]))
        path = tmp_path / "g.egraph"
        save_egraph(path, g, {"out": ids[0]})
        save_egraph(path, g, {"out": ids[0]})  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["g.egraph"]


class TestAbsorbGraph:
    @settings(max_examples=40, deadline=None)
    @given(workload(), workload())
    def test_source_equalities_survive_absorption(self, load_a, load_b):
        target, _ = _build(load_a)
        source, ids = _build(load_b)
        mapping = absorb_graph(target, source)
        for i in ids:
            for j in ids:
                if source.find(i) == source.find(j):
                    assert (
                        target.find(mapping[source.find(i)])
                        == target.find(mapping[source.find(j)])
                    )
        target.core.check_invariants()

    def test_shared_subexpressions_dedup_into_the_target(self):
        a = EGraph()
        x = a.add_node(ops.VAR, ("x", 4))
        y = a.add_node(ops.VAR, ("y", 4))
        a.add_node(ops.ADD, (), (x, y))
        a.rebuild()
        before = a.node_count

        b = EGraph()
        bx = b.add_node(ops.VAR, ("x", 4))
        by = b.add_node(ops.VAR, ("y", 4))
        b.add_node(ops.ADD, (), (bx, by))
        b.add_node(ops.NEG, (), (bx,))
        b.rebuild()

        absorb_graph(a, b)
        # x, y and x+y dedup; only NEG(x) is new.
        assert a.node_count == before + 1
