"""Equivalence checking of two IR designs over a constrained input domain."""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.intervals import IntervalSet
from repro.ir import expr as ir
from repro.ir.evaluate import evaluate, input_variables
from repro.ir.expr import Expr
from repro.synth.lower import LoweringError, lower_to_netlist
from repro.verify.bdd import BDD, BddLimitError

Clock = Callable[[], float]

#: Engine safety cap on BDD growth: past this, a proof attempt is costing
#: more than the randomized fallback is worth.  Budget quotas *tighten*
#: this cap (a pool larger than the cap still stops here), they never
#: raise it.
DEFAULT_BDD_NODE_LIMIT = 400_000


@dataclass
class EquivalenceResult:
    """Outcome of a check.

    ``equivalent`` is ``True`` (proved), ``False`` (counterexample found) or
    ``None`` (a non-proof: randomized check passed, or the deadline cut the
    check short — ``method`` tells which).
    """

    equivalent: bool | None
    method: str  # 'exhaustive' | 'bdd' | 'random' | 'timeout'
    counterexample: dict[str, int] | None = None
    trials: int = 0
    #: BDD nodes built while attempting a proof (0 when no BDD ran); the
    #: spend a governed ``Verify`` stage charges against ``Budget.bdd_nodes``.
    bdd_nodes: int = 0

    @property
    def ok(self) -> bool:
        """No difference observed (proved or survived randomized testing)."""
        return self.equivalent is not False

    def __repr__(self) -> str:
        verdict = {True: "EQUIVALENT", False: "DIFFERENT", None: "NO-DIFF-FOUND"}
        return f"{verdict[self.equivalent]} ({self.method}, {self.trials} trials)"


def _merged_widths(a: Expr, b: Expr) -> dict[str, int]:
    widths = input_variables(a)
    for name, width in input_variables(b).items():
        if widths.get(name, width) != width:
            raise ValueError(f"variable {name} has conflicting widths")
        widths[name] = width
    return widths


def _domain_values(
    name: str, width: int, ranges: Mapping[str, IntervalSet]
) -> IntervalSet:
    domain = IntervalSet.unsigned(width)
    if name in ranges:
        domain = domain.intersect(ranges[name])
    return domain


def check_equivalent(
    a: Expr,
    b: Expr,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    exhaustive_budget: int = 1 << 16,
    bdd_node_limit: int = DEFAULT_BDD_NODE_LIMIT,
    random_trials: int = 5_000,
    seed: int = 0,
    deadline: float | None = None,
    clock: Clock | None = None,
) -> EquivalenceResult:
    """Check ``a == b`` on the (possibly constrained) input domain.

    Strategy: exhaustive simulation when the domain is small enough, then a
    BDD proof, then randomized simulation.  Mirrors how one would back up
    the paper's DPV runs without a commercial tool.

    ``deadline`` (an absolute instant on ``clock``, injectable for tests)
    makes the check interruptible: an exhaustive or randomized sweep stops
    between trials, a blowing-up BDD stops within a few hundred nodes and
    degrades to the randomized path.  A check cut short before it could
    complete reports ``method="timeout"`` with ``equivalent=None`` — never
    an exception, never a silent overshoot of a governed run's budget.
    """
    clock = clock if clock is not None else time.monotonic
    limit = deadline if deadline is not None else math.inf
    ranges = dict(input_ranges or {})
    widths = _merged_widths(a, b)
    domains = {n: _domain_values(n, w, ranges) for n, w in widths.items()}

    total = 1
    for domain in domains.values():
        size = domain.size()
        total = None if size is None else total * size
        if total is None or total > exhaustive_budget:
            total = None
            break

    if total is not None:
        return _exhaustive(a, b, domains, limit, clock)

    if bdd_node_limit <= 0:
        # A dry BDD quota: skip the proof attempt entirely (lowering the
        # miter netlist is itself expensive) and go straight to trials.
        return _random_check(a, b, domains, random_trials, seed, limit, clock)

    try:
        return _bdd_check(a, b, widths, ranges, bdd_node_limit, limit, clock)
    except LoweringError:
        # A form the netlist cannot realize: fall back to randomized
        # simulation (reported as such, not as a proof).
        return _random_check(a, b, domains, random_trials, seed, limit, clock)
    except BddLimitError as blown:
        # BDD blow-up (node quota or deadline): degrade to randomized
        # simulation, carrying the abandoned proof's node spend so a
        # governed Verify stage still charges it into the ledger.
        result = _random_check(a, b, domains, random_trials, seed, limit, clock)
        result.bdd_nodes = blown.nodes
        return result


def prove_equivalent(
    a: Expr, b: Expr, input_ranges: Mapping[str, IntervalSet] | None = None, **kw
) -> None:
    """Raise AssertionError unless equivalence is established."""
    result = check_equivalent(a, b, input_ranges, **kw)
    if result.equivalent is False:
        raise AssertionError(
            f"designs differ at {result.counterexample}: {result}"
        )


# ---------------------------------------------------------------- strategies
class _DeadlineHit(Exception):
    """Internal: the check's deadline passed between trials."""


def _exhaustive(
    a: Expr,
    b: Expr,
    domains: dict[str, IntervalSet],
    limit: float,
    clock: Clock,
) -> EquivalenceResult:
    names = sorted(domains)
    values = [list(domains[n].iter_values()) for n in names]
    trials = 0
    bounded = not math.isinf(limit)

    def rec(index: int, env: dict[str, int]):
        nonlocal trials
        if index == len(names):
            if bounded and clock() > limit:
                raise _DeadlineHit
            trials += 1
            va, vb = evaluate(a, env), evaluate(b, env)
            if va != vb:
                return dict(env)
            return None
        for v in values[index]:
            env[names[index]] = v
            bad = rec(index + 1, env)
            if bad is not None:
                return bad
        return None

    try:
        counterexample = rec(0, {})
    except _DeadlineHit:
        # An incomplete sweep that saw no difference is not a proof.
        return EquivalenceResult(None, "timeout", trials=trials)
    return EquivalenceResult(
        equivalent=counterexample is None,
        method="exhaustive",
        counterexample=counterexample,
        trials=trials,
    )


def _domain_condition(widths: dict[str, int], ranges: Mapping[str, IntervalSet]) -> Expr | None:
    """IR condition 'every input lies in its declared domain restriction'."""
    conjuncts: list[Expr] = []
    for name, width in sorted(widths.items()):
        if name not in ranges:
            continue
        domain = IntervalSet.unsigned(width).intersect(ranges[name])
        x = ir.var(name, width)
        parts = []
        for piece in domain.parts:
            lo = ir.ge(x, piece.lo) if piece.lo is not None else None
            hi = ir.le(x, piece.hi) if piece.hi is not None else None
            if lo is not None and hi is not None:
                parts.append(Expr(ir.ops.AND, (), (lo, hi)))
            else:
                parts.append(lo if lo is not None else hi)
        piece_or = parts[0]
        for p in parts[1:]:
            piece_or = Expr(ir.ops.OR, (), (piece_or, p))
        conjuncts.append(piece_or)
    if not conjuncts:
        return None
    out = conjuncts[0]
    for c in conjuncts[1:]:
        out = Expr(ir.ops.AND, (), (out, c))
    return out


def _bdd_check(
    a: Expr,
    b: Expr,
    widths: dict[str, int],
    ranges: Mapping[str, IntervalSet],
    node_limit: int,
    limit: float = math.inf,
    clock: Clock = time.monotonic,
) -> EquivalenceResult:
    """Prove by building the BDD of ``domain & (a != b)`` over a miter."""
    miter: Expr = ir.ne(a, b)
    domain = _domain_condition(widths, ranges)
    if domain is not None:
        miter = Expr(ir.ops.AND, (), (miter, domain))
    lowered = lower_to_netlist(miter, ranges)
    netlist = lowered.netlist

    # Variable order: interleave input bits MSB-first (good for comparators
    # and subtractors alike).
    order: dict[int, int] = {}
    names = sorted(netlist.inputs)
    position = 0
    max_width = max((len(netlist.inputs[n]) for n in names), default=0)
    for bit in range(max_width - 1, -1, -1):
        for name in names:
            nets = netlist.inputs[name]
            if bit < len(nets):
                order[nets[bit]] = position
                position += 1

    bdd = BDD(
        node_limit,
        deadline=None if math.isinf(limit) else limit,
        clock=clock,
    )
    values: dict[int, int] = {0: bdd.FALSE, 1: bdd.TRUE}
    for net, var_index in order.items():
        values[net] = bdd.var(var_index)
    for gate in netlist.gates:
        operands = [values[i] for i in gate.inputs]
        values[gate.output] = bdd.apply_gate(gate.kind, *operands)
    root_bits = netlist.outputs["out"].bits
    diff = bdd.FALSE
    for net in root_bits:
        diff = bdd.apply_or(diff, values[net])

    if diff == bdd.FALSE:
        return EquivalenceResult(True, "bdd", trials=len(bdd), bdd_nodes=len(bdd))
    assignment = bdd.any_sat(diff)
    env = {}
    inverse = {pos: net for net, pos in order.items()}
    net_bit = {}
    for name in names:
        for bit, net in enumerate(netlist.inputs[name]):
            net_bit[net] = (name, bit)
        env[name] = 0
    for var_index, bit_value in (assignment or {}).items():
        net = inverse.get(var_index)
        if net is not None and bit_value:
            name, bit = net_bit[net]
            env[name] |= 1 << bit
    return EquivalenceResult(
        False, "bdd", counterexample=env, trials=len(bdd), bdd_nodes=len(bdd)
    )


def _random_check(
    a: Expr,
    b: Expr,
    domains: dict[str, IntervalSet],
    trials: int,
    seed: int,
    limit: float = math.inf,
    clock: Clock = time.monotonic,
) -> EquivalenceResult:
    rng = random.Random(seed)
    samplers = {}
    for name, domain in domains.items():
        parts = domain.parts
        samplers[name] = parts
    bounded = not math.isinf(limit)

    for trial in range(trials):
        if bounded and clock() > limit:
            # Cut short: the trials run so far saw no difference, but the
            # planned confidence was not reached — report the truncation.
            return EquivalenceResult(None, "timeout", trials=trial)
        env = {}
        for name, parts in samplers.items():
            piece = parts[rng.randrange(len(parts))]
            env[name] = rng.randint(piece.lo, piece.hi)
        va, vb = evaluate(a, env), evaluate(b, env)
        if va != vb:
            return EquivalenceResult(False, "random", counterexample=env, trials=trial + 1)
    return EquivalenceResult(None, "random", trials=trials)
