"""Recognition of machine-interpretable constraints (eq. (4), ``Constr``).

An ``ASSUME(x, c1, ..., cn)`` refines the abstraction of ``x`` by
intersecting it with an interval decoded from the constraint e-classes.  A
constraint class contributes when *any* of its member e-nodes has one of the
shapes of eq. (4), generalized symmetrically::

    x <  k   ->  (-inf, k-1]           k <  x   ->  [k+1, +inf)
    x <= k   ->  (-inf, k]             k <= x   ->  [k, +inf)
    x >  k   ->  [k+1, +inf)           k >  x   ->  (-inf, k-1]
    x >= k   ->  [k, +inf)             k >= x   ->  (-inf, k]
    x == k   ->  [k, k]                (symmetric)
    x != k   ->  Z \\ {k}              (symmetric)
    lnot(x)  ->  [0, 0]
    x itself ->  Z \\ {0}              (the constraint *is* the expression)

where ``x`` is the guarded e-class and ``k`` any e-class whose abstraction is
a singleton (so constant folding feeds recognition).  Because a constraint
e-class holds *many* equivalent forms, "there is no need to find the single
ideal representation" (Section IV-C) — one recognizable member suffices.
"""

from __future__ import annotations

from repro.intervals import IntervalSet
from repro.ir import ops

#: Operators a member e-node must have to be a recognizable ``Constr``.
CONSTR_OPS = frozenset(
    {ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE, ops.LNOT}
)


def _point(egraph, analysis_name: str, class_id: int) -> int | None:
    """The singleton value of a class's abstraction, if any."""
    return egraph.data(class_id, analysis_name).iset.as_point()


def constr_candidates(egraph, constraint: int, cache: dict | None) -> tuple:
    """Member e-nodes of a *canonical* class with a ``Constr``-shaped op.

    ``ASSUME`` transfer runs on every rebuild of every ASSUME e-node, but a
    constraint class's membership rarely changes between two runs — rescanning
    the full node set each time is ~15% of rebuild time on the paper's case
    study.  The scan result is cached per canonical class, keyed by the
    class's membership revision (:attr:`~repro.egraph.egraph.EClass.rev`).

    Cached nodes may carry non-canonical children after later unions; callers
    must resolve children through ``egraph.find`` at use time (which
    :func:`decode_constr` does anyway).  ``cache=None`` disables caching —
    the reference path the property tests compare against.
    """
    eclass = egraph[constraint]
    if cache is None:
        return tuple(n for n in eclass.nodes if n.op in CONSTR_OPS)
    entry = cache.get(eclass.id)
    if entry is not None and entry[0] == eclass.rev:
        return entry[1]
    candidates = tuple(n for n in eclass.nodes if n.op in CONSTR_OPS)
    cache[eclass.id] = (eclass.rev, candidates)
    return candidates


def decode_constr(
    egraph,
    analysis_name: str,
    constraint_id: int,
    target_id: int,
    cache: dict | None = None,
) -> IntervalSet | None:
    """Interval implied *for target_id* by one constraint class being true.

    Returns ``None`` when no member of the constraint class is an
    interpretable ``Constr`` about the target class.
    """
    find = egraph.find
    target = find(target_id)
    constraint = find(constraint_id)
    implied: IntervalSet | None = None

    def tighten(extra: IntervalSet) -> None:
        nonlocal implied
        implied = extra if implied is None else implied.intersect(extra)

    if constraint == target:
        # The constraint *is* the guarded expression: it must be nonzero.
        tighten(IntervalSet.top().remove_point(0))

    for enode in constr_candidates(egraph, constraint, cache):
        op = enode.op
        if op is ops.LNOT and find(enode.children[0]) == target:
            tighten(IntervalSet.point(0))
            continue
        if op not in (ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE):
            continue
        left, right = (find(c) for c in enode.children)
        if left == target:
            k = _point(egraph, analysis_name, right)
            if k is None:
                continue
            target_on_left = True
        elif right == target:
            k = _point(egraph, analysis_name, left)
            if k is None:
                continue
            target_on_left = False
        else:
            continue

        if op is ops.EQ:
            tighten(IntervalSet.point(k))
        elif op is ops.NE:
            tighten(IntervalSet.top().remove_point(k))
        elif (op is ops.LT and target_on_left) or (op is ops.GT and not target_on_left):
            tighten(IntervalSet.of(None, k - 1))
        elif (op is ops.LE and target_on_left) or (op is ops.GE and not target_on_left):
            tighten(IntervalSet.of(None, k))
        elif (op is ops.GT and target_on_left) or (op is ops.LT and not target_on_left):
            tighten(IntervalSet.of(k + 1, None))
        elif (op is ops.GE and target_on_left) or (op is ops.LE and not target_on_left):
            tighten(IntervalSet.of(k, None))

    return implied


def constraint_refinement(
    egraph, analysis_name: str, constraint_ids, target_id: int,
    cache: dict | None = None,
) -> IntervalSet:
    """Combined refinement for the guarded class over all constraints.

    A constraint whose own abstraction is exactly ``{0}`` can never hold, so
    the ``ASSUME`` always fails: the feasible set is empty (a dead branch —
    this is what lets the optimizer prune unreachable muxes).
    """
    implied = IntervalSet.top()
    for cid in constraint_ids:
        cond_range = egraph.data(cid, analysis_name).iset
        if cond_range.as_point() == 0 or cond_range.is_empty:
            return IntervalSet.empty()
        decoded = decode_constr(egraph, analysis_name, cid, target_id, cache)
        if decoded is not None:
            implied = implied.intersect(decoded)
    return implied
