"""Unit tests for IntervalSet: canonical form, set algebra, transfer ops."""

import pytest

from repro.intervals import Interval, IntervalSet


class TestCanonicalForm:
    def test_merge_overlapping(self):
        s = IntervalSet.from_intervals([Interval(0, 5), Interval(3, 9)])
        assert s.parts == (Interval(0, 9),)

    def test_merge_adjacent_integers(self):
        s = IntervalSet.from_intervals([Interval(1, 2), Interval(3, 5)])
        assert s.parts == (Interval(1, 5),)

    def test_disjoint_stay_apart(self):
        s = IntervalSet.from_intervals([Interval(0, 1), Interval(5, 6)])
        assert len(s.parts) == 2

    def test_sorted_regardless_of_input_order(self):
        s = IntervalSet.from_intervals([Interval(8, 9), Interval(0, 1)])
        assert s.parts == (Interval(0, 1), Interval(8, 9))

    def test_coalesce_cap_merges_smallest_gap(self):
        pieces = [Interval(i * 10, i * 10 + 1) for i in range(20)]
        pieces.append(Interval(200, 200))
        s = IntervalSet.from_intervals(pieces, cap=4)
        assert len(s.parts) <= 4
        # Soundness: every original value still covered.
        for piece in pieces:
            assert s.contains(piece.lo) and s.contains(piece.hi)

    def test_from_values(self):
        s = IntervalSet.from_values([5, 1, 2, 3, 9])
        assert s.parts == (Interval(1, 3), Interval(5, 5), Interval(9, 9))
        assert s.size() == 5


class TestQueries:
    def test_empty(self):
        assert IntervalSet.empty().is_empty
        assert IntervalSet.empty().min() is None
        assert not IntervalSet.empty().contains(0)

    def test_point(self):
        assert IntervalSet.point(7).as_point() == 7
        assert IntervalSet.of(7, 8).as_point() is None

    def test_unsigned(self):
        s = IntervalSet.unsigned(8)
        assert s.min() == 0 and s.max() == 255

    def test_issubset(self):
        small = IntervalSet.from_values([1, 2, 9])
        big = IntervalSet.of(0, 3).union(IntervalSet.of(8, 10))
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_iter_values(self):
        s = IntervalSet.of(0, 2).union(IntervalSet.point(9))
        assert list(s.iter_values()) == [0, 1, 2, 9]

    def test_iter_values_guard(self):
        with pytest.raises(ValueError):
            list(IntervalSet.of(0, None).iter_values())


class TestSetAlgebra:
    def test_union_disjoint(self):
        s = IntervalSet.of(0, 1).union(IntervalSet.of(10, 11))
        assert len(s.parts) == 2

    def test_intersect_pairs(self):
        a = IntervalSet.of(0, 10)
        b = IntervalSet.of(2, 3).union(IntervalSet.of(8, 20))
        assert a.intersect(b).parts == (Interval(2, 3), Interval(8, 10))

    def test_remove_point_splits(self):
        s = IntervalSet.of(0, 4).remove_point(2)
        assert s.parts == (Interval(0, 1), Interval(3, 4))

    def test_remove_point_edges(self):
        assert IntervalSet.of(0, 4).remove_point(0).parts == (Interval(1, 4),)
        assert IntervalSet.of(0, 4).remove_point(4).parts == (Interval(0, 3),)
        assert IntervalSet.point(3).remove_point(3).is_empty

    def test_remove_point_on_halfline(self):
        s = IntervalSet.top().remove_point(0)
        assert not s.contains(0)
        assert s.contains(-1) and s.contains(1)

    def test_hull(self):
        s = IntervalSet.of(0, 1).union(IntervalSet.of(9, 10))
        assert s.hull().parts == (Interval(0, 10),)


class TestPaperExamples:
    def test_section_iii_b_example(self):
        """A[[ASSUME(x, x>0)]] = [-3,3] n (0, inf) = [1, 3]."""
        got = IntervalSet.of(-3, 3).intersect(IntervalSet.of(1, None))
        assert got == IntervalSet.of(1, 3)

    def test_equation_5_same_block(self):
        # [9, 14] mod 8: floor(9/8) == floor(14/8) == 1 -> [1, 6]
        assert IntervalSet.of(9, 14).trunc_mod(8) == IntervalSet.of(1, 6)

    def test_equation_5_crossing(self):
        # [5, 9] mod 8 crosses a block boundary -> [0, 7]
        assert IntervalSet.of(5, 9).trunc_mod(8) == IntervalSet.of(0, 7)

    def test_equation_5_negative(self):
        # floor semantics: [-3, -2] mod 8 stays in one block -> [5, 6]
        assert IntervalSet.of(-3, -2).trunc_mod(8) == IntervalSet.of(5, 6)

    def test_figure_1_lzc(self):
        """x + y >= 128 at 9 bits has at most one leading zero."""
        assert IntervalSet.of(128, 510).lzc(9) == IntervalSet.of(0, 1)


class TestComparisons:
    def test_lt_definitely_true(self):
        assert IntervalSet.of(0, 3).cmp_lt(IntervalSet.of(4, 9)).as_point() == 1

    def test_lt_definitely_false(self):
        assert IntervalSet.of(4, 9).cmp_lt(IntervalSet.of(0, 4)).as_point() == 0

    def test_lt_unknown(self):
        assert IntervalSet.of(0, 5).cmp_lt(IntervalSet.of(3, 9)) == IntervalSet.of(0, 1)

    def test_eq_singletons(self):
        assert IntervalSet.point(3).cmp_eq(IntervalSet.point(3)).as_point() == 1
        assert IntervalSet.point(3).cmp_eq(IntervalSet.point(4)).as_point() == 0

    def test_eq_disjoint_union_gap(self):
        # The interpolation mechanism: a value in the gap of a union is
        # provably never equal — but the hull cannot prove it.
        blend = IntervalSet.of(0, 255).union(IntervalSet.of(512, 767))
        assert blend.cmp_eq(IntervalSet.point(300)).as_point() == 0
        assert blend.hull().cmp_eq(IntervalSet.point(300)).as_point() is None

    def test_truthiness(self):
        assert IntervalSet.point(0).truthiness() is False
        assert IntervalSet.of(1, 5).truthiness() is True
        assert IntervalSet.of(0, 5).truthiness() is None

    def test_logical_not(self):
        assert IntervalSet.point(0).logical_not().as_point() == 1
        assert IntervalSet.of(3, 5).logical_not().as_point() == 0
        assert IntervalSet.of(0, 5).logical_not() == IntervalSet.of(0, 1)


class TestWidths:
    def test_unsigned_width(self):
        assert IntervalSet.of(0, 255).unsigned_width() == 8
        assert IntervalSet.of(0, 256).unsigned_width() == 9
        assert IntervalSet.point(0).unsigned_width() == 1
        assert IntervalSet.of(-1, 3).unsigned_width() is None

    def test_signed_width(self):
        assert IntervalSet.of(-1, 0).signed_width() == 1
        assert IntervalSet.of(-128, 127).signed_width() == 8
        assert IntervalSet.of(-129, 127).signed_width() == 9
        assert IntervalSet.of(0, 127).signed_width() == 8

    def test_storage_width_prefers_unsigned(self):
        assert IntervalSet.of(0, 255).storage_width() == 8
        assert IntervalSet.of(-4, 3).storage_width() == 3
