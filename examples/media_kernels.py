"""The Section VI benchmark designs: conversions and interpolation.

Run:  python examples/media_kernels.py

Optimizes float_to_unorm, unorm_to_float and the interpolation kernel,
printing the Table III style before/after comparison and the optimized RTL
of one of them.
"""

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import get_design
from repro.rtl import module_to_ir
from repro.synth import min_delay_point
from repro.verify import check_equivalent


def main() -> None:
    for name in ("float_to_unorm", "unorm_to_float", "interpolation"):
        design = get_design(name)
        behavioural = module_to_ir(design.verilog)[design.output]
        config = OptimizerConfig(
            iter_limit=design.iterations, node_limit=design.node_limit, verify=False
        )
        tool = DatapathOptimizer(design.input_ranges, config)
        result = tool.optimize_verilog(design.verilog).outputs[design.output]
        verdict = check_equivalent(
            behavioural, result.optimized, design.input_ranges, random_trials=3000
        )
        before = min_delay_point(behavioural, design.input_ranges)
        after = min_delay_point(result.optimized, design.input_ranges)
        print(
            f"{name:16s} delay {before.delay:6.1f} -> {after.delay:6.1f}   "
            f"area {before.area:8.1f} -> {after.area:8.1f}   [{verdict}]"
        )
        if name == "unorm_to_float":
            print("\n  optimized RTL:")
            for line in result.emit_verilog(f"{name}_opt").splitlines()[:20]:
                print("  " + line)
            print("  ...\n")


if __name__ == "__main__":
    main()
