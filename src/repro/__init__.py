"""repro — constraint-aware datapath optimization using e-graphs.

A from-scratch Python reproduction of Coward, Constantinides & Drane,
*Automating Constraint-Aware Datapath Optimization using E-Graphs* (DAC
2023, arXiv:2303.01839): an RTL optimizer that couples equality saturation
with an interval-union abstract interpretation so conditional-branch
constraints unlock rewrites that are only valid on a sub-domain.

Quickstart::

    from repro import DatapathOptimizer
    from repro.designs import get_design

    design = get_design("float_to_unorm")
    tool = DatapathOptimizer(design.input_ranges)
    result = tool.optimize_verilog(design.verilog).outputs["out"]
    print(result.emit_verilog())
    print(f"delay -{result.delay_improvement:.0%}  area -{result.area_improvement:.0%}")

Package map (one subsystem per subpackage — see DESIGN.md):
``ir`` (word-level IR), ``intervals`` (the abstract domain A),
``egraph`` (equality saturation engine), ``analysis`` (abstract
interpretation incl. ASSUME refinement), ``rewrites`` (Tables I/II and
friends), ``rtl`` (Verilog frontend/backend), ``synth`` (delay/area models +
gate-level synthesis substitute), ``verify`` (simulation + BDD equivalence),
``opt`` (the end-to-end tool), ``designs`` (the paper's benchmarks).
"""

from repro.opt import DatapathOptimizer, OptimizerConfig

__version__ = "1.0.0"

__all__ = ["DatapathOptimizer", "OptimizerConfig", "__version__"]
