"""Hacker's-Delight bitwise bounds vs brute force."""

from __future__ import annotations

import itertools

import pytest

from repro.intervals.bitops import max_and, max_or, max_xor, min_and, min_or, min_xor

CASES = [
    (0, 7, 0, 7),
    (3, 9, 4, 12),
    (5, 5, 9, 9),
    (0, 255, 128, 255),
    (17, 42, 100, 130),
    (1, 2, 1, 2),
    (64, 127, 0, 63),
]


def brute(op, a_lo, a_hi, b_lo, b_hi):
    values = [
        op(a, b)
        for a, b in itertools.product(range(a_lo, a_hi + 1), range(b_lo, b_hi + 1))
    ]
    return min(values), max(values)


@pytest.mark.parametrize("a_lo,a_hi,b_lo,b_hi", CASES)
def test_or_bounds_sound_and_tight(a_lo, a_hi, b_lo, b_hi):
    lo, hi = brute(lambda a, b: a | b, a_lo, a_hi, b_lo, b_hi)
    assert min_or(a_lo, a_hi, b_lo, b_hi) <= lo
    assert max_or(a_lo, a_hi, b_lo, b_hi) >= hi
    # Hacker's Delight bounds are attainable (exact) for boxes:
    assert min_or(a_lo, a_hi, b_lo, b_hi) == lo
    assert max_or(a_lo, a_hi, b_lo, b_hi) == hi


@pytest.mark.parametrize("a_lo,a_hi,b_lo,b_hi", CASES)
def test_and_bounds_sound_and_tight(a_lo, a_hi, b_lo, b_hi):
    lo, hi = brute(lambda a, b: a & b, a_lo, a_hi, b_lo, b_hi)
    assert min_and(a_lo, a_hi, b_lo, b_hi) == lo
    assert max_and(a_lo, a_hi, b_lo, b_hi) == hi


@pytest.mark.parametrize("a_lo,a_hi,b_lo,b_hi", CASES)
def test_xor_bounds_sound(a_lo, a_hi, b_lo, b_hi):
    lo, hi = brute(lambda a, b: a ^ b, a_lo, a_hi, b_lo, b_hi)
    assert min_xor(a_lo, a_hi, b_lo, b_hi) <= lo
    assert max_xor(a_lo, a_hi, b_lo, b_hi) >= hi


def test_exhaustive_small_boxes():
    """Every box within [0, 15]^2: bounds sound for all three operators."""
    for a_lo in range(16):
        for a_hi in range(a_lo, 16):
            for b_lo in range(16):
                for b_hi in range(b_lo, 16):
                    for op, lo_fn, hi_fn in (
                        (lambda a, b: a | b, min_or, max_or),
                        (lambda a, b: a & b, min_and, max_and),
                        (lambda a, b: a ^ b, min_xor, max_xor),
                    ):
                        lo, hi = brute(op, a_lo, a_hi, b_lo, b_hi)
                        assert lo_fn(a_lo, a_hi, b_lo, b_hi) <= lo
                        assert hi_fn(a_lo, a_hi, b_lo, b_hi) >= hi
