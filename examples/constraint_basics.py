"""The paper's introductory examples, built directly on the library API.

Run:  python examples/constraint_basics.py

1. ``(x > 0 ? fabs(x) : 0) == (x > 0 ? x : 0)``  (Section III-A)
2. ``a == 0 ? a : -a  ==  a == 0 ? 0 : -a``      (Section IV-B)
3. Figure 1: ``LZC(x + y)`` narrows under ``x >= 128``.
"""

from repro.analysis import DatapathAnalysis, range_of
from repro.egraph import EGraph, Extractor, Runner
from repro.intervals import IntervalSet
from repro.ir import abs_, eq, gt, lzc, mux, var
from repro.rewrites import all_rules
from repro.synth import DelayAreaCost
from repro.verify import check_equivalent
from repro.pipeline.budget import Budget


def optimize(expr, input_ranges=None, iters=8):
    graph = EGraph([DatapathAnalysis(dict(input_ranges or {}))])
    root = graph.add_expr(expr)
    graph.rebuild()
    report = Runner(graph, all_rules(), budget=Budget(iters=iters, nodes=6000)).run()
    best = Extractor(graph, DelayAreaCost()).expr_of(root)
    return best, report, graph, root


def main() -> None:
    # --- 1: the fabs example (x as a signed-style offset value) ----------
    x = var("x", 8)
    xs = x - 128                       # value in [-128, 127]
    design = mux(gt(xs, 0), abs_(xs), 0)
    best, report, _, _ = optimize(design)
    print("fabs example:", design)
    print("  optimized ->", best)
    print("  ", check_equivalent(design, best))

    # --- 2: the negation example ------------------------------------------
    a = var("a", 8)
    design2 = mux(eq(a, 0), a, -a)
    best2, _, _, _ = optimize(design2)
    print("negation example:", design2)
    print("  optimized ->", best2)
    print("  ", check_equivalent(design2, best2))

    # --- 3: Figure 1 --------------------------------------------------------
    y = var("y", 8)
    fig1 = lzc(x + y, 9)
    ranges = {"x": IntervalSet.of(128, 255)}
    best3, _, graph, root = optimize(fig1, ranges)
    print("Figure 1:", fig1, "with x >= 128")
    print("  optimized ->", best3)
    print("  LZC range:", range_of(graph, root), "(paper: at most one leading zero)")
    print("  ", check_equivalent(fig1, best3, ranges))


if __name__ == "__main__":
    main()
