"""Guards that keep the suite (and the pipeline) parallel-safe.

The tier-1 CI job runs under ``pytest-xdist -n auto`` and the pipeline
fans work out over process pools at two levels (designs via ``Session``,
cones via ``Shard``).  Both rely on the same substrate: work units pickle,
and everything that dispatches on *identity* survives the trip.  These
tests pin that substrate down; the companion session fixture in
``conftest.py`` guards registry immutability at teardown.
"""

from __future__ import annotations

import pickle

from repro.analysis.sharding import plan_shards
from repro.intervals import IntervalSet
from repro.ir import ops, var
from repro.pipeline import Job, ShardSchedule, ShardTask, execute_job, run_shard_task


def test_jobs_and_shard_tasks_pickle():
    job = Job(name="j", design="stress_wide", shards=2, auto_shard_nodes=64)
    assert pickle.loads(pickle.dumps(job)) == job

    plan = plan_shards(
        {"a": var("x", 8) + var("y", 8)}, {"x": IntervalSet.of(1, 5)}
    )
    task = ShardTask(plan.shards[0], ShardSchedule(iter_limit=2))
    clone = pickle.loads(pickle.dumps(task))
    assert clone.shard.roots == task.shard.roots
    assert clone.shard.input_ranges == task.shard.input_ranges
    assert clone.schedule == task.schedule


def test_worker_entrypoints_pickle_by_reference():
    """Process pools ship the callable too — it must be a named top-level."""
    for fn in (execute_job, run_shard_task):
        assert pickle.loads(pickle.dumps(fn)) is fn


def test_ops_unpickle_to_singletons():
    """The whole codebase dispatches on ``op is ops.X`` — operators crossing
    a process boundary must resolve back to the interned instances."""
    for op in ops.OPS_BY_NAME.values():
        assert pickle.loads(pickle.dumps(op)) is op


def test_interval_sets_unpickle_interned():
    """Regression: unpickling used to route through ``__new__()`` with no
    arguments, returning the interned *empty* set and then overwriting its
    slots in place — after which every ``IntervalSet.empty()`` in the
    process silently held the unpickled set's parts."""
    full = IntervalSet.of(3, 9).union(IntervalSet.of(20, 30))
    clone = pickle.loads(pickle.dumps(full))
    assert clone == full
    assert IntervalSet.empty().parts == ()
    assert IntervalSet.empty().is_empty
    # Interning also holds across the round trip within one process.
    assert clone is full


def test_egraph_pickles_through_compact_core_state():
    """The flat core ships only its arrays + intern tables (``__reduce__``);
    the hashcons, per-op index and parent sets are derived on load.  The
    revived graph must be behaviorally identical: same counts, same
    partition, same invariants — and still *live* (adding a known node
    hits the rebuilt hashcons instead of growing the graph)."""
    from repro.egraph import EGraph

    g = EGraph()
    a = g.add_node(ops.VAR, ("a", 8))
    b = g.add_node(ops.VAR, ("b", 8))
    add = g.add_node(ops.ADD, (), (a, b))
    shl = g.add_node(ops.SHL, (), (a, g.add_node(ops.CONST, (1,))))
    g.union(add, shl)
    g.rebuild()

    clone = pickle.loads(pickle.dumps(g))
    assert clone.class_count == g.class_count
    assert clone.node_count == g.node_count
    assert clone.find(add) == clone.find(shl)
    assert clone.find(a) != clone.find(b)
    clone.check_invariants()
    # The rebuilt hashcons dedups: re-adding an existing node is a no-op.
    before = clone.node_count
    assert clone.find(clone.add_node(ops.ADD, (), (a, b))) == clone.find(add)
    assert clone.node_count == before
    # And the revived graph keeps evolving independently of the original.
    clone.add_node(ops.NEG, (), (a,))
    assert clone.node_count == before + 1
    assert g.node_count == before


def test_expr_hash_cache_does_not_cross_processes():
    """Str hashing is per-process randomized; a pickled Expr must rehash."""
    expr = var("x", 8) + 1
    hash(expr)  # populate the cache
    clone = pickle.loads(pickle.dumps(expr))
    assert object.__getattribute__(clone, "_hash") == -1
    assert clone == expr and hash(clone) == hash(expr)
