"""``repro.lint``: static analysis gating the repo's own invariants.

Three analyzers behind one :func:`run_lint` entry (and the
``python -m repro lint`` CLI):

* ``rules`` — soundness audit of every rewrite in ``RULESETS``
  (:mod:`repro.lint.rules`);
* ``arch`` — layer map, stdlib policy, injectable clocks, shared-state
  globals (:mod:`repro.lint.arch`);
* ``concurrency`` — worker-reachable writes to module state
  (:mod:`repro.lint.concurrency`).

Findings carry stable ids (``<rule-id>@<anchor>``) and may be waived
inline with ``# lint: ok(<rule-id>): <reason>`` — reason-less or unused
waivers are themselves findings, so the suppression ledger stays honest.
"""

from __future__ import annotations

from repro.lint.model import (
    Finding,
    Report,
    SourceTree,
    apply_suppressions,
    load_source_tree,
    scan_suppressions,
)

#: Analyzer names accepted by ``run_lint(only=...)`` / ``repro lint --only``.
ANALYZERS: tuple[str, ...] = ("rules", "arch", "concurrency")


def run_lint(
    root=None,
    only: "tuple[str, ...] | None" = None,
    tree: "SourceTree | None" = None,
) -> Report:
    """Run the selected analyzers and fold in inline suppressions."""
    selected = ANALYZERS if not only else tuple(only)
    unknown = set(selected) - set(ANALYZERS)
    if unknown:
        raise ValueError(f"unknown analyzer(s): {sorted(unknown)}")

    if tree is None:
        tree = load_source_tree(root)

    findings: list[Finding] = []
    audit: list[dict] = []
    checked: dict = {"modules": len(tree.modules)}

    if "rules" in selected:
        from repro.lint.rules import audit_rulesets

        rule_findings, audit = audit_rulesets()
        findings += rule_findings
        checked["rules"] = len(audit)
        checked["rules_proved"] = sum(
            1 for r in audit if r.get("status") == "proved"
        )
    if "arch" in selected:
        from repro.lint.arch import check_arch

        findings += check_arch(tree)
    if "concurrency" in selected:
        from repro.lint.concurrency import check_concurrency

        findings += check_concurrency(tree)

    suppressions = [s for module in tree for s in scan_suppressions(module)]
    findings = apply_suppressions(findings, suppressions)
    checked["suppressions"] = len(suppressions)
    return Report(findings, audit=audit, checked=checked)


__all__ = [
    "ANALYZERS",
    "Finding",
    "Report",
    "SourceTree",
    "run_lint",
]
