"""Perf trajectory harness for the saturation hot path.

Times the `fp_sub` optimize run (iter_limit=4, verification off) that the
engine work is benchmarked against, and emits ``BENCH_perf.json`` at the
repo root — wall time, nodes/sec and the per-phase split from
:class:`~repro.egraph.runner.IterationStats` — so the perf trajectory is
tracked across PRs.  ``BENCH_perf.json`` carries interleaved series,
distinguished by the record's ``job`` field: ``perf:fp_sub`` (the single-
output hot path), ``perf:stress_wide`` (the 8-output monolithic governed
run the flat core unlocked), ``perf:fp_sub_warm`` (cold-vs-warm on an
edited design, pinning the warm-start speedup), ``perf:stress_wide_stitch``
(the stitched sharded run closing the sharding cost gap) and
``perf:fp_sub_ilp`` (the globally optimal DAG-cost extraction, pinning
the ilp objective's never-worse-than-greedy win); the bench-smoke factor
compares each run against the previous entry *of the same series*.

Unlike the paper-figure benches this one is cheap (a few seconds) and runs
in the default test selection, acting as a regression guard: a change that
loses the incremental-engine speedup fails the assertion at the bottom.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import tracemalloc
from pathlib import Path

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import DESIGNS
from repro.pipeline import Budget, Job, RunRecord, execute_job, record_from_context

#: Wall time of the identical workload at the seed commit (2e25767),
#: measured back-to-back with the optimized engine on the same machine.
#: The profiling box cited in ISSUE 1 measured 12.7s for the same run.
SEED_BASELINE_WALL_S = 0.794
ISSUE_BASELINE_WALL_S = 12.7

REPEATS = 3
ITER_LIMIT = 4


#: Records kept in the ``BENCH_perf.json`` trajectory (oldest dropped).
RECORD_HISTORY_CAP = 50

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf.json"


def _load_trajectory() -> tuple[dict, list]:
    """The current ``BENCH_perf.json`` payload and its record history."""
    if BENCH_PATH.exists():
        try:
            payload = json.load(BENCH_PATH.open())
            return payload, payload.get("records", [])
        except (json.JSONDecodeError, AttributeError):
            pass
    return {}, []


def _append_entry(payload: dict, history: list, entry: dict) -> list:
    """Append one record to the capped trajectory and rewrite the file."""
    history = (history + [entry])[-RECORD_HISTORY_CAP:]
    payload["records"] = history
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return history


def _smoke_guard(history: list, job: str, wall: float) -> None:
    """Bench-smoke mode (the CI `bench-smoke` job sets BENCH_SMOKE_FACTOR):
    compare this run's median against the previous trajectory entry *of the
    same job* — the two series interleave in ``BENCH_perf.json``, so a
    blind ``history[-2]`` would compare fp_sub against stress_wide.  On one
    machine this is a tight back-to-back ratio; in CI the previous entry
    may come from a different (faster) box, which is why the bench-smoke
    job is advisory, not a merge gate."""
    factor = float(os.environ.get("BENCH_SMOKE_FACTOR", "0") or 0)
    series = [e for e in history if e.get("job") == job]
    if factor and len(series) >= 2:
        previous = series[-2].get("wall_s")
        if previous:
            assert wall <= previous * factor, (
                f"{job} median regressed >{factor}x vs the last "
                f"BENCH_perf.json entry: {wall:.3f}s vs {previous:.3f}s"
            )


def _run_once() -> tuple[float, "object"]:
    design = DESIGNS["fp_sub"]
    config = OptimizerConfig(
        iter_limit=ITER_LIMIT, node_limit=design.node_limit, verify=False
    )
    tool = DatapathOptimizer(design.input_ranges, config)
    t0 = time.perf_counter()
    result = tool.optimize_verilog(design.verilog)
    return time.perf_counter() - t0, result


def test_perf_fp_sub_optimize():
    walls = []
    result = None
    for _ in range(REPEATS):
        wall, result = _run_once()
        walls.append(wall)
    report = result.report
    wall = statistics.median(walls)
    speedup = SEED_BASELINE_WALL_S / wall

    payload = {
        "design": "fp_sub",
        "iter_limit": ITER_LIMIT,
        "verify": False,
        "repeats": REPEATS,
        "walls_s": [round(w, 4) for w in walls],
        "wall_s": round(wall, 4),
        "wall_min_s": round(min(walls), 4),
        "seed_baseline_wall_s": SEED_BASELINE_WALL_S,
        "issue_baseline_wall_s": ISSUE_BASELINE_WALL_S,
        "speedup_vs_seed": round(speedup, 2),
        "runner_time_s": round(report.total_time, 4),
        "stop_reason": report.stop_reason.value,
        "nodes": report.nodes,
        "classes": report.classes,
        "nodes_per_s": round(report.nodes / report.total_time, 1),
        "iterations": [
            {
                "index": it.index,
                "nodes_before": it.nodes_before,
                "nodes_after": it.nodes_after,
                "classes_before": it.classes_before,
                "classes_after": it.classes_after,
                "applied": sum(it.applied.values()),
                "search_s": round(it.search_time, 4),
                "apply_s": round(it.apply_time, 4),
                "rebuild_s": round(it.rebuild_time, 4),
            }
            for it in report.iterations
        ],
    }

    # Append this run to the trajectory through the Session record format —
    # the same serialization `repro bench --records` emits — so the perf
    # history is machine-readable alongside the headline payload.
    record = record_from_context(
        "perf:fp_sub", "fp_sub", "out", result.context
    )
    record = RunRecord.from_json(record.to_json())  # exercise the round trip
    assert record.nodes_per_s > 0, "RunRecord lost its throughput metric"
    _, history = _load_trajectory()
    entry = record.as_dict()
    entry["wall_s"] = round(wall, 4)
    history = _append_entry(payload, history, entry)

    print(f"\nfp_sub optimize (iter_limit={ITER_LIMIT}, verify off)")
    print(f"  wall {wall:.3f}s (seed {SEED_BASELINE_WALL_S}s, {speedup:.1f}x)")
    for it in payload["iterations"]:
        print(
            f"  it{it['index']}: {it['nodes_before']}->{it['nodes_after']} nodes, "
            f"search {it['search_s']}s apply {it['apply_s']}s "
            f"rebuild {it['rebuild_s']}s"
        )

    # Regression guard: an absolute bound rather than a speedup ratio, so a
    # CI runner a few times slower than the baseline machine doesn't
    # false-fail.  The incremental engine runs this in ~0.2s on the baseline
    # box; reverting to the seed engine costs ~0.8s there and well over 2s
    # on any plausible runner.
    assert wall < 2.0, (
        f"saturation hot path regressed: {wall:.3f}s median "
        f"(seed engine baseline {SEED_BASELINE_WALL_S}s on the same machine)"
    )

    _smoke_guard(history, "perf:fp_sub", wall)


#: Absolute ceiling for the governed monolithic stress_wide run.  The flat
#: core finishes it in well under a second on the baseline box; the old
#: per-object engine tripped the node limit mid-apply and could not finish
#: at any speed, so this guards the capability as much as the wall time.
STRESS_WALL_CEILING_S = 10.0


def test_perf_stress_wide_monolithic_governed():
    """The second ``BENCH_perf.json`` series: ``stress_wide`` (8 output
    cones, one shared e-graph) run monolithically under the design's
    default node budget, governed by a shared time budget.  The flat core's
    eager hashcons re-keying is what lets this complete at all — the series
    exists so a regression back to transient-duplicate allocation shows up
    as a stop-reason/wall change here, not just as fp_sub noise."""
    t0 = time.perf_counter()
    record = execute_job(
        Job(
            name="perf:stress_wide",
            design="stress_wide",
            # The registry's 8k node_limit is the *per-shard* budget; the
            # monolithic series runs under the Saturate stage default (30k),
            # matching the shard-parity acceptance case.  The time budget is
            # generous — it governs but must not bind.
            node_limit=30_000,
            budget=Budget(time_s=60.0),
        )
    )
    wall = time.perf_counter() - t0

    assert record.status == "ok", record.error
    assert record.shards == 0, "stress_wide series must stay monolithic"
    assert record.stop_reason in ("iteration limit", "saturated"), (
        f"monolithic stress_wide no longer completes: {record.stop_reason!r}"
    )
    assert record.nodes_per_s > 0

    payload, history = _load_trajectory()
    entry = record.as_dict()
    entry["wall_s"] = round(wall, 4)
    history = _append_entry(payload, history, entry)

    print(
        f"\nstress_wide monolithic governed: wall {wall:.3f}s, "
        f"{record.nodes} nodes, {record.nodes_per_s:.0f} nodes/s, "
        f"stop {record.stop_reason!r}"
    )
    assert wall < STRESS_WALL_CEILING_S, (
        f"governed monolithic stress_wide regressed: {wall:.3f}s"
    )
    _smoke_guard(history, "perf:stress_wide", wall)


def test_perf_flat_core_peak_memory_no_worse_than_legacy(monkeypatch):
    """``tracemalloc`` peak-bytes guard: the flat struct-of-arrays core must
    not allocate a higher peak than the legacy per-object engine on the
    bench workload.  The arrays exist to *shrink* the resident graph (no
    per-node objects, no per-class dict-of-ENode churn), so a flat peak
    above the object peak means a leak in the core, not noise."""
    import gc

    import repro.pipeline.stages as stages
    from repro.egraph import EGraph
    from repro.egraph.legacy import LegacyEGraph
    from repro.pipeline import Extract, Ingest, Pipeline, Saturate
    from repro.rewrites import compose_rules

    design = DESIGNS["fp_sub"]

    def run_once(engine_cls) -> None:
        monkeypatch.setattr(stages, "EGraph", engine_cls)
        Pipeline(
            [
                Ingest(source=design.verilog),
                Saturate(
                    compose_rules(),
                    iter_limit=ITER_LIMIT,
                    node_limit=design.node_limit,
                ),
                Extract(),
            ]
        ).run(input_ranges=design.input_ranges)

    def peak_bytes(engine_cls) -> int:
        gc.collect()
        tracemalloc.start()
        try:
            run_once(engine_cls)
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    # Warm both engines untraced first: whichever runs first otherwise pays
    # the one-time population of process-global caches (operator cost memo,
    # interned interval sets, compiled matchers) inside its traced peak.
    run_once(EGraph)
    run_once(LegacyEGraph)
    flat = peak_bytes(EGraph)
    legacy = peak_bytes(LegacyEGraph)
    print(
        f"\nfp_sub saturation peak: flat {flat / 1e6:.2f} MB, "
        f"legacy {legacy / 1e6:.2f} MB ({flat / legacy:.2f}x)"
    )
    assert flat <= legacy, (
        f"flat core peak memory regressed past the object engine: "
        f"{flat} bytes vs {legacy} bytes"
    )


#: Minimum median speedup of a warm-started re-optimization of an *edited*
#: fp_sub over the cold run of the same edited source.  The edit exposes an
#: already-explored internal wire as a new output — the realistic
#: resubmission the artifact tier exists for — so the warm run re-interns
#: with an empty delta and goes straight to extraction.  Measured ~3x on
#: the baseline box; the floor leaves slack for noisy runners.
WARM_SPEEDUP_FLOOR = 2.0

WARM_KNOBS = dict(iter_limit=8, node_limit=10_000)


def test_perf_fp_sub_warm(tmp_path):
    """The ``perf:fp_sub_warm`` series: cold-vs-warm on an edited design.

    Seeds the family artifact from the unedited ``fp_sub``, then times the
    *edited* design (a new ``expdiff_out`` output over the existing
    ``expdiff`` wire) cold and warm, interleaved.  Pins the PR-8 acceptance
    bar: warm median >= 2x faster at the identical extracted cost."""
    design = DESIGNS["fp_sub"]
    edited = design.verilog.replace(
        "output [9:0] out", "output [9:0] out,\n  output [4:0] expdiff_out"
    ).replace("endmodule", "  assign expdiff_out = expdiff;\nendmodule")
    assert edited != design.verilog

    artifact = tmp_path / "fp_sub.egraph"
    seed = execute_job(
        Job(
            name="seed:fp_sub",
            design="fp_sub",
            save_egraph=str(artifact),
            **WARM_KNOBS,
        )
    )
    assert seed.status == "ok", seed.error

    def run(warm: bool):
        t0 = time.perf_counter()
        record = execute_job(
            Job(
                name="perf:fp_sub_warm" if warm else "cold:fp_sub_warm",
                design="fp_sub",
                source=edited,
                warm_start=str(artifact) if warm else None,
                **WARM_KNOBS,
            )
        )
        assert record.status == "ok", record.error
        return time.perf_counter() - t0, record

    colds, warms = [], []
    cold = warm = None
    for _ in range(REPEATS):
        wall, cold = run(warm=False)
        colds.append(wall)
        wall, warm = run(warm=True)
        warms.append(wall)

    cold_wall = statistics.median(colds)
    warm_wall = statistics.median(warms)
    speedup = cold_wall / warm_wall

    assert warm.warm_start.startswith("hit:"), warm.warm_start
    assert (warm.optimized_area, warm.optimized_delay) == (
        cold.optimized_area,
        cold.optimized_delay,
    ), "warm start changed the extracted cost"

    payload, history = _load_trajectory()
    entry = warm.as_dict()
    entry["wall_s"] = round(warm_wall, 4)
    entry["cold_wall_s"] = round(cold_wall, 4)
    entry["speedup_vs_cold"] = round(speedup, 2)
    history = _append_entry(payload, history, entry)

    print(
        f"\nfp_sub edited resubmission: cold {cold_wall:.3f}s, "
        f"warm {warm_wall:.3f}s ({speedup:.2f}x), "
        f"cost {warm.optimized_area}/{warm.optimized_delay}, "
        f"{warm.warm_start!r}"
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm start no longer pays: {speedup:.2f}x median "
        f"(cold {cold_wall:.3f}s, warm {warm_wall:.3f}s)"
    )
    _smoke_guard(history, "perf:fp_sub_warm", warm_wall)


def test_perf_stress_wide_stitch(tmp_path):
    """The ``perf:stress_wide_stitch`` series: the stitched sharded run must
    close the sharding cost gap — no costlier than the plain merge *or* the
    monolithic run — while its wall stays on the trajectory."""
    knobs = dict(design="stress_wide", iter_limit=3, node_limit=8_000)
    mono = execute_job(Job(name="mono", **knobs))
    plain = execute_job(Job(name="plain", shards=4, **knobs))
    t0 = time.perf_counter()
    stitched = execute_job(
        Job(name="perf:stress_wide_stitch", shards=4, stitch=True, **knobs)
    )
    wall = time.perf_counter() - t0

    for record in (mono, plain, stitched):
        assert record.status == "ok", record.error
    assert stitched.stitch.startswith("stitched:"), stitched.stitch
    assert stitched.optimized_area <= plain.optimized_area, (
        "stitch made the sharded run costlier than the plain merge"
    )
    assert stitched.optimized_area <= mono.optimized_area, (
        "stitched sharded run still behind the monolithic cost"
    )
    assert stitched.optimized_delay <= plain.optimized_delay
    assert stitched.optimized_delay <= mono.optimized_delay

    payload, history = _load_trajectory()
    entry = stitched.as_dict()
    entry["wall_s"] = round(wall, 4)
    entry["plain_area"] = plain.optimized_area
    entry["mono_area"] = mono.optimized_area
    history = _append_entry(payload, history, entry)

    print(
        f"\nstress_wide stitched (4 shards): wall {wall:.3f}s, "
        f"area {stitched.optimized_area} (plain {plain.optimized_area}, "
        f"mono {mono.optimized_area}), {stitched.stitch!r}"
    )
    _smoke_guard(history, "perf:stress_wide_stitch", wall)


#: Minimum fraction of a governed run's wall the per-stage ledger must
#: account for.  Extraction and verification used to run entirely outside
#: the budget; this canary fails if a future stage re-opens that escape
#: hatch (an unledgered stage shows up as ledger coverage dropping).
LEDGER_COVERAGE_FLOOR = 0.95


def test_perf_fp_sub_budget_ledger_coverage():
    """The governed fp_sub run's ``RunRecord.budget`` ledger accounts for
    ~all of the total wall — no unledgered stages (the bench-smoke job's
    second assertion, alongside the median-regression factor)."""
    record = execute_job(
        Job(
            name="ledger:fp_sub",
            design="fp_sub",
            iter_limit=ITER_LIMIT,
            verify=True,
            # Generous: the ceiling must not bind — this measures coverage,
            # not degradation (verify on fp_sub degrades BDD -> random).
            budget=Budget(time_s=120.0),
        )
    )
    assert record.status == "ok", record.error
    stages = record.budget["stages"]
    for label in ("ingest", "saturate", "extract", "verify"):
        assert label in stages, f"stage {label!r} missing from the ledger"
    ledgered = sum(row["spent"]["time_s"] for row in stages.values())
    total = record.budget["spent"]["time_s"]
    coverage = ledgered / total if total else 1.0
    print(
        f"\nfp_sub governed run: {ledgered:.3f}s of {total:.3f}s ledgered "
        f"({coverage:.1%})"
    )
    assert coverage >= LEDGER_COVERAGE_FLOOR, (
        f"budget ledger covers only {coverage:.1%} of the run's wall — "
        "some stage is spending outside the ledger"
    )


def test_perf_fp_sub_ilp():
    """The ``perf:fp_sub_ilp`` series: globally optimal (DAG-cost)
    extraction via the governed ILP branch-and-bound, against the greedy
    objective on every registry design.

    Two claims, both on the DAG metric (shared subterms priced once — the
    objective the solver optimizes; ``optimized_*`` stay tree costs):

    * the ilp objective is **never worse** than greedy on any design (the
      stage's adoption gate makes this structural, the bench keeps it
      honest end-to-end);
    * it is **strictly better** on at least one (the sharing-heavy designs
      — fp_sub's duplicated mantissa datapath, stress_wide's reused lanes —
      are where tree-greedy provably overpays).

    The fp_sub ilp record lands in ``BENCH_perf.json`` so the win and the
    solver's wall cost are tracked across PRs like every other series.
    """
    from repro.synth.cost import default_key

    strict_wins = []
    ilp_fp_sub = None
    ilp_wall_fp_sub = 0.0
    for design in sorted(DESIGNS):
        greedy = execute_job(
            Job(name=design, design=design, iter_limit=ITER_LIMIT, verify=False)
        )
        t0 = time.perf_counter()
        ilp = execute_job(
            Job(
                name="perf:fp_sub_ilp" if design == "fp_sub" else design,
                design=design,
                iter_limit=ITER_LIMIT,
                verify=False,
                extract_objective="ilp",
            )
        )
        wall = time.perf_counter() - t0
        assert greedy.status == "ok", greedy.error
        assert ilp.status == "ok", ilp.error
        assert ilp.extract_objective == "ilp"
        greedy_key = default_key(greedy.dag_delay, greedy.dag_area)
        ilp_key = default_key(ilp.dag_delay, ilp.dag_area)
        assert ilp_key <= greedy_key, (
            f"{design}: ilp DAG cost {ilp_key} worse than greedy {greedy_key}"
        )
        if ilp_key < greedy_key:
            strict_wins.append(design)
        if design == "fp_sub":
            ilp_fp_sub, ilp_wall_fp_sub = ilp, wall
        print(
            f"\n{design}: greedy dag ({greedy.dag_delay:.1f}, "
            f"{greedy.dag_area:.1f}) -> ilp ({ilp.dag_delay:.1f}, "
            f"{ilp.dag_area:.1f}) [{ilp.extract_status}] {wall:.2f}s"
        )

    assert strict_wins, (
        "the ilp objective matched greedy everywhere — the DAG-sharing win "
        "(expected on fp_sub/stress_wide) has regressed to a tie"
    )

    payload, history = _load_trajectory()
    entry = ilp_fp_sub.as_dict()
    entry["wall_s"] = round(ilp_wall_fp_sub, 4)
    history = _append_entry(payload, history, entry)
    _smoke_guard(history, "perf:fp_sub_ilp", ilp_wall_fp_sub)
