"""Mux algebra: condition splitting (eqs. (6)/(7)), propagation, pruning.

``mux-pull`` is the paper's "mux propagation" — ``a op (b ? c : d) ->
b ? (a op c) : (a op d)`` — implemented dynamically for every strict
operator and child position, so an introduced case split migrates to the
output where Table I's branch-ASSUME rule can take over (Section V).

``mux-cond-const`` is the Section VI dead-code rule: ``c ? a : b -> b`` when
the analysis proves ``A[[c]] == [0, 0]`` (and symmetrically for always-true).
"""

from __future__ import annotations

from repro.analysis import range_of, total_of
from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.egraph.rewrite import Rewrite, dynamic
from repro.ir import ops
from repro.rewrites.soundness import boolean, drule, total

#: Strict operators through which a mux may be pulled upward.
_PULLABLE = (
    ops.ADD, ops.SUB, ops.MUL, ops.NEG, ops.SHL, ops.SHR,
    ops.AND, ops.OR, ops.XOR, ops.NOT, ops.LNOT,
    ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE,
    ops.LZC, ops.TRUNC, ops.SLICE, ops.CONCAT, ops.ABS, ops.MIN, ops.MAX,
)


def mux_rules() -> list[Rewrite]:
    """Structural mux rules (no analysis needed beyond guards)."""
    return [
        drule("mux-same", "(mux ?c ?a ?a)", "?a"),
        # An unselected branch is never evaluated: dropping it needs no
        # totality proof (hence ``unguarded``).
        drule("mux-true", "(mux 1 ?a ?b)", "?a", unguarded=("b",)),
        drule("mux-false", "(mux 0 ?a ?b)", "?b", unguarded=("a",)),
        drule("mux-not", "(mux (lnot ?c) ?a ?b)", "(mux ?c ?b ?a)"),
        # eq. (6): (a && b) ? c : d  ->  a ? (b ? c : d) : d
        drule(
            "mux-and-split",
            "(mux (& ?a ?b) ?c ?d)",
            "(mux ?a (mux ?b ?c ?d) ?d)",
            boolean("a", "b"),
            total("b"),
        ),
        # eq. (7): (a || b) ? c : d  ->  a ? c : (b ? c : d)
        drule(
            "mux-or-split",
            "(mux (| ?a ?b) ?c ?d)",
            "(mux ?a ?c (mux ?b ?c ?d))",
            boolean("a", "b"),
            total("b"),
        ),
    ]


def mux_pull_rule() -> Rewrite:
    """Pull a mux from any operand position up through a strict operator."""

    def search(egraph: EGraph, index: dict):
        for op in _PULLABLE:
            for class_id, enode in index.get(op, ()):
                for position, child in enumerate(enode.children):
                    child_root = egraph.find(child)
                    for inner in egraph[child_root].nodes:
                        if inner.op is ops.MUX:
                            yield (
                                egraph.find(class_id),
                                {"outer": enode, "pos": position, "mux": inner},
                            )

    def apply(egraph: EGraph, env: dict, class_id: int):
        outer: ENode = env["outer"]
        position: int = env["pos"]
        inner: ENode = env["mux"]
        cond, if_true, if_false = inner.children
        # Pulling a mux through a strict op requires the *other* operands to
        # stay put; the condition hoists above the op, which is sound because
        # the op is strict and evaluates identically on both branch copies.
        kids_t = list(outer.children)
        kids_t[position] = if_true
        kids_f = list(outer.children)
        kids_f[position] = if_false
        on_true = egraph.add_node(outer.op, outer.attrs, tuple(kids_t))
        on_false = egraph.add_node(outer.op, outer.attrs, tuple(kids_f))
        return egraph.add_node(ops.MUX, (), (cond, on_true, on_false))

    return dynamic("mux-pull", search, apply)


def mux_cond_const_rule() -> Rewrite:
    """Prune a mux whose condition the analysis proves constant (Sec. VI)."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.MUX, ()):
            cond, if_true, if_false = enode.children
            if not total_of(egraph, cond):
                continue
            verdict = range_of(egraph, cond).truthiness()
            if verdict is True:
                yield egraph.find(class_id), {"keep": if_true}
            elif verdict is False:
                yield egraph.find(class_id), {"keep": if_false}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.find(env["keep"])

    return dynamic("mux-cond-const", search, apply)
