"""Immutable expression trees and a small construction DSL.

:class:`Expr` is a frozen tree node: an operator, positional attributes and
child expressions.  Arithmetic Python operators are overloaded for
readability when writing designs (``a + b``, ``x >> 3``); comparison
operators are deliberately *not* overloaded (that would break ``==`` for
structural equality), use :func:`lt`, :func:`eq`, ... instead.

Integers auto-lift to ``CONST`` nodes in every builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.ir import ops
from repro.ir.ops import Op

ExprLike = "Expr | int"


@dataclass(frozen=True, slots=True)
class Expr:
    """A node of an expression tree (operator, attributes, children)."""

    op: Op
    attrs: tuple = ()
    children: tuple["Expr", ...] = ()
    #: Cached structural hash (computed lazily; -1 = not yet computed).  The
    #: tree analyses memoize on Expr keys, and without the cache every dict
    #: probe rehashes the whole subtree — O(n^2) on deep designs.
    _hash: int = field(init=False, repr=False, compare=False, default=-1)

    def __hash__(self) -> int:
        cached = self._hash
        if cached == -1:
            cached = hash((self.op, self.attrs, self.children))
            if cached == -1:
                cached = -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # The cached hash must NOT cross process boundaries: str hashing is
        # per-process randomized, so a pickled hash would disagree with
        # hashes computed in the receiving process and corrupt dict lookups.
        return (self.op, self.attrs, self.children)

    def __setstate__(self, state) -> None:
        op, attrs, children = state
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "attrs", attrs)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", -1)

    def __post_init__(self) -> None:
        if self.op.arity is not None and len(self.children) != self.op.arity:
            raise ValueError(
                f"{self.op.name} expects {self.op.arity} children, "
                f"got {len(self.children)}"
            )
        if self.op is ops.ASSUME and len(self.children) < 2:
            raise ValueError("ASSUME needs an expression and >= 1 constraint")
        if len(self.attrs) != len(self.op.attr_names):
            raise ValueError(
                f"{self.op.name} expects attrs {self.op.attr_names}, "
                f"got {self.attrs!r}"
            )

    # ----------------------------------------------------------- leaf helpers
    @property
    def is_const(self) -> bool:
        return self.op is ops.CONST

    @property
    def is_var(self) -> bool:
        return self.op is ops.VAR

    @property
    def value(self) -> int:
        """Value of a CONST node."""
        if self.op is not ops.CONST:
            raise TypeError(f"not a CONST: {self.op}")
        return self.attrs[0]

    @property
    def var_name(self) -> str:
        """Name of a VAR node."""
        if self.op is not ops.VAR:
            raise TypeError(f"not a VAR: {self.op}")
        return self.attrs[0]

    @property
    def var_width(self) -> int:
        """Declared width of a VAR node."""
        if self.op is not ops.VAR:
            raise TypeError(f"not a VAR: {self.op}")
        return self.attrs[1]

    # -------------------------------------------------------------- traversal
    def walk(self) -> Iterator["Expr"]:
        """Yield every node of the tree, parents before children."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def count_nodes(self) -> int:
        """Number of *distinct* subterms (DAG size)."""
        seen: set[Expr] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.children)
        return len(seen)

    def depth(self) -> int:
        """Height of the tree (leaf = 1)."""
        memo: dict[Expr, int] = {}

        def rec(node: "Expr") -> int:
            if node in memo:
                return memo[node]
            if not node.children:
                memo[node] = 1
            else:
                memo[node] = 1 + max(rec(c) for c in node.children)
            return memo[node]

        return rec(self)

    # ------------------------------------------------------ operator sugar
    def __add__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.ADD, (), (self, _lift(other)))

    def __radd__(self, other: int) -> "Expr":
        return Expr(ops.ADD, (), (_lift(other), self))

    def __sub__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.SUB, (), (self, _lift(other)))

    def __rsub__(self, other: int) -> "Expr":
        return Expr(ops.SUB, (), (_lift(other), self))

    def __mul__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.MUL, (), (self, _lift(other)))

    def __rmul__(self, other: int) -> "Expr":
        return Expr(ops.MUL, (), (_lift(other), self))

    def __neg__(self) -> "Expr":
        return Expr(ops.NEG, (), (self,))

    def __lshift__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.SHL, (), (self, _lift(other)))

    def __rshift__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.SHR, (), (self, _lift(other)))

    def __and__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.AND, (), (self, _lift(other)))

    def __or__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.OR, (), (self, _lift(other)))

    def __xor__(self, other: "Expr | int") -> "Expr":
        return Expr(ops.XOR, (), (self, _lift(other)))

    # ---------------------------------------------------------------- display
    def __repr__(self) -> str:
        return pretty(self)


def _lift(value: "Expr | int") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return const(value)
    raise TypeError(f"cannot lift {value!r} into an Expr")


# --------------------------------------------------------------- constructors
def var(name: str, width: int) -> Expr:
    """An unsigned input variable of the given bitwidth."""
    if width <= 0:
        raise ValueError(f"variable width must be positive, got {width}")
    return Expr(ops.VAR, (name, width))


def const(value: int) -> Expr:
    """An integer literal."""
    return Expr(ops.CONST, (int(value),))


def mux(cond: "Expr | int", if_true: "Expr | int", if_false: "Expr | int") -> Expr:
    """The ternary ``cond ? if_true : if_false``."""
    return Expr(ops.MUX, (), (_lift(cond), _lift(if_true), _lift(if_false)))


def assume(expr: "Expr | int", *constraints: "Expr | int") -> Expr:
    """``ASSUME(expr, c1, ..., cn)`` — ``expr`` where all ``ci`` hold, else ``*``."""
    if not constraints:
        raise ValueError("assume() needs at least one constraint")
    kids = (_lift(expr),) + tuple(_lift(c) for c in constraints)
    return Expr(ops.ASSUME, (), kids)


def lzc(value: "Expr | int", width: int) -> Expr:
    """Leading-zero count of ``value`` viewed as a ``width``-bit vector."""
    return Expr(ops.LZC, (width,), (_lift(value),))


def trunc(value: "Expr | int", width: int) -> Expr:
    """``value mod 2**width`` (explicit hardware wrap)."""
    return Expr(ops.TRUNC, (width,), (_lift(value),))


def slice_(value: "Expr | int", hi: int, lo: int) -> Expr:
    """Bit slice ``value[hi:lo]`` (inclusive, hi >= lo)."""
    if hi < lo:
        raise ValueError(f"slice [{hi}:{lo}] is empty")
    return Expr(ops.SLICE, (hi, lo), (_lift(value),))


def concat(msbs: "Expr | int", lsbs: "Expr | int", rhs_width: int) -> Expr:
    """Concatenation ``{msbs, lsbs}`` where ``lsbs`` is ``rhs_width`` bits."""
    return Expr(ops.CONCAT, (rhs_width,), (_lift(msbs), _lift(lsbs)))


def lt(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a < b``."""
    return Expr(ops.LT, (), (_lift(a), _lift(b)))


def le(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a <= b``."""
    return Expr(ops.LE, (), (_lift(a), _lift(b)))


def gt(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a > b``."""
    return Expr(ops.GT, (), (_lift(a), _lift(b)))


def ge(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a >= b``."""
    return Expr(ops.GE, (), (_lift(a), _lift(b)))


def eq(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a == b``."""
    return Expr(ops.EQ, (), (_lift(a), _lift(b)))


def ne(a: "Expr | int", b: "Expr | int") -> Expr:
    """1-bit ``a != b``."""
    return Expr(ops.NE, (), (_lift(a), _lift(b)))


def lnot(a: "Expr | int") -> Expr:
    """Logical negation: 1 iff ``a == 0``."""
    return Expr(ops.LNOT, (), (_lift(a),))


def bitnot(a: "Expr | int", width: int) -> Expr:
    """Bitwise complement at the given width."""
    return Expr(ops.NOT, (width,), (_lift(a),))


def abs_(a: "Expr | int") -> Expr:
    """Absolute value."""
    return Expr(ops.ABS, (), (_lift(a),))


def min_(a: "Expr | int", b: "Expr | int") -> Expr:
    """Two-input minimum."""
    return Expr(ops.MIN, (), (_lift(a), _lift(b)))


def max_(a: "Expr | int", b: "Expr | int") -> Expr:
    """Two-input maximum."""
    return Expr(ops.MAX, (), (_lift(a), _lift(b)))


# -------------------------------------------------------------------- display
def pretty(expr: Expr) -> str:
    """Compact s-expression-ish rendering used by ``repr``."""
    if expr.op is ops.VAR:
        return expr.var_name
    if expr.op is ops.CONST:
        return str(expr.value)
    if expr.op is ops.MUX:
        c, t, f = (pretty(k) for k in expr.children)
        return f"({c} ? {t} : {f})"
    if expr.op is ops.ASSUME:
        inner = pretty(expr.children[0])
        conds = ", ".join(pretty(c) for c in expr.children[1:])
        return f"assume({inner} | {conds})"
    if expr.op.symbol and expr.op.arity == 2:
        a, b = (pretty(k) for k in expr.children)
        return f"({a} {expr.op.symbol} {b})"
    if expr.op.symbol and expr.op.arity == 1:
        return f"{expr.op.symbol}{pretty(expr.children[0])}"
    if expr.op is ops.SLICE:
        hi, lo = expr.attrs
        return f"{pretty(expr.children[0])}[{hi}:{lo}]"
    attrs = ",".join(str(a) for a in expr.attrs)
    kids = ", ".join(pretty(k) for k in expr.children)
    tag = expr.op.name.lower()
    if attrs:
        return f"{tag}<{attrs}>({kids})"
    return f"{tag}({kids})"


def subterms(exprs: Iterable[Expr]) -> set[Expr]:
    """All distinct subterms across several roots."""
    seen: set[Expr] = set()
    stack = list(exprs)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.children)
    return seen
