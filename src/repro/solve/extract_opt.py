"""``OptimalExtract``: the ILP extraction objective behind the Extract hook.

The stage *is* an :class:`~repro.pipeline.stages.Extract` (same ``name``,
same anytime/governed contract): it first runs the greedy phase unchanged —
that is the warm start and the never-worse floor — then refines each output
cone through the branch-and-bound of :mod:`repro.solve.ilp`, adopting a
cone's solution only when its **DAG cost** (:func:`repro.synth.treecost.dag_cost`,
shared subterms priced once) strictly beats the greedy tree's.  Guarantees:

* **never worse than greedy** — adoption is gated on a strict DAG-cost win
  measured on the rebuilt trees, so whatever the solver did internally, the
  extracted design is the greedy one or a cheaper one;
* **never raises past greedy** — quota blow-ups (cone bigger than
  ``max_classes``), infeasible warm starts, rebuild failures and solver
  errors all degrade to the greedy tree for that cone, with the reason in
  the provenance map;
* **anytime** — the refinement races ``min(governor work deadline, stage
  time_limit)``, splitting the remaining window evenly across the cones
  still pending; expiry keeps the best incumbent (``"incumbent"``
  provenance), a drained search proves optimality (``"optimal"``).

Cones come from :func:`repro.analysis.sharding.plan_shards`'s per-output
plan — the same decomposition the sharded pipeline uses — so the program
stays tractable on wide designs; cross-cone sharing is deliberately outside
the objective (each cone optimizes its own DAG).
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.analysis.sharding import plan_shards
from repro.egraph import ExtractReport
from repro.ir import ops
from repro.ir.expr import Expr
from repro.pipeline.budget import Budget
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import Extract, _stage_window
from repro.solve.ilp import (
    extraction_problem,
    feasible_selection,
    solve_extraction,
)
from repro.synth.cost import DelayAreaCost
from repro.synth.treecost import dag_cost, model_cost

__all__ = ["OptimalExtract"]


class _RebuildError(Exception):
    """Internal: a selection could not be rebuilt into an expression."""


class OptimalExtract(Extract):
    """Globally optimal (DAG-cost) extraction, greedy-incumbent anytime.

    Drop-in for :class:`~repro.pipeline.stages.Extract` (``name`` stays
    ``"extract"`` so ledgers, timings and the verify-aware window treat it
    as the extraction stage).  ``time_limit`` caps the refinement wall even
    on ungoverned runs — a branch-and-bound proof must never stall a
    pipeline that asked for no budget; ``max_classes`` is the per-cone
    model-size quota and ``max_steps`` the per-cone search quota.
    """

    name = "extract"
    self_charging = True

    def __init__(
        self,
        key: Callable[[float, float], tuple] | None = None,
        strip_assumes: bool = False,
        label: str | None = None,
        time_limit: float = 2.0,
        max_classes: int = 4000,
        max_steps: int = 50_000,
    ) -> None:
        super().__init__(key=key, strip_assumes=strip_assumes, label=label)
        self.time_limit = time_limit
        self.max_classes = max_classes
        self.max_steps = max_steps

    # ------------------------------------------------------------------ run
    def run(self, ctx: PipelineContext) -> None:
        # Phase 1 — the greedy stage, unchanged: fills ctx.extracted /
        # ctx.optimized_costs, appends its ExtractReport, charges its own
        # ledger row.  This is both the warm start and the anytime floor.
        super().run(ctx)

        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        started = clock()
        deadline = started + self.time_limit
        if governor is not None and not math.isinf(governor.work_deadline):
            deadline = min(deadline, governor.work_deadline)

        greedy_report = ctx.extract_reports[-1] if ctx.extract_reports else None
        greedy = self._extractor
        provenance: dict[str, str] = {}
        detail: dict[str, dict] = {}
        total_steps = 0
        try:
            if greedy is None or greedy_report is None or not greedy_report.complete:
                # The greedy phase itself ran out of budget: its best-so-far
                # checkpoint is the incumbent, and there is nothing left to
                # spend on a proof.
                provenance = {name: "incumbent" for name in ctx.roots}
            else:
                total_steps = self._refine(
                    ctx, greedy, clock, deadline, provenance, detail
                )
        except Exception as err:  # never worse than greedy, never a raise
            reason = f"{type(err).__name__}: {err}"
            for name in ctx.roots:
                provenance.setdefault(name, "fallback:error")
            detail["error"] = {"reason": reason}
        finally:
            elapsed = clock() - started
            ctx.artifacts["extract_objective"] = "ilp"
            ctx.artifacts["extract_ilp"] = {
                "roots": dict(provenance),
                "detail": detail,
            }
            ctx.extract_reports.append(
                ExtractReport(
                    status=self._overall(provenance),
                    total_time=elapsed,
                    steps=total_steps,
                    roots=dict(provenance),
                )
            )
            if governor is not None:
                governor.charge(
                    self.name,
                    time_s=elapsed,
                    allocated=Budget(
                        time_s=round(_stage_window(deadline, started), 6)
                    ),
                )

    # ----------------------------------------------------------- refinement
    def _refine(
        self,
        ctx: PipelineContext,
        greedy,
        clock,
        deadline: float,
        provenance: dict[str, str],
        detail: dict[str, dict],
    ) -> int:
        """Solve per cone; adopt strict DAG-cost wins.  Returns steps."""
        egraph = ctx.require_egraph()
        cost_fn = DelayAreaCost(self.key)
        greedy_choice = greedy.selection()
        plan = plan_shards(ctx.roots, ctx.input_ranges)  # per-output cones
        total_steps = 0
        pending = len(plan.shards)
        for shard in plan.shards:
            now = clock()
            if now >= deadline:
                for name in shard.outputs:
                    provenance[name] = "incumbent"
                pending -= 1
                continue
            cone_deadline = now + (deadline - now) / pending
            pending -= 1
            tag, steps = self._solve_cone(
                ctx, egraph, cost_fn, greedy_choice, greedy, shard,
                cone_deadline, clock, detail,
            )
            total_steps += steps
            for name in shard.outputs:
                provenance[name] = tag
        return total_steps

    def _solve_cone(
        self,
        ctx: PipelineContext,
        egraph,
        cost_fn,
        greedy_choice,
        greedy,
        shard,
        cone_deadline: float,
        clock,
        detail: dict[str, dict],
    ) -> tuple[str, int]:
        """One cone: build the program, solve, rebuild, maybe adopt."""
        cone_roots = [ctx.root_ids[name] for name in shard.outputs]
        problem = extraction_problem(
            egraph, cone_roots, cost_fn, max_classes=self.max_classes
        )
        label = "+".join(shard.outputs)
        if problem is None:
            detail[label] = {"reason": "quota", "max_classes": self.max_classes}
            return "fallback:quota", 0
        incumbent = feasible_selection(problem, prefer=greedy_choice)
        if incumbent is None:
            detail[label] = {"reason": "infeasible"}
            return "fallback:infeasible", 0
        result = solve_extraction(
            problem,
            incumbent=incumbent,
            deadline=cone_deadline,
            clock=clock,
            max_steps=self.max_steps,
        )
        if result is None:
            detail[label] = {"reason": "infeasible"}
            return "fallback:infeasible", 0
        tag = result.status  # "optimal" | "incumbent"
        info = {
            "steps": result.steps,
            "variables": problem.variables(),
            "classes": problem.size,
            "solver_delay": round(result.delay, 6),
            "solver_area": round(result.area, 6),
            "adopted": False,
        }
        detail[label] = info
        if result.improved:
            adopted = self._adopt(ctx, egraph, problem, result.selection, greedy, shard)
            info["adopted"] = adopted
            if not adopted and tag == "optimal":
                # The solver's model disagreed with the tree-level measure
                # (or the rebuild failed): the greedy tree stays, and the
                # claim of optimality no longer applies to the output.
                tag = "incumbent"
        return tag, result.steps

    def _adopt(
        self, ctx, egraph, problem, selection, greedy, shard
    ) -> bool:
        """Rebuild the solution and swap it in on a strict DAG-cost win."""
        try:
            rebuilt = self._build_exprs(egraph, problem, selection, greedy)
        except (_RebuildError, RecursionError):
            return False
        adopted = False
        for name in shard.outputs:
            root = egraph.find(ctx.root_ids[name])
            expr = rebuilt.get(root)
            if expr is None:
                continue
            # The adoption gate measures both sides in tree space with the
            # DAG metric — whatever modeling gap exists between the e-graph
            # program and the rebuilt tree, the swapped-in design is
            # verifiably cheaper in the objective the bench asserts.
            new_cost = dag_cost(expr, ctx.input_ranges)
            old_cost = dag_cost(ctx.extracted[name], ctx.input_ranges)
            if self.key(new_cost.delay, new_cost.area) < self.key(
                old_cost.delay, old_cost.area
            ):
                ctx.extracted[name] = expr
                ctx.optimized_costs[name] = model_cost(expr, ctx.input_ranges)
                adopted = True
        return adopted

    def _build_exprs(
        self, egraph, problem, selection, greedy
    ) -> dict[int, Expr]:
        """Expressions for the cone roots under the solved selection.

        ``ASSUME`` constraint children are not part of the program (they
        never contribute hardware), so they are re-attached from the greedy
        extractor's trees — any member of the constraint class is
        semantically interchangeable there.
        """
        find = egraph.find
        candidates = problem.candidates
        memo: dict[int, Expr] = {}

        def build(cid: int) -> Expr:
            done = memo.get(cid)
            if done is not None:
                return done
            chosen = candidates[cid][selection[cid]]
            enode = chosen.payload
            if enode.op is ops.ASSUME:
                guarded = build(chosen.children[0])
                if self.strip_assumes:
                    expr = guarded
                else:
                    constraints = []
                    for child in enode.children[1:]:
                        built = greedy.try_expr_of(child)
                        if built is None:
                            raise _RebuildError(f"constraint class {child}")
                        constraints.append(built)
                    expr = Expr(ops.ASSUME, (), (guarded, *constraints))
            else:
                kids = tuple(build(find(k)) for k in enode.children)
                expr = Expr(enode.op, enode.attrs, kids)
            memo[cid] = expr
            return expr

        return {root: build(root) for root in problem.roots}

    @staticmethod
    def _overall(provenance: dict[str, str]) -> str:
        """One status for the report: the least-settled cone wins."""
        tags = set(provenance.values())
        if tags and all(tag == "optimal" for tag in tags):
            return "ilp:optimal"
        if "incumbent" in tags:
            return "ilp:incumbent"
        return "ilp:fallback"
