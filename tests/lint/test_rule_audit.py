"""Mutation self-test for the rule-soundness auditor.

Two halves, per the subsystem's acceptance bar:

* a corpus of deliberately broken rules — dropped variable without a
  guard, impure condition, semantically unsound identity, RHS using an
  unbound variable — each of which the auditor must flag;
* the shipped rulesets, every one of which the auditor must pass, with
  every declarative rule carrying an exhaustive proof (or a recorded
  trial budget) and every dynamic rule a contract.
"""

from __future__ import annotations

import pytest

from repro.egraph.pattern import parse_pattern
from repro.egraph.rewrite import Rewrite, rewrite
from repro.lint.rules import (
    DYNAMIC_CONTRACTS,
    audit_rule,
    audit_rules,
    audit_rulesets,
    eval_pattern,
    guard_spec,
    strictly_evaluated_vars,
)
from repro.rewrites.rulesets import RULESETS, ruleset
from repro.rewrites.soundness import drule, total
from repro.ir.evaluate import BOT


def rule_ids(findings):
    return {f.rule_id for f in findings}


# ------------------------------------------------------------------ corpus
class TestMutationCorpus:
    def test_dropped_var_without_guard_is_flagged(self):
        # `a + b -> a` silently forgets b; a * valuation of b distinguishes
        # the sides, which is exactly what the missing guard would exclude.
        bad = rewrite("bad-drop", "(+ ?a ?b)", "?a")
        findings, _ = audit_rule(bad, "corpus")
        assert "RU-DROPPED" in rule_ids(findings)
        # The semantic audit independently catches the same hole.
        assert "RU-UNSOUND" in rule_ids(findings)

    def test_sub_self_without_guard_is_flagged(self):
        # The ISSUE's canonical example: `a - a -> 0` is only sound when a
        # is total (a = * makes the LHS * but the RHS 0).
        bad = rewrite("bad-sub-self", "(- ?a ?a)", "0")
        findings, _ = audit_rule(bad, "corpus")
        assert "RU-DROPPED" in rule_ids(findings)
        assert "RU-UNSOUND" in rule_ids(findings)

    def test_guarded_sub_self_passes(self):
        good = drule("good-sub-self", "(- ?a ?a)", "0")
        findings, record = audit_rule(good, "corpus")
        assert findings == []
        assert record["status"] == "proved"

    def test_semantically_wrong_rule_with_guard_is_flagged(self):
        # Guards present and pure, but the algebra is just wrong.
        bad = drule("bad-add-as-mul", "(+ ?a ?b)", "(* ?a ?b)")
        findings, record = audit_rule(bad, "corpus")
        assert rule_ids(findings) == {"RU-UNSOUND"}
        assert record["status"] == "failed"
        [finding] = findings
        assert "counterexample" in finding.detail

    def test_counterexample_renders_bot_as_star(self):
        bad = rewrite("bad-drop-star", "(& ?a ?b)", "?a")
        findings, _ = audit_rule(bad, "corpus")
        unsound = [f for f in findings if f.rule_id == "RU-UNSOUND"]
        assert unsound and "*" in str(unsound[0].detail["counterexample"])

    def test_impure_condition_is_flagged(self):
        def mutating_condition(egraph, env):
            egraph.union(env["a"], env["a"])
            return True

        bad = Rewrite(
            name="bad-impure",
            searcher=parse_pattern("(+ ?a 0)"),
            applier=parse_pattern("?a"),
            conditions=(mutating_condition,),
        )
        findings, _ = audit_rule(bad, "corpus")
        assert "RU-IMPURE" in rule_ids(findings)
        # An unrecognized hand-rolled condition is also opaque to the
        # semantic audit, and says so rather than claiming a proof.
        assert "RU-OPAQUE-GUARD" in rule_ids(findings)

    def test_unbound_rhs_var_is_flagged(self):
        # rewrite() itself rejects this, so construct the Rewrite directly
        # — the auditor must not rely on the constructor's own check.
        bad = Rewrite(
            name="bad-unbound",
            searcher=parse_pattern("(+ ?a 0)"),
            applier=parse_pattern("(+ ?a ?ghost)"),
        )
        findings, record = audit_rule(bad, "corpus")
        assert rule_ids(findings) == {"RU-UNBOUND"}
        assert record["status"] == "ill-formed"

    def test_dynamic_rule_without_contract_is_flagged(self):
        phantom = Rewrite(
            name="corpus-phantom-dynamic",
            searcher=lambda egraph, index: [],
            applier=lambda egraph, class_id, env: [],
        )
        findings, _ = audit_rule(phantom, "corpus")
        assert rule_ids(findings) == {"RU-NO-CONTRACT"}

    def test_audit_rules_aggregates_per_rule(self):
        rules = [
            rewrite("bad-drop", "(+ ?a ?b)", "?a"),
            drule("good-sub-self", "(- ?a ?a)", "0"),
        ]
        findings, records = audit_rules(rules, "corpus")
        assert [r["rule"] for r in records] == ["bad-drop", "good-sub-self"]
        assert findings and all(f.anchor.startswith("corpus/") for f in findings)


# ------------------------------------------------------- auditor internals
class TestAuditorInternals:
    def test_guard_spec_recovers_factory_arguments(self):
        kind, names = guard_spec(total("a", "b"))
        assert (kind, names) == ("total", ("a", "b"))

    def test_guard_spec_rejects_hand_rolled_conditions(self):
        assert guard_spec(lambda egraph, env: True) is None

    def test_mux_branches_are_non_strict(self):
        # b only ever appears as an unselected-able mux branch; it needs no
        # totality guard (this is drule's `unguarded=` contract).
        lhs = parse_pattern("(mux 1 ?a ?b)")
        assert strictly_evaluated_vars(lhs) == set()

    def test_eval_pattern_propagates_bot(self):
        lhs = parse_pattern("(+ ?a ?b)")
        assert eval_pattern(lhs, {"a": BOT, "b": 1}) is BOT
        assert eval_pattern(lhs, {"a": 2, "b": 1}) == 3

    def test_eval_pattern_mux_is_non_strict(self):
        mux = parse_pattern("(mux ?c ?a ?b)")
        assert eval_pattern(mux, {"c": 1, "a": 7, "b": BOT}) == 7
        assert eval_pattern(mux, {"c": BOT, "a": 7, "b": 8}) is BOT


# ------------------------------------------------------------ shipped rules
class TestShippedRulesets:
    @pytest.fixture(scope="class")
    def shipped(self):
        return audit_rulesets()

    def test_every_shipped_rule_passes(self, shipped):
        findings, _ = shipped
        assert findings == [], [f.fid for f in findings]

    def test_every_declarative_rule_is_proved_or_trialed(self, shipped):
        _, records = shipped
        declarative = [r for r in records if r["mode"] != "contract"]
        assert declarative
        for record in declarative:
            assert record["status"] in ("proved", "trials-passed"), record
            # The audited budget is recorded either way.
            assert record["envs"] > 0 and record["checked"] > 0, record

    def test_every_dynamic_rule_has_a_contract(self, shipped):
        _, records = shipped
        dynamic = [r for r in records if r["mode"] == "contract"]
        assert dynamic
        for record in dynamic:
            assert record["status"] in ("declared", "spot-checked"), record
            assert record["sound_by"]

    def test_contracts_name_only_real_rules(self):
        shipped_names = {
            rule.name for name in RULESETS for rule in ruleset(name)
        }
        stale = set(DYNAMIC_CONTRACTS) - shipped_names
        assert not stale, f"contracts for rules that no longer exist: {stale}"

    def test_audit_covers_every_registered_ruleset(self, shipped):
        _, records = shipped
        assert {r["ruleset"] for r in records} == set(RULESETS)
