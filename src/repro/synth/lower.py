"""Lower an extracted IR design to a gate-level netlist.

Widths come from the tree range analysis: every node is realized at the
minimum storage width of its value range (two's complement when the range
goes negative), which is exactly how the paper's bitwidth reduction
manifests in hardware.  Operands are *fitted* to operator widths — extension
always, truncation only where modular arithmetic makes it sound.

Adder-based operators (+, -, comparisons, min/max/abs/neg) are tagged so the
delay-target sweep can re-synthesize individual instances with faster
architectures (see :mod:`repro.synth.sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis import expr_ranges
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr
from repro.synth import components as comp
from repro.synth.netlist import Netlist, Signal


class LoweringError(Exception):
    """The design cannot be realized (unbounded or dead range)."""


@dataclass
class LoweredDesign:
    """A lowered design: netlist plus resynthesis metadata."""

    netlist: Netlist
    #: tag -> operator name, for every architecture-selectable instance.
    adder_tags: dict[str, str] = field(default_factory=dict)
    root_width: int = 0


def lower_to_netlist(
    expr: Expr,
    input_ranges: Mapping[str, IntervalSet] | None = None,
    arch_choices: Mapping[str, str] | None = None,
    default_arch: str = "ripple",
    output_name: str = "out",
) -> LoweredDesign:
    """Lower ``expr``; returns the netlist with one output ``output_name``."""
    lowerer = _Lowerer(expr, dict(input_ranges or {}), dict(arch_choices or {}), default_arch)
    signal = lowerer.lower(expr)
    lowerer.netlist.set_output(output_name, signal)
    return LoweredDesign(
        netlist=lowerer.netlist,
        adder_tags=lowerer.adder_tags,
        root_width=signal.width,
    )


class _Lowerer:
    def __init__(
        self,
        root: Expr,
        input_ranges: dict[str, IntervalSet],
        arch_choices: dict[str, str],
        default_arch: str,
    ) -> None:
        self.netlist = Netlist()
        self.ranges = expr_ranges(root, input_ranges)
        self.arch_choices = arch_choices
        self.default_arch = default_arch
        self.adder_tags: dict[str, str] = {}
        self._memo: dict[Expr, Signal] = {}
        self._counter = 0

    # ------------------------------------------------------------- plumbing
    def _width(self, node: Expr) -> tuple[int, bool]:
        iset = self.ranges[node]
        if iset.is_empty:
            # Provably-dead subterm (e.g. an ASSUME whose constraints are
            # infeasible): realize it at one bit; it is never selected.
            return 1, False
        width = iset.storage_width()
        if width is None:
            raise LoweringError(f"unbounded subterm: {node!r}")
        low = iset.min()
        return max(width, 1), low is not None and low < 0

    def _fit(self, signal: Signal, width: int, modular: bool = False) -> list[int]:
        """Extend (always sound) or truncate (sound only for modular ops)."""
        bits = list(signal.bits)
        if len(bits) < width:
            pad = signal.bits[-1] if signal.signed and bits else self.netlist.zero
            bits += [pad] * (width - len(bits))
        elif len(bits) > width:
            if not modular:
                raise LoweringError(
                    f"cannot narrow non-modular operand {len(bits)} -> {width}"
                )
            bits = bits[:width]
        return bits

    def _harmonized(self, a: Signal, b: Signal) -> tuple[list[int], list[int]]:
        """Common signed width for order-sensitive operators."""
        width = max(a.width, b.width) + 1
        return self._fit(a, width), self._fit(b, width)

    def _arch_for(self, op_name: str) -> tuple[str, str]:
        tag = f"{op_name.lower()}{self._counter}"
        self._counter += 1
        self.adder_tags[tag] = op_name
        return tag, self.arch_choices.get(tag, self.default_arch)

    def _condition_net(self, signal: Signal) -> int:
        """Reduce a condition word to one 'nonzero' net."""
        if signal.width == 1:
            return signal.bits[0]
        return self.netlist.reduce("OR", signal.bits)

    # ------------------------------------------------------------- dispatch
    def lower(self, node: Expr) -> Signal:
        if node in self._memo:
            return self._memo[node]
        signal = self._lower_node(node)
        self._memo[node] = signal
        return signal

    def _lower_node(self, node: Expr) -> Signal:
        nl = self.netlist
        op = node.op
        width, signed = self._width(node)

        if op is ops.VAR:
            name, declared = node.attrs
            if name in nl.inputs:
                bits = nl.inputs[name]
            else:
                bits = nl.add_input(name, declared)
            return Signal(list(bits), signed=False)

        if op is ops.CONST:
            value = node.value % (1 << width)
            bits = [nl.one if (value >> i) & 1 else nl.zero for i in range(width)]
            return Signal(bits, signed=signed)

        if op is ops.ASSUME:
            return self.lower(node.children[0])

        kids = [self.lower(c) for c in node.children]

        if op in (ops.ADD, ops.SUB):
            tag, arch = self._arch_for(op.name)
            a = self._fit(kids[0], width, modular=True)
            b = self._fit(kids[1], width, modular=True)
            nl.push_tag(tag)
            if op is ops.ADD:
                out, _ = comp.adder(nl, a, b, nl.zero, arch)
            else:
                out, _ = comp.subtractor(nl, a, b, arch)
            nl.pop_tag()
            return Signal(out, signed)

        if op is ops.NEG:
            tag, arch = self._arch_for("NEG")
            a = self._fit(kids[0], width, modular=True)
            nl.push_tag(tag)
            out = comp.negate(nl, a, arch)
            nl.pop_tag()
            return Signal(out, signed)

        if op is ops.MUL:
            a = self._fit(kids[0], width, modular=True)
            b = self._fit(kids[1], width, modular=True)
            nl.push_tag(f"mul{self._counter}")
            self._counter += 1
            out = comp.array_multiplier(nl, a, b, width)
            nl.pop_tag()
            return Signal(out, signed)

        if op in (ops.SHL, ops.SHR):
            return self._lower_shift(node, kids, width, signed)

        if op in (ops.AND, ops.OR, ops.XOR):
            a = self._fit(kids[0], width, modular=True)
            b = self._fit(kids[1], width, modular=True)
            kind = {"AND": "AND", "OR": "OR", "XOR": "XOR"}[op.name]
            bits = [nl.add_gate(kind, x, y) for x, y in zip(a, b, strict=True)]
            return Signal(bits, signed=False)

        if op is ops.NOT:
            (not_width,) = node.attrs
            a = self._fit(kids[0], not_width, modular=True)
            bits = [nl.g_not(x) for x in a]
            return Signal(self._fit(Signal(bits), width, modular=True), signed=False)

        if op is ops.LNOT:
            return Signal([comp.is_zero(nl, kids[0].bits)], signed=False)

        if op in (ops.LT, ops.LE, ops.GT, ops.GE):
            tag, arch = self._arch_for(op.name)
            a, b = self._harmonized(kids[0], kids[1])
            nl.push_tag(tag)
            if op is ops.LT:
                net = comp.less_than(nl, a, b, True, arch)
            elif op is ops.GT:
                net = comp.less_than(nl, b, a, True, arch)
            elif op is ops.LE:
                net = nl.g_not(comp.less_than(nl, b, a, True, arch))
            else:
                net = nl.g_not(comp.less_than(nl, a, b, True, arch))
            nl.pop_tag()
            return Signal([net], signed=False)

        if op in (ops.EQ, ops.NE):
            a, b = self._harmonized(kids[0], kids[1])
            net = comp.equal(nl, a, b)
            if op is ops.NE:
                net = nl.g_not(net)
            return Signal([net], signed=False)

        if op is ops.MUX:
            sel = self._condition_net(kids[0])
            when1 = self._fit(kids[1], width, modular=True)
            when0 = self._fit(kids[2], width, modular=True)
            return Signal(comp.mux_word(nl, sel, when1, when0), signed)

        if op is ops.LZC:
            (lzc_width,) = node.attrs
            operand = self._fit_unsigned(kids[0], lzc_width)
            nl.push_tag(f"lzc{self._counter}")
            self._counter += 1
            bits = comp.lzc_tree(nl, operand, width)
            nl.pop_tag()
            return Signal(bits, signed=False)

        if op is ops.TRUNC:
            (trunc_width,) = node.attrs
            bits = self._fit(kids[0], trunc_width, modular=True)
            return Signal(self._fit(Signal(bits), width, modular=True), signed=False)

        if op is ops.SLICE:
            hi, lo = node.attrs
            bits = self._fit_unsigned(kids[0], hi + 1)
            return Signal(bits[lo : hi + 1], signed=False)

        if op is ops.CONCAT:
            (rhs_width,) = node.attrs
            lsbs = self._fit_unsigned(kids[1], rhs_width)
            msbs = list(kids[0].bits)
            return Signal(
                self._fit(Signal(lsbs + msbs), width, modular=True), signed=False
            )

        if op is ops.ABS:
            extended = self._fit(kids[0], kids[0].width + 1)
            tag, arch = self._arch_for("ABS")
            nl.push_tag(tag)
            negated = comp.negate(nl, extended, arch)
            sign = extended[-1]
            bits = comp.mux_word(nl, sign, negated, extended)
            nl.pop_tag()
            return Signal(self._fit(Signal(bits, True), width, modular=True), signed)

        if op in (ops.MIN, ops.MAX):
            tag, arch = self._arch_for(op.name)
            a, b = self._harmonized(kids[0], kids[1])
            nl.push_tag(tag)
            a_less = comp.less_than(nl, a, b, True, arch)
            if op is ops.MIN:
                bits = comp.mux_word(nl, a_less, a, b)
            else:
                bits = comp.mux_word(nl, a_less, b, a)
            nl.pop_tag()
            return Signal(self._fit(Signal(bits, True), width, modular=True), signed)

        raise LoweringError(f"cannot lower operator {op}")

    def _fit_unsigned(self, signal: Signal, width: int) -> list[int]:
        """Fit a provably in-range unsigned operand to an exact width."""
        bits = list(signal.bits)
        if len(bits) < width:
            bits += [self.netlist.zero] * (width - len(bits))
        return bits[:width]

    def _lower_shift(self, node: Expr, kids: list[Signal], width: int, signed: bool) -> Signal:
        nl = self.netlist
        left = node.op is ops.SHL
        amount = kids[1]
        value = kids[0]

        amount_range = self.ranges[node.children[1]]
        max_shift = amount_range.max()
        const_shift = amount_range.as_point()

        if const_shift is not None:
            # Constant shift: pure wiring.
            if left:
                bits = self._fit(value, width, modular=True)
                bits = [nl.zero] * const_shift + bits
                return Signal(bits[:width], signed)
            operand_width = max(value.width, width + const_shift)
            bits = self._fit(value, operand_width)
            fill = bits[-1] if value.signed else nl.zero
            shifted = bits[const_shift:] + [fill] * const_shift
            return Signal(self._fit(Signal(shifted, value.signed), width, modular=True), signed)

        # Variable shift: barrel shifter over the meaningful amount bits.
        useful_bits = max(max_shift, 1).bit_length() if max_shift is not None else amount.width
        amount_bits = self._fit_unsigned(amount, min(amount.width, useful_bits) or 1)
        nl.push_tag(f"shift{self._counter}")
        self._counter += 1
        if left:
            bits = self._fit(value, width, modular=True)
            out = comp.barrel_shifter(nl, bits, amount_bits, True, nl.zero)
            result = Signal(out, signed)
        else:
            operand_width = max(value.width, width)
            bits = self._fit(value, operand_width)
            fill = bits[-1] if value.signed else nl.zero
            out = comp.barrel_shifter(nl, bits, amount_bits, False, fill)
            result = Signal(
                self._fit(Signal(out, value.signed), width, modular=True), signed
            )
        nl.pop_tag()
        return result
