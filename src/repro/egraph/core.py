"""The flat struct-of-arrays e-graph core.

This is the engine room behind :class:`repro.egraph.egraph.EGraph`: e-nodes
and e-classes live in parallel int arrays instead of per-object
``ENode``/``EClass`` instances.  A node id (*nid*) indexes:

* ``node_op`` / ``node_attr`` — interned operator and attribute-tuple ids,
* ``node_first`` / ``node_nkids`` — the node's child span inside one flat
  ``kids`` buffer of e-class ids,
* ``node_class`` — the **canonical** owning class id (kept canonical at all
  times for alive nodes; absorbing a class rewrites its members' entries),
* ``node_alive`` — 0 once a node is merged away by congruence.

Class ids index ``class_nodes`` (member nid sets), ``class_parents``
(nids referencing the class as a child), ``class_data`` (analysis slots)
and ``class_rev`` (membership revision).  The hashcons ``memo`` maps
signature tuples ``(op_id, attr_id, child_ids)`` to nids; the nested
``child_ids`` tuple is stored once per node (``_kid_tups``) and shared by
the memo key and the node's :class:`ENode` view, so one canonicalization
epoch allocates one tuple, not three copies of the same children.

The congruence discipline differs from the object engine in one important
way: unions re-key the absorbed class's parents **eagerly**.  The moment two
classes merge, every parent signature is canonicalized in place and
re-inserted into the hashcons, so lookups *between* rebuilds always hit the
canonical entry.  A rewrite that re-instantiates an existing right-hand side
therefore dedups instead of allocating a transient duplicate node — which is
what lets wide designs (``stress_wide``) finish inside node budgets that the
deferred-re-keying object engine blew through mid-apply.  What remains
deferred (and is drained by :meth:`rebuild`, exactly as in egg) are the
*congruence unions* discovered during re-keying and the analysis fixpoint.

The core pickles through a compact :meth:`__reduce__`: only the arrays, the
intern tables, the union-find and the analysis data ship; the hashcons,
per-op index and parent sets are derived on load.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Iterable

from repro.egraph.enode import ENode
from repro.egraph.unionfind import UnionFind
from repro.ir import ops
from repro.ir.ops import Op


class Analysis:
    """Interface of an e-class analysis (egg's ``Analysis`` trait).

    Subclasses provide domain data attached to every e-class and keep it
    correct as the e-graph grows and merges.  Hooks receive the *façade*
    :class:`~repro.egraph.egraph.EGraph`, never the raw core.
    """

    name: str = "analysis"

    def make(self, egraph, enode: ENode) -> Any:
        """Data for a fresh e-node (children already carry data)."""
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        """Combine data for two provably-equal e-classes."""
        raise NotImplementedError

    def modify(self, egraph, class_id: int) -> None:
        """Optional hook: mutate the e-graph after data changes (e.g. add a
        constant node when the data proves the class constant)."""


class SnapshotClass:
    """One e-class of a read-only :class:`GraphSnapshot`."""

    __slots__ = ("id", "nodes", "data")

    def __init__(self, class_id: int, nodes: tuple[ENode, ...], data: dict) -> None:
        self.id = class_id
        self.nodes = nodes
        self.data = data


class GraphSnapshot:
    """Read-only view of an e-graph for exporters (DOT, dumps).

    Carries exactly what a renderer needs — the canonical classes with their
    member e-nodes and analysis data, plus a ``find`` resolving child ids —
    so the same exporter works identically over the flat core, the façade,
    and the legacy object engine.
    """

    __slots__ = ("classes", "find")

    def __init__(
        self, classes: list[SnapshotClass], find: Callable[[int], int]
    ) -> None:
        self.classes = classes
        self.find = find


class CoreGraph:
    """Flat, int-indexed e-graph storage and congruence machinery."""

    __slots__ = (
        "uf",
        "node_op",
        "node_attr",
        "node_first",
        "node_nkids",
        "node_class",
        "node_alive",
        "kids",
        "ops",
        "op_ids",
        "attrs",
        "attr_ids",
        "memo",
        "class_nodes",
        "class_parents",
        "class_data",
        "class_rev",
        "op_nodes",
        "pending_pairs",
        "pending_losers",
        "analysis_pending",
        "analyses",
        "n_nodes",
        "n_classes",
        "version",
        "owner",
        "_views",
        "_kid_tups",
        "_assume_id",
        "_const_id",
    )

    def __init__(self, analyses: Iterable[Analysis] = (), owner=None) -> None:
        self.uf = UnionFind()
        self.node_op = array("q")
        self.node_attr = array("q")
        self.node_first = array("q")
        self.node_nkids = array("q")
        self.node_class = array("q")
        self.node_alive = bytearray()
        self.kids = array("q")
        self.ops: list[Op] = []
        self.op_ids: dict[Op, int] = {}
        self.attrs: list[tuple] = []
        self.attr_ids: dict[tuple, int] = {}
        #: Hashcons: ``(op_id, attr_id, child_ids)`` -> nid; ``child_ids``
        #: is the node's ``_kid_tups`` entry, shared with its ENode view.
        self.memo: dict[tuple, int] = {}
        self.class_nodes: list[dict[int, None] | None] = []
        self.class_parents: list[dict[int, None] | None] = []
        self.class_data: list[dict[str, Any] | None] = []
        self.class_rev: list[int] = []
        #: Per-op index: op_id -> ordered set of alive nids.
        self.op_nodes: list[dict[int, None]] = []
        #: Deferred congruence unions discovered while re-keying.
        self.pending_pairs: list[tuple[int, int]] = []
        #: Nids whose signature is shadowed by a congruent node in another
        #: class; resolved (killed or re-enqueued) by :meth:`rebuild`.
        self.pending_losers: list[int] = []
        #: Nids whose analysis ``make`` must be re-joined into their class.
        self.analysis_pending: dict[int, None] = {}
        self.analyses: tuple[Analysis, ...] = tuple(analyses)
        self.n_nodes = 0
        self.n_classes = 0
        #: Incremented on every successful union (saturation detection).
        self.version = 0
        #: The façade handed to analysis hooks (set by ``EGraph``).
        self.owner = owner if owner is not None else self
        #: Lazily materialized ``ENode`` views, one slot per nid.
        self._views: list[ENode | None] = []
        #: Canonical children tuple per nid (current epoch) — the single
        #: allocation shared by the hashcons key and the ENode view.
        self._kid_tups: list[tuple] = []
        self._assume_id = self.intern_op(ops.ASSUME)
        self._const_id = self.intern_op(ops.CONST)

    # -------------------------------------------------------------- interning
    def intern_op(self, op: Op) -> int:
        op_id = self.op_ids.get(op)
        if op_id is None:
            op_id = len(self.ops)
            self.op_ids[op] = op_id
            self.ops.append(op)
            self.op_nodes.append({})
        return op_id

    def intern_attrs(self, attrs: tuple) -> int:
        attr_id = self.attr_ids.get(attrs)
        if attr_id is None:
            attr_id = len(self.attrs)
            self.attr_ids[attrs] = attr_id
            self.attrs.append(attrs)
        return attr_id

    # ------------------------------------------------------------------ sizes
    def find(self, class_id: int) -> int:
        return self.uf.find(class_id)

    @property
    def is_clean(self) -> bool:
        return (
            not self.pending_pairs
            and not self.pending_losers
            and not self.analysis_pending
        )

    def class_ids(self) -> list[int]:
        """Canonical class ids (sweep over the class arrays)."""
        return [
            cid for cid, nodes in enumerate(self.class_nodes) if nodes is not None
        ]

    # ------------------------------------------------------------------ views
    def node_enode(self, nid: int) -> ENode:
        """The (cached) ``ENode`` value view of one node's array row."""
        view = self._views[nid]
        if view is None:
            view = ENode(
                self.ops[self.node_op[nid]],
                self.attrs[self.node_attr[nid]],
                self._kid_tups[nid],
            )
            self._views[nid] = view
        return view

    def class_const(self, class_id: int) -> int | None:
        """The CONST value of a class if it contains a literal node."""
        const_id = self._const_id
        node_op = self.node_op
        for nid in self.class_nodes[self.uf.find(class_id)]:
            if node_op[nid] == const_id:
                return self.attrs[self.node_attr[nid]][0]
        return None

    def snapshot(self, data: bool = True) -> GraphSnapshot:
        """Read-only view of the canonical classes (see :class:`GraphSnapshot`)."""
        view = self.node_enode
        classes = [
            SnapshotClass(
                cid,
                tuple(view(nid) for nid in nodes),
                self.class_data[cid] if data else {},
            )
            for cid, nodes in enumerate(self.class_nodes)
            if nodes is not None
        ]
        return GraphSnapshot(classes, self.uf.find)

    # -------------------------------------------------------------------- add
    def add(self, op: Op, attrs: tuple, children: tuple[int, ...]) -> int:
        """Intern an e-node row, returning its (possibly existing) class id."""
        find = self.uf.find
        parent = self.uf._parent
        op_id = self.op_ids.get(op)
        if op_id is None:
            op_id = self.intern_op(op)
        if children:
            if op_id == self._assume_id:
                head = find(children[0])
                tail = sorted({find(c) for c in children[1:]})
                canon_kids = (head, *tail)
            else:
                # Already-canonical ids (the overwhelmingly common case on a
                # clean graph) skip the find() call entirely.
                canon_kids = tuple(
                    c if parent[c] == c else find(c) for c in children
                )
        else:
            canon_kids = ()
        attr_id = self.attr_ids.get(attrs)
        if attr_id is None:
            attr_id = self.intern_attrs(attrs)
        sig = (op_id, attr_id, canon_kids)
        nid = self.memo.get(sig)
        if nid is not None:
            cls = self.node_class[nid]
            return cls if parent[cls] == cls else find(cls)

        nid = len(self.node_op)
        self.node_op.append(op_id)
        self.node_attr.append(attr_id)
        self.node_first.append(len(self.kids))
        self.node_nkids.append(len(canon_kids))
        self.kids.extend(canon_kids)
        self.node_alive.append(1)
        self._views.append(None)
        self._kid_tups.append(canon_kids)
        class_id = self.uf.make_set()
        self.node_class.append(class_id)
        self.class_nodes.append({nid: None})
        self.class_parents.append({})
        data: dict[str, Any] = {}
        self.class_data.append(data)
        self.class_rev.append(0)
        self.memo[sig] = nid
        self.n_nodes += 1
        self.n_classes += 1
        self.op_nodes[op_id][nid] = None
        if canon_kids:
            for child in set(canon_kids):
                self.class_parents[child][nid] = None
        if self.analyses:
            owner = self.owner
            enode = self.node_enode(nid)
            for analysis in self.analyses:
                data[analysis.name] = analysis.make(owner, enode)
            for analysis in self.analyses:
                analysis.modify(owner, class_id)
        return find(class_id)

    def lookup(self, op: Op, attrs: tuple, children: tuple[int, ...]) -> int | None:
        """Class id of an interned e-node, else None (no allocation)."""
        op_id = self.op_ids.get(op)
        if op_id is None:
            return None
        attr_id = self.attr_ids.get(attrs)
        if attr_id is None:
            return None
        find = self.uf.find
        if children:
            if op_id == self._assume_id:
                head = find(children[0])
                tail = sorted({find(c) for c in children[1:]})
                children = (head, *tail)
            else:
                children = tuple(find(c) for c in children)
        nid = self.memo.get((op_id, attr_id, children))
        if nid is None:
            return None
        return find(self.node_class[nid])

    # ------------------------------------------------------------------ union
    def union(self, a: int, b: int) -> int:
        """Merge two classes; parents are re-keyed *now*, congruence unions
        and analysis propagation are deferred to :meth:`rebuild`."""
        find = self.uf.find
        ra, rb = find(a), find(b)
        if ra == rb:
            return ra
        self.version += 1
        keep, gone = self.uf.union(ra, rb)

        gparents = self.class_parents[gone]
        self.class_parents[gone] = None
        kparents = self.class_parents[keep]
        gnodes = self.class_nodes[gone]
        self.class_nodes[gone] = None

        # Eager hashcons repair: every parent of the absorbed class gets its
        # signature canonicalized in place and re-inserted immediately.
        for nid in gparents:
            if self.node_alive[nid]:
                self._rekey(nid)

        # Move members across (keeping node_class canonical for alive nodes).
        # The eager re-key above may have already killed a member of ``gone``
        # that was also one of its parents (a cyclic node such as NEG(c) in
        # class c colliding with its re-keyed twin) — the dead must not be
        # resurrected into the surviving member set.
        knodes = self.class_nodes[keep]
        node_class = self.node_class
        node_alive = self.node_alive
        for nid in gnodes:
            if node_alive[nid]:
                node_class[nid] = keep
                knodes[nid] = None
        self.class_rev[keep] += 1
        self.n_classes -= 1

        # Analysis join, mirroring the object engine: each side's parents are
        # requeued when the joined data differs from what that side's parents
        # last saw; ASSUME parents are requeued *unconditionally* (the merged
        # class has new members and the ASSUME transfer function inspects
        # constraint-class membership).
        keep_changed = gone_changed = False
        if self.analyses:
            kdata = self.class_data[keep]
            gdata = self.class_data[gone]
            for analysis in self.analyses:
                old_keep = kdata[analysis.name]
                old_gone = gdata[analysis.name]
                joined = analysis.join(old_keep, old_gone)
                kdata[analysis.name] = joined
                keep_changed = keep_changed or joined != old_keep
                gone_changed = gone_changed or joined != old_gone
        self.class_data[gone] = None
        if self.analyses:
            pend = self.analysis_pending
            node_op = self.node_op
            assume_id = self._assume_id
            for changed, parents in (
                (keep_changed, kparents),
                (gone_changed, gparents),
            ):
                if changed:
                    pend.update(parents)
                else:
                    for nid in parents:
                        if node_op[nid] == assume_id:
                            pend[nid] = None

        kparents.update(gparents)
        if self.analyses:
            owner = self.owner
            for analysis in self.analyses:
                analysis.modify(owner, keep)
        return keep

    def _rekey(self, nid: int) -> None:
        """Canonicalize one node's child span and re-insert its signature.

        A congruent collision with a node of another class defers a union
        (``pending_pairs``); a collision inside the same class kills the
        duplicate on the spot.
        """
        find = self.uf.find
        first = self.node_first[nid]
        kids = self.kids
        old_kids = self._kid_tups[nid]
        op_id = self.node_op[nid]
        if op_id == self._assume_id:
            head = find(old_kids[0])
            tail = sorted({find(c) for c in old_kids[1:]})
            new_kids = (head, *tail)
        else:
            new_kids = tuple(find(c) for c in old_kids)
        if new_kids == old_kids:
            return
        attr_id = self.node_attr[nid]
        old_sig = (op_id, attr_id, old_kids)
        memo = self.memo
        if memo.get(old_sig) == nid:
            del memo[old_sig]
        for offset, child in enumerate(new_kids):
            kids[first + offset] = child
        self.node_nkids[nid] = len(new_kids)
        self._views[nid] = None
        self._kid_tups[nid] = new_kids
        new_sig = (op_id, attr_id, new_kids)
        existing = memo.get(new_sig)
        if existing is None:
            memo[new_sig] = nid
        elif existing != nid:
            owner_e = find(self.node_class[existing])
            owner_n = find(self.node_class[nid])
            if owner_e == owner_n:
                self._kill(nid)
            else:
                self.pending_pairs.append((owner_e, owner_n))
                self.pending_losers.append(nid)

    def _kill(self, nid: int) -> None:
        """Remove a congruence-duplicate node from the graph."""
        self.node_alive[nid] = 0
        root = self.uf.find(self.node_class[nid])
        nodes = self.class_nodes[root]
        if nodes is not None:
            nodes.pop(nid, None)
        self.class_rev[root] += 1
        self.op_nodes[self.node_op[nid]].pop(nid, None)
        self._views[nid] = None
        self.n_nodes -= 1

    # ----------------------------------------------------------- data seeding
    def set_data(self, class_id: int, analysis_name: str, value: Any) -> None:
        root = self.uf.find(class_id)
        self.class_data[root][analysis_name] = value
        self.analysis_pending.update(self.class_parents[root])
        owner = self.owner
        for analysis in self.analyses:
            if analysis.name == analysis_name:
                analysis.modify(owner, root)

    # ---------------------------------------------------------------- rebuild
    def rebuild(self, analysis_budget: int = 200_000) -> int:
        """Drain deferred congruence unions and the analysis fixpoint.

        Returns the number of unions performed.  ``analysis_budget`` caps
        upward propagation; stopping early is sound because interval data
        only ever tightens through joins.
        """
        unions = 0
        find = self.uf.find
        while (
            self.pending_pairs or self.pending_losers or self.analysis_pending
        ):
            while self.pending_pairs or self.pending_losers:
                while self.pending_pairs:
                    pairs, self.pending_pairs = self.pending_pairs, []
                    for a, b in pairs:
                        if find(a) != find(b):
                            self.union(a, b)
                            unions += 1
                losers, self.pending_losers = self.pending_losers, []
                for nid in losers:
                    if not self.node_alive[nid]:
                        continue
                    sig = (
                        self.node_op[nid],
                        self.node_attr[nid],
                        self._kid_tups[nid],
                    )
                    winner = self.memo.get(sig)
                    if winner is None:
                        self.memo[sig] = nid
                    elif winner != nid:
                        wroot = find(self.node_class[winner])
                        nroot = find(self.node_class[nid])
                        if wroot == nroot:
                            self._kill(nid)
                        else:
                            self.pending_pairs.append((wroot, nroot))
                            self.pending_losers.append(nid)

            budget = analysis_budget
            pend = self.analysis_pending
            if pend and self.analyses:
                owner = self.owner
                node_class = self.node_class
                while pend and budget:
                    budget -= 1
                    nid, _ = pend.popitem()
                    if not self.node_alive[nid]:
                        continue
                    root = find(node_class[nid])
                    data = self.class_data[root]
                    enode = self.node_enode(nid)
                    for analysis in self.analyses:
                        old = data[analysis.name]
                        new = analysis.join(old, analysis.make(owner, enode))
                        if new != old:
                            data[analysis.name] = new
                            pend.update(self.class_parents[root])
                            analysis.modify(owner, root)
                if not budget:
                    pend.clear()
            else:
                pend.clear()
        return unions

    # ----------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        """Assert the flat representation's invariants (full sweep).

        Covers hashcons/congruence/ownership, the parent and per-op indices,
        and the incremental counters — the array-level analogue of the object
        engine's checks.  The façade layers its view-vs-array cross-checks on
        top (see :meth:`repro.egraph.egraph.EGraph.check_invariants`).
        """
        find = self.uf.find
        alive_nids = [
            nid for nid in range(len(self.node_op)) if self.node_alive[nid]
        ]
        swept_sigs: dict[tuple, int] = {}
        for nid in alive_nids:
            first = self.node_first[nid]
            span = tuple(self.kids[first : first + self.node_nkids[nid]])
            assert self._kid_tups[nid] == span, (
                f"node {nid}: kid tuple {self._kid_tups[nid]} out of sync "
                f"with flat buffer span {span}"
            )
            owner = self.node_class[nid]
            assert find(owner) == owner, f"node {nid}: stale node_class {owner}"
            assert self.class_nodes[owner] is not None, (
                f"node {nid} owned by absorbed class {owner}"
            )
            assert nid in self.class_nodes[owner], (
                f"node {nid} missing from class {owner} member set"
            )
            for child in span:
                assert find(child) == child, (
                    f"node {nid}: non-canonical child {child}"
                )
                parents = self.class_parents[child]
                assert parents is not None and nid in parents, (
                    f"node {nid} missing from parent set of class {child}"
                )
            sig = (self.node_op[nid], self.node_attr[nid], span)
            assert sig not in swept_sigs, (
                f"congruence violated: nodes {swept_sigs[sig]} and {nid} "
                f"share signature {sig}"
            )
            swept_sigs[sig] = nid
            assert self.memo.get(sig) == nid, (
                f"hashcons maps {sig} to {self.memo.get(sig)}, expected {nid}"
            )
            assert nid in self.op_nodes[self.node_op[nid]], (
                f"node {nid} missing from its op index"
            )
        assert len(self.memo) == len(alive_nids), (
            f"hashcons holds {len(self.memo)} entries for "
            f"{len(alive_nids)} alive nodes"
        )
        swept_nodes = 0
        swept_classes = 0
        for cid, nodes in enumerate(self.class_nodes):
            if nodes is None:
                continue
            swept_classes += 1
            swept_nodes += len(nodes)
            assert find(cid) == cid, f"absorbed class {cid} still canonical"
            assert self.class_parents[cid] is not None
            assert self.class_data[cid] is not None
            for nid in nodes:
                assert self.node_alive[nid], f"dead node {nid} in class {cid}"
                assert self.node_class[nid] == cid
        assert self.n_nodes == swept_nodes, (
            f"node counter {self.n_nodes} != swept {swept_nodes}"
        )
        assert self.n_classes == swept_classes, (
            f"class counter {self.n_classes} != swept {swept_classes}"
        )
        for op_id, sub in enumerate(self.op_nodes):
            for nid in sub:
                assert self.node_alive[nid], f"dead node {nid} in op index"
                assert self.node_op[nid] == op_id, (
                    f"op index files node {nid} under {self.ops[op_id]}"
                )
        indexed = sum(len(sub) for sub in self.op_nodes)
        assert indexed == self.n_nodes, (
            f"op index holds {indexed} nodes, counter says {self.n_nodes}"
        )

    # ---------------------------------------------------------------- pickling
    def _clean_copy(self) -> CoreGraph:
        """A rebuilt, fully-independent copy of this graph.

        Used by :meth:`__reduce__` to ship canonical arrays without draining
        the *original* graph's pending work — a pickle must never mutate the
        object being pickled (daemon threads snapshot live graphs for warm
        starts).  Every mutable container is copied; interned ops/attrs,
        children tuples and analysis payloads are immutable and shared.
        """
        clone = CoreGraph.__new__(CoreGraph)
        clone.uf = UnionFind()
        clone.uf._parent = list(self.uf._parent)
        clone.uf._size = list(self.uf._size)
        clone.node_op = array("q", self.node_op)
        clone.node_attr = array("q", self.node_attr)
        clone.node_first = array("q", self.node_first)
        clone.node_nkids = array("q", self.node_nkids)
        clone.node_class = array("q", self.node_class)
        clone.node_alive = bytearray(self.node_alive)
        clone.kids = array("q", self.kids)
        clone.ops = list(self.ops)
        clone.op_ids = dict(self.op_ids)
        clone.attrs = list(self.attrs)
        clone.attr_ids = dict(self.attr_ids)
        clone.memo = dict(self.memo)
        clone.class_nodes = [
            dict(members) if members is not None else None
            for members in self.class_nodes
        ]
        clone.class_parents = [
            dict(parents) if parents is not None else None
            for parents in self.class_parents
        ]
        clone.class_data = [
            dict(data) if data is not None else None for data in self.class_data
        ]
        clone.class_rev = list(self.class_rev)
        clone.op_nodes = [dict(sub) for sub in self.op_nodes]
        clone.pending_pairs = list(self.pending_pairs)
        clone.pending_losers = list(self.pending_losers)
        clone.analysis_pending = dict(self.analysis_pending)
        clone.analyses = self.analyses
        clone.n_nodes = self.n_nodes
        clone.n_classes = self.n_classes
        clone.version = self.version
        clone._views = [None] * len(self.node_op)
        clone._kid_tups = list(self._kid_tups)
        clone._assume_id = self._assume_id
        clone._const_id = self._const_id
        clone.owner = clone
        if self.owner is not self:
            # Analysis ``modify`` hooks expect the façade API, so the clone
            # needs its own (the original's façade must keep pointing here).
            from repro.egraph.egraph import _egraph_from_core

            _egraph_from_core(clone)
        return clone

    def __reduce__(self):
        """Compact pickling: arrays + intern tables + analysis data only.

        The hashcons, per-op index, parent sets and view cache are derived
        on load.  The shipped arrays must be canonical, but draining pending
        work in place would make pickling side-effecting — so a dirty graph
        is cloned first and the *clone* is rebuilt; ``self`` is untouched.
        """
        core = self
        if not core.is_clean:
            core = core._clean_copy()
            core.rebuild()
        state = (
            core.analyses,
            list(core.uf._parent),
            list(core.uf._size),
            core.ops,
            core.attrs,
            core.node_op,
            core.node_attr,
            core.node_first,
            core.node_nkids,
            core.node_class,
            bytes(core.node_alive),
            core.kids,
            core.class_data,
            core.class_rev,
            core.n_nodes,
            core.n_classes,
            core.version,
        )
        return (_core_from_state, (state,))


def _core_from_state(state) -> CoreGraph:
    """Rebuild a :class:`CoreGraph` from its pickled arrays."""
    (
        analyses,
        uf_parent,
        uf_size,
        op_list,
        attr_list,
        node_op,
        node_attr,
        node_first,
        node_nkids,
        node_class,
        alive_bytes,
        kids,
        class_data,
        class_rev,
        n_nodes,
        n_classes,
        version,
    ) = state
    core = CoreGraph(analyses)
    core.uf._parent = list(uf_parent)
    core.uf._size = list(uf_size)
    core.ops = list(op_list)
    core.op_ids = {op: op_id for op_id, op in enumerate(core.ops)}
    core.attrs = list(attr_list)
    core.attr_ids = {attrs: attr_id for attr_id, attrs in enumerate(core.attrs)}
    core._assume_id = core.op_ids[ops.ASSUME]
    core._const_id = core.op_ids[ops.CONST]
    core.node_op = node_op
    core.node_attr = node_attr
    core.node_first = node_first
    core.node_nkids = node_nkids
    core.node_class = node_class
    core.node_alive = bytearray(alive_bytes)
    core.kids = kids
    core.class_data = list(class_data)
    core.class_rev = list(class_rev)
    core.n_nodes = n_nodes
    core.n_classes = n_classes
    core.version = version
    core._views = [None] * len(node_op)
    core.op_nodes = [{} for _ in core.ops]
    core.class_nodes = [
        {} if data is not None else None for data in core.class_data
    ]
    core.class_parents = [
        {} if data is not None else None for data in core.class_data
    ]
    core._kid_tups = [
        tuple(kids[node_first[nid] : node_first[nid] + node_nkids[nid]])
        for nid in range(len(node_op))
    ]
    for nid in range(len(node_op)):
        if not core.node_alive[nid]:
            continue
        span = core._kid_tups[nid]
        core.memo[(node_op[nid], node_attr[nid], span)] = nid
        core.op_nodes[node_op[nid]][nid] = None
        core.class_nodes[node_class[nid]][nid] = None
        for child in set(span):
            core.class_parents[child][nid] = None
    return core
