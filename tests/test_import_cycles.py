"""Clean-interpreter import checks: the package import DAG stays acyclic.

``Extract.run`` historically hid a ``repro.pipeline`` -> ``repro.opt`` ->
``repro.pipeline`` package cycle behind a lazy ``model_cost`` import; the
cost helpers now live in :mod:`repro.synth.treecost` (below both packages)
and the stage imports them at module level.  Each entry point here is
imported in its *own* fresh interpreter — inside the test process every
module is already in ``sys.modules``, which is exactly how import cycles
hide from an ordinary test suite.

The entry-point list and the layer map both live in
:mod:`repro.lint.arch` (the static analyzer), so this dynamic check and
``repro lint``'s static one cannot drift apart.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.lint.arch import ENTRY_POINTS


@pytest.mark.parametrize("module", ENTRY_POINTS)
def test_entry_point_imports_from_a_clean_interpreter(module):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, (
        f"`import {module}` failed in a clean interpreter:\n{proc.stderr}"
    )


def test_stages_bind_the_cycle_free_cost_helper():
    """The concrete regression: ``Extract`` prices trees through the
    ``repro.synth.treecost`` helper at module level — re-homing it under
    ``repro.opt`` would re-form the cycle the lazy import used to hide."""
    import repro.pipeline.stages as stages

    assert stages.model_cost.__module__ == "repro.synth.treecost"
    # And the back-compat aliases still point at the same function.
    from repro.opt import model_cost as opt_model_cost

    assert opt_model_cost is stages.model_cost
