"""Unit tests for the single-interval primitive."""

import pytest

from repro.intervals import Interval


class TestConstruction:
    def test_point(self):
        iv = Interval(3, 3)
        assert iv.is_point
        assert iv.size() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_unbounded(self):
        iv = Interval(None, 5)
        assert not iv.bounded
        assert iv.size() is None
        assert iv.contains(-10**9)
        assert not iv.contains(6)

    def test_full_line(self):
        iv = Interval(None, None)
        assert iv.contains(0)
        assert iv.contains(-(10**12))
        assert iv.contains(10**12)


class TestContains:
    def test_bounds_inclusive(self):
        iv = Interval(-2, 7)
        assert iv.contains(-2)
        assert iv.contains(7)
        assert not iv.contains(-3)
        assert not iv.contains(8)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(0, 10).contains_interval(Interval(2, 11))
        assert Interval(None, None).contains_interval(Interval(None, 5))
        assert not Interval(0, None).contains_interval(Interval(None, 5))


class TestSetAlgebra:
    def test_intersect_overlap(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_disjoint(self):
        assert Interval(0, 2).intersect(Interval(4, 6)) is None

    def test_intersect_touching(self):
        assert Interval(0, 3).intersect(Interval(3, 6)) == Interval(3, 3)

    def test_intersect_halfline(self):
        assert Interval(-3, 3).intersect(Interval(1, None)) == Interval(1, 3)

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 9)) == Interval(0, 9)
        assert Interval(None, 2).hull(Interval(5, 9)) == Interval(None, 9)

    def test_adjacency(self):
        # Integer intervals [1,2] and [3,5] merge: no gap between 2 and 3.
        assert Interval(1, 2).overlaps_or_adjacent(Interval(3, 5))
        assert Interval(3, 5).overlaps_or_adjacent(Interval(1, 2))
        assert not Interval(1, 2).overlaps_or_adjacent(Interval(4, 5))
        assert not Interval(4, 5).overlaps_or_adjacent(Interval(1, 2))
