"""The composable pipeline: stages over a shared context."""

import pytest

from repro.designs import get_design
from repro.intervals import IntervalSet
from repro.ir import gt, var
from repro.pipeline import (
    CaseSplit,
    Emit,
    Extract,
    Ingest,
    Pipeline,
    PipelineContext,
    Saturate,
    Stage,
    Verify,
)
from repro.rewrites import compose_rules, structural_ruleset
from repro.synth.cost import weighted_key


class TestStageProtocol:
    def test_concrete_stages_satisfy_protocol(self):
        stages = [
            Ingest(roots={"out": var("x", 4)}),
            CaseSplit([gt(var("x", 4), 3)]),
            Saturate(iter_limit=1),
            Extract(),
            Verify(),
            Emit(),
        ]
        for stage in stages:
            assert isinstance(stage, Stage)
            assert isinstance(stage.name, str) and stage.name

    def test_custom_stage_composes(self):
        """Anything with a name and run(ctx) slots into a pipeline."""

        class Tap:
            name = "tap"

            def __init__(self):
                self.seen = None

            def run(self, ctx):
                self.seen = ctx.report.stop_reason.value

        tap = Tap()
        design = get_design("lzc_example")
        Pipeline(
            [Ingest(source=design.verilog), Saturate(iter_limit=2), tap]
        ).run(input_ranges=design.input_ranges)
        assert tap.seen is not None


class TestPipelineRun:
    def test_ingest_requires_a_design(self):
        with pytest.raises(ValueError):
            Pipeline([Ingest()]).run()

    def test_rewrite_stages_require_ingest(self):
        ctx = PipelineContext()
        with pytest.raises(RuntimeError):
            Saturate(iter_limit=1).run(ctx)

    def test_timings_record_every_stage(self):
        design = get_design("lzc_example")
        ctx = Pipeline(
            [Ingest(source=design.verilog), Saturate(iter_limit=2), Extract()]
        ).run(input_ranges=design.input_ranges)
        assert [label for label, _ in ctx.timings] == ["ingest", "saturate", "extract"]
        assert ctx.total_seconds > 0

    def test_repeated_stage_labels_are_suffixed(self):
        design = get_design("lzc_example")
        ctx = Pipeline(
            [
                Ingest(source=design.verilog),
                Saturate(iter_limit=1),
                Saturate(iter_limit=1),
                Extract(),
            ]
        ).run(input_ranges=design.input_ranges)
        timings = ctx.stage_timings()
        assert "saturate" in timings and "saturate#2" in timings

    def test_reingesting_a_context_clears_previous_results(self):
        """Re-running a pipeline on a reused context must not leak the
        previous design's costs (all registry designs share output 'out')."""
        first = get_design("lzc_example")
        second = get_design("float_to_unorm")
        ctx = Pipeline(
            [Ingest(source=first.verilog), Saturate(iter_limit=2), Extract()]
        ).run(input_ranges=first.input_ranges)
        stale = ctx.original_costs["out"]

        Pipeline(
            [Ingest(source=second.verilog), Saturate(iter_limit=2), Extract()]
        ).run(ctx, input_ranges=second.input_ranges)
        assert ctx.original_costs["out"] != stale
        assert len(ctx.reports) == 1  # not accumulated across designs

    def test_changing_ranges_without_reingest_is_rejected(self):
        """Swapping input ranges under a saturated e-graph would desync the
        analysis; only a pipeline that re-ingests may change them."""
        design = get_design("lzc_example")
        ctx = Pipeline(
            [Ingest(source=design.verilog), Saturate(iter_limit=2), Extract()]
        ).run(input_ranges=design.input_ranges)
        with pytest.raises(ValueError):
            Pipeline([Verify()]).run(ctx, input_ranges={})
        # Same ranges are fine (idempotent resume).
        Pipeline([Verify()]).run(ctx, input_ranges=design.input_ranges)
        assert ctx.equivalence["out"].ok

    def test_verify_without_extract_is_a_clear_error(self):
        design = get_design("lzc_example")
        with pytest.raises(RuntimeError, match="Extract"):
            Pipeline(
                [Ingest(source=design.verilog), Saturate(iter_limit=1), Verify()]
            ).run(input_ranges=design.input_ranges)

    def test_emit_artifact(self):
        design = get_design("lzc_example")
        ctx = Pipeline(
            [
                Ingest(source=design.verilog),
                Saturate(iter_limit=2),
                Extract(),
                Emit(module_name="swept"),
            ]
        ).run(input_ranges=design.input_ranges)
        assert "module swept" in ctx.artifacts["verilog"]

    def test_verify_stage_records_verdicts(self):
        design = get_design("lzc_example")
        ctx = Pipeline(
            [Ingest(source=design.verilog), Saturate(iter_limit=3), Extract(), Verify()]
        ).run(input_ranges=design.input_ranges)
        assert ctx.equivalence["out"].ok


class TestPhasedSchedules:
    def test_two_phase_equals_single_phase_on_fp_sub(self):
        """Splitting the default schedule across two Saturate stages lands on
        the same extracted design as one stage with the summed budget."""
        design = get_design("fp_sub")

        def run(stage_iters):
            stages = [Ingest(source=design.verilog)]
            stages += [
                Saturate(compose_rules(), iter_limit=n, node_limit=design.node_limit)
                for n in stage_iters
            ]
            stages.append(Extract())
            return Pipeline(stages).run(input_ranges=design.input_ranges)

        single = run([4])
        phased = run([2, 2])
        assert len(phased.reports) == 2
        assert phased.extracted["out"] == single.extracted["out"]
        assert (
            phased.optimized_costs["out"].key == single.optimized_costs["out"].key
        )

    def test_structural_phase_then_full_phase(self):
        """A ROVER-style schedule: cheap identities first, constraints after."""
        design = get_design("lzc_example")
        ctx = Pipeline(
            [
                Ingest(source=design.verilog),
                Saturate(structural_ruleset(), iter_limit=2, label="saturate:structural"),
                Saturate(compose_rules(), iter_limit=3, label="saturate:full"),
                Extract(),
            ]
        ).run(input_ranges=design.input_ranges)
        assert ctx.optimized_costs["out"].delay < ctx.original_costs["out"].delay


class TestExtractionObjectives:
    def test_reextraction_under_swept_objectives(self):
        """One saturation, many extractions: the pluggable-objective hook."""
        design = get_design("fp_sub")
        ctx = Pipeline(
            [Ingest(source=design.verilog), Saturate(iter_limit=4, node_limit=design.node_limit)]
        ).run(input_ranges=design.input_ranges)

        delays = {}
        for weight in (0.0, 0.05):
            Extract(key=weighted_key(1.0, weight)).run(ctx)
            cost = ctx.optimized_costs["out"]
            delays[weight] = (cost.delay, cost.area)
        # Pure-delay extraction is at least as fast as the area-weighted one.
        assert delays[0.0][0] <= delays[0.05][0]

    def test_input_ranges_reach_analysis(self):
        x, y = var("x", 8), var("y", 8)
        from repro.ir import lzc

        ctx = Pipeline(
            [Ingest(roots={"out": lzc(x + y, 9)}), Saturate(iter_limit=5), Extract()]
        ).run(input_ranges={"x": IntervalSet.of(128, 255)})
        assert ctx.optimized_costs["out"].delay < ctx.original_costs["out"].delay
