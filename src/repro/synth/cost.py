"""The extraction objective: delay-prioritized with area tie-break.

The paper: "we target maximal performance and extract the design with the
shortest critical path delay.  If multiple designs achieve identical delay,
we extract the smallest area circuit amongst them. [...] using egg's
standard extraction algorithm combined with a delay/area weighted sum
objective function."

:class:`DelayArea` carries both metrics; ordering is by a pluggable key —
lexicographic ``(delay, area)`` by default, or a weighted sum for sweeping
the delay/area trade-off (used to populate Figure 3's optimized curve).

Operator widths come from the interval analysis
(:func:`repro.analysis.width_of`): a class whose refined range needs fewer
bits prices as the narrower operator — this is how bitwidth reduction
(Section IV-A) reaches the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis import range_of, range_width
from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.egraph.extract import CostFunction
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.synth.models import area_model, delay_model


@dataclass(frozen=True, slots=True)
class DelayArea:
    """A (delay, area) cost with a precomputed comparison key."""

    delay: float
    area: float
    key: tuple

    def __lt__(self, other: "DelayArea") -> bool:
        return self.key < other.key


def lexicographic_key(delay: float, area: float) -> tuple:
    """Shortest delay first, then smallest area."""
    return (delay, area)


def default_key(delay: float, area: float) -> tuple:
    """The paper's delay/area weighted-sum objective.

    Delay dominates (performance-prioritized extraction) but area carries
    enough weight that the extractor does not duplicate large operators for
    marginal delay wins; the tie-break remains lexicographic.
    """
    return (delay + 0.005 * area, delay, area)


def weighted_key(delay_weight: float, area_weight: float) -> Callable[[float, float], tuple]:
    """Weighted-sum objective for trade-off sweeps."""

    def key(delay: float, area: float) -> tuple:
        return (delay_weight * delay + area_weight * area,)

    return key


#: Operand positions whose constant-ness the model reads, per operator:
#: shifts only consult the shift amount (operand 1); comparisons and
#: add/sub consult both operands.  For anything else callers may pass
#: all-False without affecting the result.
CONST_HINT_POSITIONS = {
    ops.SHL: (1,), ops.SHR: (1,),
    ops.LT: (0, 1), ops.LE: (0, 1), ops.GT: (0, 1), ops.GE: (0, 1),
    ops.EQ: (0, 1), ops.NE: (0, 1), ops.ADD: (0, 1), ops.SUB: (0, 1),
}


def operator_model(
    op,
    result_range: IntervalSet,
    operand_ranges: Sequence[IntervalSet],
    operand_is_const: Sequence[bool],
) -> tuple[float, float]:
    """Section IV-D (delay, area) of one operator instance, given ranges.

    The single source of the model's width/constant/shift-level derivation:
    both the e-graph extraction cost (:class:`DelayAreaCost`) and the
    tree-level cost (:func:`repro.synth.treecost.model_cost`) price operators
    through here, which is what keeps the two paths in exact parity.
    """
    width = range_width(result_range)
    operand_widths = tuple(range_width(r) for r in operand_ranges)

    shift_levels: int | None = None
    const_operand = False
    if op in (ops.SHL, ops.SHR):
        if not operand_is_const[1]:
            top = operand_ranges[1].max()
            shift_levels = max(top, 1).bit_length() if top is not None else 6
    elif op in (ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE, ops.ADD, ops.SUB):
        const_operand = any(operand_is_const)

    # The models are pure in the derived parameters, and saturation produces
    # thousands of nodes sharing a handful of (op, widths) shapes — memoize
    # on the derived key (ops hash by identity, so the key is cheap).
    key = (op, width, operand_widths, shift_levels, const_operand)
    cached = _MODEL_MEMO.get(key)
    if cached is None:
        kwargs = {
            "width": width,
            "operand_widths": operand_widths,
            "shift_levels": shift_levels,
            "const_operand": const_operand,
        }
        cached = _MODEL_MEMO[key] = (
            delay_model(op, **kwargs),
            area_model(op, **kwargs),
        )
    return cached


#: (op, width, operand_widths, shift_levels, const_operand) -> (delay, area).
_MODEL_MEMO: dict[tuple, tuple[float, float]] = {}


class DelayAreaCost(CostFunction):
    """Section IV-D's theoretical model as an extraction cost function."""

    def __init__(self, key: Callable[[float, float], tuple] | None = None) -> None:
        self.key = key if key is not None else lexicographic_key
        # The extractor's worklist revisits an e-node whenever a child's
        # cost improves; the node's *own* delay/area only depends on
        # analysis data that is frozen during extraction, so cache it.
        self._model_cache: dict[tuple[int, ENode], tuple[float, float]] = {}

    def enode_cost(
        self, egraph: EGraph, class_id: int, enode: ENode, child_costs: list
    ) -> DelayArea:
        cache_key = (class_id, enode)
        own = self._model_cache.get(cache_key)
        if own is None:
            own = self._model(egraph, class_id, enode)
            self._model_cache[cache_key] = own
        own_delay, own_area = own
        delay = own_delay + max((c.delay for c in child_costs), default=0.0)
        area = own_area + sum(c.area for c in child_costs)
        return DelayArea(delay, area, self.key(delay, area))

    # Decomposed interface consumed by the extractor's flat-core fixpoint
    # (`Extractor._run_fixpoint_core`): the node's own contribution and the
    # parts -> cost-object constructor, so the fixpoint can fold delay/area
    # as plain floats and only materialize `DelayArea` on improvement.
    def own_cost(
        self, egraph: EGraph, class_id: int, enode: ENode
    ) -> tuple[float, float]:
        """(delay, area) of the node itself, before child contributions."""
        return self._model(egraph, class_id, enode)

    def cost_from_parts(self, delay: float, area: float) -> DelayArea:
        """Rebuild the ordered cost object from folded parts."""
        return DelayArea(delay, area, self.key(delay, area))

    def _model(self, egraph: EGraph, class_id: int, enode: ENode) -> tuple[float, float]:
        # class_const scans the child's member set — only pay for it at the
        # operand positions whose model actually reads the hint.
        consts = [False] * len(enode.children)
        for position in CONST_HINT_POSITIONS.get(enode.op, ()):
            consts[position] = (
                egraph.class_const(enode.children[position]) is not None
            )
        return operator_model(
            enode.op,
            range_of(egraph, class_id),
            [range_of(egraph, c) for c in enode.children],
            consts,
        )
