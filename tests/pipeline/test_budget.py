"""The resource-governance subsystem: budgets, allocators, governor.

Three invariant families pin the new API down:

* **hierarchy** — child budgets produced by any allocation policy never
  sum above the parent, componentwise (hypothesis-checked over random
  parents/weights, for both up-front ``split`` and live ``BudgetPool``
  draws);
* **bounded overspend** — a :class:`Budget` handed to the runner is never
  overspent by more than one iteration's slack (a few e-nodes past the cap,
  zero extra iterations);
* **ledger consistency** — the runner's ``StopReason`` agrees with the
  governor's ledger (``NODE_LIMIT`` ⇔ node pool dry, ``TIME_LIMIT`` ⇔
  deadline passed on the governor's own clock).

Plus the deadline regression the Budget redesign exists to fix: nested
``Saturate`` stages used to each restart the clock (``time.monotonic``
re-checked against their *own* start), so a phased schedule could overshoot
its wall budget by the number of stages.  With a governor they race one
absolute deadline — proved here with a fake clock.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph import EGraph, Runner, StopReason, rewrite
from repro.ir import var
from repro.pipeline import (
    ALLOCATORS,
    Budget,
    BudgetPool,
    Ingest,
    Pipeline,
    ResourceGovernor,
    Saturate,
    allocator_for,
)

GROWING_RULES = [
    rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
    rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
]


def chain(length: int):
    expr = var("x0", 4)
    for i in range(1, length):
        expr = expr + var(f"x{i}", 4)
    return expr


def chain_graph(length: int = 8) -> EGraph:
    g = EGraph()
    g.add_expr(chain(length))
    return g


class FakeClock:
    """A deterministic monotonic clock: every read advances by ``tick``."""

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------- Budget value
class TestBudget:
    def test_unlimited_budget_has_no_quotas(self):
        budget = Budget.unlimited()
        assert budget.is_unlimited
        assert budget.deadline_at(5.0) == math.inf
        assert budget.as_dict() == {}

    def test_of_ms_builds_seconds(self):
        assert Budget.of_ms(2500).time_s == 2.5

    def test_deadline_at_takes_the_earlier_of_span_and_absolute(self):
        budget = Budget(time_s=10.0, deadline=7.0)
        assert budget.deadline_at(0.0) == 7.0  # inherited deadline wins
        assert budget.deadline_at(-5.0) == 5.0  # own span wins

    def test_intersect_is_componentwise_min_with_none_as_unlimited(self):
        tight = Budget(time_s=1.0, nodes=100).intersect(
            Budget(time_s=5.0, iters=3, matches=7)
        )
        assert tight == Budget(time_s=1.0, nodes=100, iters=3, matches=7)

    def test_scaled_floors_count_quotas_and_keeps_deadline(self):
        half = Budget(time_s=3.0, deadline=9.0, nodes=5, iters=3).scaled(0.5)
        assert half.time_s == 1.5
        assert half.deadline == 9.0  # an absolute instant cannot be scaled
        assert half.nodes == 2 and half.iters == 1

    def test_as_dict_can_omit_the_deadline(self):
        budget = Budget(time_s=1.0, deadline=99.0, nodes=5)
        assert "deadline" in budget.as_dict()
        assert "deadline" not in budget.as_dict(include_deadline=False)
        assert budget.as_dict(include_deadline=False) == {
            "time_s": 1.0,
            "nodes": 5,
        }

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown budget policy"):
            allocator_for("greedy")


# ------------------------------------------------- hierarchy (property (a))
budgets = st.builds(
    Budget,
    time_s=st.one_of(st.none(), st.floats(0.001, 1e4)),
    nodes=st.one_of(st.none(), st.integers(0, 10**6)),
    iters=st.one_of(st.none(), st.integers(0, 100)),
    matches=st.one_of(st.none(), st.integers(0, 10**6)),
)
weight_lists = st.lists(st.floats(0.0, 1e3), min_size=1, max_size=12)


class TestAllocationHierarchy:
    @settings(max_examples=200, deadline=None)
    @given(budget=budgets, weights=weight_lists, policy=st.sampled_from(sorted(ALLOCATORS)))
    def test_split_children_never_sum_above_parent(self, budget, weights, policy):
        children = allocator_for(policy).split(budget, weights)
        assert len(children) == len(weights)
        for quota in ("nodes", "iters", "matches"):
            parent = getattr(budget, quota)
            if parent is None:
                assert all(getattr(c, quota) is None for c in children)
            else:
                assert sum(getattr(c, quota) for c in children) <= parent
        if budget.time_s is None:
            assert all(c.time_s is None for c in children)
        else:
            assert sum(c.time_s for c in children) <= budget.time_s * (1 + 1e-9)

    @settings(max_examples=200, deadline=None)
    @given(
        budget=budgets,
        weights=weight_lists,
        policy=st.sampled_from(sorted(ALLOCATORS)),
        data=st.data(),
    )
    def test_live_pool_never_lets_children_overspend_parent(
        self, budget, weights, policy, data
    ):
        """Sequential draw/settle — with arbitrary per-child spends — never
        hands a child more than the pool has left, so children that spend
        within their allocations cannot collectively overspend the parent.
        (Cumulative *allocations* may exceed the parent under the adaptive
        policy: an underspending child refunds its slack, which is then
        re-allocated — spend is the conserved quantity, not offers.)"""
        clock = FakeClock(tick=0.0)
        pool = BudgetPool(budget, weights, allocator_for(policy), clock=clock)
        spent = {"time_s": 0.0, "nodes": 0, "iters": 0, "matches": 0}
        for _ in weights:
            left = {
                "nodes": pool.nodes_left,
                "iters": pool.iters_left,
                "matches": pool.matches_left,
            }
            time_left = pool.time_left()
            child = pool.draw()
            for quota in ("nodes", "iters", "matches"):
                value = getattr(child, quota)
                parent = getattr(budget, quota)
                assert (value is None) == (parent is None)
                if value is not None:
                    assert value <= left[quota]  # never more than the pool has
            if budget.time_s is None:
                assert child.time_s is None and child.deadline is None
            else:
                assert child.time_s <= time_left * (1 + 1e-9)
                assert child.deadline == pool.deadline  # hard cap inherited
            # The child spends some arbitrary fraction of its allocation.
            spent_frac = data.draw(st.floats(0.0, 1.0))
            consumed = {
                quota: int((getattr(child, quota) or 0) * spent_frac)
                for quota in ("nodes", "iters", "matches")
            }
            pool.settle(**consumed)
            for quota, value in consumed.items():
                spent[quota] += value
            if child.time_s is not None:
                clock.advance(child.time_s * spent_frac)
                spent["time_s"] += child.time_s * spent_frac
        for quota in ("nodes", "iters", "matches"):
            parent = getattr(budget, quota)
            if parent is not None:
                assert spent[quota] <= parent
        if budget.time_s is not None:
            assert spent["time_s"] <= budget.time_s * (1 + 1e-6)

    def test_adaptive_pool_recycles_unspent_time(self):
        """A fast first child's slack flows to later children (the whole
        point of the adaptive policy)."""
        clock = FakeClock(tick=0.0)
        pool = BudgetPool(
            Budget(time_s=8.0), [1.0] * 4, allocator_for("adaptive"), clock=clock
        )
        first = pool.draw()
        assert first.time_s == pytest.approx(2.0)  # fair share of 4
        clock.advance(0.5)  # the child finished 1.5s early
        pool.settle()
        second = pool.draw()
        # 7.5s left across 3 children: more than the original fair share.
        assert second.time_s == pytest.approx(7.5 / 3)
        assert second.time_s > first.time_s

    def test_fair_pool_does_not_recycle(self):
        clock = FakeClock(tick=0.0)
        pool = BudgetPool(
            Budget(time_s=8.0), [1.0] * 4, allocator_for("fair"), clock=clock
        )
        assert pool.draw().time_s == pytest.approx(2.0)
        clock.advance(0.5)
        pool.settle()
        assert pool.draw().time_s == pytest.approx(2.0)  # still the share

    def test_weighted_split_is_proportional_to_cone_size(self):
        children = allocator_for("weighted").split(
            Budget(time_s=6.0, nodes=600), [1.0, 2.0, 3.0]
        )
        assert [c.time_s for c in children] == pytest.approx([1.0, 2.0, 3.0])
        assert [c.nodes for c in children] == [100, 200, 300]

    def test_every_child_inherits_the_pool_deadline(self):
        clock = FakeClock(start=100.0, tick=0.0)
        pool = BudgetPool(
            Budget(time_s=4.0), [1.0, 1.0], allocator_for("adaptive"), clock=clock
        )
        for _ in range(2):
            child = pool.draw()
            assert child.deadline == pytest.approx(104.0)
            pool.settle()


# ------------------------------------------------------------ Runner budgets
class TestRunnerBudget:
    def test_budget_iteration_quota_matches_legacy_iter_limit(self):
        governed = Runner(chain_graph(6), GROWING_RULES, budget=Budget(iters=3)).run()
        assert governed.stop_reason is StopReason.ITERATION_LIMIT
        assert len(governed.iterations) == 3

    def test_legacy_kwargs_still_work_but_warn(self):
        g = chain_graph(6)
        with pytest.warns(DeprecationWarning, match="budget=Budget"):
            runner = Runner(g, GROWING_RULES, iter_limit=2, node_limit=9_000)
        report = runner.run()
        assert len(report.iterations) == 2
        # The shim is a real budget underneath (and readable through the
        # legacy property views).
        assert runner.budget.iters == runner.iter_limit == 2
        assert runner.budget.nodes == runner.node_limit == 9_000

    def test_budget_and_legacy_kwargs_together_are_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            Runner(chain_graph(4), GROWING_RULES, iter_limit=2, budget=Budget(iters=2))

    def test_match_quota_stops_with_match_limit(self):
        report = Runner(
            chain_graph(8), GROWING_RULES, budget=Budget(matches=5, iters=50)
        ).run()
        assert report.stop_reason is StopReason.MATCH_LIMIT
        # The over-quota search's matches are not applied: the graph stops
        # growing the moment the quota trips.
        assert report.iterations[-1].applied == {}

    def test_absolute_deadline_in_the_past_stops_immediately(self):
        clock = FakeClock(start=50.0, tick=0.001)
        report = Runner(
            chain_graph(8),
            GROWING_RULES,
            budget=Budget(deadline=10.0, iters=50),
            clock=clock,
        ).run()
        assert report.stop_reason is StopReason.TIME_LIMIT
        assert report.iterations[0].applied == {}

    def test_report_carries_allocated_vs_spent(self):
        budget = Budget(iters=2, nodes=9_000)
        report = Runner(chain_graph(6), GROWING_RULES, budget=budget).run()
        assert report.budget == budget
        block = report.as_dict()["budget"]
        assert block["allocated"] == {"nodes": 9_000, "iters": 2}
        assert block["spent"]["iters"] == 2
        assert block["spent"]["nodes"] == report.nodes_grown > 0
        assert block["spent"]["matches"] == report.matches_applied > 0

    # ------------------------------------------- bounded overspend (prop (b))
    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(4, 9), nodes=st.integers(20, 600))
    def test_node_quota_overspent_by_at_most_one_application(self, length, nodes):
        report = Runner(
            chain_graph(length),
            GROWING_RULES,
            budget=Budget(nodes=nodes, iters=30),
        ).run()
        # The cap is checked after every single rule application, so the
        # worst case is the handful of e-nodes one application inserts.
        # (A NODE_LIMIT stop need not end strictly *above* the cap: the
        # closing rebuild can hashcons-merge the overshoot back down.)
        assert report.nodes <= nodes + 8

    @settings(max_examples=40, deadline=None)
    @given(length=st.integers(4, 9), iters=st.integers(0, 6))
    def test_iteration_quota_is_never_overspent(self, length, iters):
        report = Runner(
            chain_graph(length),
            GROWING_RULES,
            budget=Budget(iters=iters, nodes=10**6),
        ).run()
        assert len(report.iterations) <= iters

    def test_time_budget_overspent_by_at_most_one_check_interval(self):
        # Every clock read advances 1ms; the runner must notice the
        # deadline within one rule-search / one application of wall time.
        clock = FakeClock(tick=0.001)
        budget = Budget(time_s=0.05, iters=10**6)
        report = Runner(
            chain_graph(8), GROWING_RULES, budget=budget, clock=clock
        ).run()
        assert report.stop_reason is StopReason.TIME_LIMIT
        assert report.total_time <= budget.time_s + 0.02


# ------------------------------------------------- governor + staged deadline
def governed_pipeline(stages, budget, clock):
    return Pipeline(stages).run(budget=budget, clock=clock)


class TestGovernedStages:
    def test_stage_timings_use_the_injected_clock(self):
        """`repro lint`'s AR-CLOCK rule exists so this works: stage wall
        times are measured on the injectable clock, not a bare
        ``time.perf_counter()``, making timing-sensitive behaviour
        reproducible under a fake clock."""
        clock = FakeClock(tick=1.0)
        ctx = Pipeline([Ingest(roots={"out": chain(3)})]).run(clock=clock)
        assert ctx.timings == [("ingest", 1.0)]

    def test_nested_saturates_share_one_deadline(self):
        """The double-charging regression: two Saturate stages under a 1s
        governor spend ~1s *total*, not 1s each.  Before the governor each
        stage re-derived its deadline from its own ``time.monotonic()``
        start, so phased schedules overshot by the stage count."""
        clock = FakeClock(tick=0.001)
        ctx = governed_pipeline(
            [
                Ingest(roots={"out": chain(8)}),
                Saturate(GROWING_RULES, iter_limit=10**6, time_limit=10**6),
                Saturate(GROWING_RULES, iter_limit=10**6, time_limit=10**6),
            ],
            budget=Budget(time_s=1.0),
            clock=clock,
        )
        assert [r.stop_reason for r in ctx.reports] == [
            StopReason.TIME_LIMIT,
            StopReason.TIME_LIMIT,
        ]
        # Total virtual elapsed stays within the single shared budget (plus
        # a few check intervals), instead of ~2x for two stages.
        assert ctx.governor.elapsed() <= 1.0 + 0.1
        # And the second stage really was handed only the leftovers.
        assert ctx.reports[1].total_time <= 0.1

    def test_ledger_reports_allocated_vs_spent_per_stage(self):
        ctx = governed_pipeline(
            [
                Ingest(roots={"out": chain(6)}),
                Saturate(GROWING_RULES, iter_limit=2, label="phase-a"),
                Saturate(GROWING_RULES, iter_limit=2, label="phase-b"),
            ],
            budget=Budget(time_s=100.0, nodes=50_000),
            clock=None,
        )
        block = ctx.governor.as_dict()
        # The saturation phases have quota allocations; every other stage
        # (here: ingest) is still wall-ledgered, so no stage escapes the
        # budget accounting.
        assert set(block["stages"]) == {"ingest", "phase-a", "phase-b"}
        for label in ("phase-a", "phase-b"):
            row = block["stages"][label]
            assert row["allocated"]["nodes"] <= 50_000
            assert row["spent"]["iters"] <= 2
        total = block["spent"]
        assert total["iters"] == sum(
            row["spent"]["iters"] for row in block["stages"].values()
        )

    @settings(max_examples=25, deadline=None)
    @given(nodes=st.integers(10, 500))
    def test_stop_reason_consistent_with_governor_ledger(self, nodes):
        """Property (c): NODE_LIMIT ⇔ the governor's node pool ran dry."""
        ctx = governed_pipeline(
            [
                Ingest(roots={"out": chain(8)}),
                Saturate(GROWING_RULES, iter_limit=4),
            ],
            budget=Budget(nodes=nodes),
            clock=None,
        )
        report = ctx.report
        remaining = ctx.governor.remaining()
        if report.stop_reason is StopReason.NODE_LIMIT:
            # The ledger charges the pre-rebuild peak, so a NODE_LIMIT stop
            # always means the pool really ran dry — even when the closing
            # rebuild merged the overshoot back below the cap.
            assert remaining.nodes == 0
        else:
            assert remaining.nodes >= 0
            assert report.stop_reason in (
                StopReason.SATURATED,
                StopReason.ITERATION_LIMIT,
            )

    def test_time_limit_stop_agrees_with_the_governor_clock(self):
        clock = FakeClock(tick=0.001)
        ctx = governed_pipeline(
            [
                Ingest(roots={"out": chain(8)}),
                Saturate(GROWING_RULES, iter_limit=10**6, time_limit=10**6),
            ],
            budget=Budget(time_s=0.2),
            clock=clock,
        )
        assert ctx.report.stop_reason is StopReason.TIME_LIMIT
        governor = ctx.governor
        assert governor.clock() >= governor.deadline
        assert governor.exhausted()

    def test_governor_remaining_carries_absolute_deadline_not_a_span(self):
        clock = FakeClock(start=10.0, tick=0.0)
        governor = ResourceGovernor(Budget(time_s=5.0), clock=clock)
        remaining = governor.remaining()
        assert remaining.time_s is None
        assert remaining.deadline == pytest.approx(15.0)
        clock.advance(100.0)
        # Still the same instant — a consumer starting late gets nothing,
        # rather than a fresh 5s span.
        assert governor.remaining().deadline == pytest.approx(15.0)
