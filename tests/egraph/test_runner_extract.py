"""Saturation runner and extraction."""

from repro.egraph import (
    AstDepthCost,
    AstSizeCost,
    EGraph,
    Extractor,
    Runner,
    StopReason,
    rewrite,
)
from repro.egraph.runner import BackoffScheduler
from repro.ir import ops, var


BASIC_RULES = [
    rewrite("add-comm", "(+ ?a ?b)", "(+ ?b ?a)"),
    rewrite("mul-two", "(* ?a 2)", "(<< ?a 1)"),
    rewrite("shl-shr", "(>> (<< ?a 1) 1)", "?a"),
    rewrite("add-zero", "(+ ?a 0)", "?a"),
]


class TestRunner:
    def test_saturates_on_small_graph(self):
        g = EGraph()
        root = g.add_expr((var("x", 4) * 2) >> 1)
        report = Runner(g, BASIC_RULES, iter_limit=10).run()
        assert report.stop_reason is StopReason.SATURATED
        assert Extractor(g, AstSizeCost()).expr_of(root) == var("x", 4)

    def test_iteration_limit(self):
        # Associativity alone never saturates on a long chain.
        rules = [
            rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
            rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        ]
        g = EGraph()
        x = var("x", 4)
        e = x
        for i in range(6):
            e = e + var(f"y{i}", 4)
        g.add_expr(e)
        report = Runner(g, rules, iter_limit=3, node_limit=10**6).run()
        assert report.stop_reason is StopReason.ITERATION_LIMIT
        assert len(report.iterations) == 3

    def test_node_limit_respected(self):
        rules = [
            rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
            rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        ]
        g = EGraph()
        e = var("x0", 4)
        for i in range(1, 8):
            e = e + var(f"x{i}", 4)
        g.add_expr(e)
        report = Runner(g, rules, iter_limit=50, node_limit=500).run()
        assert report.stop_reason is StopReason.NODE_LIMIT

    def test_once_rules_fire_once(self):
        g = EGraph()
        g.add_expr(var("x", 4) + 0)
        rule = rewrite("add-zero-once", "(+ ?a 0)", "?a", once=True)
        report = Runner(g, [rule], iter_limit=5).run()
        total = sum(it.applied.get("add-zero-once", 0) for it in report.iterations)
        assert total == 1

    def test_report_summary_mentions_counts(self):
        g = EGraph()
        g.add_expr(var("x", 4) * 2)
        report = Runner(g, BASIC_RULES, iter_limit=4).run()
        text = report.summary()
        assert "nodes" in text and "classes" in text

    def test_iteration_stats_record_before_and_after(self):
        g = EGraph()
        g.add_expr((var("x", 4) * 2) + 0)
        report = Runner(g, BASIC_RULES, iter_limit=5).run()
        growing = report.iterations[0]
        # The first iteration applies rewrites, so the graph really grows —
        # and both sides of the growth are visible, not overwritten.
        assert growing.nodes_before < growing.nodes_after
        assert growing.node_growth == growing.nodes_after - growing.nodes_before
        for stats in report.iterations:
            assert stats.nodes == stats.nodes_after
            assert stats.classes == stats.classes_after

    def test_time_limit_stops_mid_iteration(self):
        # A zero budget must be noticed inside the very first search loop,
        # not only after a full (potentially unbounded) iteration.
        rules = [
            rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
            rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
        ]
        g = EGraph()
        e = var("x0", 4)
        for i in range(1, 8):
            e = e + var(f"x{i}", 4)
        g.add_expr(e)
        report = Runner(g, rules, iter_limit=50, node_limit=10**6, time_limit=0.0).run()
        assert report.stop_reason is StopReason.TIME_LIMIT
        assert len(report.iterations) == 1
        assert report.iterations[0].applied == {}

    def test_invariants_hold_after_every_iteration(self):
        g = EGraph()
        e = var("x0", 4)
        for i in range(1, 5):
            e = (e + var(f"x{i}", 4)) * 2
        g.add_expr(e + 0)
        report = Runner(g, BASIC_RULES, iter_limit=6, check_invariants=True).run()
        assert report.iterations  # check_invariants raised nowhere


class TestBackoffScheduler:
    def test_bans_greedy_rule(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        rule = BASIC_RULES[0]
        assert sched.enabled(rule, 0)
        sched.record(rule, matches=50, iteration=0)
        assert not sched.enabled(rule, 1)
        assert not sched.enabled(rule, 2)
        assert sched.enabled(rule, 3)

    def test_budget_doubles_after_ban(self):
        sched = BackoffScheduler(match_limit=10)
        rule = BASIC_RULES[0]
        sched.record(rule, matches=50, iteration=0)
        assert sched.budget(rule) == 20


class TestExtraction:
    def test_ast_size_picks_smallest(self):
        g = EGraph()
        x = var("x", 4)
        root = g.add_expr((x + 0) + 0)
        Runner(g, BASIC_RULES, iter_limit=5).run()
        assert Extractor(g, AstSizeCost()).expr_of(root) == x

    def test_cost_of_reports_minimum(self):
        g = EGraph()
        x = var("x", 4)
        root = g.add_expr(x + 0)
        Runner(g, BASIC_RULES, iter_limit=5).run()
        assert Extractor(g, AstSizeCost()).cost_of(root) == 1

    def test_depth_cost(self):
        g = EGraph()
        x = var("x", 4)
        root = g.add_expr((x + 0) * 2)
        Runner(g, BASIC_RULES, iter_limit=5).run()
        ex = Extractor(g, AstDepthCost())
        assert ex.expr_of(root).depth() == 2  # x << 1 or x * 2

    def test_extraction_tolerates_cycles(self):
        """x = x + 0 style cycles must not break extraction."""
        g = EGraph()
        x = var("x", 4)
        x_id = g.add_expr(x)
        plus = g.add_node(ops.ADD, (), (x_id, g.add_const(0)))
        g.union(x_id, plus)  # class now contains ADD(self, 0)
        g.rebuild()
        assert Extractor(g, AstSizeCost()).expr_of(x_id) == x

    def test_assume_is_free_and_stripped(self):
        from repro.ir.expr import assume, gt

        g = EGraph()
        x = var("x", 4)
        wrapped = g.add_expr(assume(x + 1, gt(x, 0)))
        ex = Extractor(g, AstSizeCost())
        assert ex.expr_of(wrapped) == x + 1
        assert ex.cost_of(wrapped) == 3  # cost of x + 1 only

    def test_assume_kept_on_request(self):
        from repro.ir.expr import assume, gt

        g = EGraph()
        x = var("x", 4)
        e = assume(x + 1, gt(x, 0))
        wrapped = g.add_expr(e)
        ex = Extractor(g, AstSizeCost(), strip_assumes=False)
        assert ex.expr_of(wrapped) == e
