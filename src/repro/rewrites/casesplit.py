"""Case-split introduction (Section V).

The paper's tool seeds the near/far-path split of the floating-point
subtractor with one rewrite::

    a - (b >> c)  ->  (c > 1) ? (a - (b >> c)) : (a - (b >> c))

Both branches start as the *same* e-class; the split only becomes useful
once Table I wraps each branch in its branch-condition ASSUME and the
constraint-aware rules specialize the two copies.  The rewrite is idempotent
by hashconsing (re-applying it builds the identical mux e-node).

``case_split_on`` exposes the paper's "interactive" future-work idea: split
any class on an arbitrary designer-provided condition.
"""

from __future__ import annotations

from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.egraph.rewrite import Rewrite, dynamic
from repro.ir import ops
from repro.ir.expr import Expr


def casesplit_rules(threshold: int = 1) -> list[Rewrite]:
    """The shift-magnitude case split used by the FP-subtract case study."""
    return [split_sub_shift_rule(threshold)]


def split_sub_shift_rule(threshold: int = 1) -> Rewrite:
    """``a - (b >> c) -> (c > T) ? same : same`` (T = ``threshold``)."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.SUB, ()):
            rhs = egraph.find(enode.children[1])
            for inner in egraph[rhs].nodes:
                if inner.op is ops.SHR:
                    shift_amount = egraph.find(inner.children[1])
                    yield egraph.find(class_id), {"c": shift_amount}
                    break

    def apply(egraph: EGraph, env: dict, class_id: int):
        limit = egraph.add_const(threshold)
        cond = egraph.add_node(ops.GT, (), (egraph.find(env["c"]), limit))
        return egraph.add_node(ops.MUX, (), (cond, class_id, class_id))

    return dynamic(f"case-split-shift-gt{threshold}", search, apply)


def case_split_on(egraph: EGraph, class_id: int, condition: Expr) -> int:
    """Split ``class_id`` on an arbitrary condition expression.

    Inserts ``cond ? x : x`` into the class, giving the ASSUME machinery a
    branch pair to specialize — the designer-guided usage the paper proposes
    as future work.  Returns the condition's class id.
    """
    cond_id = egraph.add_expr(condition)
    root = egraph.find(class_id)
    mux_id = egraph.add_enode(ENode(ops.MUX, (), (cond_id, root, root)))
    egraph.union(root, mux_id)
    egraph.rebuild()
    return cond_id
