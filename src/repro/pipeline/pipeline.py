"""Ordered stage execution with per-stage timing."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from repro.intervals import IntervalSet
from repro.pipeline.budget import Budget, ResourceGovernor
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import Ingest, Stage


class Pipeline:
    """An ordered list of stages run over one shared context.

    A pipeline is reusable: each :meth:`run` call gets a fresh context
    unless one is passed in (to resume — e.g. re-extract a saturated
    e-graph under a different objective, append a verification pass, ...).
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: list[Stage] = list(stages)

    def __repr__(self) -> str:
        return f"Pipeline({' -> '.join(s.name for s in self.stages)})"

    def extended(self, *stages: Stage) -> "Pipeline":
        """A new pipeline with extra stages appended."""
        return Pipeline([*self.stages, *stages])

    def run(
        self,
        ctx: PipelineContext | None = None,
        input_ranges: dict[str, IntervalSet] | None = None,
        budget: Budget | None = None,
        budget_policy: str = "fair",
        clock: Callable[[], float] | None = None,
    ) -> PipelineContext:
        """Run every stage in order; returns the (mutated) context.

        ``budget`` puts the whole run under a
        :class:`~repro.pipeline.budget.ResourceGovernor`: every stage draws
        from that one accounted pool (sharing a single absolute deadline)
        instead of carrying its own clock, and the governor's
        allocated-vs-spent ledger lands in the run record.  ``clock`` is
        injectable for deterministic deadline tests.
        """
        if ctx is None:
            ctx = PipelineContext(input_ranges=dict(input_ranges or {}))
        elif input_ranges is not None:
            reingests = bool(self.stages) and isinstance(self.stages[0], Ingest)
            if (
                ctx.egraph is not None
                and not reingests
                and dict(input_ranges) != ctx.input_ranges
            ):
                # The e-graph's analysis was seeded with the old ranges at
                # Ingest; swapping ranges under the saturated state would
                # desync extraction and verification from it.
                raise ValueError(
                    "cannot change input_ranges on a context that already "
                    "holds an e-graph — start the pipeline with an Ingest "
                    "stage (or use a fresh context) instead"
                )
            ctx.input_ranges = dict(input_ranges)
        if budget is not None:
            ctx.governor = ResourceGovernor(
                budget, clock=clock, policy=budget_policy
            )
        timer = clock if clock is not None else time.perf_counter
        for stage in self.stages:
            started = timer()
            try:
                stage.run(ctx)
            finally:
                # Record the timing even when the stage raises (a strict
                # Verify failure, an engine error): failed runs must stay
                # diagnosable from the run-record trajectory format.
                elapsed = timer() - started
                ctx.timings.append((stage.name, elapsed))
                if ctx.governor is not None and not getattr(
                    stage, "self_charging", False
                ):
                    # Close the wall ledger: stages without their own
                    # governor accounting (Ingest, MergeShards, Emit, ...)
                    # still consume the pool — an unledgered stage is an
                    # escape hatch from the budget ceiling.
                    ctx.governor.charge(stage.name, time_s=elapsed)
        return ctx


def run_stages(
    stages: Sequence[Stage],
    input_ranges: dict[str, IntervalSet] | None = None,
    **kwargs,
) -> PipelineContext:
    """One-shot convenience: ``Pipeline(stages).run(...)``."""
    return Pipeline(stages).run(input_ranges=input_ranges, **kwargs)
