"""Recursive-descent parser for the Verilog subset."""

from __future__ import annotations

from repro.rtl import ast
from repro.rtl.lexer import Token, parse_sized_literal, tokenize


class ParseError(ValueError):
    """Source does not conform to the supported Verilog subset."""


#: Binary precedence levels, loosest first (ternary sits above all of these).
_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
]


def parse_module(source: str) -> ast.Module:
    """Parse exactly one module."""
    return _Parser(tokenize(source)).module()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- utilities
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.next()
            return True
        return False

    def ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise ParseError(f"line {tok.line}: expected identifier, got {tok.text!r}")
        return tok.text

    # --------------------------------------------------------------- module
    def module(self) -> ast.Module:
        self.expect("module")
        mod = ast.Module(self.ident())
        self.expect("(")
        if not self.accept(")"):
            self._port_list(mod)
            self.expect(")")
        self.expect(";")
        while self.peek().text != "endmodule":
            self._item(mod)
        self.expect("endmodule")
        return mod

    def _range(self) -> int:
        """Parse ``[msb:lsb]``; returns the width (lsb must be 0)."""
        self.expect("[")
        msb = int(self.next().text)
        self.expect(":")
        lsb = int(self.next().text)
        self.expect("]")
        if lsb != 0:
            raise ParseError(f"only [msb:0] declarations supported, got [{msb}:{lsb}]")
        return msb + 1

    def _port_list(self, mod: ast.Module) -> None:
        while True:
            direction = None
            if self.peek().text in ("input", "output"):
                direction = self.next().text
            if self.peek().text in ("wire", "logic", "reg"):
                self.next()
            if self.accept("signed"):
                raise ParseError("signed ports are not supported")
            width = self._range() if self.peek().text == "[" else 1
            name = self.ident()
            if direction is None:
                raise ParseError(f"port {name}: non-ANSI headers need directions")
            mod.nets[name] = ast.Net(name, width, direction)
            if not self.accept(","):
                break

    def _item(self, mod: ast.Module) -> None:
        tok = self.peek()
        if tok.text in ("input", "output", "wire", "logic", "reg"):
            self._declaration(mod)
        elif tok.text == "assign":
            self._assign(mod)
        elif tok.text in ("always_comb", "always"):
            self._always(mod)
        else:
            raise ParseError(f"line {tok.line}: unexpected {tok.text!r}")

    def _declaration(self, mod: ast.Module) -> None:
        kind = self.next().text
        direction = kind if kind in ("input", "output") else "wire"
        if self.peek().text in ("wire", "logic", "reg"):
            self.next()
        if self.accept("signed"):
            raise ParseError("signed declarations are not supported")
        width = self._range() if self.peek().text == "[" else 1
        while True:
            name = self.ident()
            if name in mod.nets and direction == "wire":
                # 'output' followed by 'wire' redeclaration: keep direction.
                pass
            else:
                mod.nets[name] = ast.Net(name, width, direction)
            if self.accept("="):
                mod.assigns.append((name, self.expression()))
            if not self.accept(","):
                break
        self.expect(";")

    def _assign(self, mod: ast.Module) -> None:
        self.expect("assign")
        name = self.ident()
        self.expect("=")
        mod.assigns.append((name, self.expression()))
        self.expect(";")

    def _always(self, mod: ast.Module) -> None:
        head = self.next().text
        if head == "always":
            self.expect("@")
            if self.accept("("):
                self.expect("*")
                self.expect(")")
            else:
                self.expect("*")
        wrapped = self.accept("begin")
        mod.cases.append(self._case())
        if wrapped:
            self.expect("end")

    def _case(self) -> ast.CaseStmt:
        keyword = self.next().text
        if keyword not in ("case", "casez"):
            raise ParseError(f"always blocks may only contain case/casez, got {keyword!r}")
        self.expect("(")
        subject = self.expression()
        self.expect(")")
        arms: list[tuple[ast.CaseLabel, object]] = []
        default = None
        target = None
        while not self.accept("endcase"):
            if self.accept("default"):
                self.expect(":")
                target = self._check_target(target)
                self.expect("=")
                default = self.expression()
                self.expect(";")
                continue
            label = self._case_label(keyword == "casez")
            self.expect(":")
            target = self._check_target(target)
            self.expect("=")
            arms.append((label, self.expression()))
            self.expect(";")
        if target is None:
            raise ParseError("empty case statement")
        return ast.CaseStmt(subject, target, arms, default, keyword == "casez")

    def _check_target(self, seen: str | None) -> str:
        name = self.ident()
        if seen is not None and name != seen:
            raise ParseError(
                f"case arms must assign a single target ({seen!r} vs {name!r})"
            )
        return name

    def _case_label(self, allow_wild: bool) -> ast.CaseLabel:
        tok = self.next()
        if tok.kind == "number":
            value = int(tok.text)
            width = max(value.bit_length(), 1)
            return ast.CaseLabel(value, (1 << width) - 1, width)
        if tok.kind != "sized":
            raise ParseError(f"line {tok.line}: bad case label {tok.text!r}")
        width_text, rest = tok.text.split("'", 1)
        base = rest[0].lower()
        digits = rest[1:].replace("_", "")
        width = int(width_text)
        if "?" in digits or "z" in digits.lower():
            if base != "b":
                raise ParseError("wildcard case labels must be binary")
            if not allow_wild:
                raise ParseError("'?' labels need casez")
            value = mask = 0
            for ch in digits:
                value <<= 1
                mask <<= 1
                if ch in "?zZ":
                    continue
                mask |= 1
                value |= int(ch, 2)
            return ast.CaseLabel(value, mask, width)
        w, v = parse_sized_literal(tok.text)
        return ast.CaseLabel(v, (1 << w) - 1, w)

    # ----------------------------------------------------------- expressions
    def expression(self):
        return self._ternary()

    def _ternary(self):
        cond = self._binary(0)
        if not self.accept("?"):
            return cond
        if_true = self._ternary()
        self.expect(":")
        if_false = self._ternary()
        return ast.VTernary(cond, if_true, if_false)

    def _binary(self, level: int):
        if level == len(_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        while self.peek().text in _LEVELS[level] and self.peek().kind == "op":
            op = self.next().text
            if op in ("/", "%"):
                raise ParseError("division/modulo are not supported")
            if op == ">>>":
                op = ">>"
            right = self._binary(level + 1)
            left = ast.VBinary(op, left, right)
        return left

    def _unary(self):
        tok = self.peek()
        if tok.text in ("~", "-", "!", "+"):
            self.next()
            operand = self._unary()
            if tok.text == "+":
                return operand
            return ast.VUnary(tok.text, operand)
        if tok.text in ("&", "|", "^") and tok.kind == "op":
            # Reduction operators appear only in prefix position here.
            self.next()
            return ast.VUnary(tok.text, self._unary())
        return self._postfix()

    def _postfix(self):
        base = self._primary()
        while self.peek().text == "[":
            self.next()
            first = self.expression()
            if self.accept(":"):
                hi = self._const_index(first)
                lo = self._const_index(self.expression())
                base = ast.VRange(base, hi, lo)
            else:
                base = ast.VIndex(base, first)
            self.expect("]")
        return base

    @staticmethod
    def _const_index(expr) -> int:
        if isinstance(expr, ast.VNum):
            return expr.value
        raise ParseError("part-select bounds must be constant")

    def _primary(self):
        tok = self.next()
        if tok.text == "(":
            inner = self.expression()
            self.expect(")")
            return inner
        if tok.text == "{":
            return self._concat_or_repl()
        if tok.kind == "number":
            return ast.VNum(int(tok.text.replace("_", "")), None)
        if tok.kind == "sized":
            width, value = parse_sized_literal(tok.text)
            return ast.VNum(value, width)
        if tok.kind == "ident":
            return ast.VId(tok.text)
        raise ParseError(f"line {tok.line}: unexpected {tok.text!r} in expression")

    def _concat_or_repl(self):
        first = self.expression()
        if self.peek().text == "{":
            if not isinstance(first, ast.VNum):
                raise ParseError("replication count must be constant")
            self.next()
            operand = self.expression()
            self.expect("}")
            self.expect("}")
            return ast.VRepl(first.value, operand)
        parts = [first]
        while self.accept(","):
            parts.append(self.expression())
        self.expect("}")
        return ast.VConcat(tuple(parts))
