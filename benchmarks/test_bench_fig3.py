"""Figure 3: area-delay trade-off of competing FP subtractors.

The paper sweeps synthesis delay targets for the behavioural and optimized
half-precision subtractors and plots area over delay; the optimized curve
dominates (up to 33% lower delay at 41% smaller area).

This bench regenerates both series with the substitute synthesis flow and
prints them as rows (delay target, achieved delay, area).  Shape target:
the optimized curve must lie on or below the behavioural one over the
common delay range, and must reach a strictly lower minimum delay or area.
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_design
from repro.designs import DESIGNS
from repro.synth import area_delay_sweep

pytestmark = pytest.mark.slow

_STATE: dict = {}


def _sweeps():
    if not _STATE:
        from repro.designs import fp_sub_dual_path_ir

        run = run_design(DESIGNS["fp_sub"])
        _STATE["run"] = run
        _STATE["behavioural"] = area_delay_sweep(
            run.behavioural, run.design.input_ranges, points=8
        )
        _STATE["tool"] = area_delay_sweep(
            run.optimized, run.design.input_ranges, points=8
        )
        _STATE["dual-path"] = area_delay_sweep(
            fp_sub_dual_path_ir(), run.design.input_ranges, points=8
        )
    return _STATE


def test_fig3_series(benchmark):
    state = benchmark.pedantic(_sweeps, iterations=1, rounds=1)
    print("\nFigure 3 (area-delay sweep, gate units)")
    print(f"{'':>12} {'target':>8} {'delay':>8} {'area':>9}")
    for name in ("behavioural", "tool", "dual-path"):
        for point in state[name]:
            print(
                f"{name:>12} {point.target:>8.1f} {point.delay:>8.1f} "
                f"{point.area:>9.1f}"
            )

    behavioural = state["behavioural"]
    dual = state["dual-path"]
    tool = state["tool"]
    # The paper's Figure 3 claim, carried by the dual-path architecture:
    # a strictly better area at comparable (or better) delay, with the
    # optimized curve below the behavioural curve at the relaxed end.
    best_b = min(p.delay for p in behavioural)
    best_d = min(p.delay for p in dual)
    assert best_d <= best_b * 1.05
    loosest_b = max(behavioural, key=lambda p: p.target)
    loosest_d = max(dual, key=lambda p: p.target)
    assert loosest_d.area < loosest_b.area
    # The automated tool's curve must not regress the behavioural curve.
    assert min(p.delay for p in tool) <= best_b * 1.05


def test_fig3_monotonicity():
    """All curves must be monotone: looser targets never cost more area.

    Failed at the seed commit (one sweep point's area was non-monotone);
    fixed by ``area_delay_sweep`` carrying its best-so-far implementation
    across targets (prefix-min on the frontier) instead of trusting each
    greedy critical-path-upgrade run independently.
    """
    state = _sweeps()
    for name in ("behavioural", "tool", "dual-path"):
        areas = [p.area for p in state[name]]
        for tight, loose in zip(areas, areas[1:], strict=False):
            assert loose <= tight + 1e-6
