"""Golden-output DOT export: identical over façade, core, and snapshot."""

from textwrap import dedent

from repro.analysis import DatapathAnalysis
from repro.egraph import EGraph
from repro.egraph.dot import to_dot
from repro.intervals import IntervalSet
from repro.ir import ops

GOLDEN = dedent(
    """\
    digraph egraph {
      compound=true; rankdir=BT;
      node [shape=box, fontsize=10];
      subgraph cluster_0 { label="c0";
        n0_0 [label="a:4"];
      }
      subgraph cluster_1 { label="c1";
        n1_0 [label="b:4"];
      }
      subgraph cluster_2 { label="c2";
        n2_0 [label="+"];
        n2_1 [label="<<"];
      }
      subgraph cluster_3 { label="c3";
        n3_0 [label="1"];
      }
      n2_0 -> n0_0 [lhead=cluster_0];
      n2_0 -> n1_0 [lhead=cluster_1];
      n2_1 -> n0_0 [lhead=cluster_0];
      n2_1 -> n3_0 [lhead=cluster_3];
    }"""
)


def _build() -> EGraph:
    g = EGraph()
    a = g.add_node(ops.VAR, ("a", 4))
    b = g.add_node(ops.VAR, ("b", 4))
    add = g.add_node(ops.ADD, (), (a, b))
    shl = g.add_node(ops.SHL, (), (a, g.add_node(ops.CONST, (1,))))
    g.union(add, shl)
    g.rebuild()
    return g


def test_dot_matches_golden():
    assert to_dot(_build()) == GOLDEN


def test_dot_identical_over_facade_core_and_snapshot():
    g = _build()
    rendered = to_dot(g)
    assert to_dot(g.core) == rendered
    assert to_dot(g.snapshot()) == rendered


def test_dot_interval_labels_come_from_analysis_data():
    g = EGraph([DatapathAnalysis({"x": IntervalSet.of(3, 7)})])
    g.add_node(ops.VAR, ("x", 4))
    g.rebuild()
    text = to_dot(g)
    assert "c0" in text and "[3, 7]" in text
    assert to_dot(g.core) == text


def test_dot_max_classes_truncates_deterministically():
    g = EGraph()
    for i in range(8):
        g.add_node(ops.VAR, (f"v{i}", 4))
    g.rebuild()
    text = to_dot(g, max_classes=3)
    assert text.count("subgraph") == 3
    assert to_dot(g.core, max_classes=3) == text
