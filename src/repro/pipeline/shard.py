"""Intra-design sharding: fan output cones through per-shard pipelines.

The :class:`Shard` stage slices the ingested design into shared-nothing
cones (per output, or clustered by shared-subexpression weight — see
:mod:`repro.analysis.sharding`), runs each cone through its *own*
Ingest → Saturate → Extract pipeline — its own e-graph, its own analysis
state, its own node budget — and :class:`MergeShards` folds the extracted
expressions, costs and saturation reports back into the enclosing context,
where ``Verify`` / ``Emit`` / :func:`~repro.pipeline.session.record_from_context`
work exactly as in a monolithic run.

Because shards are plain picklable value objects (:class:`ShardTask`), the
fan-out optionally goes over a :class:`~concurrent.futures.ProcessPoolExecutor`
— and since :class:`~repro.pipeline.session.Session` already fans *designs*
out over processes, a batch of large designs parallelizes at two levels:
designs across the pool, cones within each design.

Why this scales: equality saturation is super-linear in e-graph size, and a
node limit is a *shared* budget monolithically — one greedy cone starves
every other output.  Shard-per-cone gives each output the full budget and
never pays for cross-cone e-node collisions (ROVER's decomposition insight,
applied to the paper's flow).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.sharding import ConeShard, ShardPlan, plan_shards, should_shard
from repro.egraph.runner import RunnerReport
from repro.ir.expr import Expr
from repro.pipeline.context import PipelineContext
from repro.pipeline.stages import Extract, Ingest, Saturate
from repro.rewrites import compose_rules
from repro.synth.cost import DelayArea


@dataclass(frozen=True)
class ShardSchedule:
    """Picklable per-shard saturation/extraction knobs.

    Mirrors the single-phase knobs of :class:`~repro.pipeline.session.Job`:
    a worker process rebuilds the actual ``Saturate``/``Extract`` stages from
    this spec, so no rule object (which may close over unpicklable state)
    ever crosses the process boundary.
    """

    iter_limit: int = 8
    node_limit: int = 30_000
    time_limit: float = 60.0
    split_threshold: int | None = 1
    enable_assume: bool = True
    enable_condition: bool = True
    strip_assumes: bool = False
    check_invariants: bool = False


@dataclass(frozen=True)
class ShardTask:
    """One unit of shard work (shippable to a worker process)."""

    shard: ConeShard
    schedule: ShardSchedule


@dataclass
class ShardResult:
    """Picklable outcome of one shard's pipeline run."""

    name: str
    outputs: tuple[str, ...]
    extracted: dict[str, Expr]
    original_costs: dict[str, DelayArea]
    optimized_costs: dict[str, DelayArea]
    reports: list[RunnerReport]
    wall_s: float
    stage_timings: dict[str, float] = field(default_factory=dict)

    @property
    def stop_reasons(self) -> tuple[str, ...]:
        return tuple(report.stop_reason.value for report in self.reports)


def shard_pipeline_stages(schedule: ShardSchedule) -> list:
    """The Saturate/Extract pair a schedule expands to inside a shard."""
    rules = compose_rules(
        schedule.split_threshold,
        schedule.enable_assume,
        schedule.enable_condition,
    )
    return [
        Saturate(
            rules,
            iter_limit=schedule.iter_limit,
            node_limit=schedule.node_limit,
            time_limit=schedule.time_limit,
            check_invariants=schedule.check_invariants,
        ),
        Extract(strip_assumes=schedule.strip_assumes),
    ]


def run_shard_task(task: ShardTask) -> ShardResult:
    """Run one shard to a result.  Top-level so process pools can pickle it."""
    from repro.pipeline.pipeline import Pipeline  # package-import cycle

    started = time.perf_counter()
    ctx = Pipeline(
        [Ingest(roots=task.shard.roots), *shard_pipeline_stages(task.schedule)]
    ).run(input_ranges=task.shard.input_ranges)
    return ShardResult(
        name=task.shard.name,
        outputs=task.shard.outputs,
        extracted=dict(ctx.extracted),
        original_costs=dict(ctx.original_costs),
        optimized_costs=dict(ctx.optimized_costs),
        reports=list(ctx.reports),
        wall_s=time.perf_counter() - started,
        stage_timings=ctx.stage_timings(),
    )


class Shard:
    """Slice the ingested design into cones and optimize each independently.

    ``max_shards=None`` shards per output; ``max_shards=K`` clusters cones by
    shared-subexpression weight down to at most ``K`` shards.  With
    ``auto_threshold`` set, sharding only engages when the design is
    multi-output *and* its DAG size reaches the threshold — smaller designs
    run as a single shard (equivalent to the monolithic flow), so the stage
    can sit unconditionally in a pipeline.  ``parallel=True`` fans shards out
    over a process pool (shards are shared-nothing by construction).
    """

    name = "shard"

    def __init__(
        self,
        schedule: ShardSchedule | None = None,
        max_shards: int | None = None,
        auto_threshold: int | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.schedule = schedule if schedule is not None else ShardSchedule()
        self.max_shards = max_shards
        self.auto_threshold = auto_threshold
        self.parallel = parallel
        self.max_workers = max_workers

    def plan(self, ctx: PipelineContext) -> ShardPlan:
        """The shard plan this stage would execute on the context."""
        if not ctx.roots:
            raise RuntimeError("Shard needs an Ingest stage to run first")
        if self.auto_threshold is not None and not should_shard(
            ctx.roots, self.auto_threshold
        ):
            return plan_shards(ctx.roots, ctx.input_ranges, max_shards=1)
        return plan_shards(ctx.roots, ctx.input_ranges, max_shards=self.max_shards)

    def run(self, ctx: PipelineContext) -> None:
        plan = self.plan(ctx)
        ctx.shard_plan = plan
        tasks = [ShardTask(shard, self.schedule) for shard in plan.shards]
        if self.parallel and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                ctx.shard_results = list(pool.map(run_shard_task, tasks))
        else:
            ctx.shard_results = [run_shard_task(task) for task in tasks]


class MergeShards:
    """Fold per-shard results back into the enclosing context.

    After the merge the context looks exactly like a monolithic
    Saturate+Extract run over every output — downstream ``Verify``/``Emit``
    stages and record condensation apply unchanged.  Per-shard wall times
    land in ``ctx.artifacts["shard_walls"]`` (and from there in
    ``RunRecord.shard_walls``); saturation reports append in shard order.
    """

    name = "merge-shards"

    def run(self, ctx: PipelineContext) -> None:
        if not ctx.shard_results:
            raise RuntimeError("MergeShards needs a Shard stage to run first")
        merged_outputs: set[str] = set()
        for result in ctx.shard_results:
            overlap = merged_outputs & set(result.outputs)
            if overlap:
                raise RuntimeError(
                    f"shard {result.name!r} re-merges outputs {sorted(overlap)}"
                )
            merged_outputs.update(result.outputs)
            ctx.extracted.update(result.extracted)
            ctx.original_costs.update(result.original_costs)
            ctx.optimized_costs.update(result.optimized_costs)
            ctx.reports.extend(result.reports)
        missing = set(ctx.roots) - merged_outputs
        if missing:
            raise RuntimeError(f"shard plan dropped outputs {sorted(missing)}")
        ctx.artifacts["shard_walls"] = {
            result.name: round(result.wall_s, 6) for result in ctx.shard_results
        }
