"""The command-line interface (subcommands + legacy form) and DOT export."""

import json

import pytest

from repro.analysis import DatapathAnalysis
from repro.cli import build_parser, main, parse_range
from repro.egraph import EGraph
from repro.egraph.dot import to_dot
from repro.intervals import IntervalSet
from repro.ir import gt, mux, var
from repro.rtl import module_to_ir

SOURCE = """
module toy (input [7:0] a, input [7:0] b, output [8:0] y);
  wire [8:0] s = a + b;
  assign y = (s > 9'd510) ? 9'd510 : s;
endmodule
"""


class TestCli:
    def test_parse_range(self):
        name, iset = parse_range("x=128:255")
        assert name == "x" and iset == IntervalSet.of(128, 255)

    def test_parse_range_rejects_junk(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_range("x128")

    def test_legacy_invocation_maps_to_optimize(self, tmp_path, capsys):
        """`python -m repro design.v` (no subcommand) must keep working."""
        src = tmp_path / "toy.v"
        src.write_text(SOURCE)
        out = tmp_path / "opt.v"
        code = main([str(src), "-o", str(out), "--iters", "5"])
        assert code == 0
        text = out.read_text()
        assert "module optimized" in text
        # Round-trips through our own frontend and lost the dead clamp.
        outs = module_to_ir(text)
        assert "y" in outs
        report = capsys.readouterr().err
        assert "delay" in report and "EQUIVALENT" in report

    def test_optimize_subcommand_with_new_flags(self, tmp_path, capsys):
        src = tmp_path / "toy.v"
        src.write_text(SOURCE)
        out = tmp_path / "opt.v"
        code = main(
            [
                "optimize", str(src), "-o", str(out),
                "--iters", "5", "--time-limit", "30",
                "--split-threshold", "2", "--no-verify",
            ]
        )
        assert code == 0
        assert "module optimized" in out.read_text()
        assert "not checked" in capsys.readouterr().err

    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "optimize", "f.v", "--range", "x=0:3", "--no-verify",
                "--nodes", "100", "--time-limit", "7.5", "--split-threshold", "3",
            ]
        )
        assert args.ranges[0][0] == "x"
        assert args.no_verify and args.nodes == 100
        assert args.time_limit == 7.5 and args.split_threshold == 3


class TestSubcommands:
    def test_bench_writes_records_and_report_reads_them(self, tmp_path, capsys):
        records = tmp_path / "records.json"
        code = main(
            [
                "bench", "--designs", "lzc_example", "--iters", "3",
                "--nodes", "6000", "--records", str(records),
            ]
        )
        assert code == 0
        table = capsys.readouterr().out
        assert "lzc_example" in table and "Optimized" in table

        saved = json.loads(records.read_text())
        assert len(saved) == 1 and saved[0]["design"] == "lzc_example"

        # A second bench appends rather than overwrites.
        assert main(
            [
                "bench", "--designs", "lzc_example", "--iters", "3",
                "--nodes", "6000", "--records", str(records),
            ]
        ) == 0
        assert len(json.loads(records.read_text())) == 2
        capsys.readouterr()

        assert main(["report", str(records)]) == 0
        assert "lzc_example" in capsys.readouterr().out

    def test_bench_records_preserve_dict_layout_files(self, tmp_path, capsys):
        """Appending into a BENCH_perf.json-style payload must not destroy
        the non-record keys."""
        records = tmp_path / "perf.json"
        records.write_text(json.dumps({"wall_s": 0.2, "records": []}))
        assert main(
            [
                "bench", "--designs", "lzc_example", "--iters", "3",
                "--nodes", "6000", "--records", str(records),
            ]
        ) == 0
        capsys.readouterr()
        saved = json.loads(records.read_text())
        assert saved["wall_s"] == 0.2
        assert len(saved["records"]) == 1

    def test_sweep_prints_objective_curve(self, capsys):
        code = main(
            ["sweep", "lzc_example", "--iters", "3", "--area-weights", "0,0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "area_weight" in out
        assert len([line for line in out.splitlines() if line.strip()]) >= 3

    def test_bench_unknown_design_fails_cleanly(self, capsys):
        code = main(["bench", "--designs", "nope", "--iters", "2"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_report_flags_failed_records(self, tmp_path, capsys):
        """`report` uses the same exit contract as `bench`."""
        records = tmp_path / "records.json"
        records.write_text(json.dumps([
            {"job": "bad", "design": "nope", "status": "error", "error": "boom"}
        ]))
        assert main(["report", str(records)]) == 1
        assert "FAILED" in capsys.readouterr().err


class TestDot:
    def test_dot_contains_classes_and_ranges(self):
        g = EGraph([DatapathAnalysis()])
        x = var("x", 4)
        g.add_expr(mux(gt(x, 2), x + 1, x))
        g.rebuild()
        text = to_dot(g)
        assert text.startswith("digraph egraph")
        assert "cluster_" in text
        assert "[0, 15]" in text  # the interval annotation
        assert "->" in text

    def test_dot_respects_limit(self):
        g = EGraph([DatapathAnalysis()])
        for i in range(30):
            g.add_expr(var(f"v{i}", 4) + i)
        text = to_dot(g, max_classes=5)
        assert text.count("subgraph") == 5
