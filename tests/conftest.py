"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.intervals import IntervalSet


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def random_iset(rng: random.Random, lo: int = -64, hi: int = 64) -> IntervalSet:
    """A random small interval set (possibly with several pieces)."""
    pieces = []
    for _ in range(rng.randint(1, 3)):
        a = rng.randint(lo, hi)
        b = rng.randint(lo, hi)
        if a > b:
            a, b = b, a
        pieces.append((a, b))
    out = IntervalSet.empty()
    for a, b in pieces:
        out = out.union(IntervalSet.of(a, b))
    return out


def sample(iset: IntervalSet, rng: random.Random) -> int:
    """A random member of a bounded, non-empty set."""
    parts = iset.parts
    piece = parts[rng.randrange(len(parts))]
    return rng.randint(piece.lo, piece.hi)
