"""Cost evaluation of plain expression trees and report formatting."""

from __future__ import annotations

from typing import Mapping

from repro.analysis import DatapathAnalysis, expr_ranges, expr_totals
from repro.egraph import EGraph, Extractor
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr
from repro.synth.cost import (
    CONST_HINT_POSITIONS,
    DelayArea,
    DelayAreaCost,
    lexicographic_key,
    operator_model,
)


def model_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Section IV-D model cost of a *fixed* expression tree.

    Computed directly over the tree: the tree range/totality analyses supply
    the widths and the constant-folding knowledge the e-class analysis would
    derive, and each operator is priced through the same
    :func:`~repro.synth.cost.operator_model` the extraction objective uses.
    (Earlier revisions loaded the tree into a throwaway e-graph per call —
    the dominant cost of reporting on large batches; the e-graph path
    survives as :func:`egraph_model_cost` and the test suite asserts parity.)

    Folding mirrors the e-class analysis: a total subterm whose range is a
    single value is a constant (zero cost), an ``ASSUME`` is a wire over its
    guarded child and folds to a constant when its *refined* range is a
    single value and the guarded child is total.
    """
    ranges = expr_ranges(expr, input_ranges)
    totals = expr_totals(expr, ranges)
    memo: dict[Expr, tuple[float, float]] = {}

    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if c not in memo)
            continue
        if totals[node] and ranges[node].as_point() is not None:
            # Folds to a literal constant (free).
            memo[node] = (0.0, 0.0)
        elif node.op is ops.ASSUME:
            guarded = node.children[0]
            if ranges[node].as_point() is not None and totals[guarded]:
                # Partial fold: ASSUME(x, C) == ASSUME(k, C) when the
                # refined range is {k} — costs as the constant.
                memo[node] = (0.0, 0.0)
            else:
                memo[node] = memo[guarded]
        else:
            kids = node.children
            # Mirrors the e-graph path: a child that folds (total +
            # singleton range) is a literal constant there.
            consts = [False] * len(kids)
            for position in CONST_HINT_POSITIONS.get(node.op, ()):
                child = kids[position]
                consts[position] = (
                    totals[child] and ranges[child].as_point() is not None
                )
            own_delay, own_area = operator_model(
                node.op, ranges[node], [ranges[c] for c in kids], consts
            )
            delay = own_delay + max((memo[c][0] for c in kids), default=0.0)
            area = own_area + sum(memo[c][1] for c in kids)
            memo[node] = (delay, area)

    delay, area = memo[expr]
    return DelayArea(delay, area, lexicographic_key(delay, area))


def egraph_model_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Reference implementation of :func:`model_cost` through the e-graph.

    Loads the tree into a throwaway e-graph (no rewriting) so the extraction
    cost function sees e-class analysis widths, then costs it as-is.  Kept as
    the differential oracle for the tree path.
    """
    egraph = EGraph([DatapathAnalysis(dict(input_ranges or {}))])
    root = egraph.add_expr(expr)
    egraph.rebuild()
    extractor = Extractor(egraph, DelayAreaCost())
    return extractor.cost_of(root)


def format_comparison(
    rows: list[tuple[str, float, float, float, float]],
    headers: tuple[str, str] = ("Behavioural", "Optimized"),
) -> str:
    """Render a Table III style comparison.

    ``rows`` entries: (name, delay_a, area_a, delay_b, area_b).
    """
    lines = [
        f"{'Test Case':<16} {headers[0]:>22} {headers[1]:>28}",
        f"{'':<16} {'delay':>10} {'area':>11} {'delay':>14} {'area':>13}",
    ]
    for name, delay_a, area_a, delay_b, area_b in rows:
        delay_pct = 100.0 * (delay_b - delay_a) / delay_a if delay_a else 0.0
        area_pct = 100.0 * (area_b - area_a) / area_a if area_a else 0.0
        lines.append(
            f"{name:<16} {delay_a:>10.2f} {area_a:>11.1f} "
            f"{delay_b:>8.2f} ({delay_pct:+3.0f}%) {area_b:>7.1f} ({area_pct:+3.0f}%)"
        )
    return "\n".join(lines)
