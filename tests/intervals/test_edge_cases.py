"""Edge cases of the interval domain that the transfer functions must
handle: empty sets, unbounded operands, degenerate widths."""

from repro.intervals import Interval, IntervalSet


EMPTY = IntervalSet.empty()
TOP = IntervalSet.top()


class TestEmptyPropagation:
    def test_arith_with_empty(self):
        a = IntervalSet.of(1, 5)
        assert a.add(EMPTY).is_empty
        assert EMPTY.sub(a).is_empty
        assert a.mul(EMPTY).is_empty
        assert EMPTY.neg().is_empty
        assert EMPTY.abs().is_empty

    def test_shifts_with_empty(self):
        a = IntervalSet.of(1, 5)
        assert a.shl(EMPTY).is_empty
        assert EMPTY.shr(a).is_empty

    def test_comparisons_with_empty(self):
        a = IntervalSet.of(1, 5)
        assert a.cmp_lt(EMPTY).is_empty
        assert EMPTY.cmp_eq(a).is_empty
        assert EMPTY.logical_not().is_empty

    def test_bitwise_with_empty(self):
        a = IntervalSet.of(1, 5)
        assert a.bit_and(EMPTY).is_empty
        assert EMPTY.bit_or(a).is_empty

    def test_lzc_of_out_of_domain_is_empty(self):
        # All values outside [0, 2^w): every evaluation is *, set empty.
        assert IntervalSet.of(256, 300).lzc(8).is_empty
        assert IntervalSet.of(-5, -1).lzc(8).is_empty


class TestUnboundedOperands:
    def test_add_with_halfline(self):
        a = IntervalSet.of(0, None)
        b = IntervalSet.of(1, 2)
        out = a.add(b)
        assert out.min() == 1 and out.max() is None

    def test_mul_with_halfline_goes_top(self):
        a = IntervalSet.of(0, None)
        assert a.mul(IntervalSet.of(1, 2)).is_top

    def test_neg_swaps_direction(self):
        a = IntervalSet.of(None, 5)
        out = a.neg()
        assert out.min() == -5 and out.max() is None

    def test_shr_unbounded_amount_includes_limits(self):
        a = IntervalSet.of(-8, 8)
        out = a.shr(IntervalSet.of(0, None))
        # Limits of x >> s as s grows: 0 (x >= 0) and -1 (x < 0).
        assert 0 in out and -1 in out and 8 in out and -8 in out

    def test_mod_of_unbounded(self):
        assert IntervalSet.of(None, None).trunc_mod(8) == IntervalSet.of(0, 7)


class TestDegenerateWidths:
    def test_unsigned_zero_width(self):
        assert IntervalSet.unsigned(0).as_point() == 0

    def test_lzc_width_one(self):
        assert IntervalSet.of(0, 1).lzc(1) == IntervalSet.of(0, 1)
        assert IntervalSet.point(1).lzc(1).as_point() == 0
        assert IntervalSet.point(0).lzc(1).as_point() == 1

    def test_bitnot_involution(self):
        a = IntervalSet.of(3, 9)
        assert a.bit_not(4).bit_not(4) == a

    def test_point_arithmetic_exact(self):
        p = IntervalSet.point(7)
        q = IntervalSet.point(-3)
        assert p.add(q).as_point() == 4
        assert p.mul(q).as_point() == -21
        assert p.sub(q).as_point() == 10
        assert q.abs().as_point() == 3


class TestCoalescingSoundness:
    def test_cap_preserves_membership(self):
        values = [i * 7 for i in range(40)]
        exact = IntervalSet.from_values(values)
        capped = IntervalSet.from_intervals(
            [Interval(v, v) for v in values], cap=5
        )
        assert len(capped.parts) <= 5
        for v in values:
            assert v in capped
        assert exact.issubset(capped)
