"""The original per-object e-graph engine, kept as a differential oracle.

This is the hashcons + union-find + deferred-rebuild implementation the repo
grew through PRs 1–5, verbatim except for its name: the production
:class:`repro.egraph.egraph.EGraph` is now a façade over the flat
struct-of-arrays :class:`repro.egraph.core.CoreGraph`, and this object
engine survives as :class:`LegacyEGraph` so tests can run the same rewrite
sequences on both representations and diff the results
(``tests/egraph/test_core_parity.py``), and so the perf bench can assert the
flat core does not regress peak memory against it.

Every public method keeps the shared engine protocol (``add_enode`` /
``union`` / ``rebuild`` / ``nodes_by_op`` / ``classes`` / …), so the
:class:`~repro.egraph.runner.Runner`, :class:`~repro.egraph.extract.Extractor`
and :func:`~repro.egraph.pattern.ematch` run unchanged against either engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.egraph.core import Analysis
from repro.egraph.enode import ENode
from repro.egraph.unionfind import UnionFind
from repro.ir import ops
from repro.ir.expr import Expr
from repro.ir.ops import Op

__all__ = ["Analysis", "LegacyEClass", "LegacyEGraph"]


@dataclass
class LegacyEClass:
    """One equivalence class of e-nodes."""

    id: int
    nodes: set[ENode] = field(default_factory=set)
    #: Parent set, keyed by the parent e-node (value: id of the class owning
    #: it).  A dict instead of a list of tuples: unions concatenate parent
    #: collections, and list-of-tuples `extend`s accumulated heavy duplication
    #: on the hot path — the key dedups structurally, and merge becomes one
    #: ``update``.  Entries may go stale (non-canonical keys / absorbed owner
    #: ids) between a union and the next rebuild; readers resolve via ``find``.
    parents: dict[ENode, int] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    #: Membership revision: bumped whenever ``nodes`` changes (a merge brings
    #: new members in, or a rebuild re-canonicalizes the set).  Analyses use
    #: it to key per-class membership caches — see
    #: :func:`repro.analysis.constr.constr_candidates`.
    rev: int = 0


class LegacyEGraph:
    """A hashconsed, analysis-carrying e-graph (per-object representation)."""

    def __init__(self, analyses: Iterable[Analysis] = ()) -> None:
        self._uf = UnionFind()
        self._classes: dict[int, LegacyEClass] = {}
        self._hashcons: dict[ENode, int] = {}
        self._pending: list[tuple[ENode, int]] = []
        self._analysis_pending: list[tuple[ENode, int]] = []
        #: Incremental size counter, kept in sync by ``add_enode``/``union``/
        #: ``_recanonicalize_classes`` so the runner's per-match node-limit
        #: check is O(1) instead of an O(classes) sweep.
        self._node_count = 0
        #: Persistent per-op index: op -> {e-node -> owning class id}.  Kept
        #: current on add, repaired for dirty classes during ``rebuild``.
        #: Entries may go stale (non-canonical keys / absorbed class ids)
        #: between a union and the next rebuild; readers resolve through
        #: ``find`` and dedup canonicalized entries.
        self._op_index: dict[Op, dict[ENode, int]] = {}
        #: Classes whose node sets may hold non-canonical nodes; only these
        #: are re-canonicalized on rebuild.
        self._dirty_classes: set[int] = set()
        self.analyses: tuple[Analysis, ...] = tuple(analyses)
        #: Incremented on every successful union; rewrite runners use this to
        #: detect saturation.
        self.version = 0

    # ------------------------------------------------------------------ sizes
    def find(self, class_id: int) -> int:
        """Canonical id of the class containing ``class_id``."""
        return self._uf.find(class_id)

    @property
    def class_count(self) -> int:
        """Number of canonical e-classes."""
        return len(self._classes)

    @property
    def node_count(self) -> int:
        """Total number of e-nodes across all classes (O(1))."""
        return self._node_count

    @property
    def is_clean(self) -> bool:
        """True when no unions are pending — ids and index entries are
        canonical (holds directly after :meth:`rebuild`)."""
        return not self._pending and not self._dirty_classes

    def classes(self) -> Iterator[LegacyEClass]:
        """Iterate canonical e-classes (snapshot; safe to mutate during)."""
        return iter(list(self._classes.values()))

    def __getitem__(self, class_id: int) -> LegacyEClass:
        return self._classes[self._uf.find(class_id)]

    def data(self, class_id: int, analysis: str) -> Any:
        """Analysis data of the class, by analysis name."""
        return self._classes[self._uf.find(class_id)].data[analysis]

    def set_data(self, class_id: int, analysis: str, value: Any) -> None:
        """Overwrite analysis data (used to seed input assumptions).

        ``modify`` re-runs on the class itself — seeding a range that proves
        the class constant must materialize the CONST node — and the parents
        are requeued so the new data propagates upward on the next rebuild.
        """
        root = self.find(class_id)
        cls = self._classes[root]
        cls.data[analysis] = value
        self._analysis_pending.extend(cls.parents.items())
        for a in self.analyses:
            if a.name == analysis:
                a.modify(self, root)

    # ------------------------------------------------------------------- add
    def add_enode(self, enode: ENode) -> int:
        """Intern an e-node, returning its (possibly existing) class id."""
        enode = enode.canonical(self._uf.find)
        existing = self._hashcons.get(enode)
        if existing is not None:
            return self._uf.find(existing)
        class_id = self._uf.make_set()
        eclass = LegacyEClass(id=class_id, nodes={enode})
        self._classes[class_id] = eclass
        self._hashcons[enode] = class_id
        self._node_count += 1
        self._op_index.setdefault(enode.op, {})[enode] = class_id
        for child in set(enode.children):
            self._classes[self._uf.find(child)].parents[enode] = class_id
        for analysis in self.analyses:
            eclass.data[analysis.name] = analysis.make(self, enode)
        for analysis in self.analyses:
            analysis.modify(self, class_id)
        return self._uf.find(class_id)

    def add_node(self, op: Op, attrs: tuple = (), children: Iterable[int] = ()) -> int:
        """Convenience wrapper building the :class:`ENode` in place."""
        return self.add_enode(ENode(op, attrs, tuple(children)))

    def add_expr(self, expr: Expr) -> int:
        """Insert a whole expression tree; returns the root class id."""
        memo: dict[Expr, int] = {}
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, ready = stack.pop()
            if node in memo:
                continue
            if not ready:
                stack.append((node, True))
                stack.extend((c, False) for c in node.children if c not in memo)
                continue
            kids = tuple(memo[c] for c in node.children)
            memo[node] = self.add_enode(ENode(node.op, node.attrs, kids))
        return memo[expr]

    def add_const(self, value: int) -> int:
        """Intern a CONST leaf."""
        return self.add_node(ops.CONST, (int(value),))

    # ----------------------------------------------------------------- lookup
    def lookup(self, enode: ENode) -> int | None:
        """Class id of an e-node if it is interned, else None."""
        found = self._hashcons.get(enode.canonical(self._uf.find))
        if found is None:
            return None
        return self._uf.find(found)

    def class_const(self, class_id: int) -> int | None:
        """The CONST value of a class if it contains a literal node."""
        for node in self._classes[self.find(class_id)].nodes:
            if node.op is ops.CONST:
                return node.attrs[0]
        return None

    def nodes_by_op(self) -> dict[Op, list[tuple[int, ENode]]]:
        """Index op -> [(class id, e-node)], from the persistent op-index.

        This is a cheap per-op snapshot of :attr:`_op_index` rather than a
        full rescan of every class's node set.  Directly after ``rebuild``
        all entries are canonical; between rebuilds class ids may be stale
        (resolve through :meth:`find`, as :func:`~repro.egraph.pattern.ematch`
        does).
        """
        return {
            op: [(cid, node) for node, cid in sub.items()]
            for op, sub in self._op_index.items()
            if sub
        }

    # ------------------------------------------------------------------ union
    def union(self, a: int, b: int) -> int:
        """Assert that classes ``a`` and ``b`` are equal; returns the root."""
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return ra
        self.version += 1
        root, absorbed = self._uf.union(ra, rb)
        keep = self._classes[root]
        gone = self._classes.pop(absorbed)

        # Congruence repair is deferred: every parent of the absorbed class
        # may now be congruent to a parent of the surviving class.
        self._pending.extend(gone.parents.items())

        keep_changed = gone_changed = False
        for analysis in self.analyses:
            old_keep = keep.data[analysis.name]
            old_gone = gone.data[analysis.name]
            joined = analysis.join(old_keep, old_gone)
            keep.data[analysis.name] = joined
            keep_changed = keep_changed or joined != old_keep
            gone_changed = gone_changed or joined != old_gone
        # A side's parents are requeued when the joined data differs from
        # what that side's parents last saw.  ASSUME parents are requeued
        # *unconditionally*: even with unchanged data the merged class has
        # new members, and the ASSUME transfer function (eq. (4)) inspects
        # constraint-class membership — a freshly merged `a-b > 0` e-node
        # must refine its ASSUME parents (Section IV-C's condition-rewriting
        # flow).
        pend = self._analysis_pending
        for changed, parents in ((keep_changed, keep.parents), (gone_changed, gone.parents)):
            if changed:
                pend.extend(parents.items())
            else:
                pend.extend(p for p in parents.items() if p[0].op is ops.ASSUME)

        # Track staleness for the incremental rebuild: the merged class and
        # every class owning a node that references the absorbed id need
        # their node sets (and op-index entries) re-canonicalized.
        self._dirty_classes.add(root)
        self._dirty_classes.update(gone.parents.values())

        before = len(keep.nodes)
        keep.nodes |= gone.nodes
        keep.rev += 1
        self._node_count += len(keep.nodes) - before - len(gone.nodes)
        keep.parents.update(gone.parents)
        for analysis in self.analyses:
            analysis.modify(self, root)
        return root

    # ---------------------------------------------------------------- rebuild
    def rebuild(self, analysis_budget: int = 200_000) -> int:
        """Restore congruence and re-run analyses to a (sound) fixpoint.

        Returns the number of unions performed during the repair.  The
        ``analysis_budget`` caps upward-propagation work; stopping early is
        sound because interval data only ever *tightens* through joins.
        """
        unions = 0
        while self._pending or self._analysis_pending:
            while self._pending:
                # Parents are requeued unconditionally on every union, so the
                # worklists accumulate heavy duplication — dedup at drain
                # time (order-preserving) before paying for repair work.
                todo, self._pending = list(dict.fromkeys(self._pending)), []
                for enode, class_id in todo:
                    self._hashcons.pop(enode, None)
                    canon = enode.canonical(self._uf.find)
                    existing = self._hashcons.get(canon)
                    root = self._uf.find(class_id)
                    if existing is not None and self._uf.find(existing) != root:
                        self.union(existing, root)
                        unions += 1
                    self._hashcons[canon] = self._uf.find(class_id)

            budget = analysis_budget
            self._analysis_pending = list(dict.fromkeys(self._analysis_pending))
            while self._analysis_pending and budget:
                budget -= 1
                enode, class_id = self._analysis_pending.pop()
                root = self._uf.find(class_id)
                eclass = self._classes.get(root)
                if eclass is None:
                    continue
                for analysis in self.analyses:
                    old = eclass.data[analysis.name]
                    new = analysis.join(old, analysis.make(self, enode))
                    if new != old:
                        eclass.data[analysis.name] = new
                        self._analysis_pending.extend(eclass.parents.items())
                        analysis.modify(self, root)
            if not budget:
                self._analysis_pending.clear()

        self._recanonicalize_classes()
        return unions

    def _recanonicalize_classes(self) -> None:
        """Re-canonicalize node sets, parent lists and op-index entries.

        Only classes marked dirty by ``union`` are touched: a class's node
        set can only go stale when one of its children's classes is absorbed
        (it is then a parent of the absorbed class) or when it absorbs
        another class itself — both paths mark it dirty.
        """
        if not self._dirty_classes:
            return
        find = self._uf.find
        dirty_roots = {find(cid) for cid in self._dirty_classes}
        self._dirty_classes.clear()

        touched: list[tuple[LegacyEClass, set[ENode]]] = []
        for root in dirty_roots:
            eclass = self._classes[root]
            old_nodes = eclass.nodes
            eclass.nodes = {n.canonical(find) for n in old_nodes}
            if eclass.nodes != old_nodes:
                eclass.rev += 1
            self._node_count += len(eclass.nodes) - len(old_nodes)
            fresh_parents: dict[ENode, int] = {}
            for enode, pid in eclass.parents.items():
                fresh_parents[enode.canonical(find)] = find(pid)
            eclass.parents = fresh_parents
            touched.append((eclass, old_nodes))

        # Op-index repair in two passes: drop every stale key first, then
        # re-insert the canonical ones — a stale key of one class can be the
        # canonical key of another, so interleaving would delete live
        # entries.
        op_index = self._op_index
        for _eclass, old_nodes in touched:
            for node in old_nodes:
                sub = op_index.get(node.op)
                if sub is not None:
                    sub.pop(node, None)
        for eclass, _old_nodes in touched:
            for node in eclass.nodes:
                op_index.setdefault(node.op, {})[node] = eclass.id

    # ----------------------------------------------------------------- checks
    def check_invariants(self) -> None:
        """Assert hashcons/congruence invariants (used by the test-suite)."""
        find = self._uf.find
        for class_id, eclass in self._classes.items():
            assert find(class_id) == class_id, "non-canonical class retained"
            for node in eclass.nodes:
                canon = node.canonical(find)
                owner = self._hashcons.get(canon)
                assert owner is not None, f"node {canon} missing from hashcons"
                assert find(owner) == class_id, (
                    f"hashcons maps {canon} to {find(owner)}, expected {class_id}"
                )
        seen: dict[ENode, int] = {}
        for class_id, eclass in self._classes.items():
            for node in eclass.nodes:
                canon = node.canonical(find)
                if canon in seen:
                    assert seen[canon] == class_id, f"congruence violated at {canon}"
                seen[canon] = class_id

        # Parent sets: dict-keyed, so a parent e-node appears at most once
        # per child class, and every entry resolves (through ``find``) to the
        # class that owns the canonical form of the parent node and really
        # references this class as a child.
        for class_id, eclass in self._classes.items():
            for penode, pid in eclass.parents.items():
                canon = penode.canonical(find)
                owner = self._hashcons.get(canon)
                assert owner is not None, f"parent {canon} missing from hashcons"
                assert find(owner) == find(pid), (
                    f"parent entry {canon} claims owner {find(pid)}, "
                    f"hashcons says {find(owner)}"
                )
                assert class_id in {find(c) for c in canon.children}, (
                    f"parent {canon} recorded on class {class_id} but does "
                    f"not reference it"
                )

        # Incremental counters must agree with a full recomputation.
        swept = sum(len(c.nodes) for c in self._classes.values())
        assert self._node_count == swept, (
            f"node_count counter {self._node_count} != swept {swept}"
        )
        assert self.class_count == len(self._classes)

        # The persistent op-index must agree with a full rescan: canonical
        # keys only, owned by the right op, resolving to the owning class.
        expected: dict[ENode, int] = {}
        for class_id, eclass in self._classes.items():
            for node in eclass.nodes:
                expected[node] = class_id
        indexed: dict[ENode, int] = {}
        for op, sub in self._op_index.items():
            for node, class_id in sub.items():
                assert node.op is op, f"op-index files {node} under {op}"
                assert node.canonical(find) == node, (
                    f"stale op-index key {node} after rebuild"
                )
                indexed[node] = find(class_id)
        assert indexed == expected, "op-index disagrees with class sweep"

    # ------------------------------------------------------------ extraction
    def any_expr(self, class_id: int) -> Expr:
        """Some expression from the class (smallest node count, greedy)."""
        from repro.egraph.extract import AstSizeCost, Extractor

        return Extractor(self, AstSizeCost()).expr_of(class_id)

    def dump(self, limit: int = 50) -> str:
        """Human-readable snapshot for debugging."""
        lines = []
        for eclass in sorted(self._classes.values(), key=lambda c: c.id)[:limit]:
            nodes = ", ".join(repr(n) for n in sorted(eclass.nodes, key=repr))
            lines.append(f"c{eclass.id}: {nodes}")
        return "\n".join(lines)
