"""Output-cone slicing over IR trees.

A *cone* is everything an output port can reach: the IR subterms feeding it
and the input variables at its leaves.  Because IR roots are plain immutable
trees, a cone is fully described by its root expressions — slicing a
multi-output design means grouping roots, and the only real analysis is
measuring what two cones *share* (so a shard planner can decide which cones
are worth co-optimizing in one e-graph).

These helpers are deliberately free of pipeline/e-graph imports: they are
the IR-level substrate for :mod:`repro.analysis.sharding`.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.evaluate import input_variables
from repro.ir.expr import Expr, subterms


def cone_inputs(roots: Iterable[Expr]) -> dict[str, int]:
    """Input variables (name -> width) reachable from any of ``roots``.

    Raises if the same name is used at two widths across the cone, exactly
    as :func:`~repro.ir.evaluate.input_variables` does for one tree.
    """
    merged: dict[str, int] = {}
    for root in roots:
        for name, width in input_variables(root).items():
            if merged.get(name, width) != width:
                raise ValueError(f"variable {name} used at two widths")
            merged[name] = width
    return merged


def cone_size(roots: Iterable[Expr]) -> int:
    """Number of distinct subterms across the cone (its DAG size)."""
    return len(subterms(roots))


def _operators(roots: Iterable[Expr]) -> set[Expr]:
    """Distinct hardware-bearing subterms (leaves carry no operators)."""
    return {node for node in subterms(roots) if node.children}


def shared_weight(a: Iterable[Expr], b: Iterable[Expr]) -> int:
    """Shared-subexpression weight between two cones.

    Counts the distinct *operator* subterms present in both cones — the
    structure a joint e-graph would dedup and co-optimize.  Leaves (VAR /
    CONST) are excluded: sharing an input wire costs nothing to replicate
    across shards, so it should not pull cones into the same shard.
    """
    return len(_operators(a) & _operators(b))
