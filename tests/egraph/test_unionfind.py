"""Union-find invariants (unit + property)."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.egraph import UnionFind


def test_singletons_are_own_roots():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(10)]
    assert [uf.find(i) for i in ids] == ids


def test_union_connects():
    uf = UnionFind()
    a, b, c = (uf.make_set() for _ in range(3))
    uf.union(a, b)
    assert uf.in_same_set(a, b)
    assert not uf.in_same_set(a, c)
    uf.union(b, c)
    assert uf.in_same_set(a, c)


def test_union_returns_root_and_absorbed():
    uf = UnionFind()
    a, b = uf.make_set(), uf.make_set()
    root, absorbed = uf.union(a, b)
    assert {root, absorbed} == {a, b}
    assert uf.find(a) == root
    root2, absorbed2 = uf.union(a, b)
    assert root2 == absorbed2 == root


@given(st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=200))
def test_matches_naive_partition(pairs):
    """Union-find agrees with a naive set-merging implementation."""
    uf = UnionFind()
    for _ in range(50):
        uf.make_set()
    naive = [{i} for i in range(50)]

    def naive_find(x):
        for group in naive:
            if x in group:
                return group
        raise AssertionError

    for a, b in pairs:
        uf.union(a, b)
        ga, gb = naive_find(a), naive_find(b)
        if ga is not gb:
            ga |= gb
            naive.remove(gb)

    for x in range(50):
        for y in range(50):
            assert uf.in_same_set(x, y) == (naive_find(x) is naive_find(y))


def _chain_length(uf: UnionFind, item: int) -> int:
    """Parent hops from ``item`` to its root (no mutation)."""
    parent, hops = uf._parent, 0
    while parent[item] != item:
        item = parent[item]
        hops += 1
    return hops


@given(st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=120))
def test_find_is_idempotent_and_canonical(pairs):
    """find(x) is a fixed point: a root maps to itself, repeated calls agree,
    and two items report equal roots iff in_same_set says so."""
    uf = UnionFind()
    for _ in range(30):
        uf.make_set()
    for a, b in pairs:
        uf.union(a, b)
    roots = [uf.find(x) for x in range(30)]
    for x, root in enumerate(roots):
        assert uf.find(root) == root
        assert uf.find(x) == root
    for x in range(30):
        for y in range(30):
            assert (roots[x] == roots[y]) == uf.in_same_set(x, y)


@given(
    st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=120),
    st.lists(st.integers(0, 29), max_size=60),
)
def test_interleaved_finds_never_change_the_partition(pairs, probes):
    """Path halving is observationally pure: a run with finds interleaved
    produces the same partition as the same unions without them."""
    plain, probed = UnionFind(), UnionFind()
    for _ in range(30):
        plain.make_set()
        probed.make_set()
    probe_iter = iter(probes)
    for a, b in pairs:
        plain.union(a, b)
        probed.union(a, b)
        for x in (next(probe_iter, None),):
            if x is not None:
                probed.find(x)
    for x in range(30):
        for y in range(30):
            assert plain.in_same_set(x, y) == probed.in_same_set(x, y)


@given(st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=200))
def test_path_halving_never_lengthens_chains(pairs):
    """Each find leaves the walked item's chain no longer than before, and
    afterwards the item points at most halfway up its old path."""
    uf = UnionFind()
    for _ in range(50):
        uf.make_set()
    for a, b in pairs:
        uf.union(a, b)
        before = _chain_length(uf, a)
        uf.find(a)
        after = _chain_length(uf, a)
        assert after <= before
        if before > 1:
            assert after <= before - before // 2


def test_find_handles_pathological_chains_iteratively():
    """A maximally deep parent chain (never produced by union-by-size, but
    the worst case for a recursive find) resolves without recursion."""
    uf = UnionFind()
    n = 50_000
    for _ in range(n):
        uf.make_set()
    uf._parent[:] = [max(0, i - 1) for i in range(n)]
    uf._size[0] = n
    assert uf.find(n - 1) == 0
    assert _chain_length(uf, n - 1) <= (n // 2) + 1
    for _ in range(20):
        uf.find(n - 1)
    assert _chain_length(uf, n - 1) <= 1


def test_union_by_size_absorbs_the_smaller_set():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(5)]
    uf.union(ids[0], ids[1])
    uf.union(ids[0], ids[2])  # {0,1,2} rooted somewhere
    big = uf.find(ids[0])
    root, absorbed = uf.union(ids[3], ids[0])
    assert root == big
    assert absorbed == ids[3]
    assert uf.find(ids[3]) == big


def test_path_compression_keeps_answers_stable():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(100)]
    rng = random.Random(3)
    for _ in range(80):
        uf.union(rng.choice(ids), rng.choice(ids))
    before = [uf.find(i) for i in ids]
    after = [uf.find(i) for i in ids]
    assert before == after
