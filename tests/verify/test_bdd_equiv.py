"""BDD engine and the equivalence-checking strategy."""

import pytest

from repro.intervals import IntervalSet
from repro.ir import abs_, assume, gt, lzc, mux, var
from repro.verify import BDD, BddLimitError, check_equivalent
from repro.verify.bdd import BDD as BDDClass


class TestBDD:
    def test_terminals_and_vars(self):
        bdd = BDD()
        x = bdd.var(0)
        assert bdd.apply_and(x, bdd.TRUE) == x
        assert bdd.apply_and(x, bdd.FALSE) == bdd.FALSE
        assert bdd.apply_or(x, bdd.TRUE) == bdd.TRUE
        assert bdd.apply_xor(x, x) == bdd.FALSE
        assert bdd.apply_not(bdd.apply_not(x)) == x

    def test_hashconsing_canonical(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        f1 = bdd.apply_or(bdd.apply_and(x, y), bdd.apply_and(x, bdd.apply_not(y)))
        assert f1 == x  # (x&y)|(x&~y) reduces to x

    def test_demorgan(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        lhs = bdd.apply_not(bdd.apply_and(x, y))
        rhs = bdd.apply_or(bdd.apply_not(x), bdd.apply_not(y))
        assert lhs == rhs

    def test_any_sat(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.apply_and(x, bdd.apply_not(y))
        model = bdd.any_sat(f)
        assert model[0] == 1 and model[1] == 0
        assert bdd.any_sat(bdd.FALSE) is None

    def test_count_sat(self):
        bdd = BDD()
        x, y, z = (bdd.var(i) for i in range(3))
        f = bdd.apply_or(x, bdd.apply_and(y, z))
        # x | (y&z): 4 + 1 = 5 of 8 assignments
        assert bdd.count_sat(f, 3) == 5

    def test_node_limit(self):
        bdd = BDDClass(node_limit=8)
        with pytest.raises(BddLimitError):
            f = bdd.TRUE
            for i in range(10):
                f = bdd.apply_xor(f, bdd.var(i))


class TestCheckEquivalent:
    def test_exhaustive_positive(self):
        x = var("x", 6)
        a = (x + x) >> 1
        verdict = check_equivalent(a, x)
        assert verdict.equivalent is True
        assert verdict.method == "exhaustive"

    def test_exhaustive_counterexample(self):
        x = var("x", 6)
        verdict = check_equivalent(x + 1, x)
        assert verdict.equivalent is False
        assert verdict.counterexample is not None

    def test_bdd_proof_on_wide_inputs(self):
        # 2 x 16-bit inputs: too big for exhaustive, fine for BDDs.
        a, b = var("a", 16), var("b", 16)
        lhs = mux(gt(a, b), a, b)
        rhs = mux(gt(b, a), b, a)
        verdict = check_equivalent(lhs, rhs, exhaustive_budget=1 << 10)
        assert verdict.equivalent is True
        assert verdict.method == "bdd"

    def test_bdd_counterexample(self):
        a, b = var("a", 16), var("b", 16)
        verdict = check_equivalent(a + b, a | b, exhaustive_budget=1 << 10)
        assert verdict.equivalent is False
        env = verdict.counterexample
        assert (env["a"] + env["b"]) != (env["a"] | env["b"])

    def test_domain_constrained_equivalence(self):
        """abs(x-128) == x-128 only under the constraint x >= 128."""
        x = var("x", 8)
        lhs, rhs = abs_(x - 128), x - 128
        unconstrained = check_equivalent(lhs, rhs)
        assert unconstrained.equivalent is False
        constrained = check_equivalent(
            lhs, rhs, {"x": IntervalSet.of(128, 255)}
        )
        assert constrained.equivalent is True

    def test_assume_semantics_respected(self):
        """Guarded assumes compare equal to the plain design."""
        x = var("x", 8)
        plain = mux(gt(x, 10), x - 10, 0)
        assumed = mux(gt(x, 10), assume(x, gt(x, 10)) - 10, 0)
        verdict = check_equivalent(plain, assumed)
        assert verdict.equivalent is True

    def test_paper_figure1_equivalence(self):
        x, y = var("x", 8), var("y", 8)
        wide = lzc(x + y, 9)
        narrow = lzc((x + y) >> 7, 2)
        ranges = {"x": IntervalSet.of(128, 255)}
        assert check_equivalent(wide, narrow, ranges).equivalent is True
        # Without the input constraint they differ.
        assert check_equivalent(wide, narrow).equivalent is False
