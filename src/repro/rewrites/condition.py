"""Table II: condition rewriting into the ``Constr`` fragment.

=====================  =========================
Transformation rules   Inversion rules
=====================  =========================
``a <  b -> a-b <  0``  ``~(a == b) -> a != b``
``a <= b -> a < b+1``   ``~(a >  b) -> a <= b``
``a >  b -> a-b >  0``  ``~(a >= b) -> a <  b``
``a >= b -> a > b-1``   ``~(a <  b) -> a >= b``
``a == b -> a-b == 0``  ``~(a <= b) -> a >  b``
``a == b -> 0 == b-a``
=====================  =========================

These hold unconditionally over exact integer semantics.  Their purpose
(Section IV-C) is to morph an arbitrary condition into a member of
``Constr`` — "expression compared with a constant" — so that the ASSUME
abstraction of eq. (4) can refine ranges.  Because a constraint e-class
*accumulates* every equivalent form, any one interpretable member suffices.
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite
from repro.rewrites.soundness import drule


def condition_rules() -> list[Rewrite]:
    """The full Table II rule set (plus the missing-but-sound ~(a != b))."""
    return [
        # --- transformation rules ----------------------------------------
        drule("cond-lt-sub", "(< ?a ?b)", "(< (- ?a ?b) 0)"),
        drule("cond-le-lt", "(<= ?a ?b)", "(< ?a (+ ?b 1))"),
        drule("cond-gt-sub", "(> ?a ?b)", "(> (- ?a ?b) 0)"),
        drule("cond-ge-gt", "(>= ?a ?b)", "(> ?a (- ?b 1))"),
        drule("cond-eq-sub", "(== ?a ?b)", "(== (- ?a ?b) 0)"),
        drule("cond-eq-sub-rev", "(== ?a ?b)", "(== 0 (- ?b ?a))"),
        # --- inversion rules ----------------------------------------------
        drule("cond-not-eq", "(lnot (== ?a ?b))", "(!= ?a ?b)"),
        drule("cond-not-gt", "(lnot (> ?a ?b))", "(<= ?a ?b)"),
        drule("cond-not-ge", "(lnot (>= ?a ?b))", "(< ?a ?b)"),
        drule("cond-not-lt", "(lnot (< ?a ?b))", "(>= ?a ?b)"),
        drule("cond-not-le", "(lnot (<= ?a ?b))", "(> ?a ?b)"),
        drule("cond-not-ne", "(lnot (!= ?a ?b))", "(== ?a ?b)"),
    ]
