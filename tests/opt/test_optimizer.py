"""End-to-end optimizer behaviour on the paper's mechanisms."""

import pytest

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import DESIGNS, get_design
from repro.intervals import IntervalSet
from repro.ir import abs_, gt, lzc, mux, ops, var
from repro.rtl import module_to_ir


def tool(ranges=None, **overrides):
    defaults = dict(iter_limit=6, node_limit=8000, verify=True)
    defaults.update(overrides)
    return DatapathOptimizer(ranges, OptimizerConfig(**defaults))


class TestExprPipeline:
    def test_fabs_example(self):
        x = var("x", 8)
        xs = x - 128
        design = mux(gt(xs, 0), abs_(xs), 0)
        result = tool().optimize_expr(design)
        assert result.equivalence.equivalent is True
        assert not any(n.op is ops.ABS for n in result.optimized.walk())
        assert result.optimized_cost.key <= result.original_cost.key

    def test_figure1_lzc_narrowing(self):
        x, y = var("x", 8), var("y", 8)
        result = tool({"x": IntervalSet.of(128, 255)}).optimize_expr(lzc(x + y, 9))
        widths = [n.attrs[0] for n in result.optimized.walk() if n.op is ops.LZC]
        assert widths and min(widths) <= 2

    def test_improvements_are_never_regressions(self):
        x, y = var("x", 8), var("y", 8)
        designs = [
            (x + 0) * 1,
            mux(gt(x, y), x, x),
            (x << 2) >> 2,
        ]
        for design in designs:
            result = tool().optimize_expr(design)
            assert result.equivalence.ok
            assert result.optimized_cost.key <= result.original_cost.key

    def test_user_split_api(self):
        """Designer-driven case splits (the paper's future-work hook)."""
        x, y = var("x", 8), var("y", 4)
        design = x >> y
        result = tool().optimize_expr(design, user_splits=[gt(y, 3)])
        assert result.equivalence.ok


class TestVerilogPipeline:
    def test_multi_output_module(self):
        src = (
            "module m (input [7:0] a, input [7:0] b, output [8:0] s, output g);"
            "assign s = a + b; assign g = a > b; endmodule"
        )
        module = tool().optimize_verilog(src)
        assert set(module.outputs) == {"s", "g"}
        text = module.emit_verilog("m_opt")
        assert "module m_opt" in text

    def test_dead_clamp_removed(self):
        src = (
            "module m (input [7:0] a, input [7:0] b, output [8:0] y);"
            "wire [8:0] s = a + b;"
            "assign y = (s > 9'd510) ? 9'd510 : s; endmodule"
        )
        result = tool().optimize_verilog(src).outputs["y"]
        assert not any(n.op is ops.MUX for n in result.optimized.walk())

    def test_broken_rewrite_would_be_caught(self):
        """The built-in verification gate actually runs."""
        design = get_design("lzc_example")
        module = tool(design.input_ranges).optimize_verilog(design.verilog)
        for result in module.outputs.values():
            assert result.equivalence is not None
            assert result.equivalence.ok


class TestAllBenchmarkDesignsSmoke:
    @pytest.mark.parametrize("name", sorted(set(DESIGNS) - {"fp_sub"}))
    def test_design_optimizes_and_verifies(self, name):
        design = get_design(name)
        config = OptimizerConfig(
            iter_limit=min(design.iterations, 5),
            node_limit=min(design.node_limit, 12_000),
            verify=False,
        )
        result = (
            DatapathOptimizer(design.input_ranges, config)
            .optimize_verilog(design.verilog)
            .outputs[design.output]
        )
        from repro.verify import check_equivalent

        behavioural = module_to_ir(design.verilog)[design.output]
        verdict = check_equivalent(
            behavioural, result.optimized, design.input_ranges,
            random_trials=800,
        )
        assert verdict.ok
