"""0/1 ILP formulation of e-graph extraction, with an anytime branch-and-bound.

The greedy extractor (:mod:`repro.egraph.extract`) minimizes *tree* cost per
root: a shared subterm is priced once per parent, so a selection that reuses
an already-needed class can look more expensive than duplicating cheaper
hardware.  This module states extraction as the integer program it really is
and optimizes the *DAG* cost — each selected e-node's own area counts once,
however many parents reuse it — which is the objective ROVER-style global
extraction pays off on.

Formulation (per output cone):

* variables: ``x[n] ∈ {0,1}`` per e-node candidate, ``y[c] ∈ {0,1}`` per
  e-class;
* root constraint: ``y[c] = 1`` for every root class;
* class choice: ``Σ_{n ∈ c} x[n] = y[c]`` — a needed class realizes exactly
  one of its e-nodes;
* child implication: ``x[n] ≤ y[c']`` for every cost child class ``c'`` of
  ``n`` — choosing a node needs its children;
* cycle exclusion: the selected subgraph must be acyclic (enforced lazily —
  a cyclic selection evaluates as infeasible instead of enumerating the
  exponentially many cycle-cut constraints up front);
* objective: minimize ``key(delay, area)`` where ``delay`` is the longest
  own-delay path from any root through the selection and ``area`` is the
  sum of the *needed* selected nodes' own areas, counted once each.

The solver is a pure-python branch-and-bound (stdlib only, like the rest of
the repo).  Bounding is LP-style relaxation in spirit: the delay bound is
the per-class min-delay fixpoint (the value an LP relaxation of the delay
rows attains), the area bound sums each definitely-needed class's cheapest
member — both are monotone under any of the repo's objective keys, so
pruning is sound.  The search is **anytime**: it starts from a feasible
incumbent (normally the greedy extractor's selection), every improvement
replaces it, and a deadline or step-quota expiry returns the best incumbent
with ``status="incumbent"`` instead of raising; a drained search tree
returns ``status="optimal"``.

``ASSUME`` nodes cost as wires over their guarded child (the paper treats
them as assignment statements); constraint children never contribute
hardware and are therefore not part of the problem — the stage rebuilding
the winning expression re-attaches them from the greedy extractor's trees.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.ir import ops
from repro.synth.cost import default_key

__all__ = [
    "Candidate",
    "ExtractionProblem",
    "SolveResult",
    "extraction_problem",
    "evaluate_selection",
    "feasible_selection",
    "solve_extraction",
    "brute_force",
]


@dataclass(frozen=True)
class Candidate:
    """One e-node a class may realize: its cost children and own cost.

    ``children`` are *canonical* child class ids of the cost-relevant
    children only (the guarded child for ``ASSUME``, all children
    otherwise).  ``payload`` is opaque to the solver — the pipeline stores
    the :class:`~repro.egraph.enode.ENode` for rebuilding, tests store
    whatever identifies the choice.
    """

    children: tuple[int, ...]
    delay: float
    area: float
    payload: Any = None


@dataclass
class ExtractionProblem:
    """The 0/1 program over one cone: classes, candidates, roots, objective."""

    roots: tuple[int, ...]
    #: class id -> candidate tuple (every id reachable from the roots).
    candidates: dict[int, tuple[Candidate, ...]]
    #: (delay, area) -> totally ordered comparison key; must be monotone in
    #: both arguments (all of :mod:`repro.synth.cost`'s keys are).
    key: Callable[[float, float], tuple] = default_key

    @property
    def size(self) -> int:
        return len(self.candidates)

    def variables(self) -> int:
        """Number of 0/1 selection variables (one per candidate + one per
        class), for governance reporting."""
        return self.size + sum(len(c) for c in self.candidates.values())


@dataclass
class SolveResult:
    """Outcome of one branch-and-bound run (the anytime contract's receipt).

    ``status`` is ``"optimal"`` when the search tree drained (the incumbent
    is provably the best feasible selection) and ``"incumbent"`` when the
    deadline or step quota cut the proof short — the incumbent is still the
    best selection *seen*, never worse than the warm start.
    """

    status: str  # "optimal" | "incumbent"
    selection: dict[int, int]  # class id -> candidate index
    delay: float
    area: float
    key: tuple
    #: Search nodes expanded (bound evaluations), the governance unit.
    steps: int = 0
    #: Whether the result strictly improved on the warm-start incumbent.
    improved: bool = False


# --------------------------------------------------------------------- build
def extraction_problem(
    egraph,
    root_ids: Iterable[int],
    cost_fn,
    max_classes: int | None = None,
) -> ExtractionProblem | None:
    """Build the cone's program from a saturated e-graph.

    ``cost_fn`` needs the decomposed interface of
    :class:`~repro.synth.cost.DelayAreaCost`: ``own_cost(egraph, cid,
    enode)`` and a monotone ``key(delay, area)``.  Returns ``None`` when the
    reachable cone exceeds ``max_classes`` — the caller's quota-blow-up
    signal, which degrades to greedy instead of building a hopeless model.
    """
    find = egraph.find
    roots = tuple(dict.fromkeys(find(r) for r in root_ids))
    candidates: dict[int, tuple[Candidate, ...]] = {}
    stack = list(roots)
    while stack:
        cid = stack.pop()
        if cid in candidates:
            continue
        if max_classes is not None and len(candidates) >= max_classes:
            return None
        members: list[Candidate] = []
        seen: set[tuple] = set()
        for enode in egraph[cid].nodes:
            if enode.op is ops.ASSUME:
                children = (find(enode.children[0]),)
                own_delay = own_area = 0.0
            else:
                children = tuple(find(c) for c in enode.children)
                own_delay, own_area = cost_fn.own_cost(egraph, cid, enode)
            if cid in children:
                # A self-loop can never appear in an acyclic selection.
                continue
            signature = (children, own_delay, own_area)
            if signature in seen:
                continue  # interchangeable for the objective; keep one
            seen.add(signature)
            members.append(
                Candidate(children, own_delay, own_area, payload=enode)
            )
            stack.extend(c for c in children if c not in candidates)
        candidates[cid] = tuple(members)
    return ExtractionProblem(
        roots=roots, candidates=candidates, key=cost_fn.key
    )


# ---------------------------------------------------------------- evaluation
def evaluate_selection(
    problem: ExtractionProblem, selection: Mapping[int, int]
) -> tuple[tuple, float, float, set[int]] | None:
    """Exact objective of a (possibly partial) selection.

    Returns ``(key, delay, area, needed)`` — or ``None`` when the selection
    is infeasible: a needed class has no chosen candidate, or the choices
    close a cycle (the lazily-enforced cycle-exclusion constraint).
    """
    candidates = problem.candidates
    GRAY, BLACK = 1, 2
    color: dict[int, int] = {}
    arrival: dict[int, float] = {}
    area = 0.0
    stack: list[tuple[int, bool]] = [(c, False) for c in problem.roots]
    while stack:
        cid, ready = stack.pop()
        if ready:
            chosen = candidates[cid][selection[cid]]
            arrival[cid] = chosen.delay + max(
                (arrival[k] for k in chosen.children), default=0.0
            )
            area += chosen.area
            color[cid] = BLACK
            continue
        state = color.get(cid)
        if state == BLACK:
            continue
        if state == GRAY:
            return None  # back edge: the selection closes a cycle
        index = selection.get(cid)
        if index is None or index >= len(candidates[cid]):
            return None  # needed class without a (valid) choice
        color[cid] = GRAY
        stack.append((cid, True))
        stack.extend((k, False) for k in candidates[cid][index].children)
    delay = max((arrival[r] for r in problem.roots), default=0.0)
    return problem.key(delay, area), delay, area, set(color)


def feasible_selection(
    problem: ExtractionProblem,
    prefer: Mapping[int, Any] | None = None,
) -> dict[int, int] | None:
    """A feasible (acyclic) selection covering every class that supports one.

    ``prefer`` maps class id -> candidate payload (e.g. the greedy
    extractor's best e-node per class); the preferred candidate is tried
    first, falling back down a cheap-first ranking when it would close a
    cycle — the same path-guard discipline as
    :meth:`repro.egraph.extract.Extractor.expr_of`, so a greedy warm start
    with zero-progress wire cycles still lands on a sound incumbent.
    """
    prefer = prefer or {}
    candidates = problem.candidates
    ranked: dict[int, list[int]] = {}
    for cid, members in candidates.items():
        order = sorted(
            range(len(members)),
            key=lambda i, members=members: (members[i].delay, members[i].area, i),
        )
        liked = prefer.get(cid)
        if liked is not None:
            for position, index in enumerate(order):
                if members[index].payload == liked:
                    order.insert(0, order.pop(position))
                    break
        ranked[cid] = order
    chosen: dict[int, int] = {}

    def build(cid: int, path: frozenset[int]) -> bool:
        if cid in chosen:
            return True
        if cid in path:
            return False
        path = path | {cid}
        for index in ranked[cid]:
            if all(build(k, path) for k in candidates[cid][index].children):
                # Children may have been memoized through this candidate's
                # own path; the memo only ever holds acyclic subtrees, so
                # the combination stays acyclic (same argument as the
                # extractor's ``_build``).
                chosen[cid] = index
                return True
        return False

    for root in problem.roots:
        if not build(root, frozenset()):
            return None
    # Cover the remaining classes too (descent may wander into them): any
    # acyclic choice is fine, and unreachable-from-roots classes never
    # affect the objective.
    for cid in candidates:
        build(cid, frozenset())
    return chosen


# -------------------------------------------------------------------- bounds
def _min_delay_fixpoint(problem: ExtractionProblem) -> dict[int, float]:
    """Per-class lower bound on any acyclic selection's arrival delay.

    The min-over-candidates / max-over-children fixpoint — what an LP
    relaxation of the delay rows attains.  Classes only realizable through
    cycles stay at ``inf`` (no acyclic selection reaches them at all).
    """
    candidates = problem.candidates
    parents: dict[int, set[int]] = {cid: set() for cid in candidates}
    for cid, members in candidates.items():
        for member in members:
            for child in member.children:
                parents[child].add(cid)
    bound = {cid: math.inf for cid in candidates}
    pending = list(candidates)
    queued = set(pending)
    while pending:
        cid = pending.pop()
        queued.discard(cid)
        best = bound[cid]
        for member in candidates[cid]:
            worst_child = 0.0
            for child in member.children:
                arrival = bound[child]
                if arrival > worst_child:
                    worst_child = arrival
            value = member.delay + worst_child
            if value < best:
                best = value
        if best < bound[cid]:
            bound[cid] = best
            for parent in parents[cid]:
                if parent not in queued:
                    pending.append(parent)
                    queued.add(parent)
    return bound


def _min_area(problem: ExtractionProblem) -> dict[int, float]:
    """Cheapest own area any candidate of the class could contribute."""
    return {
        cid: min((m.area for m in members), default=math.inf)
        for cid, members in problem.candidates.items()
    }


def _partial_bound(
    problem: ExtractionProblem,
    selection: Mapping[int, int],
    decided: set[int],
    lb_delay: Mapping[int, float],
    lb_area: Mapping[int, float],
) -> tuple[tuple, list[int]] | None:
    """Lower bound of any completion of a partial selection.

    Walks the definitely-needed region: classes reachable from the roots
    through *decided* candidates' children.  Decided classes contribute
    their chosen candidate's own cost; undecided reached classes are
    boundary leaves contributing their class-level lower bounds (every
    completion must realize them — ``y[c] = 1`` is already implied).
    Returns ``(bound_key, undecided_frontier)`` — the frontier in
    deterministic discovery order, which is also the branch order — or
    ``None`` when the decided region itself closes a cycle (the subtree is
    infeasible and the caller prunes it).
    """
    candidates = problem.candidates
    GRAY, BLACK = 1, 2
    color: dict[int, int] = {}
    arrival: dict[int, float] = {}
    area = 0.0
    frontier: list[int] = []
    stack: list[tuple[int, bool]] = [
        (c, False) for c in reversed(problem.roots)
    ]
    while stack:
        cid, ready = stack.pop()
        if ready:
            chosen = candidates[cid][selection[cid]]
            arrival[cid] = chosen.delay + max(
                (arrival[k] for k in chosen.children), default=0.0
            )
            color[cid] = BLACK
            continue
        state = color.get(cid)
        if state == BLACK:
            continue
        if state == GRAY:
            return None  # the decided region is already cyclic
        if cid not in decided:
            color[cid] = BLACK
            arrival[cid] = lb_delay[cid]
            area += lb_area[cid]
            frontier.append(cid)
            continue
        color[cid] = GRAY
        area += candidates[cid][selection[cid]].area
        stack.append((cid, True))
        stack.extend(
            (k, False)
            for k in reversed(candidates[cid][selection[cid]].children)
        )
    delay = max((arrival[r] for r in problem.roots), default=0.0)
    return problem.key(delay, area), frontier


# -------------------------------------------------------------------- solver
def solve_extraction(
    problem: ExtractionProblem,
    incumbent: Mapping[int, int] | None = None,
    deadline: float | None = None,
    clock: Callable[[], float] | None = None,
    max_steps: int = 200_000,
    descend: bool = True,
) -> SolveResult | None:
    """Anytime branch-and-bound over the extraction program.

    ``incumbent`` is the warm start (normally the greedy selection via
    :func:`feasible_selection`); when omitted or infeasible one is derived
    internally, and if none exists the problem has no acyclic solution and
    ``None`` comes back.  The search never returns anything worse than the
    warm start: improvements replace the incumbent in place, expiry keeps
    it.  ``descend`` runs a coordinate-descent improvement pass before the
    tree search — it finds most sharing wins in a handful of evaluations,
    so a tight deadline still usually beats greedy before the proof work
    starts.
    """
    clock = clock if clock is not None else time.monotonic
    limit = math.inf if deadline is None else deadline
    steps = 0

    best_sel = dict(incumbent) if incumbent else None
    best_eval = (
        evaluate_selection(problem, best_sel) if best_sel is not None else None
    )
    if best_eval is None:
        best_sel = feasible_selection(problem)
        if best_sel is None:
            return None
        best_eval = evaluate_selection(problem, best_sel)
        if best_eval is None:
            return None
    start_key = best_eval[0]

    defaults = dict(best_sel)
    fallback = feasible_selection(problem)
    if fallback:
        for cid, index in fallback.items():
            defaults.setdefault(cid, index)

    # Phase 1: coordinate descent on the needed set — switch one needed
    # class's candidate at a time, keep strict improvements, repeat until a
    # full sweep finds nothing (or the budget expires).
    if descend:
        improved_once = True
        while improved_once and steps < max_steps and clock() <= limit:
            improved_once = False
            for cid in sorted(best_eval[3]):
                members = problem.candidates[cid]
                if len(members) < 2:
                    continue
                current = best_sel[cid]
                for index in range(len(members)):
                    if index == current:
                        continue
                    steps += 1
                    trial = dict(defaults)
                    trial.update(best_sel)
                    trial[cid] = index
                    trial_eval = evaluate_selection(problem, trial)
                    if trial_eval is not None and trial_eval[0] < best_eval[0]:
                        best_sel = trial
                        best_eval = trial_eval
                        improved_once = True
                        current = index
                    if steps >= max_steps or clock() > limit:
                        break
                if steps >= max_steps or clock() > limit:
                    break

    # Phase 2: branch-and-bound for the optimality proof (and any wins the
    # descent's one-swap neighbourhood cannot reach).
    lb_delay = _min_delay_fixpoint(problem)
    lb_area = _min_area(problem)
    complete = True

    def search(selection: dict[int, int], decided: set[int]) -> bool:
        """Depth-first expansion; returns False when the budget expired."""
        nonlocal best_sel, best_eval, steps, complete
        steps += 1
        if steps > max_steps or clock() > limit:
            complete = False
            return False
        bound = _partial_bound(problem, selection, decided, lb_delay, lb_area)
        if bound is None:
            return True  # cyclic decided region: prune, keep searching
        bound_key, frontier = bound
        if bound_key >= best_eval[0]:
            return True  # cannot beat the incumbent
        if not frontier:
            # Fully decided needed region — ``bound`` was exact.
            result = evaluate_selection(problem, selection)
            if result is not None and result[0] < best_eval[0]:
                best_sel = dict(selection)
                best_eval = result
            return True
        branch = frontier[0]
        members = problem.candidates[branch]
        order = sorted(
            range(len(members)), key=lambda i: (members[i].delay, members[i].area, i)
        )
        for index in order:
            selection[branch] = index
            decided.add(branch)
            alive = search(selection, decided)
            decided.discard(branch)
            del selection[branch]
            if not alive:
                return False
        return True

    if steps < max_steps and clock() <= limit:
        # The DFS depth is bounded by the class count, not the DAG depth —
        # give the interpreter headroom on big cones instead of dying.
        needed_limit = 3 * problem.size + 1000
        old_limit = sys.getrecursionlimit()
        if old_limit < needed_limit:
            sys.setrecursionlimit(needed_limit)
        try:
            search({}, set())
        finally:
            if old_limit < needed_limit:
                sys.setrecursionlimit(old_limit)
    else:
        complete = False

    return SolveResult(
        status="optimal" if complete else "incumbent",
        selection=best_sel,
        delay=best_eval[1],
        area=best_eval[2],
        key=best_eval[0],
        steps=steps,
        improved=best_eval[0] < start_key,
    )


# -------------------------------------------------------------------- oracle
def brute_force(problem: ExtractionProblem) -> SolveResult | None:
    """Exhaustive enumeration of every selection — the test oracle.

    Exponential in the class count; only for the small fuzzed problems the
    oracle tests build.  Returns the optimum (ties broken by enumeration
    order) or ``None`` when no acyclic selection exists.
    """
    cids = sorted(problem.candidates)
    best: SolveResult | None = None
    assignment: dict[int, int] = {}

    def enumerate_from(position: int) -> None:
        nonlocal best
        if position == len(cids):
            result = evaluate_selection(problem, assignment)
            if result is not None and (best is None or result[0] < best.key):
                best = SolveResult(
                    status="optimal",
                    selection=dict(assignment),
                    delay=result[1],
                    area=result[2],
                    key=result[0],
                )
            return
        cid = cids[position]
        members = problem.candidates[cid]
        if not members:
            # No candidate at all: legal only if the class is never needed.
            enumerate_from(position + 1)
            return
        for index in range(len(members)):
            assignment[cid] = index
            enumerate_from(position + 1)
            del assignment[cid]

    enumerate_from(0)
    return best
