"""Pareto-front smoke: the solver's front is dominance-free and never
worse than the greedy sweep it generalizes.

Run:  PYTHONPATH=src python examples/pareto_smoke.py

Characterizes the area/delay trade-off of a registry design two ways —
the legacy greedy ``area_delay_sweep`` (critical-path adder upgrades) and
the epsilon-constraint :func:`repro.solve.pareto.pareto_front` over the
full architecture-assignment space — then checks the contract CI cares
about:

* the front is **dominance-free**: strictly increasing delay, strictly
  decreasing area, no point shadowed by another;
* the front **contains the greedy sweep's best points**: for every legacy
  sweep target, the front's best feasible point is at least as cheap;
* provenance is honest: ``optimal`` only when the space was exhausted.
"""

from repro.designs.registry import get_design
from repro.rtl import module_to_ir
from repro.solve.pareto import pareto_front
from repro.synth.sweep import area_delay_sweep

DESIGN = "lzc_example"
POINTS = 6


def main() -> None:
    design = get_design(DESIGN)
    expr = module_to_ir(design.verilog)[design.output]

    front = pareto_front(
        expr, design.input_ranges, mode="epsilon", points=POINTS
    )
    legacy = area_delay_sweep(expr, design.input_ranges, points=POINTS)

    print(f"=== {DESIGN}: epsilon front ({front.status}) ===")
    for point in front.points:
        print(
            f"  target {point.target:7.2f}  delay {point.delay:7.2f}  "
            f"area {point.area:8.1f}  [{point.provenance}]"
        )

    # Dominance-free: delay strictly rises, area strictly falls.
    for earlier, later in zip(front.points, front.points[1:], strict=False):
        assert earlier.delay < later.delay, (earlier, later)
        assert earlier.area > later.area, (earlier, later)

    # Superset of the greedy sweep: every legacy point matched-or-beaten.
    for sweep_point in legacy:
        best = front.point_for_target(sweep_point.target)
        assert best is not None, sweep_point
        assert best.area <= sweep_point.area + 1e-9, (
            f"front point {best} worse than greedy sweep {sweep_point}"
        )

    assert front.status in ("optimal", "incumbent", "greedy")
    print(
        f"front: {len(front.points)} points over {front.tags} adder "
        f"tag(s), {front.evals} lowerings, status {front.status}; "
        f"greedy sweep matched-or-beaten at all {len(legacy)} targets"
    )


if __name__ == "__main__":
    main()
