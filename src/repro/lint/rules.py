"""Rule-soundness auditor: every rewrite in ``RULESETS`` is machine-checked.

Four layers of audit, mirroring how a rule can go wrong:

* **binding** (``RU-UNBOUND``): the RHS may only use variables the LHS
  binds (``rewrite()`` raises on this, but rules can be built by hand);
* **guard presence** (``RU-DROPPED``): a class variable the RHS drops must
  carry a totality guard — the auditor re-derives what
  :func:`~repro.rewrites.soundness.drule` would have added and diffs it
  against ``rule.conditions``.  A variable whose every occurrence sits in
  a non-strict position (a mux branch) is structurally exempt, exactly
  ``drule``'s ``unguarded=`` contract — and the semantic layer still
  checks the exemption was justified;
* **guard purity** (``RU-IMPURE``): conditions are *observers*; one that
  unions, adds or mutates analysis data would corrupt the e-graph
  mid-search.  Each condition runs against a mutation-trapping proxy;
* **semantics** (``RU-UNSOUND``): each declarative rule is evaluated
  exhaustively over a small slice of ``Z ∪ {*}`` under its concretized
  guards (per :mod:`repro.ir.evaluate` semantics), falling back to seeded
  randomized trials above :data:`EXHAUSTIVE_CAP`.  Equality is pointwise
  *including* ``*`` — the congruence eq. (2) actually demands.

Dynamic rules bypass the pattern language, so they get a declared-metadata
contract instead (:data:`DYNAMIC_CONTRACTS`): a ``sound_by`` tag naming
the argument and, where cheap, an executable spot check.  A dynamic rule
without a contract is a finding (``RU-NO-CONTRACT``) — adding a rule
forces writing down why it is sound.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Callable

from repro.analysis import DatapathAnalysis
from repro.egraph.egraph import EGraph
from repro.egraph.pattern import AttrVar, Pattern, PatternNode, PatternVar
from repro.egraph.rewrite import Rewrite
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.evaluate import BOT, _apply
from repro.lint.model import Finding

#: Value domain for class variables in the semantic audit.  Negative values
#: matter (e-class valuations are unconstrained integers even though VAR
#: leaves are unsigned); ``*`` failure propagation is half the audit.
CLASS_DOMAIN: tuple = (BOT, -2, -1, 0, 1, 2, 3)

#: Attribute variables are widths; small ones exercise every wrap case.
ATTR_DOMAIN: tuple[int, ...] = (1, 2, 3)

#: Above this many environments the audit switches to seeded trials.
EXHAUSTIVE_CAP = 200_000

#: Trial count for the randomized fallback.
TRIALS = 4_000


# ------------------------------------------------------------- pattern shapes
def classify_vars(pattern: Pattern) -> tuple[set[str], set[str]]:
    """``(class_vars, attr_vars)`` of a pattern (disjoint by construction)."""
    class_vars: set[str] = set()
    attr_vars: set[str] = set()
    stack = [pattern]
    while stack:
        p = stack.pop()
        if isinstance(p, PatternVar):
            class_vars.add(p.name)
        else:
            for a in p.attrs:
                if isinstance(a, AttrVar):
                    attr_vars.add(a.name)
            stack.extend(p.children)
    return class_vars, attr_vars


def strictly_evaluated_vars(pattern: Pattern) -> set[str]:
    """Class vars with at least one occurrence outside a mux branch.

    A variable occurring *only* inside mux branch positions (children 1/2)
    may be dropped without a totality guard — the unselected branch is
    never evaluated, so its ``*`` cannot leak.  This re-derives ``drule``'s
    ``unguarded=`` declarations from the pattern itself.
    """
    out: set[str] = set()
    stack: list[tuple[Pattern, bool]] = [(pattern, True)]
    while stack:
        p, strict = stack.pop()
        if isinstance(p, PatternVar):
            if strict:
                out.add(p.name)
            continue
        for position, child in enumerate(p.children):
            branch = p.op is ops.MUX and position in (1, 2)
            stack.append((child, strict and not branch))
    return out


# ------------------------------------------------------------------- guards
#: Recognized guard factories (all in ``repro.rewrites.soundness``).
_GUARD_FACTORIES = frozenset(
    {"_all_total", "total", "nonneg", "boolean", "in_range", "range_le"}
)


def guard_spec(condition: Callable) -> tuple[str, tuple] | None:
    """``(kind, payload)`` for a recognized guard factory closure, else None.

    Conditions are closures produced by the ``soundness`` factories; the
    factory is identified by ``__qualname__`` and its arguments recovered
    from the closure cells — no cooperation from the rule author needed.
    """
    qualname = getattr(condition, "__qualname__", "")
    if not qualname.endswith(".check") or ".<locals>." not in qualname:
        return None
    factory = qualname.split(".", 1)[0]
    if factory not in _GUARD_FACTORIES:
        return None
    if getattr(condition, "__module__", "") != "repro.rewrites.soundness":
        return None
    code = condition.__code__
    cells = dict(
        zip(
            code.co_freevars,
            (c.cell_contents for c in condition.__closure__ or ()),
            strict=True,
        )
    )
    if factory in ("_all_total", "total", "nonneg", "boolean"):
        kind = "total" if factory in ("_all_total", "total") else factory
        return (kind, tuple(cells["names"]))
    if factory == "in_range":
        box: IntervalSet = cells["box"]
        return ("in_range", (cells["name"], box.min(), box.max()))
    if factory == "range_le":
        return ("range_le", (cells["small"], cells["large"]))
    return None


def _guard_holds(spec: tuple[str, tuple], env: dict) -> bool:
    """Concretize a guard over one ``Z ∪ {*}`` valuation.

    Range-based guards (``nonneg``/``boolean``/``in_range``/``range_le``)
    over-approximate the *non-*``*`` evaluations of a class, so they admit
    ``*`` itself — only the totality guards exclude it.  Getting this wrong
    either direction breaks the audit: excluding ``*`` from ``nonneg``
    would have hidden the very unsoundness the totality guards exist for.
    """
    kind, payload = spec
    if kind == "total":
        return all(env[n] is not BOT for n in payload if n in env)
    if kind == "nonneg":
        return all(env[n] is BOT or env[n] >= 0 for n in payload)
    if kind == "boolean":
        return all(env[n] is BOT or env[n] in (0, 1) for n in payload)
    if kind == "in_range":
        name, lo, hi = payload
        v = env[name]
        if v is BOT:
            return True
        return (lo is None or lo <= v) and (hi is None or v <= hi)
    if kind == "range_le":
        small, large = payload
        a, b = env[small], env[large]
        return a is BOT or b is BOT or a <= b
    raise ValueError(f"unknown guard kind {kind}")  # pragma: no cover


# ------------------------------------------------------- mutation-trap proxy
class MutationAttempt(RuntimeError):
    """Raised by the proxy when a condition tries to mutate the e-graph."""


_MUTATORS = frozenset(
    {"union", "add_node", "add_enode", "add_expr", "add_const", "set_data",
     "rebuild"}
)


class MutationTrapEGraph:
    """Read-through :class:`EGraph` proxy that rejects every mutator."""

    def __init__(self, egraph: EGraph) -> None:
        self._egraph = egraph

    def __getattr__(self, name: str):
        if name in _MUTATORS:
            def trap(*args, **kwargs):
                raise MutationAttempt(f"condition called EGraph.{name}")

            return trap
        return getattr(self._egraph, name)

    def __getitem__(self, class_id: int):
        return self._egraph[class_id]


def _probe_graph(class_vars: set[str]) -> tuple[MutationTrapEGraph, dict]:
    """A tiny analyzed e-graph plus an env binding every rule variable.

    Class vars bind fresh 8-bit VAR classes (so range/totality reads
    succeed); attr vars are bound by the caller to plain ints.
    """
    egraph = EGraph([DatapathAnalysis()])
    env = {}
    for name in sorted(class_vars):
        env[name] = egraph.add_node(ops.VAR, (f"probe_{name}", 8), ())
    egraph.rebuild()
    return MutationTrapEGraph(egraph), env


# ------------------------------------------------------- pattern evaluation
class _Shim:
    """Minimal ``.op``/``.attrs`` carrier for :func:`repro.ir.evaluate._apply`."""

    __slots__ = ("op", "attrs")

    def __init__(self, op, attrs):
        self.op = op
        self.attrs = attrs


def eval_pattern(pattern: Pattern, env: dict):
    """Evaluate a pattern over a ``Z ∪ {*}`` valuation of its variables.

    Delegates every operator to the shipped :func:`~repro.ir.evaluate._apply`
    so the audit semantics can never drift from the evaluator the verifier
    trusts.  (Patterns contain no VAR leaves — pattern variables play that
    role — so the env parameter of ``_apply`` is never consulted.)
    """
    if isinstance(pattern, PatternVar):
        return env[pattern.name]
    kids = [eval_pattern(c, env) for c in pattern.children]
    attrs = tuple(
        env[a.name] if isinstance(a, AttrVar) else a for a in pattern.attrs
    )
    return _apply(_Shim(pattern.op, attrs), kids, {})


def _render_env(env: dict) -> dict:
    return {k: ("*" if v is BOT else v) for k, v in env.items()}


# ------------------------------------------------------- dynamic-rule contracts
def _spot_mul_pow2() -> str | None:
    from repro.rewrites.arith import mul_pow2_to_shl

    egraph = EGraph([DatapathAnalysis()])
    a = egraph.add_node(ops.VAR, ("a", 4), ())
    product = egraph.add_node(ops.MUL, (), (a, egraph.add_const(8)))
    egraph.rebuild()
    _run_rule(egraph, mul_pow2_to_shl())
    shl = egraph.add_node(ops.SHL, (), (a, egraph.add_const(3)))
    if egraph.find(shl) != egraph.find(product):
        return "a * 8 did not union with a << 3"
    return None


def _spot_trunc_trunc() -> str | None:
    from repro.rewrites.shift import trunc_trunc_rule

    egraph = EGraph([DatapathAnalysis()])
    a = egraph.add_node(ops.VAR, ("a", 6), ())
    inner = egraph.add_node(ops.TRUNC, (3,), (a,))
    outer = egraph.add_node(ops.TRUNC, (2,), (inner,))
    egraph.rebuild()
    _run_rule(egraph, trunc_trunc_rule())
    narrow = egraph.add_node(ops.TRUNC, (2,), (a,))
    if egraph.find(narrow) != egraph.find(outer):
        return "trunc_2(trunc_3(a)) did not union with trunc_2(a)"
    return None


def _spot_mux_cond_const() -> str | None:
    from repro.rewrites.mux import mux_cond_const_rule

    egraph = EGraph([DatapathAnalysis({"c": IntervalSet.of(1, 1)})])
    c = egraph.add_node(ops.VAR, ("c", 1), ())
    a = egraph.add_node(ops.VAR, ("a", 4), ())
    b = egraph.add_node(ops.VAR, ("b", 4), ())
    mux = egraph.add_node(ops.MUX, (), (c, a, b))
    egraph.rebuild()
    _run_rule(egraph, mux_cond_const_rule())
    if egraph.find(mux) != egraph.find(a):
        return "mux with provably-true condition did not collapse to its branch"
    return None


def _spot_assume_true_elim() -> str | None:
    from repro.rewrites.assume import assume_true_elim_rule

    egraph = EGraph([DatapathAnalysis({"c": IntervalSet.of(1, 1)})])
    c = egraph.add_node(ops.VAR, ("c", 1), ())
    x = egraph.add_node(ops.VAR, ("x", 4), ())
    assume = egraph.add_node(ops.ASSUME, (), (x, c))
    egraph.rebuild()
    _run_rule(egraph, assume_true_elim_rule())
    if egraph.find(assume) != egraph.find(x):
        return "ASSUME with an always-true constraint did not discharge"
    return None


def _run_rule(egraph: EGraph, rule: Rewrite, limit: int = 64) -> None:
    for class_id, env in rule.search(egraph, egraph.nodes_by_op(), limit):
        rule.apply(egraph, class_id, env)
    egraph.rebuild()


#: Declared soundness contracts for every dynamic rule in ``RULESETS``.
#: ``sound_by`` names the argument (and where the repo pins it); the
#: optional ``spot_check`` runs a concrete instance through the rule.
DYNAMIC_CONTRACTS: dict[str, dict] = {
    "mul-pow2-shl": {
        "sound_by": "a * 2^k == a << k for k >= 0; k derived from a CONST "
        "member, so it is exact",
        "spot_check": _spot_mul_pow2,
    },
    "mux-pull": {
        "sound_by": "strict operators evaluate identically on both branch "
        "copies, so hoisting the condition preserves every valuation "
        "(including the * cases: a * operand makes both sides *); pinned by "
        "tests/rewrites/test_structural_rules.py",
        "spot_check": None,
    },
    "mux-cond-const": {
        "sound_by": "fires only when the analysis proves the condition total "
        "with a constant truthiness, so exactly one branch is ever selected",
        "spot_check": _spot_mux_cond_const,
    },
    "trunc-trunc": {
        "sound_by": "x mod 2^v mod 2^w == x mod 2^min(v,w); widths come from "
        "node attributes, not valuations",
        "spot_check": _spot_trunc_trunc,
    },
    "mux-branch-assume": {
        "sound_by": "Table I row 1: each branch is only reachable when its "
        "condition holds, so wrapping it in ASSUME(branch, cond) changes no "
        "selected valuation; pinned by tests/rewrites/test_assume_rules.py",
        "spot_check": None,
    },
    "assume-distribute": {
        "sound_by": "Table I row 2: for strict ops, ASSUME(a op b, c) and "
        "ASSUME(a, c) op ASSUME(b, c) are * under exactly the same "
        "valuations (c fails, or an operand is *); pinned by "
        "tests/rewrites/test_assume_rules.py",
        "spot_check": None,
    },
    "assume-merge-nested": {
        "sound_by": "Table I row 3: nested ASSUME constraint sets conjoin; "
        "the union carries both failure conditions",
        "spot_check": None,
    },
    "assume-mux-prune": {
        "sound_by": "Table I rows 4/5: under constraint c (resp. ~c) the mux "
        "selects exactly the kept branch whenever the ASSUME is not already *",
        "spot_check": None,
    },
    "assume-true-elim": {
        "sound_by": "a constraint proved total with truthiness True never "
        "fails, so the ASSUME is the identity",
        "spot_check": _spot_assume_true_elim,
    },
    "abs-identity": {
        "sound_by": "range proves x >= 0 on every non-* valuation, where "
        "abs(x) == x; on * valuations both sides are *",
        "spot_check": None,
    },
    "abs-negate": {
        "sound_by": "range proves x <= 0 on every non-* valuation, where "
        "abs(x) == -x; on * valuations both sides are *",
        "spot_check": None,
    },
    "trunc-elim": {
        "sound_by": "range proves 0 <= x < 2^w, where x mod 2^w == x; "
        "* propagates through TRUNC unchanged",
        "spot_check": None,
    },
    "lzc-narrow": {
        "sound_by": "range lower bound caps the leading-zero count at k, so "
        "only the top k+1 bits can influence LZC_w (Figure 1); pinned by "
        "tests/rewrites/test_rule_soundness.py",
        "spot_check": None,
    },
    "lzc-shl": {
        "sound_by": "for 0 < s < w and 0 < a < 2^(w-s), "
        "lzc_w(a << s) == (w-s) - bitlen(a) == lzc_{w-s}(a); the zero and "
        "overflow cases are excluded by the range premise",
        "spot_check": None,
    },
    "lzc-width-reduce": {
        "sound_by": "x < 2^m makes every bit above m a leading zero: "
        "lzc_w(x) == (w-m) + lzc_m(x), including x == 0; negative x is * on "
        "both sides",
        "spot_check": None,
    },
    "lzc-norm-invariant": {
        "sound_by": "pre-shifting by total c >= 0 reduces the leading-zero "
        "count by exactly c while both operands fit w bits, so the "
        "normalizing shift lands on the same value (Section V); pinned by "
        "the fp_sub differential tests",
        "spot_check": None,
    },
    "minmax-resolve": {
        "sound_by": "disjoint ranges order the operands on every non-* "
        "valuation and the dropped side is proved total, so min/max always "
        "selects the kept class",
        "spot_check": None,
    },
    "case-split-shift-gt1": {
        "sound_by": "inserts cond ? x : x with both branches the matched "
        "class itself — an identity for every valuation of cond (including "
        "*, where the mux is * exactly when membership in an ASSUME-refined "
        "class is; the branches only diverge through later ASSUME refinement "
        "of the copies, which Table I justifies)",
        "spot_check": None,
    },
}


# ------------------------------------------------------------------ the audit
def audit_rule(rule: Rewrite, origin: str = "adhoc") -> tuple[list[Finding], dict]:
    """Audit one rule; returns ``(findings, audit_record)``."""
    anchor = f"{origin}/{rule.name}"
    record: dict = {"rule": rule.name, "ruleset": origin}

    dynamic = callable(rule.searcher) or callable(rule.applier)
    if dynamic:
        return _audit_dynamic(rule, anchor, record)
    return _audit_declarative(rule, anchor, record)


def _audit_dynamic(rule: Rewrite, anchor: str, record: dict):
    findings = []
    record["mode"] = "contract"
    contract = DYNAMIC_CONTRACTS.get(rule.name)
    if contract is None:
        record["status"] = "no-contract"
        findings.append(
            Finding(
                "RU-NO-CONTRACT",
                anchor,
                f"dynamic rule {rule.name!r} has no soundness contract — "
                "declare one in repro.lint.rules.DYNAMIC_CONTRACTS "
                "(sound_by argument + optional spot check)",
                module="repro.lint.rules",
            )
        )
        return findings, record
    record["sound_by"] = contract["sound_by"]
    spot = contract.get("spot_check")
    if spot is None:
        record["status"] = "declared"
        return findings, record
    failure = spot()
    if failure:
        record["status"] = "spot-check-failed"
        findings.append(
            Finding(
                "RU-UNSOUND",
                anchor,
                f"dynamic rule {rule.name!r} failed its spot check: {failure}",
                module="repro.lint.rules",
            )
        )
    else:
        record["status"] = "spot-checked"
    return findings, record


def _audit_declarative(rule: Rewrite, anchor: str, record: dict):
    findings = []
    lhs, rhs = rule.searcher, rule.applier
    lhs_class, lhs_attr = classify_vars(lhs)
    rhs_class, rhs_attr = classify_vars(rhs)

    # --- binding ---------------------------------------------------------
    unbound = (rhs_class - lhs_class) | (rhs_attr - lhs_attr)
    if unbound:
        record["status"] = "ill-formed"
        findings.append(
            Finding(
                "RU-UNBOUND",
                anchor,
                f"RHS uses variables the LHS never binds: {sorted(unbound)}",
            )
        )
        return findings, record

    # --- guard introspection --------------------------------------------
    specs = []
    opaque = False
    for condition in rule.conditions:
        spec = guard_spec(condition)
        if spec is None:
            opaque = True
            findings.append(
                Finding(
                    "RU-OPAQUE-GUARD",
                    anchor,
                    f"declarative rule {rule.name!r} carries a condition "
                    f"{getattr(condition, '__qualname__', condition)!r} that "
                    "is not a recognized soundness-factory guard — the "
                    "semantic audit cannot concretize it (build the rule "
                    "with guards from repro.rewrites.soundness, or make it "
                    "a dynamic rule with a contract)",
                )
            )
        else:
            specs.append(spec)

    # --- guard presence (re-derive drule) --------------------------------
    # Dropped *attr* vars need no totality proof: attributes are concrete
    # ints carried by the node, not ``Z ∪ {*}`` valuations.
    dropped = lhs_class - rhs_class
    needs_guard = dropped & strictly_evaluated_vars(lhs)
    guarded = set()
    for kind, payload in specs:
        if kind == "total":
            guarded.update(payload)
    missing = sorted(needs_guard - guarded)
    if missing:
        findings.append(
            Finding(
                "RU-DROPPED",
                anchor,
                f"LHS variables {missing} are dropped by the RHS from a "
                "strict position without a totality guard — a * valuation "
                "of them makes the sides differ (build the rule with drule, "
                "which derives the guard automatically)",
                detail={"dropped": sorted(dropped), "guarded": sorted(guarded)},
            )
        )

    # --- guard purity -----------------------------------------------------
    trap, probe_env = _probe_graph(lhs_class)
    probe_env.update({name: 2 for name in lhs_attr})
    for condition in rule.conditions:
        try:
            condition(trap, probe_env)
        except MutationAttempt as attempt:
            findings.append(
                Finding(
                    "RU-IMPURE",
                    anchor,
                    f"condition of {rule.name!r} mutates the e-graph during "
                    f"matching ({attempt}) — conditions must be pure "
                    "observers; mutation belongs in the applier",
                )
            )
        except Exception:
            # Unrecognized guards that also crash on the probe are already
            # reported as RU-OPAQUE-GUARD; recognized factories never get
            # here (the probe env binds every variable they close over).
            pass

    # --- semantics --------------------------------------------------------
    if opaque:
        record["mode"] = "skipped"
        record["status"] = "opaque-guard"
        return findings, record
    findings += _semantic_audit(rule, anchor, specs, lhs_class, lhs_attr, record)
    return findings, record


def _semantic_audit(rule, anchor, specs, class_vars, attr_vars, record):
    lhs, rhs = rule.searcher, rule.applier
    names = sorted(class_vars)
    attrs = sorted(attr_vars)
    total_envs = (len(CLASS_DOMAIN) ** len(names)) * (
        len(ATTR_DOMAIN) ** len(attrs)
    )

    def envs():
        if total_envs <= EXHAUSTIVE_CAP:
            for values in itertools.product(
                *([CLASS_DOMAIN] * len(names) + [ATTR_DOMAIN] * len(attrs))
            ):
                yield dict(zip(names + attrs, values, strict=True))
        else:
            rng = random.Random(zlib.crc32(rule.name.encode()))
            for _ in range(TRIALS):
                env = {n: rng.choice(CLASS_DOMAIN) for n in names}
                env.update({a: rng.choice(ATTR_DOMAIN) for a in attrs})
                yield env

    exhaustive = total_envs <= EXHAUSTIVE_CAP
    record["mode"] = "exhaustive" if exhaustive else "trials"
    record["envs"] = total_envs if exhaustive else TRIALS
    checked = skipped = 0
    for env in envs():
        if not all(_guard_holds(spec, env) for spec in specs):
            continue
        try:
            lhs_value = eval_pattern(lhs, env)
            rhs_value = eval_pattern(rhs, env)
        except Exception as error:
            # An env the semantics rejects outright (e.g. an ill-formed
            # width combination) proves nothing either way; count it so a
            # rule audited mostly through skips is visible in the record.
            skipped += 1
            record["skip_example"] = f"{_render_env(env)}: {error}"
            continue
        checked += 1
        agree = (
            (lhs_value is BOT and rhs_value is BOT)
            or (lhs_value is not BOT and rhs_value is not BOT
                and lhs_value == rhs_value)
        )
        if not agree:
            record["status"] = "failed"
            record["checked"] = checked
            return [
                Finding(
                    "RU-UNSOUND",
                    anchor,
                    f"rule {rule.name!r} is unsound over Z ∪ {{*}}: under "
                    f"{_render_env(env)} the LHS evaluates to "
                    f"{'*' if lhs_value is BOT else lhs_value} but the RHS "
                    f"to {'*' if rhs_value is BOT else rhs_value}",
                    detail={"counterexample": _render_env(env)},
                )
            ]
    record["checked"] = checked
    record["skipped"] = skipped
    record["status"] = "proved" if exhaustive else "trials-passed"
    return []


def audit_rules(rules, origin: str) -> tuple[list[Finding], list[dict]]:
    """Audit a rule list; returns ``(findings, audit_records)``."""
    findings: list[Finding] = []
    records: list[dict] = []
    for rule in rules:
        rule_findings, record = audit_rule(rule, origin)
        findings += rule_findings
        records.append(record)
    return findings, records


def audit_rulesets() -> tuple[list[Finding], list[dict]]:
    """Audit every rule registered in ``RULESETS``."""
    from repro.rewrites.rulesets import RULESETS, ruleset

    findings: list[Finding] = []
    records: list[dict] = []
    for name in sorted(RULESETS):
        ruleset_findings, ruleset_records = audit_rules(ruleset(name), name)
        findings += ruleset_findings
        records += ruleset_records
    return findings, records
