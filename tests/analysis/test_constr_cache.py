"""The constraint-class membership cache vs the uncached reference path.

``decode_constr`` used to rescan every member of a constraint e-class on
every ASSUME ``make`` (~15% of rebuild time on the case study).  The scan is
now cached per canonical class keyed by the class's membership revision;
these tests drive both paths over identical workloads — including membership
mutations through unions, the invalidation case — and require identical
abstractions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DatapathAnalysis, range_of
from repro.analysis.constr import constr_candidates
from repro.egraph import EGraph
from repro.ir import assume, eq, ge, gt, le, lnot, lt, ne, var

COMPARISONS = {
    "lt": lt, "le": le, "gt": gt, "ge": ge, "eq": eq, "ne": ne,
}

constraint_specs = st.lists(
    st.tuples(
        st.sampled_from(sorted(COMPARISONS)),
        st.integers(min_value=0, max_value=255),
        st.booleans(),  # target on the left / right
    ),
    min_size=1,
    max_size=4,
)


def _cond(spec, x):
    op_name, k, target_left = spec
    build = COMPARISONS[op_name]
    return build(x, k) if target_left else build(k, x)


def _flipped(spec, x):
    """A sound equivalent form (what condition rewriting would merge in)."""
    flip = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le", "eq": "eq", "ne": "ne"}
    op_name, k, target_left = spec
    return _cond((flip[op_name], k, not target_left), x)


def _run(specs, constr_cache: bool):
    """Ranges of the ASSUME root before and after a membership mutation."""
    egraph = EGraph([DatapathAnalysis(constr_cache=constr_cache)])
    x = var("x", 8)
    conds = [_cond(spec, x) for spec in specs]
    root = egraph.add_expr(assume(x, *conds))
    egraph.rebuild()
    first = range_of(egraph, root)

    # Mutate constraint-class membership the way condition rewriting does:
    # merge each comparison with its mirrored form, then recheck.
    for spec, cond in zip(specs, conds, strict=True):
        egraph.union(egraph.add_expr(cond), egraph.add_expr(_flipped(spec, x)))
    egraph.rebuild()
    second = range_of(egraph, root)
    return first, second


class TestCachedDecodeMatchesUncached:
    @settings(max_examples=60, deadline=None)
    @given(specs=constraint_specs)
    def test_property_cached_equals_uncached(self, specs):
        cached = _run(specs, constr_cache=True)
        uncached = _run(specs, constr_cache=False)
        assert cached == uncached

    def test_negated_constraint(self):
        for flag in (True, False):
            egraph = EGraph([DatapathAnalysis(constr_cache=flag)])
            x = var("x", 8)
            root = egraph.add_expr(assume(x, lnot(x)))
            egraph.rebuild()
            if flag:
                reference = range_of(egraph, root)
            else:
                assert range_of(egraph, root) == reference


class TestCandidateCache:
    def test_cache_hit_returns_same_scan(self):
        egraph = EGraph([DatapathAnalysis()])
        x = var("x", 8)
        cid = egraph.add_expr(gt(x, 5))
        egraph.rebuild()
        cache: dict = {}
        first = constr_candidates(egraph, egraph.find(cid), cache)
        second = constr_candidates(egraph, egraph.find(cid), cache)
        assert first is second  # served from the cache, not rescanned
        assert [n.op.name for n in first] == ["GT"]

    def test_union_invalidates_via_rev(self):
        egraph = EGraph([DatapathAnalysis()])
        x = var("x", 8)
        cid = egraph.add_expr(gt(x, 5))
        other = egraph.add_expr(lt(5, x))
        egraph.rebuild()
        cache: dict = {}
        before = constr_candidates(egraph, egraph.find(cid), cache)
        assert len(before) == 1
        egraph.union(cid, other)
        egraph.rebuild()
        after = constr_candidates(egraph, egraph.find(cid), cache)
        assert len(after) == 2  # the merged member is visible

    def test_uncached_path_never_touches_cache(self):
        egraph = EGraph([DatapathAnalysis(constr_cache=False)])
        x = var("x", 8)
        root = egraph.add_expr(assume(x, ge(x, 7)))
        egraph.rebuild()
        assert egraph.data(root, "datapath").iset.min() == 7
        assert egraph.analyses[0]._constr_cache is None
