"""Report formatting (plus back-compat aliases for the tree cost helpers).

``model_cost``/``egraph_model_cost`` moved to :mod:`repro.synth.treecost` so
that :mod:`repro.pipeline.stages` can import them at module level without
the ``repro.opt`` -> ``repro.pipeline`` -> ``repro.opt`` package cycle the
old home forced (``Extract.run`` used to hide it behind a lazy import).
They are re-exported here because ``repro.opt.model_cost`` is a documented
entry point.
"""

from __future__ import annotations

from repro.synth.treecost import egraph_model_cost, model_cost

__all__ = ["model_cost", "egraph_model_cost", "format_comparison"]


def format_comparison(
    rows: list[tuple[str, float, float, float, float]],
    headers: tuple[str, str] = ("Behavioural", "Optimized"),
) -> str:
    """Render a Table III style comparison.

    ``rows`` entries: (name, delay_a, area_a, delay_b, area_b).
    """
    lines = [
        f"{'Test Case':<16} {headers[0]:>22} {headers[1]:>28}",
        f"{'':<16} {'delay':>10} {'area':>11} {'delay':>14} {'area':>13}",
    ]
    for name, delay_a, area_a, delay_b, area_b in rows:
        delay_pct = 100.0 * (delay_b - delay_a) / delay_a if delay_a else 0.0
        area_pct = 100.0 * (area_b - area_a) / area_a if area_a else 0.0
        lines.append(
            f"{name:<16} {delay_a:>10.2f} {area_a:>11.1f} "
            f"{delay_b:>8.2f} ({delay_pct:+3.0f}%) {area_b:>7.1f} ({area_pct:+3.0f}%)"
        )
    return "\n".join(lines)
