"""Cost evaluation of plain expression trees and report formatting."""

from __future__ import annotations

from typing import Mapping

from repro.analysis import DatapathAnalysis
from repro.egraph import EGraph, Extractor
from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.synth.cost import DelayArea, DelayAreaCost


def model_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Section IV-D model cost of a *fixed* expression tree.

    The tree is loaded into a throwaway e-graph (no rewriting) so the cost
    function sees analysis widths, then costed as-is.
    """
    egraph = EGraph([DatapathAnalysis(dict(input_ranges or {}))])
    root = egraph.add_expr(expr)
    egraph.rebuild()
    extractor = Extractor(egraph, DelayAreaCost())
    return extractor.cost_of(root)


def format_comparison(
    rows: list[tuple[str, float, float, float, float]],
    headers: tuple[str, str] = ("Behavioural", "Optimized"),
) -> str:
    """Render a Table III style comparison.

    ``rows`` entries: (name, delay_a, area_a, delay_b, area_b).
    """
    lines = [
        f"{'Test Case':<16} {headers[0]:>22} {headers[1]:>28}",
        f"{'':<16} {'delay':>10} {'area':>11} {'delay':>14} {'area':>13}",
    ]
    for name, delay_a, area_a, delay_b, area_b in rows:
        delay_pct = 100.0 * (delay_b - delay_a) / delay_a if delay_a else 0.0
        area_pct = 100.0 * (area_b - area_a) / area_a if area_a else 0.0
        lines.append(
            f"{name:<16} {delay_a:>10.2f} {area_a:>11.1f} "
            f"{delay_b:>8.2f} ({delay_pct:+3.0f}%) {area_b:>7.1f} ({area_pct:+3.0f}%)"
        )
    return "\n".join(lines)
