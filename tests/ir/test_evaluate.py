"""Concrete semantics over Z' = Z u {*} (eq. (1) and Section III-B)."""

import pytest

from repro.ir import (
    BOT, abs_, assume, bitnot, concat, const, eq, evaluate, evaluate_total,
    ge, gt, le, lnot, lt, lzc, max_, min_, mux, ne, slice_, trunc, var,
)
from repro.ir.evaluate import exhaustive_envs, input_variables


X = var("x", 4)
Y = var("y", 4)


def ev(e, **env):
    return evaluate(e, env)


class TestBasicOps:
    def test_arith_exact(self):
        assert ev(X + Y, x=15, y=15) == 30  # no wrap: exact integers
        assert ev(X - Y, x=3, y=5) == -2    # may go negative
        assert ev(X * Y, x=7, y=9) == 63
        assert ev(-X, x=5) == -5

    def test_shifts(self):
        assert ev(X << Y, x=3, y=2) == 12
        assert ev(X >> Y, x=12, y=2) == 3
        assert ev((X - 15) >> const(1), x=0) == -8  # floor semantics

    def test_comparisons(self):
        assert ev(lt(X, Y), x=3, y=4) == 1
        assert ev(ge(X, Y), x=3, y=4) == 0
        assert ev(eq(X, Y), x=4, y=4) == 1
        assert ev(ne(X, Y), x=4, y=4) == 0
        assert ev(le(X, Y), x=4, y=4) == 1
        assert ev(gt(X, Y), x=5, y=4) == 1

    def test_logic(self):
        assert ev(lnot(X), x=0) == 1
        assert ev(lnot(X), x=7) == 0
        assert ev(X & Y, x=12, y=10) == 8
        assert ev(X | Y, x=12, y=10) == 14
        assert ev(X ^ Y, x=12, y=10) == 6
        assert ev(bitnot(X, 4), x=5) == 10

    def test_structure_ops(self):
        assert ev(trunc(X + Y, 4), x=15, y=1) == 0
        assert ev(slice_(X, 3, 2), x=0b1101) == 0b11
        assert ev(concat(X, Y, 4), x=0b11, y=0b0101) == 0b110101
        assert ev(lzc(X, 4), x=0b0010) == 2
        assert ev(lzc(X, 4), x=0) == 4

    def test_minmax_abs(self):
        assert ev(min_(X, Y), x=3, y=9) == 3
        assert ev(max_(X, Y), x=3, y=9) == 9
        assert ev(abs_(X - Y), x=3, y=9) == 6

    def test_mux_nonzero_condition(self):
        assert ev(mux(X, 1, 2), x=5) == 1
        assert ev(mux(X, 1, 2), x=0) == 2


class TestBotSemantics:
    def test_assume_holds(self):
        assert ev(assume(X, gt(X, 2)), x=5) == 5

    def test_assume_fails(self):
        assert ev(assume(X, gt(X, 2)), x=1) is BOT

    def test_assume_multiple_constraints(self):
        e = assume(X, gt(X, 2), lt(X, 9))
        assert ev(e, x=5) == 5
        assert ev(e, x=1) is BOT
        assert ev(e, x=10) is BOT

    def test_strict_propagation(self):
        assert ev(assume(X, gt(X, 2)) + 1, x=1) is BOT
        assert ev(lzc(assume(X, gt(X, 2)), 4), x=0) is BOT

    def test_mux_shields_unreachable_branch(self):
        """The ternary is non-strict: only the selected branch matters."""
        guarded = mux(gt(X, 2), assume(X, gt(X, 2)), const(0))
        assert ev(guarded, x=5) == 5
        assert ev(guarded, x=1) == 0

    def test_mux_strict_in_condition(self):
        e = mux(assume(X, gt(X, 2)), 1, 2)
        assert ev(e, x=0) is BOT

    def test_paper_equation_2(self):
        """x ~=_c y  iff  ASSUME(x,c) ~= ASSUME(y,c): fabs example."""
        xs = X - 8
        lhs = assume(abs_(xs), gt(xs, 0))
        rhs = assume(xs, gt(xs, 0))
        for x in range(16):
            assert ev(lhs, x=x) == ev(rhs, x=x)

    def test_domain_errors(self):
        assert ev(lzc(X + Y, 4), x=15, y=15) is BOT  # 30 needs 5 bits
        assert ev((X - Y) & X, x=0, y=1) is BOT      # negative bitwise
        assert ev(X >> (X - Y), x=0, y=1) is BOT     # negative shift

    def test_evaluate_total_raises(self):
        with pytest.raises(ValueError):
            evaluate_total(assume(X, gt(X, 2)), {"x": 0})


class TestEnvHandling:
    def test_input_variables(self):
        e = mux(gt(X, Y), X, var("z", 2))
        assert input_variables(e) == {"x": 4, "y": 4, "z": 2}

    def test_conflicting_widths_rejected(self):
        e = var("x", 4) + var("x", 5)
        with pytest.raises(ValueError):
            input_variables(e)

    def test_out_of_range_input_rejected(self):
        with pytest.raises(ValueError):
            evaluate(X, {"x": 16})

    def test_exhaustive_envs(self):
        envs = list(exhaustive_envs({"a": 2, "b": 1}))
        assert len(envs) == 8
        assert {(e["a"], e["b"]) for e in envs} == {
            (a, b) for a in range(4) for b in range(2)
        }
