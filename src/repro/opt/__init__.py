"""The end-to-end RTL optimization tool (Section IV).

:class:`~repro.opt.optimizer.DatapathOptimizer` wires the whole paper
together: Verilog (or IR) in, e-graph + interval analysis + constraint-aware
rewriting, delay-prioritized extraction, equivalence check, Verilog out.
"""

from repro.opt.optimizer import (
    DatapathOptimizer,
    ModuleResult,
    OptimizationResult,
    OptimizerConfig,
)
from repro.opt.report import egraph_model_cost, format_comparison, model_cost

__all__ = [
    "DatapathOptimizer",
    "OptimizerConfig",
    "OptimizationResult",
    "ModuleResult",
    "format_comparison",
    "model_cost",
    "egraph_model_cost",
]
