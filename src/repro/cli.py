"""Command-line interface: ``python -m repro <subcommand> ...``.

Subcommands (on the composable pipeline API):

``optimize``
    The paper's tool on one Verilog file: optimize every output, write the
    optimized module to stdout (or ``-o``), report costs/equivalence on
    stderr.  Input range constraints use ``name=lo:hi`` syntax::

        python -m repro optimize design.v --range x=128:255 --iters 8 -o out.v

``bench``
    Batch-optimize registry designs through a :class:`repro.pipeline.Session`
    (``--parallel`` fans out over a process pool) and print a Table III
    style comparison; ``--records`` appends the JSON run records.

``report``
    Re-render a comparison table from a saved ``--records`` file.

``sweep``
    Saturate one registry design once, then re-extract under a range of
    delay/area objective weights (the Figure 3 trade-off curve).

``serve`` / ``submit`` / ``status``
    The optimization service (:mod:`repro.service`): ``serve`` runs the
    multi-tenant daemon on an AF_UNIX socket with a content-addressed
    result cache; ``submit`` enqueues a registry design for a tenant (and
    can wait for the record); ``status`` polls the event feed, the cache
    and fair-share ledgers, and can ask for a graceful shutdown::

        python -m repro serve /tmp/repro.sock --tenants team-a,team-b:2 &
        python -m repro submit /tmp/repro.sock lzc_example --tenant team-a --wait
        python -m repro status /tmp/repro.sock --stats

Bare legacy invocations (``python -m repro design.v ...``) map to
``optimize`` unchanged.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import DatapathOptimizer, OptimizerConfig
from repro.intervals import IntervalSet


def parse_range(text: str) -> tuple[str, IntervalSet]:
    """Parse ``name=lo:hi`` into an input constraint."""
    try:
        name, span = text.split("=", 1)
        lo, hi = span.split(":", 1)
        return name.strip(), IntervalSet.of(int(lo), int(hi))
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"expected name=lo:hi, got {text!r}"
        ) from err


def _add_optimize_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", help="Verilog file (combinational subset)")
    parser.add_argument("-o", "--output", help="write optimized Verilog here")
    parser.add_argument(
        "--range", dest="ranges", type=parse_range, action="append", default=[],
        metavar="NAME=LO:HI", help="input domain constraint (repeatable)",
    )
    parser.add_argument("--iters", type=int, default=8, help="saturation iterations")
    parser.add_argument("--nodes", type=int, default=30_000, help="e-graph node limit")
    parser.add_argument(
        "--time-limit", type=float, default=60.0, metavar="SECONDS",
        help="saturation wall-clock budget (default: 60)",
    )
    parser.add_argument(
        "--split-threshold", type=int, default=1, metavar="K",
        help="case-split a - (b >> c) at c > K (default: 1)",
    )
    parser.add_argument("--no-verify", action="store_true", help="skip equivalence check")
    parser.add_argument("--no-split", action="store_true", help="disable case splitting")
    _add_objective_argument(parser)
    parser.add_argument(
        "--module-name", default="optimized", help="name of the emitted module"
    )
    parser.add_argument(
        "--warm-start", default=None, metavar="FILE",
        help="seed saturation from a persisted e-graph artifact (see "
        "--save-egraph); incompatible artifacts degrade to a cold start",
    )
    parser.add_argument(
        "--save-egraph", default=None, metavar="FILE",
        help="persist the saturated e-graph as a warm-start artifact",
    )
    parser.add_argument(
        "--stitch", action="store_true",
        help="after a sharded run, re-union the shard e-graphs on shared "
        "subexpressions and re-extract from the stitched graph "
        "(requires --shards/--auto-shard-nodes)",
    )
    _add_budget_arguments(parser)
    _add_shard_arguments(parser)


def _add_objective_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--objective", choices=("greedy", "ilp"), default="greedy",
        help="extraction objective: the classic greedy per-root tree-cost "
        "extractor, or 'ilp' — the governed branch-and-bound that refines "
        "the greedy result to DAG-cost optimality (shared subterms priced "
        "once; monolithic flow only, never worse than greedy)",
    )


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-ms", type=float, default=None, metavar="MS",
        help="wall-clock budget for the whole run in milliseconds; every "
        "stage and shard draws from this one pool and races one deadline "
        "(default: ungoverned — only the per-stage limits apply)",
    )
    parser.add_argument(
        "--budget-policy",
        choices=("fair", "weighted", "adaptive", "verify-aware"),
        default="adaptive",
        help="how a shared budget splits across shards/jobs: equal shares, "
        "proportional to cone size, adaptive (unspent budget from fast "
        "shards flows to slow ones), or verify-aware (adaptive plus a "
        "reserved tail slice of the wall for the Verify stage, so "
        "saturate-heavy runs cannot push verification into timeout "
        "degradation; default: adaptive)",
    )
    parser.add_argument(
        "--verify-budget-ms", type=float, default=None, metavar="MS",
        help="wall-clock ceiling for the Verify stage alone, in "
        "milliseconds: a blowing-up BDD proof stops at the deadline and "
        "degrades to randomized trials (verdict method 'random'), a check "
        "cut short reports method 'timeout' (default: only --budget-ms "
        "governs verification)",
    )


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="cluster output cones into at most N shared-nothing shards, "
        "each optimized in its own e-graph (0 = only auto-split, see "
        "--auto-shard-nodes)",
    )
    parser.add_argument(
        # 128 sits above every single-cone benchmark (the largest, the
        # interpolation kernel, is a 61-node DAG) and below any genuinely
        # wide design (the 8-lane stress module is 170).
        "--auto-shard-nodes", type=int, default=128, metavar="SIZE",
        help="auto-split a multi-output design per output cone once its DAG "
        "reaches SIZE nodes (default: 128; 0 disables auto-splitting)",
    )
    parser.add_argument(
        "--shard-parallel", action="store_true",
        help="fan shards out over a process pool",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint-aware datapath optimization using e-graphs "
        "(Coward et al., DAC 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser("optimize", help="optimize one Verilog file")
    _add_optimize_arguments(optimize)

    bench = sub.add_parser("bench", help="batch-optimize registry designs")
    bench.add_argument(
        "--designs", default=None, metavar="A,B,...",
        help="comma-separated registry design names (default: all)",
    )
    bench.add_argument("--iters", type=int, default=None, help="override iterations")
    bench.add_argument("--nodes", type=int, default=None, help="override node limit")
    bench.add_argument(
        "--time-limit", type=float, default=60.0, metavar="SECONDS",
        help="per-design saturation budget",
    )
    bench.add_argument("--verify", action="store_true", help="equivalence-check results")
    bench.add_argument(
        "--parallel", action="store_true", help="fan jobs out over a process pool"
    )
    bench.add_argument(
        "--workers", type=int, default=None, help="process pool size (with --parallel)"
    )
    bench.add_argument(
        "--records", metavar="FILE", help="append JSON run records to this file"
    )
    _add_objective_argument(bench)
    _add_budget_arguments(bench)
    _add_shard_arguments(bench)

    report = sub.add_parser("report", help="render a table from saved run records")
    report.add_argument("records", help="JSON file written by `bench --records`")

    sweep = sub.add_parser("sweep", help="delay/area objective sweep on one design")
    sweep.add_argument("design", help="registry design name")
    sweep.add_argument("--iters", type=int, default=None, help="override iterations")
    sweep.add_argument("--nodes", type=int, default=None, help="override node limit")
    sweep.add_argument(
        "--area-weights", default="0,0.002,0.005,0.01,0.02,0.05,0.1",
        metavar="W,W,...", help="area weights (delay weight fixed at 1)",
    )

    pareto = sub.add_parser(
        "pareto", help="characterize one design's area-delay Pareto front"
    )
    pareto.add_argument("design", help="registry design name")
    pareto.add_argument(
        "--mode", choices=("epsilon", "weighted"), default="epsilon",
        help="scalarization: epsilon-constraint (min area s.t. delay <= T "
        "per target; reaches every Pareto point) or weighted "
        "(min w*delay + (1-w)*area per weight; supported points only)",
    )
    pareto.add_argument(
        "--points", type=int, default=10, help="targets/weights in the grid"
    )
    pareto.add_argument(
        "--max-evals", type=int, default=400, metavar="N",
        help="synthesis-evaluation quota; small architecture spaces within "
        "the quota are enumerated exhaustively (provenance 'optimal')",
    )
    pareto.add_argument("--iters", type=int, default=None, help="override iterations")
    pareto.add_argument("--nodes", type=int, default=None, help="override node limit")
    _add_objective_argument(pareto)

    serve = sub.add_parser("serve", help="run the multi-tenant service daemon")
    serve.add_argument("socket", help="AF_UNIX socket path to listen on")
    serve.add_argument(
        "--tenants", default="default", metavar="NAME[:W],...",
        help="tenant roster with optional fair-share weights "
        "(default: one tenant named 'default')",
    )
    serve.add_argument(
        "--cache-file", default=None, metavar="FILE",
        help="persist the result cache here on shutdown (and reload on start)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=128, metavar="N",
        help="in-memory cache capacity (default: 128)",
    )
    serve.add_argument(
        "--parallel", action="store_true",
        help="dispatch each fair round over a process pool",
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="process pool size"
    )
    _add_budget_arguments(serve)

    submit = sub.add_parser("submit", help="submit a registry design to a daemon")
    submit.add_argument("socket", help="daemon socket path")
    submit.add_argument("design", help="registry design name")
    submit.add_argument("--tenant", default="default", help="submitting tenant")
    submit.add_argument("--name", default=None, help="job name (default: design)")
    submit.add_argument(
        "--source", default=None, metavar="FILE",
        help="submit this Verilog file instead of the registry design's "
        "own source; the design name becomes a label (edited designs "
        "warm-start from the label's persisted e-graph when the daemon "
        "keeps artifacts)",
    )
    submit.add_argument("--iters", type=int, default=None, help="override iterations")
    submit.add_argument("--nodes", type=int, default=None, help="override node limit")
    submit.add_argument(
        "--time-limit", type=float, default=60.0, metavar="SECONDS",
        help="saturation wall-clock ceiling",
    )
    submit.add_argument("--verify", action="store_true", help="equivalence-check")
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its RunRecord JSON",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="how long --wait polls before giving up (default: 300)",
    )

    status = sub.add_parser("status", help="poll a daemon's event feed")
    status.add_argument("socket", help="daemon socket path")
    status.add_argument(
        "--cursor", type=int, default=0,
        help="event-feed poll cursor from a previous status call",
    )
    status.add_argument(
        "--stats", action="store_true",
        help="print cache counters and per-tenant fair-share ledgers",
    )
    status.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to drain its backlog, persist the cache, exit",
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis: rule soundness, architecture, concurrency",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings output format (default: text)",
    )
    lint.add_argument(
        "--only", default=None, metavar="A,B,...",
        help="comma-separated analyzer subset (rules, arch, concurrency; "
        "default: all)",
    )
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="package root to analyze (default: the installed repro package)",
    )
    return parser


# --------------------------------------------------------------- subcommands
def _cmd_optimize(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        source = handle.read()

    from repro.pipeline import Budget

    auto_shard_nodes = args.auto_shard_nodes or None
    if args.warm_start:
        if args.shards > 0:
            raise SystemExit(
                "error: --warm-start composes with the monolithic flow "
                "only (drop --shards)"
            )
        # Warm-starting seeds one monolithic graph; the auto-shard
        # default must not silently force the sharded flow.
        auto_shard_nodes = None
    if args.objective == "ilp":
        if args.shards > 0:
            raise SystemExit(
                "error: --objective ilp composes with the monolithic flow "
                "only (drop --shards)"
            )
        # The ILP refinement plans its own per-output cones; the auto-shard
        # default must not silently force the sharded flow either.
        auto_shard_nodes = None
    config = OptimizerConfig(
        iter_limit=args.iters,
        node_limit=args.nodes,
        time_limit=args.time_limit,
        verify=not args.no_verify,
        split_threshold=None if args.no_split else args.split_threshold,
        shards=args.shards,
        auto_shard_nodes=auto_shard_nodes,
        shard_parallel=args.shard_parallel,
        budget=(
            Budget.of_ms(args.budget_ms) if args.budget_ms is not None else None
        ),
        budget_policy=args.budget_policy,
        verify_budget=(
            Budget.of_ms(args.verify_budget_ms)
            if args.verify_budget_ms is not None
            else None
        ),
        warm_start=args.warm_start,
        save_egraph=args.save_egraph,
        stitch=args.stitch,
        extract_objective=args.objective,
    )
    tool = DatapathOptimizer(dict(args.ranges), config)
    module = tool.optimize_verilog(source)

    for name, result in module.outputs.items():
        before, after = result.original_cost, result.optimized_cost
        verdict = result.equivalence if result.equivalence else "not checked"
        print(
            f"{name}: delay {before.delay:.1f} -> {after.delay:.1f}, "
            f"area {before.area:.1f} -> {after.area:.1f}  [{verdict}]",
            file=sys.stderr,
        )

    text = module.emit_verilog(args.module_name)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


def _records_table(records) -> str:
    from repro.opt import format_comparison

    rows = [
        (
            record.job,
            record.original_delay,
            record.original_area,
            record.optimized_delay,
            record.optimized_area,
        )
        for record in records
        if record.status == "ok"
    ]
    return format_comparison(rows)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.designs.registry import design_names
    from repro.pipeline import Budget, Session

    names = (
        [n.strip() for n in args.designs.split(",") if n.strip()]
        if args.designs
        else design_names()
    )
    session = Session.for_designs(
        names,
        # --budget-ms is the whole batch's ceiling, split across jobs by
        # --budget-policy; per-design limits still apply underneath.
        budget=(
            Budget.of_ms(args.budget_ms) if args.budget_ms is not None else None
        ),
        budget_policy=args.budget_policy,
        iter_limit=args.iters,
        node_limit=args.nodes,
        time_limit=args.time_limit,
        verify=args.verify,
        verify_budget=(
            Budget.of_ms(args.verify_budget_ms)
            if args.verify_budget_ms is not None
            else None
        ),
        shards=args.shards,
        # An ilp objective runs monolithically (it plans its own per-output
        # cones), so the auto-shard default must not force the sharded flow.
        auto_shard_nodes=(
            None if args.objective == "ilp" else args.auto_shard_nodes or None
        ),
        shard_parallel=args.shard_parallel,
        extract_objective=args.objective,
    )
    records = session.run(parallel=args.parallel, max_workers=args.workers)

    print(_records_table(records))
    for record in records:
        if record.status != "ok":
            print(f"{record.job}: FAILED — {record.error}", file=sys.stderr)
    if args.records:
        _append_records(args.records, records)
        print(f"appended {len(records)} records to {args.records}", file=sys.stderr)
    return 0 if all(r.status == "ok" for r in records) else 1


def _append_records(path: str, records) -> None:
    """Append run records to a JSON file.

    New files get a bare list of record dicts.  An existing dict-layout
    file (e.g. ``BENCH_perf.json``, whose headline payload carries a
    ``records`` list) keeps its other keys — only ``records`` grows.
    """
    loaded = None
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    fresh = [json.loads(record.to_json()) for record in records]
    if isinstance(loaded, dict):
        existing = loaded.get("records", [])
        if not isinstance(existing, list):
            existing = []
        payload = {**loaded, "records": [*existing, *fresh]}
    elif isinstance(loaded, list):
        payload = [*loaded, *fresh]
    else:
        # Missing, corrupt, or scalar content: start a fresh record list.
        payload = fresh
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.pipeline import RunRecord

    with open(args.records) as handle:
        loaded = json.load(handle)
    if isinstance(loaded, list):
        raw = loaded
    elif isinstance(loaded, dict):
        raw = loaded.get("records", [])
    else:
        raw = []
    records = [RunRecord.from_dict(entry) for entry in raw if isinstance(entry, dict)]
    if not records:
        print("no records", file=sys.stderr)
        return 1
    print(_records_table(records))
    failed = [r for r in records if r.status != "ok"]
    for record in failed:
        print(f"{record.job}: FAILED — {record.error}", file=sys.stderr)
    return 1 if failed else 0  # same contract as `bench`


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.designs.registry import get_design
    from repro.pipeline import Extract, Ingest, Pipeline, Saturate
    from repro.synth.cost import weighted_key

    design = get_design(args.design)
    iters = args.iters if args.iters is not None else design.iterations
    nodes = args.nodes if args.nodes is not None else design.node_limit
    weights = [float(w) for w in args.area_weights.split(",") if w.strip()]

    # Saturate once; re-extract per objective on the same context.
    ctx = Pipeline(
        [Ingest(source=design.verilog), Saturate(iter_limit=iters, node_limit=nodes)]
    ).run(input_ranges=design.input_ranges)
    print(f"{args.design}: {ctx.report.summary()}", file=sys.stderr)
    print(f"{'area_weight':>11} {'delay':>8} {'area':>10}")
    for weight in weights:
        Extract(key=weighted_key(1.0, weight)).run(ctx)
        cost = ctx.optimized_costs[design.output]
        print(f"{weight:>11.4f} {cost.delay:>8.1f} {cost.area:>10.1f}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.designs.registry import get_design
    from repro.pipeline import Extract, Ingest, Pipeline, Saturate
    from repro.solve import OptimalExtract, pareto_front

    design = get_design(args.design)
    iters = args.iters if args.iters is not None else design.iterations
    nodes = args.nodes if args.nodes is not None else design.node_limit
    extract = OptimalExtract() if args.objective == "ilp" else Extract()
    ctx = Pipeline(
        [
            Ingest(source=design.verilog),
            Saturate(iter_limit=iters, node_limit=nodes),
            extract,
        ]
    ).run(input_ranges=design.input_ranges)
    front = pareto_front(
        ctx.extracted[design.output],
        ctx.input_ranges,
        mode=args.mode,
        points=args.points,
        max_evals=args.max_evals,
    )
    print(
        f"{args.design} [{args.objective}]: {front.status} front, "
        f"{len(front.points)} point(s), {front.evals} synthesis eval(s) "
        f"over {front.tags} instance(s)",
        file=sys.stderr,
    )
    anchor = "target" if args.mode == "epsilon" else "weight"
    print(f"{anchor:>8} {'delay':>8} {'area':>10}  provenance")
    for point in front.points:
        at = point.target if args.mode == "epsilon" else point.weight
        at_text = f"{at:>8.3f}" if at is not None else f"{'-':>8}"
        print(
            f"{at_text} {point.delay:>8.1f} {point.area:>10.1f}  "
            f"{point.provenance}"
        )
    return 0


def _parse_tenants(text: str):
    from repro.service import TenantShare

    shares = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ":" in chunk:
            name, weight = chunk.rsplit(":", 1)
            shares.append(TenantShare(name.strip(), float(weight)))
        else:
            shares.append(TenantShare(chunk))
    if not shares:
        raise SystemExit("--tenants needs at least one tenant name")
    return shares


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.pipeline import Budget
    from repro.service import (
        OptimizationDaemon,
        OptimizationQueue,
        ResultCache,
    )

    queue = OptimizationQueue(
        _parse_tenants(args.tenants),
        budget=(
            Budget.of_ms(args.budget_ms) if args.budget_ms is not None else None
        ),
        budget_policy=args.budget_policy,
        cache=ResultCache(capacity=args.cache_entries, path=args.cache_file),
        parallel=args.parallel,
        max_workers=args.workers,
    )
    daemon = OptimizationDaemon(args.socket, queue)
    print(f"serving on {args.socket}", file=sys.stderr)
    daemon.serve_forever()
    summary = daemon.shutdown_summary
    print(
        f"shut down: drained {summary.get('drained', 0)} job(s), "
        f"persisted {summary.get('persisted', 0)} cache entr(ies)",
        file=sys.stderr,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.pipeline import Job
    from repro.service import job_to_dict, request, wait_for_result

    source = None
    if args.source:
        with open(args.source) as handle:
            source = handle.read()
    job = Job(
        name=args.name or args.design,
        design=args.design,
        iter_limit=args.iters,
        node_limit=args.nodes,
        time_limit=args.time_limit,
        verify=args.verify,
        source=source,
    )
    reply = request(
        args.socket,
        {"op": "submit", "tenant": args.tenant, "job": job_to_dict(job)},
    )
    if not reply.get("ok"):
        print(f"submit failed: {reply.get('error')}", file=sys.stderr)
        return 1
    ticket = reply["ticket"]
    print(f"ticket {ticket}: {reply['job']} queued", file=sys.stderr)
    if not args.wait:
        return 0
    record = wait_for_result(args.socket, ticket, timeout=args.timeout)
    print(record.to_json())
    return 0 if record.status == "ok" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import request

    if args.shutdown:
        reply = request(args.socket, {"op": "shutdown"})
        if not reply.get("ok"):
            print(f"shutdown failed: {reply.get('error')}", file=sys.stderr)
            return 1
        print(
            f"drained {reply['drained']} job(s), "
            f"persisted {reply['persisted']} cache entr(ies)"
        )
        return 0
    if args.stats:
        reply = request(args.socket, {"op": "stats"})
        if not reply.get("ok"):
            print(f"stats failed: {reply.get('error')}", file=sys.stderr)
            return 1
        print(json.dumps({k: reply[k] for k in ("cache", "ledger")}, indent=2))
        return 0
    reply = request(args.socket, {"op": "status", "cursor": args.cursor})
    if not reply.get("ok"):
        print(f"status failed: {reply.get('error')}", file=sys.stderr)
        return 1
    for sub in reply["submissions"]:
        print(
            f"#{sub['ticket']} {sub['job']} ({sub['tenant']}): {sub['status']}"
        )
    for event in reply["events"]:
        stage = f" {event['stage']}" if event["stage"] else ""
        detail = f" [{event['detail']}]" if event["detail"] else ""
        print(
            f"  {event['job']}: {event['kind']}{stage} "
            f"({event['wall_s']:.3f}s){detail}"
        )
    print(f"cursor {reply['cursor']}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import run_lint

    only = tuple(args.only.split(",")) if args.only else None
    report = run_lint(root=args.root, only=only)
    print(report.render(args.format))
    return report.exit_code


_DISPATCH = {
    "optimize": _cmd_optimize,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "pareto": _cmd_pareto,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "lint": _cmd_lint,
}

#: Derived, so the legacy-alias check in ``main`` can never drift from the
#: registered subcommands.
SUBCOMMANDS = tuple(_DISPATCH)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy invocation: `python -m repro design.v [options]` (no
    # subcommand) keeps working as an alias for `optimize`.
    if argv and argv[0] not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "optimize")
    args = build_parser().parse_args(argv)
    return _DISPATCH[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
