"""Gate-level component generators (the "cell library" of the substitute
synthesis flow).

Each generator emits 2-input gates into a :class:`~repro.synth.netlist.Netlist`
and returns LSB-first net lists.  Adders come in three architectures —
``ripple`` (small/slow), ``carry-select`` (middle), ``sklansky`` (fast
parallel-prefix) — which the delay-target sweep trades against each other,
mirroring what a commercial synthesis tool does when it restructures
arithmetic to meet timing.
"""

from __future__ import annotations

from repro.synth.netlist import Netlist

ADDER_ARCHS = ("ripple", "carry-select", "sklansky")


# ------------------------------------------------------------------- adders
def full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """One full adder; returns (sum, carry)."""
    axb = nl.g_xor(a, b)
    total = nl.g_xor(axb, cin)
    carry = nl.g_or(nl.g_and(a, b), nl.g_and(axb, cin))
    return total, carry


def ripple_adder(
    nl: Netlist, a: list[int], b: list[int], cin: int
) -> tuple[list[int], int]:
    """Ripple-carry adder; operands must share a width."""
    if len(a) != len(b):
        raise ValueError("ripple_adder: width mismatch")
    out, carry = [], cin
    for bit_a, bit_b in zip(a, b, strict=True):
        total, carry = full_adder(nl, bit_a, bit_b, carry)
        out.append(total)
    return out, carry


def sklansky_adder(
    nl: Netlist, a: list[int], b: list[int], cin: int
) -> tuple[list[int], int]:
    """Sklansky parallel-prefix adder (log-depth carries)."""
    if len(a) != len(b):
        raise ValueError("sklansky_adder: width mismatch")
    width = len(a)
    if width == 0:
        return [], cin
    propagate = [nl.g_xor(x, y) for x, y in zip(a, b, strict=True)]
    generate = [nl.g_and(x, y) for x, y in zip(a, b, strict=True)]

    # Prefix combine: (g, p) pairs; span doubles each level.
    g = list(generate)
    p = list(propagate)
    span = 1
    while span < width:
        new_g, new_p = list(g), list(p)
        for i in range(width):
            j = (i // span) * span - 1  # Sklansky: fan from block boundary
            if (i // span) % 2 == 1 and j >= 0:
                new_g[i] = nl.g_or(g[i], nl.g_and(p[i], g[j]))
                new_p[i] = nl.g_and(p[i], p[j])
        g, p = new_g, new_p
        span <<= 1

    # carry into bit i = G[i-1] | P[i-1] & cin
    carries = [cin]
    for i in range(width):
        carries.append(nl.g_or(g[i], nl.g_and(p[i], cin)))
    out = [nl.g_xor(propagate[i], carries[i]) for i in range(width)]
    return out, carries[width]


def carry_select_adder(
    nl: Netlist, a: list[int], b: list[int], cin: int, block: int = 4
) -> tuple[list[int], int]:
    """Carry-select adder with fixed block size."""
    if len(a) != len(b):
        raise ValueError("carry_select_adder: width mismatch")
    out: list[int] = []
    carry = cin
    for start in range(0, len(a), block):
        chunk_a = a[start : start + block]
        chunk_b = b[start : start + block]
        if start == 0:
            sums, carry = ripple_adder(nl, chunk_a, chunk_b, carry)
            out.extend(sums)
            continue
        sum0, carry0 = ripple_adder(nl, chunk_a, chunk_b, nl.zero)
        sum1, carry1 = ripple_adder(nl, chunk_a, chunk_b, nl.one)
        out.extend(
            nl.g_mux(carry, s1, s0) for s0, s1 in zip(sum0, sum1, strict=True)
        )
        carry = nl.g_mux(carry, carry1, carry0)
    return out, carry


def adder(
    nl: Netlist, a: list[int], b: list[int], cin: int, arch: str = "sklansky"
) -> tuple[list[int], int]:
    """Architecture-dispatching adder."""
    if arch == "ripple":
        return ripple_adder(nl, a, b, cin)
    if arch == "carry-select":
        return carry_select_adder(nl, a, b, cin)
    if arch == "sklansky":
        return sklansky_adder(nl, a, b, cin)
    raise ValueError(f"unknown adder architecture {arch!r}")


def subtractor(
    nl: Netlist, a: list[int], b: list[int], arch: str = "sklansky"
) -> tuple[list[int], int]:
    """``a - b`` two's complement; returns (difference, carry-out).

    Carry-out set means no borrow (``a >= b`` for unsigned operands).
    """
    inverted = [nl.g_not(bit) for bit in b]
    return adder(nl, a, inverted, nl.one, arch)


# -------------------------------------------------------------- comparators
def less_than(
    nl: Netlist, a: list[int], b: list[int], signed: bool, arch: str = "sklansky"
) -> int:
    """1-bit ``a < b``; operands must share a width."""
    if signed and a:
        # Bias trick: flipping the sign bit maps two's complement order
        # onto unsigned order.
        a = a[:-1] + [nl.g_not(a[-1])]
        b = b[:-1] + [nl.g_not(b[-1])]
    _, carry = subtractor(nl, a, b, arch)
    return nl.g_not(carry)  # borrow means a < b


def equal(nl: Netlist, a: list[int], b: list[int]) -> int:
    """1-bit ``a == b``; operands must share a width."""
    diffs = [nl.g_xor(x, y) for x, y in zip(a, b, strict=True)]
    if not diffs:
        return nl.one
    return nl.g_not(nl.reduce("OR", diffs))


def is_zero(nl: Netlist, a: list[int]) -> int:
    """1-bit ``a == 0``."""
    if not a:
        return nl.one
    return nl.g_not(nl.reduce("OR", a))


# -------------------------------------------------------------------- muxes
def mux_word(nl: Netlist, sel: int, when1: list[int], when0: list[int]) -> list[int]:
    """Word-wide 2:1 mux; operands must share a width."""
    if len(when1) != len(when0):
        raise ValueError("mux_word: width mismatch")
    return [nl.g_mux(sel, x, y) for x, y in zip(when1, when0, strict=True)]


# ------------------------------------------------------------------ shifters
def barrel_shifter(
    nl: Netlist,
    value: list[int],
    amount: list[int],
    left: bool,
    fill: int,
) -> list[int]:
    """Logarithmic barrel shifter (``fill`` feeds vacated positions)."""
    bits = list(value)
    width = len(bits)
    for level, select in enumerate(amount):
        step = 1 << level
        if step >= width and not left:
            # Every remaining stage shifts everything out.
            bits = [nl.g_mux(select, fill, bit) for bit in bits]
            continue
        shifted = []
        for i in range(width):
            source = i - step if left else i + step
            donor = bits[source] if 0 <= source < width else fill
            shifted.append(nl.g_mux(select, donor, bits[i]))
        bits = shifted
    return bits


# ---------------------------------------------------------------------- LZC
def lzc_tree(nl: Netlist, value: list[int], out_width: int) -> list[int]:
    """Leading-zero counter over ``value`` (LSB-first); classic CLZ tree.

    The operand is padded at the LSB side with constant ones up to a power
    of two — padding ones never adds leading zeros and makes the all-zero
    case count exactly ``len(value)``.
    """
    width = len(value)
    padded_width = 1 << max((width - 1).bit_length(), 0) if width > 1 else 1
    padded = [nl.one] * (padded_width - width) + list(value)

    def rec(msb_first: list[int]) -> tuple[list[int], int]:
        """Returns (count bits LSB-first, all-zero net) for a 2^k slice."""
        if len(msb_first) == 1:
            return [], nl.g_not(msb_first[0])
        half = len(msb_first) // 2
        count_hi, zero_hi = rec(msb_first[:half])
        count_lo, zero_lo = rec(msb_first[half:])
        zero = nl.g_and(zero_hi, zero_lo)
        merged = [
            nl.g_mux(zero_hi, lo, hi)
            for lo, hi in zip(count_lo, count_hi, strict=True)
        ]
        return merged + [zero_hi], zero

    msb_first = list(reversed(padded))
    count, zero = rec(msb_first)
    # All-zero input: the tree's count bits are residue, not 0 — force the
    # result to exactly padded_width (== 1 << k) by masking and setting the
    # top bit.  (Only reachable when width is a power of two: otherwise the
    # LSB padding ones keep `zero` false.)
    not_zero = nl.g_not(zero)
    count = [nl.g_and(not_zero, bit) for bit in count] + [zero]
    # Semantically count <= width, so bits above bit_length(width) are 0.
    count = count[:out_width] + [nl.zero] * max(0, out_width - len(count))
    return count[:out_width]


# --------------------------------------------------------------- multiplier
def array_multiplier(
    nl: Netlist, a: list[int], b: list[int], out_width: int
) -> list[int]:
    """Shift-and-add array multiplier, truncated to ``out_width`` bits."""
    accum: list[int] = [nl.zero] * out_width
    for j, b_bit in enumerate(b):
        if j >= out_width:
            break
        partial = [nl.zero] * out_width
        for i, a_bit in enumerate(a):
            if i + j < out_width:
                partial[i + j] = nl.g_and(a_bit, b_bit)
        accum, _ = ripple_adder(nl, accum, partial, nl.zero)
    return accum


def negate(nl: Netlist, a: list[int], arch: str = "ripple") -> list[int]:
    """Two's complement negation at the operand's width."""
    inverted = [nl.g_not(bit) for bit in a]
    zeros = [nl.zero] * len(a)
    out, _ = adder(nl, inverted, zeros, nl.one, arch)
    return out
