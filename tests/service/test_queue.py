"""Fair-share queue: tenant ledgers, the match-quota phase, event feeds."""

from __future__ import annotations

from repro.pipeline import Budget, Job
from repro.service import (
    EventFeed,
    OptimizationQueue,
    ResultCache,
    TenantShare,
    events_from_record,
)

FAST = dict(iter_limit=2, node_limit=8_000)

TENANTS = [TenantShare("team-a"), TenantShare("team-b")]


def _job(name: str, design: str = "lzc_example", **kwargs) -> Job:
    knobs = {**FAST, **kwargs}
    return Job(name=name, design=design, **knobs)


class TestSubmission:
    def test_unknown_tenant_is_rejected(self):
        queue = OptimizationQueue(TENANTS)
        try:
            queue.submit(_job("j"), "nobody")
        except KeyError as err:
            assert "unknown tenant" in str(err)
        else:
            raise AssertionError("expected KeyError")

    def test_submit_is_immediate_and_emits_queued(self):
        queue = OptimizationQueue(TENANTS)
        sub = queue.submit(_job("j1"), "team-a")
        assert sub.status == "queued"
        assert [e.kind for e in queue.feed.for_job("j1")] == ["queued"]
        assert len(queue.pending("team-a")) == 1

    def test_duplicate_tenants_are_rejected(self):
        try:
            OptimizationQueue([TenantShare("a"), TenantShare("a")])
        except ValueError as err:
            assert "duplicate" in str(err)
        else:
            raise AssertionError("expected ValueError")


class TestFairShare:
    def test_tenant_ledgers_stay_within_their_allocation(self):
        """The fairness contract: with a service-level quota, no tenant's
        settled spend exceeds its allocated share (iters settle exactly at
        iteration boundaries, so the check is exact, not approximate)."""
        queue = OptimizationQueue(TENANTS, budget=Budget(iters=8))
        limits = iter((3, 4, 5, 6))  # distinct content: no cache hits
        for tenant in ("team-a", "team-b"):
            for i in range(2):
                queue.submit(
                    _job(f"{tenant}-{i}", iter_limit=next(limits)), tenant
                )
        records = queue.drain()
        assert len(records) == 4
        ledger = queue.ledger()
        for tenant, entry in ledger.items():
            assert entry["spent"]["iters"] <= entry["allocated"]["iters"], (
                tenant,
                entry,
            )
            assert entry["jobs"] == 2

    def test_rounds_interleave_tenants(self):
        queue = OptimizationQueue(TENANTS)
        queue.submit(_job("a-0"), "team-a")
        queue.submit(_job("a-1"), "team-a")
        queue.submit(_job("b-0"), "team-b")
        records = queue.drain()
        # Round 1 runs one job per tenant; a-1 waits for round 2.
        assert [r.job for r in records] == ["a-0", "b-0", "a-1"]

    def test_weighted_tenants_get_weighted_ceilings(self):
        queue = OptimizationQueue(
            [TenantShare("small"), TenantShare("large", weight=3.0)],
            budget=Budget(iters=40),
        )
        ledger = queue.ledger()
        assert ledger["large"]["allocated"]["iters"] == 30
        assert ledger["small"]["allocated"]["iters"] == 10

    def test_match_quota_phase_rations_the_tenant_allowance(self):
        """The allot phase slices ``Budget.matches`` adaptively: a tenant
        with two pending jobs hands the first at most ceil(half) of its
        match allowance, and total settled matches never exceed it."""
        queue = OptimizationQueue(
            [TenantShare("solo")], budget=Budget(matches=1000)
        )
        queue.submit(_job("m-0"), "solo")
        queue.submit(_job("m-1"), "solo")
        first = queue._allot(queue.pending("solo")[0])
        assert first.budget.matches == 500
        records = queue.drain()
        assert all(r.status == "ok" for r in records)
        entry = queue.ledger()["solo"]
        assert 0 < entry["spent"]["matches"] <= 1000


class TestCacheIntegration:
    def test_duplicate_submission_hits_without_running(self):
        queue = OptimizationQueue(TENANTS, budget=Budget(time_s=30.0))
        queue.submit(_job("first"), "team-a")
        first = queue.drain()[0]
        assert first.status == "ok" and not first.cache_hit

        queue.submit(_job("second"), "team-b")
        second = queue.drain()[0]
        assert second.cache_hit is True
        assert second.job == "second" and second.tenant == "team-b"
        # The hit never touched the pipeline: team-b settled no run, and
        # its feed shows no running stage (in particular, no Saturate).
        assert queue.ledger()["team-b"]["jobs"] == 0
        assert queue.ledger()["team-b"]["cache_hits"] == 1
        kinds = [e.kind for e in queue.feed.for_job("second")]
        assert kinds == ["queued", "cached", "done"]

    def test_renamed_job_with_same_content_still_hits(self):
        cache = ResultCache()
        queue = OptimizationQueue(TENANTS, cache=cache)
        queue.submit(_job("original"), "team-a")
        queue.drain()
        queue.submit(_job("rebranded"), "team-a")
        assert queue.drain()[0].cache_hit is True
        assert cache.stats()["hits"] == 1

    def test_error_records_do_not_poison_the_cache(self):
        queue = OptimizationQueue(TENANTS)
        queue.submit(_job("bad", design="lzc_example", shards=2,
                          phases=(("structural",),)), "team-a")
        first = queue.drain()[0]
        assert first.status == "error"
        queue.submit(_job("retry", shards=2, phases=(("structural",),)),
                     "team-a")
        assert queue.drain()[0].cache_hit is False


class TestWarmStartTier:
    """A cache *miss* with a known design label still warm-starts from the
    family's persisted e-graph — the second artifact tier beside records."""

    EDITED = """
module lzc_example (
  input [7:0] x,
  input [7:0] y,
  output [3:0] out,
  output [8:0] out2
);
  wire [8:0] sum = x + y;
  reg [3:0] lz;
  always @(*) begin
    casez (sum)
      9'b1????????: lz = 0;
      9'b01???????: lz = 1;
      9'b001??????: lz = 2;
      9'b0001?????: lz = 3;
      9'b00001????: lz = 4;
      9'b000001???: lz = 5;
      9'b0000001??: lz = 6;
      9'b00000001?: lz = 7;
      9'b000000001: lz = 8;
      default: lz = 9;
    endcase
  end
  assign out = lz;
  assign out2 = sum;
endmodule
"""

    def _queue(self, tmp_path):
        return OptimizationQueue(
            TENANTS, cache=ResultCache(path=tmp_path / "cache.json")
        )

    def test_first_run_saves_an_artifact(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.submit(_job("first"), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok"
        assert record.warm_start == ""  # nothing to seed from yet
        assert queue.cache.stats()["egraph_artifacts"] == 1

    def test_edited_design_resubmission_warm_starts(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.submit(_job("first"), "team-a")
        assert queue.drain()[0].status == "ok"

        # Edited revision, same label: the record cache misses (the content
        # digest changed), but the artifact tier hits the family.
        queue.submit(_job("edited", source=self.EDITED), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok"
        assert record.cache_hit is False
        assert record.warm_start.startswith("hit:")
        assert record.warm_start.endswith(":delta")

    def test_pathless_cache_never_attaches_artifacts(self):
        queue = OptimizationQueue(TENANTS, cache=ResultCache())
        queue.submit(_job("first"), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok" and record.warm_start == ""

    def test_sharded_jobs_bypass_the_warm_tier(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.submit(_job("sharded", design="stress_wide", shards=2), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok" and record.warm_start == ""
        assert queue.cache.stats()["egraph_artifacts"] == 0

    def test_explicit_artifact_paths_are_respected(self, tmp_path):
        queue = self._queue(tmp_path)
        pinned = tmp_path / "pinned.egraph"
        queue.submit(_job("pinning", save_egraph=str(pinned)), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok"
        assert pinned.exists()
        # The queue did not override the submitter's choice with the
        # family path.
        assert queue.cache.stats()["egraph_artifacts"] == 0


class TestEventFeed:
    def test_executed_job_feed_covers_the_wall(self):
        feed = EventFeed()
        queue = OptimizationQueue(
            TENANTS, budget=Budget(time_s=30.0), feed=feed
        )
        queue.submit(_job("covered"), "team-a")
        record = queue.drain()[0]
        assert record.status == "ok"
        kinds = [e.kind for e in feed.for_job("covered")]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        assert "running" in kinds
        assert feed.coverage("covered") >= 0.95

    def test_poll_cursor_sees_only_fresh_events(self):
        queue = OptimizationQueue(TENANTS)
        queue.submit(_job("p-0"), "team-a")
        cursor, first = queue.feed.poll(0)
        assert [e.kind for e in first] == ["queued"]
        queue.drain()
        cursor, fresh = queue.feed.poll(cursor)
        assert fresh and all(e.kind != "queued" for e in fresh)
        assert queue.feed.poll(cursor) == (cursor, [])

    def test_queue_wait_is_stamped_from_the_service_clock(self):
        times = iter([10.0, 12.5, 13.0, 20.0, 30.0, 40.0])
        queue = OptimizationQueue(TENANTS, clock=lambda: next(times, 50.0))
        queue.submit(_job("waited"), "team-a")  # submitted_at = 10.0
        record = queue.drain()[0]
        assert record.queue_wait_s == 2.5  # dispatched at 12.5
        events = events_from_record(record)
        assert events[0].kind == "queued" and events[0].wall_s == 2.5
