"""IR -> netlist lowering (vs the IR evaluator) and the synthesis sweep."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import IntervalSet
from repro.ir import (
    abs_, assume, bitnot, concat, eq, ge, gt, le, lnot, lzc, max_, min_,
    mux, ne, slice_, trunc, var,
)
from repro.ir.evaluate import evaluate_total, input_variables, random_env
from repro.synth import area_delay_sweep, lower_to_netlist, min_delay_point

X, Y, S = var("x", 8), var("y", 8), var("s", 3)

DESIGNS = [
    (X + Y) - (Y >> 2),
    mux(gt(X, Y), X - Y, Y - X),
    lzc(X + Y, 9),
    (X << S) + (Y >> S),
    trunc(X * Y, 10),
    abs_(X - Y),
    min_(X, Y) + max_(X, Y),
    (X & Y) | bitnot(X ^ Y, 8),
    mux(le(X, Y), eq(X, 128), ne(Y, 3)),
    concat(slice_(X, 7, 4), Y, 8),
    lnot(X - Y),
    mux(ge(X, Y), trunc(-(X - Y), 9), X + 1),
]


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: repr(d)[:40])
def test_lowering_matches_evaluator(design):
    lowered = lower_to_netlist(design)
    widths = input_variables(design)
    rng = random.Random(11)
    for _ in range(150):
        env = random_env(widths, rng)
        assert lowered.netlist.simulate(env)["out"] == evaluate_total(design, env)


def test_assume_lowers_as_wire_with_refined_width():
    # Under the guard, x in [200, 255]: the assume gives the adder its
    # refined width but the hardware is just x + 1.
    design = mux(gt(X, 199), assume(X, gt(X, 199)) + 1, X)
    lowered = lower_to_netlist(design)
    widths = input_variables(design)
    rng = random.Random(5)
    for _ in range(200):
        env = random_env(widths, rng)
        assert lowered.netlist.simulate(env)["out"] == evaluate_total(design, env)


def test_unbounded_design_rejected():
    # A lone variable shifted by itself repeatedly stays bounded; craft an
    # unbounded range via an unconstrained expression is impossible in this
    # IR (everything derives from bounded vars), so check the empty/dead
    # path instead: an assume with an impossible constraint lowers to a stub.
    dead = mux(gt(X, 300), assume(X, gt(X, 300)), X)
    lowered = lower_to_netlist(dead)
    rng = random.Random(7)
    for _ in range(50):
        env = random_env({"x": 8}, rng)
        assert lowered.netlist.simulate(env)["out"] == env["x"]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
def test_lowering_property(a, b, s):
    design = mux(gt(X, Y), (X - Y) >> S, (Y << 1) - X)
    lowered = lower_to_netlist(design)
    env = {"x": a, "y": b, "s": s}
    assert lowered.netlist.simulate(env)["out"] == evaluate_total(design, env)


class TestSweep:
    def test_min_delay_uses_fast_architectures(self):
        point = min_delay_point(X + Y)
        relaxed = area_delay_sweep(X + Y, points=4)[-1]
        assert point.delay <= relaxed.delay
        assert point.area >= relaxed.area

    def test_sweep_monotone_and_met(self):
        design = mux(gt(X, Y), X - Y, Y - X) + (X >> S)
        points = area_delay_sweep(design, points=6)
        areas = [p.area for p in points]
        assert all(l <= t + 1e-9 for t, l in zip(areas, areas[1:], strict=False))
        assert all(p.met for p in points)

    @pytest.mark.parametrize("design", DESIGNS, ids=lambda d: repr(d)[:40])
    def test_sweep_area_monotone_across_targets(self, design):
        """The Figure-3 seed defect, pinned at unit scope: a looser delay
        target must never return a costlier implementation than a tighter
        one (``area_delay_sweep`` carries best-so-far across targets)."""
        points = area_delay_sweep(design, points=8)
        areas = [p.area for p in points]
        assert all(
            loose <= tight + 1e-9 for tight, loose in zip(areas, areas[1:], strict=False)
        ), f"non-monotone sweep areas {areas}"
        # ``met`` stays honest on substituted points too.
        for point in points:
            assert point.met == (point.delay <= point.target + 1e-9)

    def test_input_ranges_shrink_hardware(self):
        constrained = {"x": IntervalSet.of(0, 15), "y": IntervalSet.of(0, 15)}
        wide = min_delay_point(X + Y)
        narrow = min_delay_point(X + Y, constrained)
        assert narrow.area < wide.area
