"""Finite unions of integer intervals — the abstract domain A of the paper.

Section III-B of Coward et al. (DAC 2023) abstracts the set of 'care' values
of an expression as a finite union of integer intervals::

    A = { U_i [a_i, b_i] | a_i <= b_i, a_i, b_i in Z, n in N }

:class:`Interval` is a single (possibly half-unbounded) integer interval and
:class:`IntervalSet` is the canonical finite union used as e-class analysis
data.  All arithmetic transfer functions used by the paper are provided,
including the conservative modular reduction of eq. (5).
"""

from repro.intervals.interval import Interval, NEG_INF, POS_INF
from repro.intervals.iset import IntervalSet
from repro.intervals.bitops import max_and, max_or, max_xor, min_and, min_or, min_xor

__all__ = [
    "Interval",
    "IntervalSet",
    "NEG_INF",
    "POS_INF",
    "min_and",
    "max_and",
    "min_or",
    "max_or",
    "min_xor",
    "max_xor",
]
