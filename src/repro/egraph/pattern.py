"""Pattern language and e-matching.

Patterns are written as s-expressions, egg-style::

    (+ ?a ?b)             commutativity binding ?a, ?b to e-classes
    (* ?a 2)              literal integer -> CONST node
    (lzc ?w ?a)           operator attributes come first (?w binds the width)
    (mux ?c ?t ?f)        ternary
    (assume ?x ?c)        ASSUME with exactly one constraint

``?name`` in a child position is a :class:`PatternVar` (binds an e-class id);
in an attribute position it is an :class:`AttrVar` (binds the attribute
value).  E-matching returns every environment under which the pattern is
present in a class.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Union

from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.ir import ops
from repro.ir.ops import Op


@dataclass(frozen=True, slots=True)
class PatternVar:
    """Binds an e-class id."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class AttrVar:
    """Binds an operator attribute value (e.g. a width)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class PatternNode:
    """An operator application over sub-patterns."""

    op: Op
    attrs: tuple = ()
    children: tuple["Pattern", ...] = ()

    def __repr__(self) -> str:
        parts = [self.op.name.lower()]
        parts += [repr(a) for a in self.attrs]
        parts += [repr(c) for c in self.children]
        return "(" + " ".join(parts) + ")"


Pattern = Union[PatternVar, PatternNode]

#: Symbols accepted by :func:`parse_pattern`, mapped to operators.  The
#: number of leading attribute slots is given by ``op.attr_names``.
_SYMBOLS: dict[str, Op] = {
    "+": ops.ADD,
    "-": ops.SUB,
    "*": ops.MUL,
    "neg": ops.NEG,
    "<<": ops.SHL,
    ">>": ops.SHR,
    "&": ops.AND,
    "|": ops.OR,
    "^": ops.XOR,
    "bnot": ops.NOT,
    "lnot": ops.LNOT,
    "<": ops.LT,
    "<=": ops.LE,
    ">": ops.GT,
    ">=": ops.GE,
    "==": ops.EQ,
    "!=": ops.NE,
    "mux": ops.MUX,
    "lzc": ops.LZC,
    "trunc": ops.TRUNC,
    "slice": ops.SLICE,
    "concat": ops.CONCAT,
    "abs": ops.ABS,
    "min": ops.MIN,
    "max": ops.MAX,
    "assume": ops.ASSUME,
}

_TOKEN = re.compile(r"\(|\)|[^\s()]+")


def parse_pattern(text: str) -> Pattern:
    """Parse an s-expression pattern string."""
    tokens = _TOKEN.findall(text)
    pos = 0

    def parse() -> Pattern:
        nonlocal pos
        if pos >= len(tokens):
            raise ValueError(f"unexpected end of pattern: {text!r}")
        tok = tokens[pos]
        pos += 1
        if tok == "(":
            head = tokens[pos]
            pos += 1
            op = _SYMBOLS.get(head)
            if op is None:
                raise ValueError(f"unknown operator {head!r} in {text!r}")
            n_attrs = len(op.attr_names)
            attrs = []
            for _ in range(n_attrs):
                a = tokens[pos]
                pos += 1
                if a.startswith("?"):
                    attrs.append(AttrVar(a[1:]))
                else:
                    attrs.append(int(a))
            children = []
            while tokens[pos] != ")":
                children.append(parse())
            pos += 1  # consume ')'
            if op.arity is not None and len(children) != op.arity:
                raise ValueError(
                    f"{op.name} wants {op.arity} children, got "
                    f"{len(children)} in {text!r}"
                )
            return PatternNode(op, tuple(attrs), tuple(children))
        if tok == ")":
            raise ValueError(f"unbalanced ')' in {text!r}")
        if tok.startswith("?"):
            return PatternVar(tok[1:])
        return PatternNode(ops.CONST, (int(tok),), ())

    result = parse()
    if pos != len(tokens):
        raise ValueError(f"trailing tokens in {text!r}")
    return result


def as_pattern(spec: "Pattern | str") -> Pattern:
    """Accept a pre-built pattern or an s-expression string."""
    if isinstance(spec, str):
        return parse_pattern(spec)
    return spec


def pattern_vars(pattern: Pattern) -> set[str]:
    """All ?names appearing in the pattern (class and attr vars)."""
    out: set[str] = set()
    stack = [pattern]
    while stack:
        p = stack.pop()
        if isinstance(p, PatternVar):
            out.add(p.name)
        else:
            for a in p.attrs:
                if isinstance(a, AttrVar):
                    out.add(a.name)
            stack.extend(p.children)
    return out


# -------------------------------------------------------------------- matching
def _match_attrs(pattern: PatternNode, enode: ENode, env: dict) -> dict | None:
    """Unify the attribute tuples; returns the extended env or None."""
    new_env = env
    for pat_a, node_a in zip(pattern.attrs, enode.attrs, strict=True):
        if isinstance(pat_a, AttrVar):
            bound = new_env.get(pat_a.name, _UNSET)
            if bound is _UNSET:
                if new_env is env:
                    new_env = dict(env)
                new_env[pat_a.name] = node_a
            elif bound != node_a:
                return None
        elif pat_a != node_a:
            return None
    return new_env


_UNSET = object()


def match_in_class(
    egraph: EGraph, pattern: Pattern, class_id: int, env: dict
) -> Iterator[dict]:
    """Yield all environments extending ``env`` that place ``pattern`` in
    the e-class ``class_id``."""
    class_id = egraph.find(class_id)
    if isinstance(pattern, PatternVar):
        bound = env.get(pattern.name, _UNSET)
        if bound is _UNSET:
            new_env = dict(env)
            new_env[pattern.name] = class_id
            yield new_env
        elif egraph.find(bound) == class_id:
            yield env
        return

    for enode in list(egraph[class_id].nodes):
        if enode.op is not pattern.op:
            continue
        if pattern.op.arity is None and len(enode.children) != len(pattern.children):
            continue
        yield from _match_node(egraph, pattern, enode, env)


def _match_node(
    egraph: EGraph, pattern: PatternNode, enode: ENode, env: dict
) -> Iterator[dict]:
    env2 = _match_attrs(pattern, enode, env)
    if env2 is None:
        return

    def rec(i: int, cur: dict) -> Iterator[dict]:
        if i == len(pattern.children):
            yield cur
            return
        for nxt in match_in_class(egraph, pattern.children[i], enode.children[i], cur):
            yield from rec(i + 1, nxt)

    yield from rec(0, env2)


def ematch(
    egraph: EGraph,
    pattern: Pattern,
    index: dict[Op, list[tuple[int, ENode]]] | None = None,
    limit: int = 100_000,
) -> list[tuple[int, dict]]:
    """Match ``pattern`` against every class; returns [(class id, env)].

    ``index`` is the per-op node index from :meth:`EGraph.nodes_by_op`;
    computing it once per runner iteration amortizes the scan.
    """
    results: list[tuple[int, dict]] = []
    if isinstance(pattern, PatternVar):
        raise ValueError("a bare pattern variable matches everything")
    if index is None:
        index = egraph.nodes_by_op()
    # The persistent index may hold stale entries for classes absorbed since
    # the last rebuild; canonicalize and dedup so each (root, e-node) pair is
    # matched exactly once instead of yielding duplicate environments.  On a
    # clean (just-rebuilt) graph every entry is already canonical and unique,
    # so the canonicalization and dedup are skipped entirely.
    clean = egraph.is_clean
    variadic = pattern.op.arity is None
    seen: set[tuple[int, ENode]] = set()
    for class_id, enode in index.get(pattern.op, ()):
        if variadic and len(enode.children) != len(pattern.children):
            continue
        if clean:
            root = class_id
        else:
            root = egraph.find(class_id)
            enode = enode.canonical(egraph.find)
            if (root, enode) in seen:
                continue
            seen.add((root, enode))
        for env in _match_node(egraph, pattern, enode, {}):
            results.append((root, env))
            if len(results) >= limit:
                return results
    return results


# --------------------------------------------------------------- instantiation
def instantiate(egraph: EGraph, pattern: Pattern, env: dict) -> int:
    """Build the pattern in the e-graph under ``env``; returns the class id."""
    if isinstance(pattern, PatternVar):
        return egraph.find(env[pattern.name])
    attrs = tuple(
        env[a.name] if isinstance(a, AttrVar) else a for a in pattern.attrs
    )
    children = tuple(instantiate(egraph, c, env) for c in pattern.children)
    return egraph.add_node(pattern.op, attrs, children)
