"""Concurrency checker: shared-state writes reachable from worker code.

``Session`` fans jobs over a process pool, ``run_shard_task`` runs inside
nested pools, and the service daemon drains its queue on a worker *thread*
sharing the interpreter with request handling.  Any write to module-level
mutable state reachable from those entry points is a race in the thread
case and a silent divergence (per-process copies) in the pool case —
unless the object is audited immutable-after-import or idempotent.

The call graph is deliberately conservative: calls resolve by name through
each module's imports, and bare method calls (``obj.meth()``) over-
approximate to *every* known function of that name in the modules the
worker can reach.  False negatives (a write the walk misses) are worse
than false positives (a waivable finding), so resolution errs broad.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.arch import import_edges, module_mutable_globals
from repro.lint.model import Finding, SourceModule, SourceTree

#: The known fan-out entry points: module -> function qualnames whose
#: transitive callees run on pool workers or the daemon's drain thread.
WORKER_ENTRY_POINTS: dict[str, tuple[str, ...]] = {
    "repro.pipeline.session": ("execute_job",),
    "repro.pipeline.shard": ("run_shard_task",),
    "repro.service.daemon": ("OptimizationDaemon._drain_loop",),
}

#: (module, global name) -> why worker-reachable writes are safe.  These
#: overlap the arch allowlist on purpose: the arch rule audits *existence*
#: of shared state, this one audits *writes from workers*.
AUDITED_WRITES: dict[tuple[str, str], str] = {
    ("repro.rewrites.rulesets", "_COMPOSE_CACHE"):
        "memo insert of a pure function of the key; double-compute under a "
        "race yields an identical tuple, and pool workers own private copies",
    ("repro.designs.registry", "_ROOTS_CACHE"):
        "elaborated-IR memo keyed by design name; registry designs are "
        "immutable so double-parse yields an equal mapping, and each pool "
        "worker owns a private copy",
    ("repro.synth.cost", "_MODEL_MEMO"):
        "delay/area-model memo; the value is a pure function of the key, so "
        "a racy double-compute inserts an identical tuple (dict item "
        "assignment is atomic under the GIL for the daemon's thread)",
}


@dataclass(frozen=True)
class _Def:
    """One function/method definition and its module."""

    module: str
    qualname: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"


def _collect_defs(module: SourceModule) -> dict[str, _Def]:
    """qualname -> def for every function/method in a module."""
    defs: dict[str, _Def] = {}

    def rec(node: ast.AST, qual: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{qual}.{child.name}" if qual else child.name
                defs[name] = _Def(module.name, name, child)
                rec(child, name)
            elif isinstance(child, ast.ClassDef):
                rec(child, f"{qual}.{child.name}" if qual else child.name)
            else:
                rec(child, qual)

    rec(module.tree, "")
    return defs


def _imported_names(module: SourceModule, tree: SourceTree) -> dict[str, str]:
    """Local name -> module it refers to (module aliases and from-imports)."""
    out: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                deeper = f"{node.module}.{alias.name}"
                out[alias.asname or alias.name] = (
                    deeper if deeper in tree else node.module
                )
    return out


class _Index:
    """Cross-module def/import/global index the reachability walk reads."""

    def __init__(self, tree: SourceTree) -> None:
        self.tree = tree
        self.defs: dict[str, dict[str, _Def]] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self.globals: dict[str, dict[str, int]] = {}
        self.by_bare_name: dict[str, list[_Def]] = {}
        for module in tree:
            defs = _collect_defs(module)
            self.defs[module.name] = defs
            self.imports[module.name] = _imported_names(module, tree)
            self.globals[module.name] = module_mutable_globals(module)
            for d in defs.values():
                self.by_bare_name.setdefault(
                    d.qualname.rsplit(".", 1)[-1], []
                ).append(d)
        self.reachable_modules: dict[str, set[str]] = {
            m.name: self._module_closure(m.name) for m in tree
        }

    def _module_closure(self, start: str) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            module = self.tree.get(stack.pop())
            if module is None:
                continue
            for edge in import_edges(module, self.tree):
                target = edge.imported
                while target and target not in self.tree and "." in target:
                    target = target.rsplit(".", 1)[0]
                if target in self.tree and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen


def _callees(defn: _Def, index: _Index) -> list[_Def]:
    """Conservatively resolve every call inside one function."""
    out: list[_Def] = []
    local_defs = index.defs[defn.module]
    imports = index.imports[defn.module]
    reach = index.reachable_modules[defn.module]
    for node in ast.walk(defn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_defs:
                out.append(local_defs[name])
            elif name in imports:
                # `from mod import f` — find f in mod.
                target = imports[name]
                mod, bare = (
                    target.rsplit(".", 1) if "." in target else (target, name)
                )
                if target in index.defs and name in index.defs[target]:
                    out.append(index.defs[target][name])
                elif mod in index.defs and bare in index.defs[mod]:
                    out.append(index.defs[mod][bare])
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in imports:
                target = imports[func.value.id]
                if target in index.defs and func.attr in index.defs[target]:
                    out.append(index.defs[target][func.attr])
                    continue
            # Bare method call: over-approximate to every same-named def in
            # the modules this worker can even reach (class constructors
            # resolve the same way: `Saturate(...)` then `.run` is covered
            # by the method-name fan-out).
            for candidate in index.by_bare_name.get(func.attr, ()):
                if candidate.module in reach:
                    out.append(candidate)
    return out


def _global_writes(defn: _Def, index: _Index) -> list[tuple[str, str, int]]:
    """(module, global name, line) for each module-global mutation."""
    module_globals = index.globals.get(defn.module, {})
    imports = index.imports[defn.module]
    declared_global = {
        name
        for node in ast.walk(defn.node)
        if isinstance(node, ast.Global)
        for name in node.names
    }
    writes: list[tuple[str, str, int]] = []

    def classify(name_node: ast.expr) -> tuple[str, str] | None:
        """Resolve a mutation target to (module, global) or None."""
        if isinstance(name_node, ast.Name):
            if name_node.id in module_globals or name_node.id in declared_global:
                return (defn.module, name_node.id)
            return None
        if (
            isinstance(name_node, ast.Attribute)
            and isinstance(name_node.value, ast.Name)
            and name_node.value.id in imports
        ):
            target = imports[name_node.value.id]
            if name_node.attr in index.globals.get(target, {}):
                return (target, name_node.attr)
        return None

    _MUTATORS = {
        "append", "add", "update", "setdefault", "pop", "clear", "extend",
        "insert", "discard", "popitem", "remove", "__setitem__",
    }
    for node in ast.walk(defn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    hit = classify(target.value)
                    if hit:
                        writes.append((*hit, node.lineno))
                elif isinstance(target, ast.Name) and target.id in declared_global:
                    writes.append((defn.module, target.id, node.lineno))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                hit = classify(node.func.value)
                if hit:
                    writes.append((*hit, node.lineno))
    return writes


def check_concurrency(
    tree: SourceTree,
    entry_points: dict[str, tuple[str, ...]] | None = None,
) -> list[Finding]:
    """Flag worker-reachable writes to module-level mutable state."""
    entries = WORKER_ENTRY_POINTS if entry_points is None else entry_points
    index = _Index(tree)

    roots = []
    for module_name, qualnames in entries.items():
        defs = index.defs.get(module_name, {})
        for qualname in qualnames:
            if qualname in defs:
                roots.append(defs[qualname])

    reachable: dict[tuple[str, str], _Def] = {}
    stack = list(roots)
    while stack:
        defn = stack.pop()
        key = (defn.module, defn.qualname)
        if key in reachable:
            continue
        reachable[key] = defn
        stack.extend(_callees(defn, index))

    findings = []
    seen: set[tuple[str, str, str, str]] = set()
    for defn in reachable.values():
        module = index.tree.get(defn.module)
        for mod, name, line in _global_writes(defn, index):
            if (mod, name) in AUDITED_WRITES:
                continue
            key = (defn.module, defn.qualname, mod, name)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    "CC-SHARED",
                    f"{defn.module}:{defn.qualname}:{name}",
                    f"{defn.qualname} (reachable from a worker entry point) "
                    f"writes module-level state {mod}.{name} — audit it into "
                    "AUDITED_WRITES with a reason, guard it with a lock, or "
                    "move it into instance state",
                    module=defn.module,
                    path=module.path if module else "",
                    line=line,
                    detail={"target": f"{mod}.{name}"},
                )
            )
    return findings
