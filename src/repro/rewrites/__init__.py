"""The rewrite library of the paper's RTL optimizer.

Rule groups (see ``rulesets``):

* ``arith``      — word-level arithmetic and comparison algebra,
* ``shift``      — shift / truncation algebra used for bitwidth reduction,
* ``mux``        — mux algebra incl. eqs. (6)/(7) and analysis-based pruning,
* ``assume``     — Table I: ASSUME creation, propagation and simplification,
* ``condition``  — Table II: rewriting conditions into ``Constr`` form,
* ``range_rules``— dynamic rules justified by the interval analysis
  (identity-by-range, LZC narrowing as in Fig. 1, shift elision),
* ``casesplit``  — the case-split introduction of Section V.

Every declarative rule is built with :func:`~repro.rewrites.soundness.drule`,
which auto-inserts totality guards for variables the right-hand side drops —
keeping rules sound over the paper's ``Z' = Z ∪ {*}`` semantics.
"""

from repro.rewrites.rulesets import (
    RULESETS,
    all_rules,
    arith_rules,
    assume_rules,
    assume_ruleset,
    casesplit_rules,
    casesplit_ruleset,
    compose_rules,
    condition_rules,
    condition_ruleset,
    mux_rules,
    narrowing_ruleset,
    range_rules,
    ruleset,
    shift_rules,
    structural_ruleset,
)

__all__ = [
    "arith_rules",
    "shift_rules",
    "mux_rules",
    "assume_rules",
    "condition_rules",
    "range_rules",
    "casesplit_rules",
    "all_rules",
    "structural_ruleset",
    "assume_ruleset",
    "condition_ruleset",
    "narrowing_ruleset",
    "casesplit_ruleset",
    "RULESETS",
    "ruleset",
    "compose_rules",
]
