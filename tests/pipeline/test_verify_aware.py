"""The verify-aware allocator: a reserved wall tail for verification.

The open governor lever this closes: under one shared deadline, a
saturate-heavy run used to drain the whole pool before ``Verify`` started,
so every equivalence check degraded to ``method="timeout"`` — a
``Budget.bdd_nodes`` quota was dead capital with no wall time left to spend
it in.  Under ``budget_policy="verify-aware"`` the governor holds back a
tail slice of the wall from the search-side stages (``Saturate`` and the
anytime ``Extract`` race a *work* deadline) while ``Verify`` races the full
deadline.  Pinned with deterministic fake clocks: the same saturate-heavy
job times its verification out under ``adaptive`` and completes it under
``verify-aware``.
"""

from __future__ import annotations

import math

from repro.egraph import rewrite
from repro.ir import var
from repro.pipeline import (
    ALLOCATORS,
    Budget,
    Extract,
    Ingest,
    Pipeline,
    ResourceGovernor,
    Saturate,
    Verify,
    VerifyAwareSplit,
    allocator_for,
)
# Sibling-module import: pytest's prepend import mode puts this directory
# on sys.path (same pattern as test_governed_extract_verify.py).
from test_budget import FakeClock

GROWING_RULES = [
    rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
    rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
]


def _saturate_heavy_run(policy: str, clock: FakeClock, time_s: float):
    """A job whose saturation never converges, then a cheap verification.

    Six 1-bit inputs keep the equivalence check exhaustive (64 trials, one
    clock read each), so whether it completes is decided purely by how much
    of the wall window saturation was allowed to consume — while the
    six-term chain keeps associativity/commutativity churning well past the
    whole fake-clock window.
    """
    chain = var("x0", 1)
    for i in range(1, 6):
        chain = chain + var(f"x{i}", 1)
    return Pipeline(
        [
            Ingest(roots={"out": chain}),
            Saturate(
                GROWING_RULES,
                iter_limit=10**6,
                node_limit=10**9,
                time_limit=10**6,
            ),
            Extract(),
            Verify(strict=True),
        ]
    ).run(budget=Budget(time_s=time_s), budget_policy=policy, clock=clock)


class TestVerifyAwarePolicy:
    def test_registered_and_adaptive(self):
        allocator = allocator_for("verify-aware")
        assert isinstance(allocator, VerifyAwareSplit)
        assert allocator.adaptive
        assert 0.0 < allocator.verify_tail < 1.0
        assert "verify-aware" in ALLOCATORS

    def test_governor_reserves_a_work_deadline(self):
        clock = FakeClock(start=100.0)
        governor = ResourceGovernor(
            Budget(time_s=8.0), clock=clock, policy="verify-aware"
        )
        tail = allocator_for("verify-aware").verify_tail
        assert governor.deadline == 100.0 + 8.0
        assert governor.work_deadline == 100.0 + 8.0 * (1.0 - tail)
        # The search-side view carries the work deadline...
        assert governor.remaining().deadline == governor.work_deadline
        # ...but exhaustion is judged against the true deadline.
        clock.advance(8.0 * (1.0 - tail) + 0.001)
        assert not governor.exhausted()

    def test_other_policies_reserve_nothing(self):
        for policy in ("fair", "weighted", "adaptive"):
            governor = ResourceGovernor(
                Budget(time_s=8.0), clock=FakeClock(), policy=policy
            )
            assert governor.verify_tail == 0.0
            assert governor.work_deadline == governor.deadline

    def test_unlimited_budget_keeps_infinite_deadlines(self):
        governor = ResourceGovernor(
            Budget.unlimited(), clock=FakeClock(), policy="verify-aware"
        )
        assert math.isinf(governor.deadline)
        assert math.isinf(governor.work_deadline)
        assert governor.remaining().deadline is None


class TestSaturateHeavyDegradation:
    """The satellite contract, both directions."""

    def test_adaptive_policy_times_verification_out(self):
        ctx = _saturate_heavy_run("adaptive", FakeClock(tick=0.01), 20.0)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "timeout"
        assert verdict.equivalent is None

    def test_verify_aware_policy_completes_verification(self):
        clock = FakeClock(tick=0.01)
        ctx = _saturate_heavy_run("verify-aware", clock, 20.0)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "exhaustive"
        assert verdict.equivalent is True
        # Saturation really was saturate-heavy: it ran out of work window
        # rather than converging...
        assert ctx.report.stop_reason.value == "time limit"
        # ...and stopped at the *work* deadline, not the true deadline: its
        # ledgered wall stays within the reserved split (plus the runner's
        # documented one-application overshoot slack).
        governor = ctx.governor
        work_window = governor.work_deadline - governor.started
        saturate_spent = governor.ledger["saturate"]["spent"]["time_s"]
        assert saturate_spent <= work_window + 1.0
        # Verify started before the true deadline and charged real spend.
        assert governor.ledger["verify"]["spent"]["time_s"] > 0
