"""Synthesis substrate: delay/area models, gate-level netlists, STA.

Two layers reproduce the paper's two uses of "hardware cost":

1. **Extraction model** (:mod:`~repro.synth.models`, :mod:`~repro.synth.cost`)
   — Section IV-D's *theoretical* model: per-operator two-input-gate depth
   and gate count as a function of operand precision, combined into the
   delay-prioritized / area-tie-break (or weighted-sum) objective used to
   pull the best design out of the e-graph.

2. **Evaluation flow** (:mod:`~repro.synth.netlist`,
   :mod:`~repro.synth.lower`, :mod:`~repro.synth.sweep`) — a gate-level
   substitute for the commercial synthesis runs of Sections V/VI: IR designs
   are lowered to 2-input-gate netlists through selectable component
   architectures (ripple / carry-select / parallel-prefix adders, barrel
   shifters, LZC trees, ...), timed with topological STA, and swept over
   delay targets to regenerate area-delay curves (Figure 3) and
   min-delay/area tables (Table III).
"""

from repro.synth.models import area_model, delay_model
from repro.synth.cost import DelayArea, DelayAreaCost
from repro.synth.netlist import Gate, Netlist, Signal
from repro.synth.lower import LoweringError, lower_to_netlist
from repro.synth.sweep import SynthesisPoint, area_delay_sweep, min_delay_point
from repro.synth.treecost import dag_cost, egraph_model_cost, model_cost

__all__ = [
    "delay_model",
    "area_model",
    "DelayArea",
    "DelayAreaCost",
    "Gate",
    "Netlist",
    "Signal",
    "lower_to_netlist",
    "LoweringError",
    "SynthesisPoint",
    "area_delay_sweep",
    "min_delay_point",
    "model_cost",
    "dag_cost",
    "egraph_model_cost",
]
