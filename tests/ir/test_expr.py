"""Expression tree construction, sugar, traversal."""

import pytest

from repro.ir import (
    ADD, SUB, VAR,
    assume, const, gt, lzc, mux, trunc, var,
)
from repro.ir.expr import Expr, pretty, subterms


class TestConstruction:
    def test_var(self):
        x = var("x", 8)
        assert x.is_var and x.var_name == "x" and x.var_width == 8

    def test_var_width_positive(self):
        with pytest.raises(ValueError):
            var("x", 0)

    def test_const(self):
        assert const(5).value == 5
        assert const(-3).value == -3

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Expr(ADD, (), (const(1),))

    def test_attrs_enforced(self):
        with pytest.raises(ValueError):
            Expr(VAR, ("x",))  # missing width

    def test_assume_needs_constraint(self):
        with pytest.raises(ValueError):
            assume(var("x", 4))


class TestSugar:
    def test_operators_build_nodes(self):
        x, y = var("x", 4), var("y", 4)
        assert (x + y).op is ADD
        assert (x - y).op is SUB
        assert (x + 1).children[1].value == 1
        assert (1 + x).children[0].value == 1
        assert (-x).op.name == "NEG"
        assert (x << 2).op.name == "SHL"
        assert (x & y).op.name == "AND"

    def test_structural_equality_and_hash(self):
        x = var("x", 4)
        assert x + 1 == x + 1
        assert hash(x + 1) == hash(x + 1)
        assert x + 1 != x + 2

    def test_mux_lifts_ints(self):
        m = mux(1, 2, 3)
        assert all(c.is_const for c in m.children)


class TestHashing:
    def test_hash_is_structural_and_cached(self):
        a = mux(gt(var("x", 8), 3), var("x", 8) + 1, const(0))
        b = mux(gt(var("x", 8), 3), var("x", 8) + 1, const(0))
        assert a == b and hash(a) == hash(b)
        assert hash(a) == hash(a)  # second call served from the cache

    def test_pickle_resets_cached_hash(self):
        """The cached hash is process-local (str hashing is randomized):
        unpickled trees must recompute it, not trust the pickled value."""
        import pickle

        original = mux(gt(var("x", 8), 3), var("x", 8) + 1, const(0))
        hash(original)  # populate the cache before pickling
        clone = pickle.loads(pickle.dumps(original))
        assert clone._hash == -1  # comes back uncached
        assert clone == original and hash(clone) == hash(original)
        assert {original: 1}[clone] == 1  # dict lookup across the pair works


class TestTraversal:
    def test_walk_covers_all(self):
        x, y = var("x", 4), var("y", 4)
        e = mux(gt(x, y), x - y, y - x)
        names = {n.var_name for n in e.walk() if n.is_var}
        assert names == {"x", "y"}

    def test_count_nodes_is_dag_size(self):
        x = var("x", 4)
        shared = x + 1
        e = shared * shared
        assert e.count_nodes() == 4  # x, 1, x+1, mul

    def test_depth(self):
        x = var("x", 4)
        assert x.depth() == 1
        assert (x + 1).depth() == 2
        assert ((x + 1) + 1).depth() == 3

    def test_subterms_multi_root(self):
        x = var("x", 4)
        assert len(subterms([x + 1, x + 2])) == 5


class TestPretty:
    def test_infix(self):
        x = var("x", 4)
        assert pretty(x + 1) == "(x + 1)"

    def test_mux(self):
        assert "?" in pretty(mux(var("c", 1), 1, 0))

    def test_assume(self):
        text = pretty(assume(var("x", 4), gt(var("x", 4), 0)))
        assert text.startswith("assume(")

    def test_attrs_shown(self):
        assert pretty(lzc(var("x", 4), 4)) == "lzc<4>(x)"
        assert pretty(trunc(var("x", 4), 2)) == "trunc<2>(x)"
