"""Rule-construction helpers that keep rewrites sound over ``Z' = Z ∪ {*}``.

The e-graph's congruence is *pointwise equality including ``*``* (eq. (2) of
the paper works only because of this).  A classical identity like
``a - a -> 0`` is therefore unsound when ``a`` may evaluate to ``*``: the
left side is ``*`` wherever ``a`` is, the right side never.  The fix is a
*totality guard*: the rule may fire only when every variable the RHS drops is
provably total.  :func:`drule` derives those guards automatically from the
pattern variables, so individual rules cannot forget them.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis import range_of, total_of
from repro.egraph.egraph import EGraph
from repro.egraph.pattern import as_pattern, pattern_vars
from repro.egraph.rewrite import Rewrite, rewrite
from repro.intervals import IntervalSet


def drule(
    name: str,
    lhs: str,
    rhs: str,
    *conditions,
    once: bool = False,
    unguarded: tuple[str, ...] = (),
) -> Rewrite:
    """A declarative datapath rule with automatic totality guards.

    ``unguarded`` exempts variables that are dropped from a *non-strict*
    position (a mux branch is never evaluated when not selected, so dropping
    it needs no totality proof).
    """
    lhs_pat, rhs_pat = as_pattern(lhs), as_pattern(rhs)
    dropped = sorted(pattern_vars(lhs_pat) - pattern_vars(rhs_pat) - set(unguarded))
    guards = tuple(conditions)
    if dropped:
        guards = (_all_total(dropped),) + guards
    return rewrite(name, lhs_pat, rhs_pat, *guards, once=once)


def _all_total(names: list[str]) -> Callable[[EGraph, dict], bool]:
    def check(egraph: EGraph, env: dict) -> bool:
        return all(total_of(egraph, env[n]) for n in names if n in env)

    return check


# ------------------------------------------------------------------ conditions
def nonneg(*names: str) -> Callable[[EGraph, dict], bool]:
    """Condition: each named class has a provably non-negative range."""

    def check(egraph: EGraph, env: dict) -> bool:
        for name in names:
            low = range_of(egraph, env[name]).min()
            if low is None or low < 0:
                return False
        return True

    return check


def boolean(*names: str) -> Callable[[EGraph, dict], bool]:
    """Condition: each named class has range within {0, 1}."""
    zero_one = IntervalSet.of(0, 1)

    def check(egraph: EGraph, env: dict) -> bool:
        return all(range_of(egraph, env[n]).issubset(zero_one) for n in names)

    return check


def total(*names: str) -> Callable[[EGraph, dict], bool]:
    """Condition: each named class is provably total (never ``*``)."""

    def check(egraph: EGraph, env: dict) -> bool:
        return all(total_of(egraph, env[n]) for n in names)

    return check


def in_range(name: str, lo: int | None, hi: int | None) -> Callable[[EGraph, dict], bool]:
    """Condition: the named class's range is within ``[lo, hi]``."""
    box = IntervalSet.of(lo, hi)

    def check(egraph: EGraph, env: dict) -> bool:
        return range_of(egraph, env[name]).issubset(box)

    return check


def range_le(small: str, large: str) -> Callable[[EGraph, dict], bool]:
    """Condition: ``small``'s range lies entirely at or below ``large``'s."""

    def check(egraph: EGraph, env: dict) -> bool:
        hi = range_of(egraph, env[small]).max()
        lo = range_of(egraph, env[large]).min()
        return hi is not None and lo is not None and hi <= lo

    return check
