"""Table I: creation, propagation and simplification of ASSUME nodes.

==============================================  =================================================
Left-hand side                                  Right-hand side
==============================================  =================================================
``a ? b : c``                                   ``a ? ASSUME(b, a) : ASSUME(c, ~a)``
``ASSUME((a op b), c)``                         ``ASSUME(a, c) op ASSUME(b, c)``
``ASSUME(ASSUME(a, b), c)``                     ``ASSUME(a, b ∪ c)``
``ASSUME((a ? b : c), a)``                      ``ASSUME(b, a)``
``ASSUME((a ? b : c), ~a)``                     ``ASSUME(c, ~a)``
==============================================  =================================================

All five are dynamic rules: ASSUME is variadic (its constraint tail is a
set), and the second rule quantifies over *any* strict operator, neither of
which the declarative pattern language needs to support.

One extra rule, ``assume-true-elim``, discharges an ASSUME whose constraints
the analysis proves always hold — the degenerate case where a sub-domain
equivalence is a whole-domain one.
"""

from __future__ import annotations

from repro.analysis import range_of, total_of
from repro.egraph.egraph import EGraph
from repro.egraph.enode import ENode
from repro.egraph.rewrite import Rewrite, dynamic
from repro.ir import ops

#: Strict operators ASSUME distributes over (rule 2 of Table I).  MUX is
#: excluded (it has dedicated rules 4/5); VAR/CONST/ASSUME are not ops.
_DISTRIBUTES = (
    ops.ADD, ops.SUB, ops.MUL, ops.NEG, ops.SHL, ops.SHR,
    ops.AND, ops.OR, ops.XOR, ops.NOT, ops.LNOT,
    ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE,
    ops.LZC, ops.TRUNC, ops.SLICE, ops.CONCAT, ops.ABS, ops.MIN, ops.MAX,
)


def assume_rules() -> list[Rewrite]:
    """The full Table I rule set plus ``assume-true-elim``."""
    return [
        mux_branch_assume_rule(),
        assume_distribute_rule(),
        assume_merge_nested_rule(),
        assume_mux_prune_rule(),
        assume_true_elim_rule(),
    ]


def mux_branch_assume_rule() -> Rewrite:
    """Row 1: wrap each mux branch in an ASSUME of its branch condition."""

    def _already_assumed(egraph: EGraph, branch: int, cond: int) -> bool:
        """Is this branch already an ASSUME carrying this condition?"""
        for node in egraph[branch].nodes:
            if node.op is ops.ASSUME and cond in (
                egraph.find(c) for c in node.children[1:]
            ):
                return True
        return False

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.MUX, ()):
            cond, if_true, if_false = (egraph.find(c) for c in enode.children)
            # Idempotence: never wrap a branch that is already assumed under
            # this condition (prevents ASSUME(ASSUME(...)) towers).
            if _already_assumed(egraph, if_true, cond):
                continue
            yield egraph.find(class_id), {"c": cond, "t": if_true, "f": if_false}

    def apply(egraph: EGraph, env: dict, class_id: int):
        cond = egraph.find(env["c"])
        not_cond = egraph.add_node(ops.LNOT, (), (cond,))
        assumed_t = egraph.add_node(ops.ASSUME, (), (egraph.find(env["t"]), cond))
        assumed_f = egraph.add_node(ops.ASSUME, (), (egraph.find(env["f"]), not_cond))
        return egraph.add_node(ops.MUX, (), (cond, assumed_t, assumed_f))

    return dynamic("mux-branch-assume", search, apply)


def assume_distribute_rule() -> Rewrite:
    """Row 2: push an ASSUME through any strict operator toward the inputs."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ASSUME, ()):
            guarded = egraph.find(enode.children[0])
            constraints = tuple(egraph.find(c) for c in enode.children[1:])
            for inner in egraph[guarded].nodes:
                if inner.op in _DISTRIBUTES and inner.children:
                    yield egraph.find(class_id), {
                        "inner": inner,
                        "constraints": constraints,
                    }

    def apply(egraph: EGraph, env: dict, class_id: int):
        inner: ENode = env["inner"]
        constraints: tuple[int, ...] = env["constraints"]
        assumed_kids = tuple(
            egraph.add_node(ops.ASSUME, (), (egraph.find(k),) + constraints)
            for k in inner.children
        )
        return egraph.add_node(inner.op, inner.attrs, assumed_kids)

    return dynamic("assume-distribute", search, apply)


def assume_merge_nested_rule() -> Rewrite:
    """Row 3: collapse nested ASSUMEs, uniting their constraint sets."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ASSUME, ()):
            guarded = egraph.find(enode.children[0])
            outer = tuple(egraph.find(c) for c in enode.children[1:])
            for inner in egraph[guarded].nodes:
                if inner.op is ops.ASSUME:
                    yield egraph.find(class_id), {"inner": inner, "outer": outer}

    def apply(egraph: EGraph, env: dict, class_id: int):
        inner: ENode = env["inner"]
        merged = env["outer"] + tuple(inner.children[1:])
        return egraph.add_node(
            ops.ASSUME, (), (egraph.find(inner.children[0]),) + merged
        )

    return dynamic("assume-merge-nested", search, apply)


def assume_mux_prune_rule() -> Rewrite:
    """Rows 4/5: under its own branch condition, a mux is just that branch."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ASSUME, ()):
            guarded = egraph.find(enode.children[0])
            constraints = tuple(egraph.find(c) for c in enode.children[1:])
            constraint_set = set(constraints)
            for inner in egraph[guarded].nodes:
                if inner.op is not ops.MUX:
                    continue
                cond, if_true, if_false = (egraph.find(c) for c in inner.children)
                if cond in constraint_set:
                    yield egraph.find(class_id), {
                        "keep": if_true, "constraints": constraints,
                    }
                    continue
                # Is some constraint class the logical negation of cond?
                negated = egraph.lookup(ENode(ops.LNOT, (), (cond,)))
                if negated is not None and egraph.find(negated) in constraint_set:
                    yield egraph.find(class_id), {
                        "keep": if_false, "constraints": constraints,
                    }

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.add_node(
            ops.ASSUME, (), (egraph.find(env["keep"]),) + env["constraints"]
        )

    return dynamic("assume-mux-prune", search, apply)


def assume_true_elim_rule() -> Rewrite:
    """``ASSUME(x, C) -> x`` when every constraint provably always holds."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.ASSUME, ()):
            constraints = [egraph.find(c) for c in enode.children[1:]]
            if all(
                total_of(egraph, c) and range_of(egraph, c).truthiness() is True
                for c in constraints
            ):
                yield egraph.find(class_id), {"x": egraph.find(enode.children[0])}

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.find(env["x"])

    return dynamic("assume-true-elim", search, apply)
