"""Equivalence checking (the Synopsys DPV substitute).

The paper proves each behavioural/optimized RTL pair equivalent with a
commercial formal tool.  Here:

* :mod:`~repro.verify.bdd` — a reduced ordered binary decision diagram
  engine built from scratch (unique table, ITE with memoization, node
  budget);
* :mod:`~repro.verify.equiv` — the checking strategy: exhaustive simulation
  when the input space is small, otherwise a BDD proof over a miter netlist
  (``domain_constraint AND (a != b)`` must be the zero BDD), falling back to
  randomized simulation with a documented trial count when the BDD budget
  blows up.

Input domain constraints (the paper's "input constraints", e.g. Figure 1's
``x >= 128``) restrict the quantification domain of the proof.

Checks are *interruptible*: :func:`~repro.verify.equiv.check_equivalent`
takes an absolute ``deadline`` (on an injectable clock) and the BDD engine
a node quota — a blowing-up proof stops and degrades to randomized trials,
and a check cut short before any confidence was reached reports
``method="timeout"`` with ``equivalent=None``, which is how a
budget-governed ``Verify`` stage stays inside its pool.
"""

from repro.verify.bdd import BDD, BddDeadlineError, BddLimitError
from repro.verify.equiv import EquivalenceResult, check_equivalent, prove_equivalent

__all__ = [
    "BDD",
    "BddLimitError",
    "BddDeadlineError",
    "check_equivalent",
    "prove_equivalent",
    "EquivalenceResult",
]
