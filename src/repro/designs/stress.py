"""A wide multi-output stress design (the sharding workload).

Eight independent-ish lanes, each a constraint-bearing datapath combining
the repo's known optimization mechanisms — an LZC ladder narrowed by an
input constraint (Figure 1), a dead clamp provable only through range
analysis (the interpolation kernel's mechanism), and a deep linear
accumulation chain that associativity/commutativity rebalance (and whose
rewrite universe is *bounded*, so a lone cone genuinely saturates).  Odd
lanes fold in the previous lane's sum, so adjacent cones share operator
subterms (exercising clustered shard planning) while distant lanes share
nothing.

The point of this design is to be *too wide to saturate monolithically*:
each cone saturates at a few thousand e-nodes, so eight cones in one
shared e-graph blow the registry node limit while mid iterations are still
in flight — whereas a per-output cone shard gets the whole budget to
itself and runs to saturation.  The parity harness
(``tests/pipeline/test_shard_parity.py``) pins this down: the monolithic
run stops on the node limit, the sharded run completes, and every sharded
result stays BDD-equivalent to its behavioural cone.
"""

from __future__ import annotations

from repro.intervals import IntervalSet

LANES = 8


def _lzc_ladder(index: int) -> str:
    arms = []
    for k in range(9):
        pattern = "0" * k + "1" + "?" * (8 - k)
        arms.append(f"      9'b{pattern}: lz{index} = {k};")
    arms.append(f"      default: lz{index} = 9;")
    return (
        "  always @(*) begin\n"
        f"    casez (sum{index})\n" + "\n".join(arms) + "\n"
        "    endcase\n"
        "  end"
    )


def stress_wide_verilog(lanes: int = LANES) -> str:
    """Generate the ``lanes``-output stress module."""
    ports = []
    for k in range(lanes):
        ports += [f"  input [7:0] x{k}", f"  input [7:0] y{k}", f"  input [3:0] w{k}"]
    ports += [f"  output [14:0] out{k}" for k in range(lanes)]
    body = []
    for k in range(lanes):
        body.append(f"  wire [8:0] sum{k} = x{k} + y{k};")
        body.append(f"  reg [3:0] lz{k};")
        body.append(_lzc_ladder(k))
        # Odd lanes mix in the previous lane's sum: a real shared
        # subexpression between adjacent cones, invisible to distant ones.
        mixed = f"sum{k - 1}" if k % 2 == 1 else f"sum{k}"
        # A left-leaning 6-term accumulation chain: assoc/comm rebalance it
        # to a tree (delay payoff), and — multiplication-free — its rewrite
        # universe is bounded, so the cone alone saturates.
        chain = f"(((({mixed} + w{k}) + x{k}) + y{k}) + sum{k})"
        body.append(f"  wire [11:0] acc{k} = {chain} + w{k};")
        # Dead clamp: the reachable maximum of acc is well under 3000, so
        # range analysis proves the mux condition constant-false.
        body.append(
            f"  wire [11:0] clip{k} = (acc{k} > 12'd3000) ? 12'd3000 : acc{k};"
        )
        body.append(f"  assign out{k} = clip{k} + lz{k};")
    return (
        "module stress_wide (\n"
        + ",\n".join(ports)
        + "\n);\n"
        + "\n".join(body)
        + "\nendmodule\n"
    )


def stress_wide_input_ranges(lanes: int = LANES) -> dict[str, IntervalSet]:
    """Figure 1's ``x >= 128`` constraint, per lane (narrows every LZC)."""
    return {f"x{k}": IntervalSet.of(128, 255) for k in range(lanes)}
