"""Ruleset composition: registry lookups and the composition memo."""

from __future__ import annotations

import pytest

from repro.rewrites.rulesets import (
    RULESETS,
    all_rules,
    compose_rules,
    ruleset,
)


class TestRuleset:
    def test_every_registered_name_resolves(self):
        for name in RULESETS:
            rules = ruleset(name)
            assert rules, name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown ruleset"):
            ruleset("nope")


class TestComposeMemo:
    """The daemon submits many jobs; rules must not be rebuilt per job."""

    def test_same_parameters_share_rule_objects(self):
        first = compose_rules()
        second = compose_rules()
        assert first is not second  # fresh list per call...
        assert len(first) == len(second)
        for a, b in zip(first, second, strict=True):
            assert a is b  # ...over shared stateless rule objects

    def test_caller_mutation_does_not_poison_the_cache(self):
        mutated = compose_rules()
        mutated.clear()
        assert compose_rules()

    def test_distinct_parameters_compose_distinct_lists(self):
        full = compose_rules()
        lean = compose_rules(split_threshold=None, enable_assume=False)
        assert len(lean) < len(full)
        names = {rule.name for rule in lean}
        assert not any(name.startswith("assume-intro") for name in names)

    def test_all_rules_is_the_default_composition(self):
        assert [r.name for r in all_rules()] == [
            r.name for r in compose_rules()
        ]
