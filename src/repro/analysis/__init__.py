"""Abstract interpretation over the e-graph (Sections III-B and IV-A).

:class:`DatapathAnalysis` attaches an :class:`~repro.intervals.IntervalSet`
and a totality flag to every e-class:

* the interval set over-approximates every non-``*`` evaluation of the class
  (the paper's ``A[[e]]``);
* ``total`` records that the class provably never evaluates to ``*`` — which
  gates constant folding (folding a *partial* class to a bare constant would
  erase its failure domain).

The ``ASSUME`` transfer function implements eqs. (3)–(4): the guarded class's
abstraction is intersected with an interval decoded from any recognizable
``Constr`` member of each constraint e-class.
"""

from repro.analysis.absval import AbsVal
from repro.analysis.constr import constraint_refinement, decode_constr
from repro.analysis.datapath import (
    ANALYSIS_NAME,
    DatapathAnalysis,
    range_of,
    range_width,
    total_of,
    width_of,
)
from repro.analysis.sharding import (
    ConeShard,
    ShardPlan,
    cone_shard,
    plan_shards,
    should_shard,
)
from repro.analysis.transfer import iset_transfer
from repro.analysis.tree_ranges import expr_ranges, expr_totals, expr_width

__all__ = [
    "ConeShard",
    "ShardPlan",
    "cone_shard",
    "plan_shards",
    "should_shard",
    "AbsVal",
    "DatapathAnalysis",
    "ANALYSIS_NAME",
    "range_of",
    "range_width",
    "total_of",
    "width_of",
    "decode_constr",
    "constraint_refinement",
    "iset_transfer",
    "expr_ranges",
    "expr_totals",
    "expr_width",
]
