"""Graphviz export of an e-graph (the visualization used in Figure 1).

Each e-class renders as a cluster of its e-nodes; edges run from e-nodes to
child classes.  When the datapath analysis is attached, every cluster is
labelled with its interval abstraction, mirroring how the paper draws
interval-annotated e-graphs.

Rendering goes through the read-only :class:`~repro.egraph.core.GraphSnapshot`
interface, so the same function accepts the :class:`EGraph` façade, a bare
:class:`~repro.egraph.core.CoreGraph`, or a snapshot taken earlier — all
three produce byte-identical DOT for the same graph state.
"""

from __future__ import annotations

from repro.analysis.datapath import ANALYSIS_NAME
from repro.egraph.core import GraphSnapshot
from repro.ir import ops


def _node_label(enode) -> str:
    if enode.op is ops.VAR:
        return f"{enode.attrs[0]}:{enode.attrs[1]}"
    if enode.op is ops.CONST:
        return str(enode.attrs[0])
    if enode.op.symbol:
        return enode.op.symbol
    base = enode.op.name.lower()
    if enode.attrs:
        base += "<" + ",".join(map(str, enode.attrs)) + ">"
    return base


def to_dot(egraph, max_classes: int = 200) -> str:
    """Render an e-graph (façade, core, or snapshot) as a DOT digraph."""
    snap = egraph if isinstance(egraph, GraphSnapshot) else egraph.snapshot()
    find = snap.find
    lines = [
        "digraph egraph {",
        "  compound=true; rankdir=BT;",
        "  node [shape=box, fontsize=10];",
    ]
    classes = sorted(snap.classes, key=lambda c: c.id)[:max_classes]
    for eclass in classes:
        label = f"c{eclass.id}"
        data = eclass.data.get(ANALYSIS_NAME)
        if data is not None:
            label += f"  {data.iset}"
        lines.append(f'  subgraph cluster_{eclass.id} {{ label="{label}";')
        for index, enode in enumerate(sorted(eclass.nodes, key=repr)):
            lines.append(
                f'    n{eclass.id}_{index} [label="{_node_label(enode)}"];'
            )
        lines.append("  }")
    shown = {c.id for c in classes}
    for eclass in classes:
        for index, enode in enumerate(sorted(eclass.nodes, key=repr)):
            for child in enode.children:
                child_root = find(child)
                if child_root not in shown:
                    continue
                target = f"n{child_root}_0"
                lines.append(
                    f"  n{eclass.id}_{index} -> {target} "
                    f"[lhead=cluster_{child_root}];"
                )
    lines.append("}")
    return "\n".join(lines)
