"""Pattern parsing and e-matching."""

import pytest

from repro.egraph import EGraph
from repro.egraph.pattern import (
    AttrVar,
    PatternNode,
    PatternVar,
    ematch,
    instantiate,
    parse_pattern,
    pattern_vars,
)
from repro.ir import ops, var


class TestParser:
    def test_simple(self):
        p = parse_pattern("(+ ?a ?b)")
        assert p.op is ops.ADD
        assert p.children == (PatternVar("a"), PatternVar("b"))

    def test_literal_becomes_const(self):
        p = parse_pattern("(* ?a 2)")
        assert p.children[1] == PatternNode(ops.CONST, (2,), ())

    def test_attr_binding(self):
        p = parse_pattern("(lzc ?w ?a)")
        assert p.attrs == (AttrVar("w"),)

    def test_concrete_attr(self):
        p = parse_pattern("(trunc 8 ?a)")
        assert p.attrs == (8,)

    def test_nested(self):
        p = parse_pattern("(>> (<< ?a ?b) ?b)")
        assert p.children[0].op is ops.SHL

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            parse_pattern("(+ ?a)")

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            parse_pattern("(frob ?a)")

    def test_pattern_vars(self):
        p = parse_pattern("(mux ?c (lzc ?w ?a) ?a)")
        assert pattern_vars(p) == {"c", "w", "a"}


class TestMatching:
    def test_basic_match(self):
        g = EGraph()
        x = var("x", 4)
        root = g.add_expr(x + 1)
        found = ematch(g, parse_pattern("(+ ?a ?b)"))
        assert len(found) == 1
        cid, env = found[0]
        assert cid == g.find(root)
        assert g.class_const(env["b"]) == 1

    def test_const_literal_filters(self):
        g = EGraph()
        x = var("x", 4)
        g.add_expr(x * 2)
        g.add_expr(x * 3)
        found = ematch(g, parse_pattern("(* ?a 2)"))
        assert len(found) == 1

    def test_repeated_var_requires_same_class(self):
        g = EGraph()
        x, y = var("x", 4), var("y", 4)
        g.add_expr(x - x)
        g.add_expr(x - y)
        found = ematch(g, parse_pattern("(- ?a ?a)"))
        assert len(found) == 1

    def test_repeated_var_matches_after_union(self):
        g = EGraph()
        x, y = var("x", 4), var("y", 4)
        root = g.add_expr(x - y)
        g.union(g.add_expr(x), g.add_expr(y))
        g.rebuild()
        found = ematch(g, parse_pattern("(- ?a ?a)"))
        assert [c for c, _ in found] == [g.find(root)]

    def test_match_through_class_members(self):
        """Patterns see every e-node of a class, not one representative."""
        g = EGraph()
        x = var("x", 4)
        root = g.add_expr(x + 1)
        g.union(root, g.add_expr(x - 3))  # pretend they are equal
        g.rebuild()
        adds = ematch(g, parse_pattern("(+ ?a ?b)"))
        subs = ematch(g, parse_pattern("(- ?a ?b)"))
        assert {c for c, _ in adds} == {c for c, _ in subs} == {g.find(root)}

    def test_attr_var_binds(self):
        g = EGraph()
        x = var("x", 4)
        from repro.ir.expr import lzc

        g.add_expr(lzc(x, 4))
        found = ematch(g, parse_pattern("(lzc ?w ?a)"))
        assert found[0][1]["w"] == 4

    def test_match_limit(self):
        g = EGraph()
        for i in range(20):
            g.add_expr(var(f"x{i}", 4) + i)
        found = ematch(g, parse_pattern("(+ ?a ?b)"), limit=5)
        assert len(found) == 5


class TestInstantiate:
    def test_builds_rhs(self):
        g = EGraph()
        x = var("x", 4)
        g.add_expr(x * 2)
        found = ematch(g, parse_pattern("(* ?a 2)"))
        _, env = found[0]
        new = instantiate(g, parse_pattern("(<< ?a 1)"), env)
        assert g.any_expr(new) == (x << 1)

    def test_attr_var_instantiation(self):
        from repro.ir.expr import lzc

        g = EGraph()
        x = var("x", 4)
        g.add_expr(lzc(x, 4))
        _, env = ematch(g, parse_pattern("(lzc ?w ?a)"))[0]
        new = instantiate(g, parse_pattern("(trunc ?w ?a)"), env)
        assert g.any_expr(new).attrs == (4,)
