"""Curated rule sets for the optimizer's phases (see DESIGN.md).

The paper runs "a set of parameterized and generalized constraint-aware
rewrites at the word level" for a number of iterations.  We group the rules
so the driver (:mod:`repro.opt`) can schedule them the way Section V
describes: split & assume first, then constraint exploitation, then
narrowing.
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite
from repro.rewrites.arith import arith_rules
from repro.rewrites.assume import assume_rules
from repro.rewrites.casesplit import casesplit_rules
from repro.rewrites.condition import condition_rules
from repro.rewrites.mux import mux_cond_const_rule, mux_pull_rule, mux_rules
from repro.rewrites.range_rules import range_rules
from repro.rewrites.shift import shift_rules

__all__ = [
    "arith_rules",
    "shift_rules",
    "mux_rules",
    "assume_rules",
    "condition_rules",
    "range_rules",
    "casesplit_rules",
    "all_rules",
]


def all_rules(split_threshold: int | None = 1) -> list[Rewrite]:
    """Everything, for single-phase runs on small designs.

    ``split_threshold=None`` omits the case-split rule (ablation hook).
    """
    rules: list[Rewrite] = []
    rules += arith_rules()
    rules += shift_rules()
    rules += mux_rules()
    rules += [mux_pull_rule(), mux_cond_const_rule()]
    rules += assume_rules()
    rules += condition_rules()
    rules += range_rules()
    if split_threshold is not None:
        rules += casesplit_rules(split_threshold)
    return rules
