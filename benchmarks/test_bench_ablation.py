"""Ablations for the paper's two mechanism claims (Sections IV/VI, E7/E8).

1. *Union-of-intervals beats single-interval (hull) analysis*: the
   interpolation kernel's sentinel remap sits in the gap between two paths'
   ranges; the union abstraction proves it dead, the hull cannot
   ("naive interval arithmetic would not suffice", Section VI).

2. *Constraint-awareness matters*: disabling the ASSUME machinery (Table I)
   or condition rewriting (Table II) forfeits the refinements — measured on
   float_to_unorm, whose shifter narrowing needs the ``e < 15`` branch
   knowledge.
"""

from __future__ import annotations

import pytest

from repro import DatapathOptimizer, OptimizerConfig
from repro.analysis import expr_ranges
from repro.designs import DESIGNS
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.rtl import module_to_ir
from repro.synth import min_delay_point

pytestmark = pytest.mark.slow


def _optimize(design, **overrides):
    config = OptimizerConfig(
        iter_limit=design.iterations, node_limit=design.node_limit,
        verify=False, **overrides,
    )
    tool = DatapathOptimizer(design.input_ranges, config)
    return tool.optimize_verilog(design.verilog).outputs[design.output]


def test_union_vs_hull_on_interpolation(benchmark):
    """The gap-sentinel mux is dead under unions, alive under the hull."""
    design = DESIGNS["interpolation"]
    root = module_to_ir(design.verilog)[design.output]
    ranges = benchmark.pedantic(
        expr_ranges, args=(root,), kwargs={"input_ranges": design.input_ranges},
        iterations=1, rounds=1,
    )
    # Locate the sentinel comparison blend == 300 (the literal may be
    # wrapped in elaboration truncs, so match by range).
    sentinel = [
        n for n in root.walk()
        if n.op is ops.EQ
        and any(ranges[c].as_point() == 300 for c in n.children)
    ]
    assert sentinel, "interpolation kernel lost its sentinel compare"
    blend = next(
        c for c in sentinel[0].children if ranges[c].as_point() != 300
    )
    blend_range = ranges[blend]
    # Union abstraction: the sentinel is provably never hit...
    assert blend_range.cmp_eq(IntervalSet.point(300)).as_point() == 0
    # ...but the hull of the same range cannot prove it.
    assert blend_range.hull().cmp_eq(IntervalSet.point(300)).as_point() is None
    print(f"\nblend range {blend_range} (hull {blend_range.hull()})")


def test_interpolation_dead_code_eliminated(benchmark):
    """End to end, the optimizer removes both the sentinel mux and the
    unreachable clamp (Section VI's dead code elimination)."""
    design = DESIGNS["interpolation"]
    result = benchmark.pedantic(_optimize, args=(design,), iterations=1, rounds=1)
    consts = {
        n.value for n in result.optimized.walk() if n.is_const
    }
    assert 300 not in consts, "sentinel remap survived optimization"
    assert 1000 not in consts, "unreachable clamp survived optimization"


@pytest.mark.parametrize("switch", ["enable_assume", "enable_condition_rewriting"])
def test_constraint_awareness_ablation(benchmark, switch):
    """Disabling Table I or Table II must not *improve* results, and the
    full tool must beat the no-ASSUME variant on float_to_unorm."""
    design = DESIGNS["float_to_unorm"]
    full = _optimize(design)
    ablated = benchmark.pedantic(
        _optimize, args=(design,), kwargs={switch: False}, iterations=1, rounds=1
    )
    full_point = min_delay_point(full.optimized, design.input_ranges)
    ablated_point = min_delay_point(ablated.optimized, design.input_ranges)
    print(
        f"\n{switch}=False: delay {ablated_point.delay:.1f} area "
        f"{ablated_point.area:.1f}  (full tool: {full_point.delay:.1f}/"
        f"{full_point.area:.1f})"
    )
    assert full_point.delay <= ablated_point.delay * 1.10
