"""Table III: logic-synthesis results for the four test cases.

Paper (TSMC 7nm, Fusion Compiler, minimum achievable delay target):

    Test Case        Behavioural        Optimized
                     ns      um^2       ns            um^2
    FP Sub           0.285   102.0      0.190 (-33%)  60.4 (-41%)
    float_to_unorm   0.055   17.6       0.056 ( +2%)  13.6 (-23%)
    interpolation    0.245   433.0      0.254 ( +3%)  353.0 (-18%)
    unorm_to_float   0.039   13.4       0.039 ( +0%)  7.0  (-48%)

This bench regenerates the same rows with the substitute flow (unit-delay
gate netlists, min-delay architecture selection).  The reproduction target
is the *shape*: optimized never slower than a few percent, with double-digit
area savings; FP Sub shows the largest total gain.
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_design, table_row
from repro.designs import DESIGNS

pytestmark = pytest.mark.slow

CASES = ["fp_sub", "float_to_unorm", "interpolation", "unorm_to_float"]

_RESULTS: dict = {}


def _run(name: str):
    if name not in _RESULTS:
        _RESULTS[name] = run_design(DESIGNS[name])
    return _RESULTS[name]


@pytest.mark.parametrize("name", CASES)
def test_table3_row(name, benchmark):
    """Each row: optimization runs, is equivalent, and does not regress.

    The paper's rows show -18..-48% area at -33..+3% delay on a commercial
    flow.  Our substitute flow reproduces the *direction* — the optimized
    implementation is never meaningfully worse on either axis, and improves
    at least one — with magnitudes recorded in EXPERIMENTS.md.
    """
    run = benchmark.pedantic(_run, args=(name,), iterations=1, rounds=1)
    print("\n" + table_row(run))
    assert run.equivalence.ok
    b, o = run.behavioural_point, run.optimized_point
    assert o.delay <= b.delay * 1.12, "netlist delay regressed beyond tolerance"
    assert o.area <= b.area * 1.25, "netlist area regressed beyond tolerance"
    # The paper's extraction objective (the Section IV-D model) must have
    # improved — that is what the tool optimizes and what the constraint-
    # aware rewrites deliver directly.
    assert run.model_after.key <= run.model_before.key, (
        "extraction did not improve the model objective"
    )


def test_table3_summary():
    """Print the full table after all rows have run."""
    header = (
        f"{'Test Case':<16} {'delay':>8} {'area':>9}   "
        f"{'delay':>8} {'':>7} {'area':>9}\n" + "-" * 78
    )
    rows = [table_row(_run(name)) for name in CASES]
    print("\nTable III (gate-level substitute flow)\n" + header)
    for row in rows:
        print(row)
