"""Operator catalogue of the intermediate language.

Every operator is a singleton :class:`Op` carrying its arity and the names of
its immutable attributes.  Attributes are part of e-node identity (an 8-bit
``TRUNC`` is a different function from a 12-bit one); children are expression
(or e-class) references.

Leaf operators:

=========  =======================  =====================================
operator   attributes               meaning
=========  =======================  =====================================
``VAR``    ``(name, width)``        unsigned input, domain ``[0, 2^w - 1]``
``CONST``  ``(value,)``             integer literal (may be negative)
=========  =======================  =====================================

``ASSUME`` is variadic: child 0 is the guarded expression, children 1..n are
constraint expressions treated as a *set* (order-insensitive; the e-graph
canonicalizes the tail sorted by e-class id).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True, eq=False)
class Op:
    """An operator of the intermediate language.

    ``arity`` is the number of expression children; ``None`` marks the
    variadic ``ASSUME``.  ``attr_names`` documents the positional attribute
    tuple carried by nodes of this operator.

    Operators are singletons (``__reduce__`` resolves unpickles back to the
    catalogue), so equality and hashing are by identity — every containing
    dataclass (expressions, e-nodes, patterns) and every ``op in (...)``
    dispatch compares one pointer instead of three fields.
    """

    name: str
    arity: int | None
    attr_names: tuple[str, ...] = field(default=())
    symbol: str = ""

    def __repr__(self) -> str:
        return self.name

    @property
    def is_leaf(self) -> bool:
        return self.arity == 0

    @property
    def is_variadic(self) -> bool:
        return self.arity is None

    def __reduce__(self):
        # Operators are singletons and the whole codebase dispatches on
        # identity (``op is ops.LZC``).  Unpickling must therefore resolve to
        # the interned instance — the default by-value protocol would hand a
        # worker process fresh Op objects that fail every identity check.
        return (_restore_op, (self.name,))


def _restore_op(name: str) -> "Op":
    return OPS_BY_NAME[name]


VAR = Op("VAR", 0, ("name", "width"))
CONST = Op("CONST", 0, ("value",))

ADD = Op("ADD", 2, symbol="+")
SUB = Op("SUB", 2, symbol="-")
MUL = Op("MUL", 2, symbol="*")
NEG = Op("NEG", 1, symbol="-")

SHL = Op("SHL", 2, symbol="<<")
SHR = Op("SHR", 2, symbol=">>")

AND = Op("AND", 2, symbol="&")
OR = Op("OR", 2, symbol="|")
XOR = Op("XOR", 2, symbol="^")
NOT = Op("NOT", 1, ("width",), symbol="~")
LNOT = Op("LNOT", 1, symbol="!")

LT = Op("LT", 2, symbol="<")
LE = Op("LE", 2, symbol="<=")
GT = Op("GT", 2, symbol=">")
GE = Op("GE", 2, symbol=">=")
EQ = Op("EQ", 2, symbol="==")
NE = Op("NE", 2, symbol="!=")

MUX = Op("MUX", 3)
LZC = Op("LZC", 1, ("width",))
TRUNC = Op("TRUNC", 1, ("width",))
SLICE = Op("SLICE", 1, ("hi", "lo"))
CONCAT = Op("CONCAT", 2, ("rhs_width",))
ABS = Op("ABS", 1)
MIN = Op("MIN", 2)
MAX = Op("MAX", 2)

ASSUME = Op("ASSUME", None)

ALL_OPS: tuple[Op, ...] = (
    VAR, CONST, ADD, SUB, MUL, NEG, SHL, SHR, AND, OR, XOR, NOT, LNOT,
    LT, LE, GT, GE, EQ, NE, MUX, LZC, TRUNC, SLICE, CONCAT, ABS, MIN, MAX,
    ASSUME,
)

OPS_BY_NAME: dict[str, Op] = {op.name: op for op in ALL_OPS}

#: Comparison operators returning a 1-bit 0/1 result.
COMPARISONS: frozenset[Op] = frozenset({LT, LE, GT, GE, EQ, NE})

#: Operators whose two children commute.
COMMUTATIVE: frozenset[Op] = frozenset({ADD, MUL, AND, OR, XOR, MIN, MAX})
