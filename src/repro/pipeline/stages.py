"""The composable pipeline stages (the paper's flow, taken apart).

Each stage is a small object with a ``name`` and a ``run(ctx)`` method over
the shared :class:`~repro.pipeline.context.PipelineContext`; a
:class:`~repro.pipeline.pipeline.Pipeline` is just an ordered list of them.
The paper's fixed flow — ingest RTL, constraint-aware equality saturation,
cost-based extraction, verification — is the preset
:class:`~repro.opt.optimizer.DatapathOptimizer` builds, but the stages
compose freely: several ``Saturate`` stages with different rulesets give
ROVER-style phased schedules, several ``Extract`` stages sweep extraction
objectives over one saturated e-graph, ``Verify``/``Emit`` are optional.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.analysis import DatapathAnalysis
from repro.egraph import EGraph, ExtractReport, Extractor, Runner
from repro.egraph.runner import (
    DEFAULT_MATCH_LIMIT,
    BackoffScheduler,
    RunnerReport,
    StopReason,
)
from repro.egraph.rewrite import Rewrite
from repro.ir.expr import Expr
from repro.rewrites import compose_rules
from repro.rewrites.casesplit import case_split_on
from repro.rtl import emit_verilog, module_to_ir
from repro.synth.cost import DelayAreaCost, default_key
from repro.synth.treecost import model_cost
from repro.verify import check_equivalent
from repro.verify.equiv import DEFAULT_BDD_NODE_LIMIT

from repro.pipeline.budget import Budget, ResourceGovernor
from repro.pipeline.context import PipelineContext


@runtime_checkable
class Stage(Protocol):
    """One step of an optimization pipeline."""

    #: Label used in progress/timing records (repeatable across instances).
    name: str

    def run(self, ctx: PipelineContext) -> None:
        """Advance the context in place."""
        ...


def _stage_window(deadline: float, started: float) -> float:
    """The wall window a stage was allocated: the span from its start to
    its effective absolute deadline (governor's and/or its own)."""
    return max(0.0, deadline - started)


class Ingest:
    """Parse the design and seed the e-graph with its roots.

    The design comes from ``source`` (Verilog text), ``roots`` (named IR
    trees) or — when neither is given — whatever the context already
    carries.  Every output port shares one e-graph, so cross-output
    subexpressions dedup and co-optimize.

    ``seed_egraph=False`` parses only: the context gets roots but no
    e-graph.  Sharded flows use this — each shard re-ingests its cone into
    its own e-graph, so building (and analyzing) the monolithic graph here
    would be pure discarded work.
    """

    name = "ingest"

    def __init__(
        self,
        source: str | None = None,
        roots: dict[str, Expr] | None = None,
        seed_egraph: bool = True,
    ) -> None:
        self.source = source
        self.roots = dict(roots) if roots is not None else None
        self.seed_egraph = seed_egraph

    def run(self, ctx: PipelineContext) -> None:
        if self.roots is not None:
            ctx.roots = dict(self.roots)
        elif self.source is not None:
            # An explicit source always (re)parses — a reused context may
            # still carry the previous design's roots.
            ctx.source = self.source
            ctx.roots = module_to_ir(self.source)
        elif not ctx.roots:
            if ctx.source is None:
                raise ValueError("Ingest needs Verilog source or IR roots")
            ctx.roots = module_to_ir(ctx.source)
        # A new ingest starts a new run: clear results a previous design
        # left on a reused context (output names overlap — every registry
        # design calls its port "out" — so stale entries would otherwise be
        # served by Extract's original-cost memo and the record summaries).
        ctx.reports.clear()
        ctx.extracted.clear()
        ctx.extract_reports.clear()
        ctx.original_costs.clear()
        ctx.optimized_costs.clear()
        ctx.equivalence.clear()
        ctx.artifacts.clear()
        ctx.shard_plan = None
        ctx.shard_results.clear()
        if not self.seed_egraph:
            ctx.egraph = None
            ctx.root_ids = {}
            return
        ctx.egraph = EGraph([DatapathAnalysis(ctx.input_ranges)])
        ctx.root_ids = {
            name: ctx.egraph.add_expr(expr) for name, expr in ctx.roots.items()
        }
        ctx.egraph.rebuild()


class WarmStart:
    """Seed the e-graph from a persisted artifact instead of cold-building.

    Runs right after an ``Ingest(seed_egraph=False)``: it loads the artifact
    (see :mod:`repro.egraph.serialize`), checks compatibility — format
    version, ruleset/schedule key, and the *input ranges* the persisted
    analysis was computed under — and re-interns the current design's roots
    into the revived graph.  An edited design therefore inserts only its
    delta; every equivalence the previous run proved is already present, so
    the following ``Saturate`` re-converges in about one iteration on
    unchanged cones — and when the edit re-interns without adding a single
    e-node (say, exposing an already-explored internal wire as a new
    output), saturation is skipped outright: an empty delta has nothing to
    saturate.  Any incompatibility (missing file, format bump,
    different schedule, different ranges) degrades to exactly the cold graph
    ``Ingest`` would have built, and the outcome lands in
    ``ctx.artifacts["warm_start"]`` as ``"hit:<digest12>"`` or
    ``"cold:<reason>"``.
    """

    name = "warm-start"

    def __init__(self, path, schedule: str = "") -> None:
        self.path = path
        self.schedule = schedule

    def run(self, ctx: PipelineContext) -> None:
        from repro.egraph.serialize import EGraphFormatError, load_egraph

        egraph = None
        try:
            saved = load_egraph(
                self.path, expect_schedule=self.schedule or None
            )
        except EGraphFormatError as exc:
            status = f"cold:{exc.reason}"
        else:
            if saved.input_ranges != dict(ctx.input_ranges):
                # The persisted analysis baked the old run's range
                # assumptions into every class; reusing it under different
                # assumptions would smuggle in unsound equivalences.
                status = "cold:input-ranges"
            else:
                egraph = saved.egraph
                status = f"hit:{saved.header.digest[:12]}"
        exact = False
        if egraph is not None and saved.header.digest:
            # Runtime import: the canonical digest lives with the service
            # cache, which imports the pipeline package.
            from repro.service.cache import canonical_digest  # lint: ok(AR-LAYER): service owns the canonical digest; warm-start validates against it lazily to keep the package DAG acyclic

            exact = saved.header.digest == canonical_digest(
                ctx.roots, ctx.input_ranges
            )
            if not exact:
                status += ":delta"
        if egraph is None:
            egraph = EGraph([DatapathAnalysis(ctx.input_ranges)])
        nodes_before = egraph.node_count
        ctx.egraph = egraph
        ctx.root_ids = {
            name: egraph.add_expr(expr) for name, expr in ctx.roots.items()
        }
        egraph.rebuild()
        ctx.artifacts["warm_start"] = status
        empty_delta = (
            not exact
            and egraph is not None
            and status.startswith("hit:")
            and egraph.node_count == nodes_before
        )
        if exact or empty_delta:
            # The artifact *is* this design saturated under this exact
            # schedule — either the digest matches outright, or the edited
            # design's cones re-interned without adding a single e-node
            # (every subexpression was already explored), so there is no
            # delta to saturate.  Re-running the schedule would redo
            # consumed work, churning the graph past its limits from a
            # bigger seed and perturbing extraction tie-breaks.  Flag the
            # schedule as spent; a delta that adds new nodes re-saturates.
            ctx.artifacts["warm_saturated"] = True


class SaveEGraph:
    """Persist the (saturated) e-graph as a warm-start artifact.

    Placed after the last ``Saturate`` (monolithic schedules) or after a
    stitched ``MergeShards``; a no-op when the context carries no e-graph
    (e.g. a sharded run without the stitch phase).  The header's digest is
    the service cache's canonical DAG digest of the context's roots, so the
    artifact is attributable; the write itself is atomic
    (:func:`repro.egraph.serialize.save_egraph`).
    """

    name = "save-egraph"

    def __init__(self, path, schedule: str = "") -> None:
        self.path = path
        self.schedule = schedule

    def run(self, ctx: PipelineContext) -> None:
        if ctx.egraph is None:
            return
        # Runtime import: the canonical digest lives with the service cache,
        # which imports the pipeline package — a module-level import here
        # would close that loop.
        from repro.egraph.serialize import save_egraph
        from repro.service.cache import canonical_digest  # lint: ok(AR-LAYER): service owns the canonical digest; persisted e-graphs stamp it lazily to keep the package DAG acyclic

        save_egraph(
            self.path,
            ctx.egraph,
            ctx.root_ids,
            digest=canonical_digest(ctx.roots, ctx.input_ranges),
            schedule=self.schedule,
            input_ranges=dict(ctx.input_ranges),
        )
        ctx.artifacts["egraph_artifact"] = str(self.path)


class CaseSplit:
    """Designer-driven case splits on every root (Section V's future-work
    hook: ``x = mux(c, assume(x, c), assume(x, !c))``)."""

    name = "case-split"

    def __init__(self, splits: Sequence[Expr]) -> None:
        self.splits = tuple(splits)

    def run(self, ctx: PipelineContext) -> None:
        egraph = ctx.require_egraph()
        # Splitting grows the graph beyond whatever a warm-start artifact
        # recorded, so the persisted schedule no longer covers it.
        ctx.artifacts.pop("warm_saturated", None)
        for root_id in ctx.root_ids.values():
            for split in self.splits:
                case_split_on(egraph, root_id, split)


class Saturate:
    """One equality-saturation phase.

    Instantiate several times with different rulesets/limits for phased
    schedules (e.g. structural identities first, then constraint
    exploitation, then narrowing); each instance appends its own
    :class:`~repro.egraph.runner.RunnerReport` to the context.

    Limits are a :class:`~repro.pipeline.budget.Budget` — pass ``budget=``
    directly, or keep the classic ``iter_limit``/``node_limit``/
    ``time_limit`` knobs and the stage builds one.  When the context
    carries a :class:`~repro.pipeline.budget.ResourceGovernor`, the stage
    additionally intersects its budget with the governor's remaining pool
    (inheriting the governor's *absolute* deadline — phased schedules race
    one clock, they don't each restart it) and charges its spend into the
    governor's ledger.
    """

    name = "saturate"
    #: This stage charges its own spend into the governor's ledger; the
    #: pipeline must not add a generic wall-time row on top.
    self_charging = True

    def __init__(
        self,
        rules: Sequence[Rewrite] | None = None,
        iter_limit: int = 8,
        node_limit: int = 30_000,
        time_limit: float = 60.0,
        check_invariants: bool = False,
        label: str | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else compose_rules()
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.check_invariants = check_invariants
        self.budget = budget
        if label is not None:
            self.name = label

    def effective_budget(self, ctx: PipelineContext) -> Budget:
        """The budget this stage would saturate under on ``ctx``."""
        budget = (
            self.budget
            if self.budget is not None
            else Budget(
                iters=self.iter_limit,
                nodes=self.node_limit,
                time_s=self.time_limit,
            )
        )
        governor = ctx.governor
        if governor is None:
            return budget
        remaining = governor.remaining()
        if remaining.nodes is not None:
            # The governor pools e-nodes *grown*; the runner's cap is an
            # absolute graph size — translate relative quota to this graph.
            remaining = replace(
                remaining, nodes=ctx.require_egraph().node_count + remaining.nodes
            )
        return budget.intersect(remaining)

    def run(self, ctx: PipelineContext) -> None:
        if ctx.artifacts.get("warm_saturated"):
            # An exact warm-start hit: the loaded artifact already consumed
            # this schedule on this very design, so the fixpoint this stage
            # would reach is the graph it is looking at.
            ctx.reports.append(
                RunnerReport(StopReason.SATURATED, [], 0.0)
            )
            return
        budget = self.effective_budget(ctx)
        governor = ctx.governor
        egraph = ctx.require_egraph()
        seed_nodes = egraph.node_count
        # Match-budget fairness: the backoff limit is tuned for one output
        # cone, and a shard gets exactly that.  A monolithic run shares one
        # e-graph across every output, so the same absolute limit would ban
        # rules after exploring a fraction of each cone — scale it by the
        # root count so monolithic and sharded runs explore each cone
        # equally deeply.
        scheduler = None
        if len(ctx.roots) > 1:
            scheduler = BackoffScheduler(
                match_limit=DEFAULT_MATCH_LIMIT * len(ctx.roots)
            )
        runner = Runner(
            egraph,
            self.rules,
            budget=budget,
            scheduler=scheduler,
            check_invariants=self.check_invariants,
            clock=governor.clock if governor is not None else None,
        )
        report = runner.run()
        ctx.reports.append(report)
        if governor is not None:
            allocated = budget
            if allocated.nodes is not None:
                # The runner's cap is an absolute graph size; the ledger
                # reports growth allowance — the same unit as its spend.
                allocated = replace(
                    allocated, nodes=max(0, allocated.nodes - seed_nodes)
                )
            if allocated.deadline is not None:
                # Ledger rows report concrete spans, not raw monotonic
                # instants: the allocation was "whatever window was left",
                # capped by the stage's own time knob.
                window = max(
                    0.0,
                    allocated.deadline - (governor.clock() - report.total_time),
                )
                span = (
                    window
                    if allocated.time_s is None
                    else min(allocated.time_s, window)
                )
                allocated = replace(allocated, time_s=round(span, 6))
            governor.charge_report(self.name, report, allocated=allocated)


class Extract:
    """Cost-based extraction with a pluggable objective — an *anytime* stage.

    ``key`` orders ``(delay, area)`` costs — the paper's delay-prioritized
    weighted sum by default, or e.g. :func:`~repro.synth.cost.weighted_key`
    for trade-off sweeps.  ASSUME wrappers are kept in the extracted tree by
    default: the tree-level range analysis re-derives constraint refinements
    from them, so netlist lowering and Verilog emission see the reduced
    bitwidths.

    When the context carries a :class:`~repro.pipeline.budget.ResourceGovernor`,
    the extractor races the governor's absolute deadline (on the governor's
    injectable clock): on expiry the cost fixpoint stops within one worklist
    step and the stage returns its best-so-far checkpoint per root — the
    sub-optimally-costed tree when the root was reached, the behavioural
    tree unchanged when it was not.  The outcome lands in an
    :class:`~repro.egraph.extract.ExtractReport` on
    ``ctx.extract_reports`` (``status="complete"|"deadline"``) and the
    stage's wall spend is charged into the governor's ledger — never an
    exception, never an unledgered overshoot.
    """

    name = "extract"
    self_charging = True

    def __init__(
        self,
        key: Callable[[float, float], tuple] | None = None,
        strip_assumes: bool = False,
        label: str | None = None,
    ) -> None:
        self.key = key if key is not None else default_key
        self.strip_assumes = strip_assumes
        #: The most recent run's extractor — the greedy solution an ILP
        #: refinement (:class:`repro.solve.extract_opt.OptimalExtract`)
        #: warm-starts from, and a test observation point.
        self._extractor: Extractor | None = None
        if label is not None:
            self.name = label

    def run(self, ctx: PipelineContext) -> None:
        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        started = clock()
        deadline = None
        if governor is not None and not math.isinf(governor.work_deadline):
            # The *work* deadline: under a verify-aware policy the governor
            # reserves a tail slice of the wall for Verify, and an anytime
            # extraction must not eat into it.
            deadline = governor.work_deadline
        extractor: Extractor | None = None
        root_status: dict[str, str] = {}
        try:
            extractor = Extractor(
                ctx.require_egraph(),
                DelayAreaCost(self.key),
                strip_assumes=self.strip_assumes,
                deadline=deadline,
                clock=clock,
            )
            for name, expr in ctx.roots.items():
                if extractor.complete:
                    # Full fixpoint: an unextractable root is an engine
                    # error and must keep raising, exactly as before the
                    # anytime redesign.
                    optimized = extractor.expr_of(ctx.root_ids[name])
                    root_status[name] = "extracted"
                else:
                    optimized = extractor.try_expr_of(ctx.root_ids[name])
                    if optimized is None:
                        # Anytime floor: the behavioural tree is always a
                        # sound implementation of itself, so a deadline
                        # expiring before the fixpoint costs this root
                        # degrades the result, never the run.
                        optimized = expr
                        root_status[name] = "fallback"
                    else:
                        root_status[name] = "extracted"
                # The behavioural cost is objective-independent; objective
                # sweeps re-run Extract on one context, so compute it once.
                if name not in ctx.original_costs:
                    ctx.original_costs[name] = model_cost(expr, ctx.input_ranges)
                if optimized is expr:
                    # The fallback *is* the behavioural tree: reuse its
                    # cost instead of re-walking a large tree after the
                    # budget is already exhausted.
                    cost = ctx.original_costs[name]
                else:
                    cost = model_cost(optimized, ctx.input_ranges)
                    if (
                        not extractor.complete
                        and cost.key > ctx.original_costs[name].key
                    ):
                        # A truncated fixpoint may only have costed the
                        # root through an expanded (larger) e-node; the
                        # anytime contract is never-worse-than-input.
                        optimized = expr
                        cost = ctx.original_costs[name]
                        root_status[name] = "fallback"
                ctx.extracted[name] = optimized
                ctx.optimized_costs[name] = cost
            # Objective provenance for the run record; an ILP refinement
            # stage overwrites this after its solve.
            ctx.artifacts.setdefault("extract_objective", "greedy")
        finally:
            # Charge even on a raising path (same contract as Verify), so
            # a failed run's error record still shows where the time went.
            elapsed = clock() - started
            self._extractor = extractor
            if extractor is not None:
                ctx.extract_reports.append(
                    ExtractReport(
                        status="complete" if extractor.complete else "deadline",
                        total_time=elapsed,
                        steps=extractor.steps,
                        roots=dict(root_status),
                    )
                )
            if governor is not None:
                governor.charge(
                    self.name,
                    time_s=elapsed,
                    allocated=(
                        Budget(
                            time_s=round(_stage_window(deadline, started), 6)
                        )
                        if deadline is not None
                        else None
                    ),
                )


class Verify:
    """Equivalence-check every extracted root against its behavioural tree.

    ``strict=True`` (the default, matching the tool) raises on a proved
    non-equivalence — an optimizer soundness bug must never emit RTL.

    The stage is *interruptible*: it races the governor's absolute deadline
    (intersected with its own ``budget``, whose ``time_s`` spans from stage
    start and whose ``bdd_nodes`` caps BDD growth).  A blowing-up BDD stops
    at the node quota or deadline and degrades to randomized trials
    (``EquivalenceResult.method == "random"``); a check cut short before
    any confidence was reached reports ``method == "timeout"`` with
    ``equivalent=None``.  Degradation never masks a proved difference —
    ``strict`` still raises on ``equivalent is False`` — and the stage
    charges its wall and BDD-node spend into the governor's ledger like
    every other stage (including on the strict-raise path, so failed runs
    stay diagnosable from the run record).
    """

    name = "verify"
    self_charging = True

    def __init__(
        self,
        strict: bool = True,
        random_trials: int | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.strict = strict
        self.random_trials = random_trials
        self.budget = budget

    def run(self, ctx: PipelineContext) -> None:
        if not ctx.extracted:
            raise RuntimeError("Verify needs an Extract stage to run first")
        governor = ctx.governor
        clock = governor.clock if governor is not None else time.monotonic
        started = clock()
        deadline = math.inf
        if self.budget is not None:
            deadline = self.budget.deadline_at(started)
        if governor is not None:
            deadline = min(deadline, governor.deadline)
        own_quota = self.budget.bdd_nodes if self.budget is not None else None
        spent_bdd = 0
        allocated_bdd = None
        try:
            for name, expr in ctx.roots.items():
                optimized = ctx.extracted[name]
                kwargs = {}
                if self.random_trials is not None:
                    kwargs["random_trials"] = self.random_trials
                quota = self._bdd_pool_left(governor, own_quota, spent_bdd)
                if quota is not None:
                    # A quota *tightens* the engine's safety cap; a pool
                    # larger than the cap must not loosen it.
                    kwargs["bdd_node_limit"] = min(quota, DEFAULT_BDD_NODE_LIMIT)
                    if allocated_bdd is None:
                        allocated_bdd = kwargs["bdd_node_limit"]
                if not math.isinf(deadline):
                    kwargs["deadline"] = deadline
                    kwargs["clock"] = clock
                verdict = check_equivalent(
                    expr, optimized, ctx.input_ranges, **kwargs
                )
                ctx.equivalence[name] = verdict
                spent_bdd += verdict.bdd_nodes
                if self.strict and verdict.equivalent is False:
                    raise AssertionError(
                        f"optimizer produced a non-equivalent design for "
                        f"{name!r} at {verdict.counterexample}"
                    )
        finally:
            if governor is not None:
                elapsed = clock() - started
                allocated = {}
                if not math.isinf(deadline):
                    allocated["time_s"] = round(
                        _stage_window(deadline, started), 6
                    )
                if allocated_bdd is not None:
                    allocated["bdd_nodes"] = allocated_bdd
                governor.charge(
                    self.name,
                    time_s=elapsed,
                    bdd_nodes=spent_bdd,
                    allocated=allocated or None,
                )

    @staticmethod
    def _bdd_pool_left(
        governor: ResourceGovernor | None, own_quota: int | None, spent: int
    ) -> int | None:
        """BDD nodes this check may grow (None = engine default applies).

        The governor's pool is consulted live, so several outputs checked
        under one stage share it; the stage's own quota is a further
        ceiling.  A dry pool returns 0 — the BDD strategy then trips
        immediately and the check degrades to randomized trials.
        """
        left = None
        if governor is not None:
            remaining = governor.remaining().bdd_nodes
            if remaining is not None:
                left = max(0, remaining - spent)
        if own_quota is not None:
            own_left = max(0, own_quota - spent)
            left = own_left if left is None else min(left, own_left)
        return left


class Emit:
    """Render the extracted design as a Verilog module artifact."""

    name = "emit"

    def __init__(self, module_name: str = "optimized") -> None:
        self.module_name = module_name

    def run(self, ctx: PipelineContext) -> None:
        if not ctx.extracted:
            raise RuntimeError("Emit needs an Extract stage to run first")
        ctx.artifacts["verilog"] = emit_verilog(
            dict(ctx.extracted), self.module_name, ctx.input_ranges
        )
