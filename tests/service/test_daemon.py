"""The daemon end to end: sockets, wire format, drain, acceptance criteria."""

from __future__ import annotations

import threading

import pytest

from repro.pipeline import Budget, Job, RunRecord
from repro.service import (
    OptimizationDaemon,
    OptimizationQueue,
    ResultCache,
    TenantShare,
    job_from_dict,
    job_to_dict,
    request,
    wait_for_result,
)

FAST = dict(iter_limit=2, node_limit=8_000)

TENANTS = [TenantShare("team-a"), TenantShare("team-b")]


@pytest.fixture
def daemon(tmp_path):
    """A served daemon on a tmp socket; always shut down cleanly."""
    queue = OptimizationQueue(
        TENANTS,
        budget=Budget(time_s=60.0),
        cache=ResultCache(path=tmp_path / "cache.json"),
    )
    instance = OptimizationDaemon(tmp_path / "repro.sock", queue)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    # Wait until the socket answers.
    for _ in range(100):
        try:
            assert request(instance.socket_path, {"op": "ping"})["ok"]
            break
        except (FileNotFoundError, ConnectionError, OSError):
            threading.Event().wait(0.05)
    else:
        raise RuntimeError("daemon did not come up")
    yield instance
    if not instance._stopping.is_set():
        request(instance.socket_path, {"op": "shutdown"})
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestWireFormat:
    def test_job_round_trips_through_the_wire_dict(self):
        job = Job(
            name="w",
            design="fp_sub",
            phases=(("structural",), ("assume", "narrowing")),
            budget=Budget(time_s=2.0, iters=9),
            **FAST,
        )
        assert job_from_dict(job_to_dict(job)) == job

    def test_unknown_job_fields_fail_loudly(self):
        payload = job_to_dict(Job(name="w", design="fp_sub"))
        payload["exploit"] = True
        with pytest.raises(TypeError):
            job_from_dict(payload)


class TestDaemonProtocol:
    def test_ping_reports_the_tenant_roster(self, daemon):
        reply = request(daemon.socket_path, {"op": "ping"})
        assert reply == {"ok": True, "tenants": ["team-a", "team-b"]}

    def test_submit_executes_and_result_is_a_run_record(self, daemon):
        job = Job(name="e2e", design="lzc_example", verify=True, **FAST)
        reply = request(
            daemon.socket_path,
            {"op": "submit", "tenant": "team-a", "job": job_to_dict(job)},
        )
        assert reply["ok"] and reply["job"] == "e2e"
        record = wait_for_result(daemon.socket_path, reply["ticket"])
        assert isinstance(record, RunRecord)
        assert record.status == "ok" and record.verified is True
        assert record.tenant == "team-a"
        assert record.queue_wait_s >= 0.0

    def test_malformed_requests_do_not_kill_the_daemon(self, daemon):
        bad = request(daemon.socket_path, {"op": "submit", "tenant": "team-a"})
        assert not bad["ok"] and "KeyError" in bad["error"]
        assert request(daemon.socket_path, {"op": "nope"})["ok"] is False
        assert request(daemon.socket_path, {"op": "ping"})["ok"]

    def test_status_polls_events_incrementally(self, daemon):
        job = Job(name="st", design="lzc_example", **FAST)
        ticket = request(
            daemon.socket_path,
            {"op": "submit", "tenant": "team-b", "job": job_to_dict(job)},
        )["ticket"]
        wait_for_result(daemon.socket_path, ticket)
        reply = request(daemon.socket_path, {"op": "status"})
        assert reply["submissions"][0]["status"] == "done"
        kinds = [e["kind"] for e in reply["events"]]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        again = request(
            daemon.socket_path, {"op": "status", "cursor": reply["cursor"]}
        )
        assert again["events"] == []


class TestAcceptance:
    """The PR's end-to-end bar, verbatim from the issue."""

    def test_two_tenants_fair_share_cache_hit_and_event_coverage(self, daemon):
        queue = daemon.queue
        job_a = Job(name="tenant-a-job", design="lzc_example",
                    budget=Budget(iters=40), **FAST)
        job_b = Job(name="tenant-b-job", design="fp_sub",
                    budget=Budget(iters=40), iter_limit=2, node_limit=8_000)
        tickets = {}
        for tenant, job in (("team-a", job_a), ("team-b", job_b)):
            tickets[tenant] = request(
                daemon.socket_path,
                {"op": "submit", "tenant": tenant, "job": job_to_dict(job)},
            )["ticket"]
        first_a = wait_for_result(daemon.socket_path, tickets["team-a"])
        first_b = wait_for_result(daemon.socket_path, tickets["team-b"])
        assert first_a.status == "ok" and first_b.status == "ok"

        # Neither tenant collectively overspends its fair share of the one
        # service pool (ledger-checked: settled spend within allocation).
        ledger = request(daemon.socket_path, {"op": "stats"})["ledger"]
        for tenant in ("team-a", "team-b"):
            entry = ledger[tenant]
            allocated_s = entry["allocated"]["time_s"]
            assert entry["spent"]["time_s"] <= allocated_s, entry

        # A duplicate submission (same content, new name, other tenant)
        # returns a cache hit without running Saturate.
        dup = request(
            daemon.socket_path,
            {
                "op": "submit",
                "tenant": "team-b",
                "job": job_to_dict(
                    Job(name="dup-of-a", design="lzc_example",
                        budget=Budget(iters=40), **FAST)
                ),
            },
        )["ticket"]
        hit = wait_for_result(daemon.socket_path, dup)
        assert hit.cache_hit is True
        kinds = [e.kind for e in queue.feed.for_job("dup-of-a")]
        assert "running" not in kinds  # no Saturate (or any stage) ran
        assert ledger["team-b"]["jobs"] == 1  # still only the original run

        # The streamed event feed explains >= 95% of each executed job's
        # wall clock.
        assert queue.feed.coverage("tenant-a-job") >= 0.95
        assert queue.feed.coverage("tenant-b-job") >= 0.95

    def test_graceful_shutdown_drains_backlog_and_persists_cache(
        self, daemon
    ):
        for i in range(3):
            request(
                daemon.socket_path,
                {
                    "op": "submit",
                    "tenant": "team-a",
                    "job": job_to_dict(
                        Job(name=f"drain-{i}", design="lzc_example",
                            iter_limit=i + 1, node_limit=8_000)
                    ),
                },
            )
        reply = request(daemon.socket_path, {"op": "shutdown"}, timeout=60.0)
        assert reply["ok"]
        assert reply["persisted"] >= 1
        # Every submission finished before the daemon stopped.
        assert all(
            sub.status in ("done", "error")
            for sub in daemon.queue.submissions
        )
        assert (daemon.socket_path.parent / "cache.json").exists()
        # A reborn cache serves yesterday's results.
        reborn = ResultCache(path=daemon.socket_path.parent / "cache.json")
        assert reborn.load() >= 1
