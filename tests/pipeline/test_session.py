"""Batch sessions over the registry and the RunRecord trajectory format."""

import json
from pathlib import Path

import pytest

import repro.pipeline.session as session_mod
from repro.designs import DESIGNS
from repro.pipeline import Budget, Job, RunRecord, Session, execute_job

#: Settings under which every registry design (including the wide
#: ``stress_wide``) completes its iterations instead of tripping the node
#: limit: a mid-apply node-limit stop lands at a hash-order-dependent cutoff,
#: so only completed runs are bit-reproducible across *processes* (which the
#: parallel-vs-serial comparison below relies on).
FAST = dict(iter_limit=2, node_limit=8_000)

#: Fields that are deterministic across runs of the same job (timings and
#: whole-run wall time are not).
STABLE_FIELDS = (
    "job",
    "design",
    "output",
    "status",
    "stop_reason",
    "iterations",
    "nodes",
    "classes",
    "original_delay",
    "original_area",
    "optimized_delay",
    "optimized_area",
    "verified",
)


def stable(record: RunRecord) -> tuple:
    return tuple(getattr(record, name) for name in STABLE_FIELDS)


class TestSessionBatch:
    def test_batch_covers_every_registry_design(self):
        session = Session.for_designs(**FAST)
        records = session.run()
        assert len(records) == len(DESIGNS) >= 4
        assert [r.job for r in records] == sorted(DESIGNS)
        for record in records:
            assert record.status == "ok", record.error
            assert record.stop_reason
            assert record.optimized_delay <= record.original_delay
            assert set(record.stage_timings) >= {"ingest", "saturate", "extract"}

    def test_parallel_run_uses_process_workers(self, monkeypatch):
        calls = []
        real_executor = session_mod.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                calls.append(kwargs.get("max_workers"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(session_mod, "ProcessPoolExecutor", CountingExecutor)
        session = Session.for_designs(**FAST)
        parallel = session.run(parallel=True, max_workers=2)
        assert calls == [2], "parallel=True must go through the process pool"

        serial = session.run(parallel=False)
        assert [stable(r) for r in parallel] == [stable(r) for r in serial]

    def test_serial_run_stays_in_process(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("serial run must not spawn workers")

        monkeypatch.setattr(session_mod, "ProcessPoolExecutor", boom)
        records = Session.for_designs(["lzc_example"], **FAST).run()
        assert records[0].status == "ok"

    def test_verify_flag_fills_verdicts(self):
        records = Session.for_designs(["lzc_example"], verify=True, **FAST).run()
        assert records[0].verified is True

    def test_failed_job_yields_error_record(self):
        records = Session([Job(name="bad", design="no-such-design")]).run()
        assert records[0].status == "error"
        assert "no-such-design" in records[0].error
        # Error records serialize like any other.
        assert RunRecord.from_json(records[0].to_json()) == records[0]

    def test_phased_job_schedule(self):
        job = Job(
            name="phased",
            design="lzc_example",
            phases=(("structural",), ("assume", "condition", "narrowing")),
            phase_iters=3,
            **FAST,
        )
        record = execute_job(job)
        assert record.status == "ok", record.error
        labels = set(record.stage_timings)
        assert "saturate:structural" in labels
        assert "saturate:assume+condition+narrowing" in labels


class TestShardedJobs:
    def test_sharded_job_records_shard_metadata(self):
        job = Job(name="sh", design="stress_wide", auto_shard_nodes=1, **FAST)
        record = execute_job(job)
        assert record.status == "ok", record.error
        assert record.shards == 8  # one shard per stress_wide output
        assert set(record.shard_walls) == {f"out{k}" for k in range(8)}
        assert all(wall > 0 for wall in record.shard_walls.values())

    def test_monolithic_record_has_no_shard_metadata(self):
        record = execute_job(Job(name="mono", design="lzc_example", **FAST))
        assert record.shards == 0 and record.shard_walls == {}

    def test_auto_threshold_leaves_small_designs_monolithic(self):
        """Auto-split must not engage for single-output designs — the run
        goes through the shard machinery as one whole-design shard."""
        job = Job(name="auto", design="lzc_example", auto_shard_nodes=1, **FAST)
        record = execute_job(job)
        assert record.status == "ok", record.error
        assert record.shards == 1

    def test_clustered_job_bounds_shard_count(self):
        job = Job(name="cl", design="stress_wide", shards=3, **FAST)
        record = execute_job(job)
        assert record.status == "ok", record.error
        assert 1 <= record.shards <= 3

    def test_sharded_matches_monolithic_on_completed_runs(self):
        """Under limits where everything completes, sharding a wide design
        changes nothing about the extracted costs."""
        mono = execute_job(Job(name="m", design="stress_wide", **FAST))
        sharded = execute_job(
            Job(name="s", design="stress_wide", auto_shard_nodes=1, **FAST)
        )
        assert (sharded.optimized_delay, sharded.optimized_area) == (
            mono.optimized_delay,
            mono.optimized_area,
        )

    def test_sharding_rejects_phased_schedules(self):
        job = Job(
            name="bad", design="lzc_example", shards=2, phases=(("structural",),)
        )
        record = execute_job(job)
        assert record.status == "error"
        assert "single-phase" in record.error

    def test_shard_json_roundtrip_exact(self):
        record = execute_job(
            Job(name="rt", design="stress_wide", auto_shard_nodes=1, **FAST)
        )
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        assert clone.shard_walls == record.shard_walls
        assert clone.to_json() == record.to_json()

    def test_from_dict_defaults_shard_fields_for_legacy_records(self):
        """Pre-shard trajectory files keep loading (schema is additive)."""
        record = RunRecord.from_dict({"job": "x", "design": "y"})
        assert record.shards == 0 and record.shard_walls == {}
        assert record.shard_pool == "" and record.budget == {}

    def test_budget_ledger_fields_roundtrip_exact(self):
        """The resource-governance additions to the record schema (the
        ``budget`` ledger block and ``shard_pool``) survive JSON exactly."""
        record = execute_job(
            Job(
                name="rt-budget",
                design="stress_wide",
                auto_shard_nodes=1,
                budget=Budget(time_s=5.0),
                **FAST,
            )
        )
        assert record.status == "ok", record.error
        assert record.shard_pool == "inline"
        assert record.budget["allocated"] == {"time_s": 5.0}
        assert record.budget["stages"]
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        assert clone.budget == record.budget
        assert clone.shard_pool == record.shard_pool
        assert clone.to_json() == record.to_json()


class TestRunRecordSerialization:
    def test_json_roundtrip_exact(self):
        record = execute_job(Job(name="rt", design="lzc_example", **FAST))
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        # And the JSON itself is stable under a second round trip.
        assert clone.to_json() == record.to_json()

    def test_json_is_plain_data(self):
        record = execute_job(Job(name="plain", design="lzc_example", **FAST))
        payload = json.loads(record.to_json())
        assert payload["design"] == "lzc_example"
        assert isinstance(payload["stage_timings"], dict)

    def test_from_dict_tolerates_unknown_keys(self):
        """Old trajectory files with extra fields keep loading."""
        record = RunRecord.from_dict(
            {"job": "x", "design": "y", "legacy_field": 123}
        )
        assert record.job == "x" and record.design == "y"

    def test_service_provenance_fields_roundtrip(self):
        """``tenant``/``cache_hit``/``queue_wait_s`` survive JSON exactly."""
        record = execute_job(Job(name="svc", design="lzc_example", **FAST))
        record.tenant = "team-a"
        record.cache_hit = True
        record.queue_wait_s = 0.125
        clone = RunRecord.from_json(record.to_json())
        assert clone == record
        assert (clone.tenant, clone.cache_hit, clone.queue_wait_s) == (
            "team-a",
            True,
            0.125,
        )
        assert clone.to_json() == record.to_json()

    def test_from_dict_defaults_service_fields_for_legacy_records(self):
        """Pre-service trajectory rows keep loading (schema is additive)."""
        record = RunRecord.from_dict({"job": "x", "design": "y"})
        assert record.tenant == ""
        assert record.cache_hit is False
        assert record.queue_wait_s == 0.0

    def test_bench_perf_entries_still_load(self):
        """Every record in the checked-in perf trajectory parses."""
        path = Path(__file__).resolve().parents[2] / "BENCH_perf.json"
        if not path.exists():
            pytest.skip("no BENCH_perf.json in this checkout")
        payload = json.loads(path.read_text())
        rows = payload["records"] if isinstance(payload, dict) else payload
        assert rows
        for row in rows:
            record = RunRecord.from_dict(row)
            assert record.design
            # Old rows predate the service schema; defaults fill in.
            assert record.cache_hit is False

    def test_add_builds_jobs(self):
        session = Session()
        session.add(design="lzc_example", iter_limit=2)
        job = session.add(Job(name="explicit", design="fp_sub"))
        assert [j.name for j in session.jobs] == ["lzc_example", "explicit"]
        assert job.design == "fp_sub"


class TestSessionBudgetCeiling:
    """A session-level budget is a job-level ceiling across the batch."""

    def test_serial_session_budget_governs_every_job(self):
        session = Session.for_designs(
            ["lzc_example", "float_to_unorm"],
            budget=Budget(time_s=30.0),
            **FAST,
        )
        records = session.run()
        assert all(r.status == "ok" for r in records)
        for record in records:
            assert record.budget, "every job must carry a governed ledger"
            assert record.budget["allocated"]["time_s"] <= 30.0
            assert "saturate" in record.budget["stages"]

    def test_serial_adaptive_ceiling_recycles_between_jobs(self):
        """The second job's window reflects what the first actually left."""
        session = Session.for_designs(
            ["lzc_example", "float_to_unorm"],
            budget=Budget(time_s=30.0),
            budget_policy="adaptive",
            **FAST,
        )
        first, second = session.run()
        # Job 1 was offered 15s (fair half) and spent milliseconds; job 2's
        # allocation must therefore exceed the up-front half split.
        assert first.budget["allocated"]["time_s"] <= 15.0 + 1e-6
        assert second.budget["allocated"]["time_s"] > 15.0

    def test_parallel_session_budget_shares_one_deadline(self, monkeypatch):
        calls = []
        real_executor = session_mod.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                calls.append(kwargs.get("max_workers"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(session_mod, "ProcessPoolExecutor", CountingExecutor)
        session = Session.for_designs(
            ["lzc_example", "float_to_unorm"],
            budget=Budget(time_s=30.0),
            **FAST,
        )
        records = session.run(parallel=True, max_workers=2)
        assert calls == [2]
        assert all(r.status == "ok" for r in records)
        assert all(r.budget for r in records)

    def test_job_budget_intersects_with_session_ceiling(self):
        session = Session(
            [
                Job(
                    name="tight",
                    design="lzc_example",
                    budget=Budget(iters=1),
                    **FAST,
                )
            ],
            budget=Budget(time_s=30.0),
        )
        (record,) = session.run()
        assert record.status == "ok", record.error
        # The job's own iteration quota survived the session split.
        assert record.iterations == 1

    def test_jobs_with_budgets_stay_picklable(self):
        import pickle

        job = Job(name="p", design="lzc_example", budget=Budget(time_s=1.0))
        assert pickle.loads(pickle.dumps(job)) == job


@pytest.mark.slow
class TestSessionSlow:
    def test_parallel_full_registry_with_verification(self):
        records = Session.for_designs(verify=True, iter_limit=4).run(
            parallel=True
        )
        assert all(r.status == "ok" for r in records)
        assert all(r.verified in (True, None) for r in records)
