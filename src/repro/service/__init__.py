"""Optimization-as-a-service: a persistent layer over batch sessions.

The paper's tool is a batch program: build the e-graph, optimize, exit.
Deployed datapath optimization looks different — a long-lived daemon that
many tenants submit designs to, where most submissions are resubmissions
(the same block re-optimized after an unrelated RTL edit) and wall-clock
budgets are a shared resource.  This package adds that layer without
touching the pipeline itself:

- :mod:`repro.service.cache` — content-addressed result cache keyed on the
  *structure* of a design (alpha- and commutativity-invariant DAG digest),
  its schedule knobs and budget class.
- :mod:`repro.service.events` — per-job event feed (queued → running
  stages → done/error) reconstructed from the governor's ledger.
- :mod:`repro.service.queue` — multi-tenant fair-share job queue draining
  onto the existing :class:`~repro.pipeline.session.Session` machinery.
- :mod:`repro.service.daemon` — AF_UNIX socket daemon + client speaking
  newline-delimited JSON with :class:`~repro.pipeline.session.RunRecord`
  as the wire format (the ``serve``/``submit``/``status`` CLI verbs).
"""

from repro.service.cache import (
    ResultCache,
    budget_class,
    canonical_digest,
    job_cache_key,
    job_digest,
    warm_family,
)
from repro.service.daemon import (
    OptimizationDaemon,
    job_from_dict,
    job_to_dict,
    request,
    wait_for_result,
)
from repro.service.events import Event, EventFeed, events_from_record
from repro.service.queue import OptimizationQueue, Submission, TenantShare

__all__ = [
    "OptimizationDaemon",
    "job_to_dict",
    "job_from_dict",
    "request",
    "wait_for_result",
    "ResultCache",
    "budget_class",
    "canonical_digest",
    "job_cache_key",
    "job_digest",
    "warm_family",
    "Event",
    "EventFeed",
    "events_from_record",
    "OptimizationQueue",
    "Submission",
    "TenantShare",
]
