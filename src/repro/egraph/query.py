"""Compiled multi-pattern e-matching over the flat core.

The generic :func:`repro.egraph.pattern.ematch` interprets a pattern tree
per candidate e-node, materializing :class:`ENode` views and recursive
generator frames as it goes.  This module removes both costs: each
:class:`PatternNode` is *compiled once* into a specialized Python function
of nested ``for`` loops over the core's int arrays (op ids compared as
ints, child classes read straight out of the flat ``kids`` buffer, literal
leaf sub-patterns folded into one hashcons lookup), and a
:class:`QueryPlan` groups every active rule by root operator so one
snapshot of the per-op node index serves all of them.

Compiled matchers require a *clean* graph (directly after ``rebuild``):
``node_class`` entries and child ids are then canonical, so no ``find``
calls appear anywhere in the generated code.  The saturation runner — the
only caller — searches exactly there.  Environments, match order and limit
truncation replicate the generic matcher's semantics; the generic path
remains for legacy graphs and ad-hoc queries on dirty graphs.

Generated code for ``(* ?a 2)`` looks like::

    def _matcher(core, cands, limit, out):
        ... array locals ...
        _op0 = op_ids.get(_OP0)        # MUL — resolved per call
        if _op0 is None: return
        _lf0 = memo.get((_op1, _at1, ()))  # the Const(2) leaf, one dict hit
        if _lf0 is None: return
        _lc0 = node_class[_lf0]
        for n0 in cands:
            _f0 = node_first[n0]
            v0 = kids[_f0]
            if kids[_f0 + 1] != _lc0: continue
            out.append((node_class[n0], {"a": v0}))
            if len(out) >= limit: return
"""

from __future__ import annotations

from typing import Callable

from repro.egraph.pattern import AttrVar, PatternNode, PatternVar
from repro.ir.ops import Op

#: Compiled matcher: ``matcher(core, candidate_nids, limit, out)`` appends
#: ``(root_class_id, env)`` pairs to ``out``, stopping at ``limit``.
Matcher = Callable[[object, list, int, list], None]

_COMPILED: dict[PatternNode, Matcher] = {}


class _Emitter:
    """Builds the source of one compiled matcher."""

    def __init__(self, pattern: PatternNode) -> None:
        self.pattern = pattern
        self.prelude: list[str] = []
        self.body: list[str] = []
        self.globals: dict[str, object] = {}
        #: var name -> local holding its binding (class id or attr value).
        self.bound: dict[str, str] = {}
        self._serial = 0

    def fresh(self, prefix: str) -> str:
        self._serial += 1
        return f"{prefix}{self._serial}"

    def lit(self, value: object) -> str:
        """Intern a compile-time constant into the function's globals."""
        name = self.fresh("_K")
        self.globals[name] = value
        return name

    def op_id(self, op: Op) -> str:
        """Prelude local holding the op's interned id (guarded)."""
        local = self.fresh("_op")
        self.prelude.append(f"    {local} = op_ids.get({self.lit(op)})")
        self.prelude.append(f"    if {local} is None: return")
        return local

    def attr_id(self, attrs: tuple) -> str:
        """Prelude local holding the attr tuple's interned id (guarded)."""
        local = self.fresh("_at")
        self.prelude.append(f"    {local} = attr_ids.get({self.lit(attrs)})")
        self.prelude.append(f"    if {local} is None: return")
        return local

    def leaf_class(self, op: Op, attrs: tuple) -> str:
        """Prelude local holding the class id of a concrete leaf e-node
        (e.g. a ``Const(2)`` literal) — one hashcons hit per search call."""
        op_local = self.op_id(op)
        attr_local = self.attr_id(attrs)
        nid = self.fresh("_lf")
        local = self.fresh("_lc")
        self.prelude.append(
            f"    {nid} = memo.get(({op_local}, {attr_local}, ()))"
        )
        self.prelude.append(f"    if {nid} is None: return")
        self.prelude.append(f"    {local} = node_class[{nid}]")
        return local

    # ------------------------------------------------------------- emission
    def emit_attrs(self, nid: str, pat: PatternNode, ind: str) -> None:
        """Attribute checks/bindings for the node bound to local ``nid``."""
        if not pat.attrs:
            return
        if not any(isinstance(a, AttrVar) for a in pat.attrs):
            self.body.append(
                f"{ind}if node_attr[{nid}] != {self.attr_id(pat.attrs)}: continue"
            )
            return
        tup = self.fresh("_av")
        self.body.append(f"{ind}{tup} = attr_list[node_attr[{nid}]]")
        for i, pat_a in enumerate(pat.attrs):
            if isinstance(pat_a, AttrVar):
                bound = self.bound.get(pat_a.name)
                if bound is None:
                    local = self.fresh("_w")
                    self.bound[pat_a.name] = local
                    self.body.append(f"{ind}{local} = {tup}[{i}]")
                else:
                    self.body.append(f"{ind}if {tup}[{i}] != {bound}: continue")
            else:
                self.body.append(
                    f"{ind}if {tup}[{i}] != {self.lit(pat_a)}: continue"
                )

    def emit_node(self, nid: str, pat: PatternNode, depth: int, then) -> None:
        """Match ``pat``'s attrs and children against the node in local
        ``nid``; call ``then(depth)`` at every full assignment.  The caller
        has already ensured the node's op matches."""
        ind = "    " * depth
        self.emit_attrs(nid, pat, ind)
        if pat.op.arity is None:
            self.body.append(
                f"{ind}if node_nkids[{nid}] != {len(pat.children)}: continue"
            )
        if not pat.children:
            then(depth)
            return
        first = self.fresh("_f")
        self.body.append(f"{ind}{first} = node_first[{nid}]")

        def step(i: int, depth: int) -> None:
            if i == len(pat.children):
                then(depth)
                return
            ind = "    " * depth
            child = pat.children[i]
            cell = f"kids[{first} + {i}]" if i else f"kids[{first}]"
            if isinstance(child, PatternVar):
                bound = self.bound.get(child.name)
                if bound is None:
                    local = self.fresh("_v")
                    self.bound[child.name] = local
                    self.body.append(f"{ind}{local} = {cell}")
                else:
                    self.body.append(f"{ind}if {cell} != {bound}: continue")
                step(i + 1, depth)
            elif not child.children and not any(
                isinstance(a, AttrVar) for a in child.attrs
            ):
                # Concrete leaf (a Const literal): its class is unique, so
                # the whole sub-match is one precomputed id comparison.
                self.body.append(
                    f"{ind}if {cell} != {self.leaf_class(child.op, child.attrs)}: "
                    "continue"
                )
                step(i + 1, depth)
            else:
                inner = self.fresh("_n")
                self.body.append(f"{ind}for {inner} in class_nodes[{cell}]:")
                self.body.append(
                    f"{ind}    if node_op[{inner}] != {self.op_id(child.op)}: "
                    "continue"
                )
                self.emit_node(
                    inner, child, depth + 1, lambda d: step(i + 1, d)
                )

        step(0, depth)

    def compile(self) -> Matcher:
        root = self.fresh("_n")

        def finish(depth: int) -> None:
            ind = "    " * depth
            env = ", ".join(
                f"{name!r}: {local}" for name, local in self.bound.items()
            )
            self.body.append(
                f"{ind}out_append((node_class[{root}], {{{env}}}))"
            )
            self.body.append(f"{ind}if len(out) >= limit: return")

        self.body.append(f"    for {root} in cands:")
        self.emit_node(root, self.pattern, 2, finish)

        src = "\n".join(
            [
                "def _matcher(core, cands, limit, out):",
                "    op_ids = core.op_ids",
                "    attr_ids = core.attr_ids",
                "    memo = core.memo",
                "    node_op = core.node_op",
                "    node_attr = core.node_attr",
                "    node_first = core.node_first",
                "    node_nkids = core.node_nkids",
                "    node_class = core.node_class",
                "    kids = core.kids",
                "    class_nodes = core.class_nodes",
                "    attr_list = core.attrs",
                "    out_append = out.append",
                *self.prelude,
                *self.body,
            ]
        )
        namespace = dict(self.globals)
        exec(src, namespace)  # noqa: S102 - internal codegen, no user input
        matcher = namespace["_matcher"]
        matcher.__source__ = src  # debugging aid (inspect the emitted loops)
        return matcher


def compile_pattern(pattern: PatternNode) -> Matcher:
    """Compile (with caching) a pattern into a flat-core matcher."""
    matcher = _COMPILED.get(pattern)
    if matcher is None:
        matcher = _Emitter(pattern).compile()
        _COMPILED[pattern] = matcher
    return matcher


class QueryPlan:
    """All pattern rules of a runner, grouped by root op for batched search.

    One ``search`` call snapshots the per-op candidate list once per root
    operator and runs every rule's compiled matcher over it — the shared
    scan that replaces pattern-at-a-time ``ematch``.  Rules with callable
    (dynamic) searchers are not part of the plan; the runner keeps
    dispatching those through :meth:`Rewrite.search`.
    """

    def __init__(self, rules) -> None:
        self.groups: dict[Op, list] = {}
        self.matchers: dict[str, Matcher] = {}
        for rule in rules:
            searcher = rule.searcher
            if isinstance(searcher, PatternNode):
                self.groups.setdefault(searcher.op, []).append(rule)
                self.matchers[rule.name] = compile_pattern(searcher)

    def __contains__(self, rule_name: str) -> bool:
        return rule_name in self.matchers

    def search(self, core, budgets: dict[str, int]) -> dict[str, list]:
        """Match every rule named in ``budgets`` (name -> match limit).

        Returns rule name -> ``[(class_id, env), ...]`` for each searched
        rule (present even when empty, so schedulers can record a zero).
        The core must be clean (just rebuilt).
        """
        results: dict[str, list] = {}
        op_ids = core.op_ids
        op_nodes = core.op_nodes
        for op, rules in self.groups.items():
            wanted = [rule for rule in rules if rule.name in budgets]
            if not wanted:
                continue
            op_id = op_ids.get(op)
            cands = list(op_nodes[op_id]) if op_id is not None else []
            for rule in wanted:
                out: list = []
                if cands:
                    self.matchers[rule.name](core, cands, budgets[rule.name], out)
                results[rule.name] = out
        return results
