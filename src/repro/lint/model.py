"""Finding/suppression model shared by every ``repro.lint`` analyzer.

A :class:`Finding` is one reason-coded defect with a *stable id*: the
``rule_id`` names the check (``AR-CLOCK``, ``RU-UNSOUND``, ...) and the
``anchor`` names the *semantic* location — module plus enclosing qualname
(or ruleset/rule name), never a line number — so ids survive unrelated
edits above the finding.  Line numbers are carried separately for display
and for matching inline suppressions.

Suppressions are inline comments::

    deadline = time.monotonic() + timeout  # lint: ok(<rule-id>): <reason>

A suppression must carry a reason and must match a finding on its line;
a reason-less or unused suppression is itself a finding (``LINT-SUPPRESS``
/ ``LINT-UNUSED``), so dead waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

#: Rule ids for defects in the suppression mechanism itself.
SUPPRESS_NO_REASON = "LINT-SUPPRESS"
SUPPRESS_UNUSED = "LINT-UNUSED"

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok\(([A-Z][A-Z0-9-]*)\)(?::\s*(\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One reason-coded lint defect."""

    rule_id: str
    anchor: str
    message: str
    module: str = ""
    path: str = ""
    line: int | None = None
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def fid(self) -> str:
        """Stable finding id: ``rule@anchor``."""
        return f"{self.rule_id}@{self.anchor}"

    def as_dict(self) -> dict:
        out = {
            "id": self.fid,
            "rule": self.rule_id,
            "anchor": self.anchor,
            "message": self.message,
        }
        if self.module:
            out["module"] = self.module
        if self.path:
            out["path"] = self.path
        if self.line is not None:
            out["line"] = self.line
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class Suppression:
    """One inline ``# lint: ok(<rule-id>): <reason>`` waiver."""

    rule_id: str
    reason: str
    module: str
    path: str
    line: int
    used: bool = False


@dataclass(frozen=True)
class SourceModule:
    """One parsed module the tree analyzers walk."""

    name: str
    path: str
    source: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


class SourceTree:
    """Module name -> :class:`SourceModule`, the analyzers' input.

    Built from the real package via :func:`load_source_tree`, or
    synthesized from ``{name: source}`` dicts in tests via
    :meth:`from_sources`.
    """

    def __init__(self, modules: Iterable[SourceModule]) -> None:
        self.modules: dict[str, SourceModule] = {m.name: m for m in modules}

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "SourceTree":
        return cls(
            SourceModule(name, f"<synthetic:{name}>", text, ast.parse(text))
            for name, text in sources.items()
        )

    def __iter__(self):
        return iter(self.modules.values())

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def get(self, name: str) -> SourceModule | None:
        return self.modules.get(name)


def load_source_tree(root: "str | Path | None" = None) -> SourceTree:
    """Parse the installed ``repro`` package (or any package root)."""
    if root is None:
        import repro  # lint: ok(AR-LAYER): the linter locates the package it audits; resolved lazily and only for the default root

        root = Path(repro.__file__).parent
    root = Path(root)
    pkg = root.name
    modules = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).with_suffix("")
        parts = (pkg, *rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        source = path.read_text()
        modules.append(SourceModule(name, str(path), source, ast.parse(source)))
    return SourceTree(modules)


# ---------------------------------------------------------------- suppressions
def scan_suppressions(module: SourceModule) -> list[Suppression]:
    """Every inline waiver in the module, in line order."""
    found = []
    for lineno, text in enumerate(module.lines, start=1):
        for match in _SUPPRESS_RE.finditer(text):
            found.append(
                Suppression(
                    rule_id=match.group(1),
                    reason=(match.group(2) or "").strip(),
                    module=module.name,
                    path=module.path,
                    line=lineno,
                )
            )
    return found


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Drop findings waived on their own line; flag bad waivers.

    Returns the surviving findings plus ``LINT-SUPPRESS`` (reason missing)
    and ``LINT-UNUSED`` (waiver matched nothing) findings.  A reason-less
    suppression never waives anything — the reason *is* the audit trail.
    """
    by_site: dict[tuple[str, str, int], list[Suppression]] = {}
    for sup in suppressions:
        if sup.reason:
            by_site.setdefault((sup.module, sup.rule_id, sup.line), []).append(sup)

    surviving = []
    for finding in findings:
        matched = None
        if finding.line is not None:
            matched = by_site.get((finding.module, finding.rule_id, finding.line))
        if matched:
            for sup in matched:
                sup.used = True
        else:
            surviving.append(finding)

    for sup in suppressions:
        anchor = f"{sup.module}:{sup.rule_id}"
        if not sup.reason:
            surviving.append(
                Finding(
                    SUPPRESS_NO_REASON,
                    anchor,
                    f"suppression of {sup.rule_id} has no reason "
                    "(write `# lint: ok(<rule-id>): <why>`)",
                    module=sup.module,
                    path=sup.path,
                    line=sup.line,
                )
            )
        elif not sup.used:
            surviving.append(
                Finding(
                    SUPPRESS_UNUSED,
                    anchor,
                    f"suppression of {sup.rule_id} matches no finding on its "
                    "line — remove it (or it will hide a future regression)",
                    module=sup.module,
                    path=sup.path,
                    line=sup.line,
                )
            )
    return surviving


# ------------------------------------------------------------------- rendering
@dataclass
class Report:
    """One full lint run: surviving findings + per-rule audit evidence."""

    findings: list[Finding]
    audit: list[dict] = field(default_factory=list)
    checked: dict = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "clean": not self.findings,
            "findings": [f.as_dict() for f in self.findings],
            "audit": self.audit,
            "checked": self.checked,
        }

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return json.dumps(self.as_dict(), indent=2, sort_keys=True)
        lines = []
        for f in sorted(self.findings, key=lambda f: (f.rule_id, f.anchor)):
            where = f.path or f.module
            if f.line is not None:
                where = f"{where}:{f.line}"
            lines.append(f"{f.fid}\n  {where}\n  {f.message}")
        summary = (
            f"{len(self.findings)} finding(s)" if self.findings else "clean"
        )
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(self.checked.items()) if v
        )
        lines.append(f"repro lint: {summary}" + (f" ({counts})" if counts else ""))
        return "\n".join(lines)
