"""Global soundness fuzzing: run the whole rule library on random designs
and check that everything each e-class claims equal *is* equal.

This is the most important test in the repository: it would catch any rule
that is unsound over ``Z' = Z ∪ {*}`` — including the classic mistakes the
paper's construction exists to prevent (merging a sub-domain equivalence
into the whole domain).  For every e-class we materialize one expression per
member e-node and compare evaluations (including ``*``) on random inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import DatapathAnalysis, range_of, total_of
from repro.egraph import EGraph, Extractor, AstSizeCost, Runner
from repro.ir import BOT, evaluate, var
from repro.ir.expr import (
    Expr, abs_, const, eq, ge, gt, le, lnot, lt, lzc, max_, min_,
    mux, ne, trunc,
)
from repro.rewrites import all_rules
from repro.pipeline.budget import Budget

VARS = [var("a", 4), var("b", 4), var("c", 4)]
WIDTHS = {"a": 4, "b": 4, "c": 4}


def random_expr(rng: random.Random, depth: int) -> Expr:
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.3:
            return const(rng.randint(0, 15))
        return rng.choice(VARS)
    pick = rng.randrange(14)
    sub = lambda: random_expr(rng, depth - 1)  # noqa: E731
    if pick == 0:
        return sub() + sub()
    if pick == 1:
        return sub() - sub()
    if pick == 2:
        return sub() * const(rng.choice([0, 1, 2, 4]))
    if pick == 3:
        return mux(rng.choice([gt, lt, eq, ne, ge, le])(sub(), sub()), sub(), sub())
    if pick == 4:
        return sub() << const(rng.randint(0, 3))
    if pick == 5:
        return sub() >> const(rng.randint(0, 3))
    if pick == 6:
        return trunc(sub(), rng.randint(1, 6))
    if pick == 7:
        return abs_(sub())
    if pick == 8:
        return min_(sub(), sub()) if rng.random() < 0.5 else max_(sub(), sub())
    if pick == 9:
        return lnot(sub())
    if pick == 10:
        return lzc(trunc(sub(), 4), 4)
    if pick == 11:
        return trunc(sub(), 4) & trunc(sub(), 4)
    if pick == 12:
        return trunc(sub(), 4) | trunc(sub(), 4)
    return -sub()


def class_member_exprs(g: EGraph, extractor, class_id: int, cap: int = 6):
    """One expression per member e-node (children via cheapest extraction)."""
    out = []
    for enode in list(g[class_id].nodes)[:cap]:
        try:
            kids = tuple(extractor.expr_of(c) for c in enode.children)
        except KeyError:
            continue
        out.append(Expr(enode.op, enode.attrs, kids))
    return out


@pytest.mark.parametrize("seed", range(8))
def test_all_rules_preserve_semantics(seed):
    rng = random.Random(seed)
    g = EGraph([DatapathAnalysis()])
    for _ in range(4):
        g.add_expr(random_expr(rng, 4))
    g.rebuild()
    Runner(g, all_rules(), budget=Budget(iters=4, nodes=3000)).run()

    extractor = Extractor(g, AstSizeCost(), strip_assumes=False)
    envs = [
        {name: rng.randrange(1 << w) for name, w in WIDTHS.items()}
        for _ in range(24)
    ]
    checked = 0
    for eclass in g.classes():
        members = class_member_exprs(g, extractor, eclass.id)
        if len(members) < 2:
            continue
        for env in envs:
            values = [evaluate(m, env) for m in members]
            baseline = values[0]
            for member, value in zip(members[1:], values[1:], strict=True):
                assert value == baseline, (
                    f"class {eclass.id} members disagree under {env}:\n"
                    f"  {members[0]!r} = {baseline!r}\n  {member!r} = {value!r}"
                )
            checked += 1
    assert checked > 0  # the fuzz actually exercised merged classes


@pytest.mark.parametrize("seed", range(8))
def test_analysis_stays_sound_under_rewriting(seed):
    """range_of over-approximates every member's non-* evaluations, and
    total classes never evaluate to *."""
    rng = random.Random(100 + seed)
    g = EGraph([DatapathAnalysis()])
    g.add_expr(random_expr(rng, 4))
    g.add_expr(random_expr(rng, 3))
    g.rebuild()
    Runner(g, all_rules(), budget=Budget(iters=4, nodes=3000)).run()

    extractor = Extractor(g, AstSizeCost(), strip_assumes=False)
    envs = [
        {name: rng.randrange(1 << w) for name, w in WIDTHS.items()}
        for _ in range(24)
    ]
    for eclass in g.classes():
        try:
            expr = extractor.expr_of(eclass.id)
        except KeyError:
            continue
        iset = range_of(g, eclass.id)
        for env in envs:
            value = evaluate(expr, env)
            if value is BOT:
                assert not total_of(g, eclass.id), (
                    f"total class {eclass.id} evaluated to * under {env}: {expr!r}"
                )
            else:
                assert value in iset, (
                    f"class {eclass.id}: {expr!r} = {value} outside {iset} ({env})"
                )
