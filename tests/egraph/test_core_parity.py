"""Differential parity: flat-core ``EGraph`` vs the legacy object engine.

The flat struct-of-arrays core replaced the per-object engine behind the
same API; the legacy implementation is kept (``repro.egraph.legacy``) as a
differential oracle.  Both engines are driven in lockstep through random
add/union workloads, saturation runs, and the full optimization pipeline,
and must agree on every observable: class/node counts, the partition of
tracked ids (canonical ids up to isomorphism — the engines allocate ids
differently, so only the induced equivalence relation is comparable),
extraction costs, and each registry design's optimized cost.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import DESIGNS, get_design
from repro.egraph import EGraph, Extractor, Runner
from repro.egraph.extract import AstSizeCost
from repro.egraph.legacy import LegacyEGraph
from repro.egraph.rewrite import rewrite
from repro.ir import ops

ENGINES = (EGraph, LegacyEGraph)


@st.composite
def workload(draw):
    n_leaves = draw(st.integers(2, 5))
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 999), st.integers(0, 999)),
            min_size=1,
            max_size=40,
        )
    )
    return n_leaves, steps


def _drive(engine, load):
    """Apply one workload to a fresh engine; returns (graph, tracked ids)."""
    n_leaves, steps = load
    g = engine()
    ids = [g.add_node(ops.VAR, (f"v{i}", 4)) for i in range(n_leaves)]
    for kind, x, y in steps:
        a, b = ids[x % len(ids)], ids[y % len(ids)]
        if kind == 0:
            ids.append(g.add_node(ops.NEG, (), (g.find(a),)))
        elif kind == 1:
            ids.append(g.add_node(ops.ADD, (), (g.find(a), g.find(b))))
        elif kind == 2:
            ids.append(g.add_node(ops.MUX, (), (g.find(a), g.find(b), g.find(a))))
        else:
            g.union(a, b)
    g.rebuild()
    return g, ids


def _partition(g, ids):
    """The equivalence relation over tracked ids, as a frozenset of groups."""
    groups: dict[int, list[int]] = {}
    for pos, class_id in enumerate(ids):
        groups.setdefault(g.find(class_id), []).append(pos)
    return frozenset(tuple(members) for members in groups.values())


@settings(max_examples=60, deadline=None)
@given(workload())
def test_counts_and_partition_agree(load):
    flat, flat_ids = _drive(EGraph, load)
    legacy, legacy_ids = _drive(LegacyEGraph, load)
    assert flat.class_count == legacy.class_count
    assert flat.node_count == legacy.node_count
    assert _partition(flat, flat_ids) == _partition(legacy, legacy_ids)


@settings(max_examples=40, deadline=None)
@given(workload())
def test_extraction_costs_agree(load):
    """Bottom-up extraction sees the same best AST size for every tracked id
    (flat runs the façade/view path, legacy the object path)."""
    flat, flat_ids = _drive(EGraph, load)
    legacy, legacy_ids = _drive(LegacyEGraph, load)
    ex_flat = Extractor(flat, AstSizeCost())
    ex_legacy = Extractor(legacy, AstSizeCost())
    for fid, lid in zip(flat_ids, legacy_ids, strict=True):
        assert ex_flat.cost_of(fid) == ex_legacy.cost_of(lid)


#: A small confluent rule set exercising search, apply, and congruence.
def _rules():
    return [
        rewrite("commute-add", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("mul-two", "(* ?a 2)", "(<< ?a 1)"),
        rewrite("add-self", "(+ ?a ?a)", "(* ?a 2)"),
        rewrite("shift-unshift", "(>> (<< ?a 1) 1)", "?a"),
    ]


@st.composite
def expr_workload(draw):
    """A random expression DAG built bottom-up over three leaves."""
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 99), st.integers(0, 99)),
            min_size=1,
            max_size=12,
        )
    )
    return steps


@settings(max_examples=25, deadline=None)
@given(expr_workload())
def test_saturation_runs_agree(steps):
    """A bounded Runner over the same rule set leaves both engines with the
    same class count and the same best extraction cost at every root."""

    def build(engine):
        g = engine()
        ids = [g.add_node(ops.VAR, (f"v{i}", 8)) for i in range(3)]
        ids.append(g.add_node(ops.CONST, (2,)))
        for kind, x, y in steps:
            a, b = ids[x % len(ids)], ids[y % len(ids)]
            if kind == 0:
                ids.append(g.add_node(ops.ADD, (), (a, b)))
            elif kind == 1:
                ids.append(g.add_node(ops.MUL, (), (a, ids[3])))
            elif kind == 2:
                ids.append(g.add_node(ops.SHL, (), (a, g.add_const(1))))
            else:
                ids.append(g.add_node(ops.SHR, (), (a, g.add_const(1))))
        g.rebuild()
        return g, ids

    flat, flat_ids = build(EGraph)
    legacy, legacy_ids = build(LegacyEGraph)
    from repro.pipeline.budget import Budget

    budget = Budget(iters=3, nodes=4_000, time_s=30.0)
    Runner(flat, _rules(), budget=budget, check_invariants=True).run()
    Runner(legacy, _rules(), budget=budget, check_invariants=True).run()

    assert flat.class_count == legacy.class_count
    assert flat.node_count == legacy.node_count
    ex_flat = Extractor(flat, AstSizeCost())
    ex_legacy = Extractor(legacy, AstSizeCost())
    for fid, lid in zip(flat_ids, legacy_ids, strict=True):
        assert ex_flat.cost_of(fid) == ex_legacy.cost_of(lid)


#: Harness limits for the full-pipeline differential (keeps legacy runtime
#: tolerable while every optimization mechanism still fires).
ITERS = 3
NODE_LIMIT = 8_000


def _optimize(design, engine_cls, monkeypatch):
    import repro.pipeline.stages as stages
    from repro.pipeline import Extract, Ingest, Pipeline, Saturate
    from repro.rewrites import compose_rules

    monkeypatch.setattr(stages, "EGraph", engine_cls)
    result = Pipeline(
        [
            Ingest(source=design.verilog),
            Saturate(compose_rules(), iter_limit=ITERS, node_limit=NODE_LIMIT),
            Extract(),
        ]
    ).run(input_ranges=design.input_ranges)
    return {name: cost.key for name, cost in result.optimized_costs.items()}


@pytest.mark.parametrize("name", sorted(DESIGNS))
def test_registry_designs_optimized_costs_match_legacy(name, monkeypatch):
    """The flat core optimizes every registry design to exactly the cost the
    legacy engine reached under the same budgets."""
    design = get_design(name)
    flat = _optimize(design, EGraph, monkeypatch)
    legacy = _optimize(design, LegacyEGraph, monkeypatch)
    assert flat == legacy
