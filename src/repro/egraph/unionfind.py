"""Disjoint-set forest with iterative path halving and union by size.

``find`` is a single pass: every node on the walk is re-pointed at its
grandparent (*path halving*, Tarjan & van Leeuwen), which gives the same
amortized near-O(1) bound as full two-pass compression without revisiting
the path.  The loop is iterative by construction — deep parent chains (the
flat core regularly unions thousands of classes) can never hit Python's
recursion limit.
"""

from __future__ import annotations


class UnionFind:
    """Union-find over dense integer ids created by :meth:`make_set`."""

    __slots__ = ("_parent", "_size")

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def find(self, item: int) -> int:
        """Canonical representative of ``item`` (iterative path halving)."""
        parent = self._parent
        while parent[item] != item:
            # Halve the path: point item at its grandparent, then step there.
            parent[item] = item = parent[parent[item]]
        return item

    def in_same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def union(self, a: int, b: int) -> tuple[int, int]:
        """Merge the sets of ``a`` and ``b``.

        Returns ``(root, absorbed)`` — the surviving canonical id and the id
        that was absorbed (equal when already unified).  Union by size keeps
        find paths short.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra, ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra, rb
