"""A compact ROBDD engine (unique table + memoized ITE)."""

from __future__ import annotations

import time
from typing import Callable


class BddLimitError(RuntimeError):
    """The node budget was exhausted (caller should fall back).

    ``nodes`` carries the table size at the stop, so the caller can charge
    the spend into a resource ledger even though the proof was abandoned.
    """

    def __init__(self, message: str, nodes: int = 0) -> None:
        super().__init__(message)
        self.nodes = nodes


class BddDeadlineError(BddLimitError):
    """The wall-clock deadline passed mid-build (caller should fall back)."""


#: How many node insertions pass between deadline polls: cheap enough to
#: stay off the ITE hot path, tight enough that a blowing-up BDD stops
#: within a few hundred nodes of the deadline.
_DEADLINE_POLL_INTERVAL = 256

#: How many ``ite`` calls pass between deadline polls.  Memoized/hash-cons
#: hits do work without inserting nodes, so insertion-only polling would
#: let lookup-dominated phases run unchecked past the deadline.
_ITE_POLL_INTERVAL = 4096


class BDD:
    """Reduced ordered BDDs over variables ``0 .. num_vars-1``.

    Node ids: 0 and 1 are the terminals; internal nodes are triples
    ``(var, low, high)`` interned in a unique table.  ``low`` is the cofactor
    for var=0.  Variable order is the natural integer order.

    ``deadline`` (an absolute instant on ``clock``, injectable for tests)
    makes the build interruptible: node creation polls the clock every
    :data:`_DEADLINE_POLL_INTERVAL` insertions and raises
    :class:`BddDeadlineError` once the instant passes, so a blowing-up
    equivalence check degrades instead of overshooting a governed run's
    budget arbitrarily.
    """

    FALSE = 0
    TRUE = 1

    def __init__(
        self,
        node_limit: int = 1_000_000,
        deadline: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.node_limit = node_limit
        self.deadline = deadline
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        # nodes[i] = (var, low, high); two placeholder rows for terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_memo: dict[tuple[int, int, int], int] = {}
        self._ite_calls = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def var(self, index: int) -> int:
        """The BDD of variable ``index``."""
        return self._mk(index, self.FALSE, self.TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._nodes) >= self.node_limit:
            raise BddLimitError(
                f"BDD exceeded {self.node_limit} nodes", nodes=len(self._nodes)
            )
        node_id = len(self._nodes)
        if (
            self.deadline is not None
            and node_id % _DEADLINE_POLL_INTERVAL == 0
            and self.clock() > self.deadline
        ):
            raise BddDeadlineError(
                f"BDD build passed its deadline at {node_id} nodes",
                nodes=node_id,
            )
        self._nodes.append(key)
        self._unique[key] = node_id
        return node_id

    def _top_var(self, *ids: int) -> int:
        tops = [self._nodes[i][0] for i in ids if i > 1]
        return min(tops)

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        if node <= 1:
            return node, node
        node_var, low, high = self._nodes[node]
        if node_var == var:
            return low, high
        return node, node

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if self.deadline is not None:
            self._ite_calls += 1
            if (
                self._ite_calls % _ITE_POLL_INTERVAL == 0
                and self.clock() > self.deadline
            ):
                raise BddDeadlineError(
                    f"BDD build passed its deadline at {len(self._nodes)} "
                    "nodes",
                    nodes=len(self._nodes),
                )
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        found = self._ite_memo.get(key)
        if found is not None:
            return found
        var = self._top_var(f, g, h)
        f0, f1 = self._cofactors(f, var)
        g0, g1 = self._cofactors(g, var)
        h0, h1 = self._cofactors(h, var)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(var, low, high)
        self._ite_memo[key] = result
        return result

    # ------------------------------------------------------------- operators
    def apply_not(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_gate(self, kind: str, f: int, g: int | None = None) -> int:
        """Apply a netlist gate kind."""
        if kind == "NOT":
            return self.apply_not(f)
        if kind == "AND":
            return self.apply_and(f, g)
        if kind == "OR":
            return self.apply_or(f, g)
        if kind == "XOR":
            return self.apply_xor(f, g)
        if kind == "NAND":
            return self.apply_not(self.apply_and(f, g))
        if kind == "NOR":
            return self.apply_not(self.apply_or(f, g))
        if kind == "XNOR":
            return self.apply_not(self.apply_xor(f, g))
        raise ValueError(f"unknown gate kind {kind!r}")

    # --------------------------------------------------------------- queries
    def any_sat(self, f: int) -> dict[int, int] | None:
        """One satisfying assignment (var -> 0/1), or None when f == FALSE."""
        if f == self.FALSE:
            return None
        assignment: dict[int, int] = {}
        node = f
        while node > 1:
            var, low, high = self._nodes[node]
            if high != self.FALSE:
                assignment[var] = 1
                node = high
            else:
                assignment[var] = 0
                node = low
        return assignment

    def count_sat(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        memo: dict[int, int] = {}

        def rec(node: int) -> tuple[int, int]:
            """Returns (count below top var of node, top var index)."""
            if node == self.FALSE:
                return 0, num_vars
            if node == self.TRUE:
                return 1, num_vars
            if node in memo:
                return memo[node], self._nodes[node][0]
            var, low, high = self._nodes[node]
            count_low, var_low = rec(low)
            count_high, var_high = rec(high)
            total = count_low * (1 << (var_low - var - 1)) + count_high * (
                1 << (var_high - var - 1)
            )
            memo[node] = total
            return total, var

        count, top = rec(f)
        return count * (1 << top)
