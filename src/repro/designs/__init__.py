"""The paper's benchmark designs (Sections V and VI).

Each design provides generated Verilog (exercising the frontend), optional
input-domain constraints, and — for the FP subtractor — a hand-written
dual-path reference reproducing Figure 2b for comparison.

The interpolation kernel is a reconstruction: the original is a proprietary
Intel media kernel; ours exercises the same documented mechanism (range-gated
dead code that only a *union* abstraction can prove dead — Section VI).
"""

from repro.designs.fp_sub import (
    fp_sub_behavioural_ir,
    fp_sub_behavioural_verilog,
    fp_sub_dual_path_ir,
    fp_sub_input_ranges,
)
from repro.designs.conversions import (
    float_to_unorm_input_ranges,
    float_to_unorm_verilog,
    unorm_to_float_verilog,
)
from repro.designs.interpolation import interpolation_verilog
from repro.designs.lzc_example import lzc_example_input_ranges, lzc_example_verilog
from repro.designs.registry import (
    DESIGNS,
    Design,
    design_names,
    design_roots,
    get_design,
)
from repro.designs.stress import stress_wide_input_ranges, stress_wide_verilog

__all__ = [
    "Design",
    "DESIGNS",
    "design_names",
    "design_roots",
    "get_design",
    "fp_sub_behavioural_verilog",
    "fp_sub_behavioural_ir",
    "fp_sub_dual_path_ir",
    "fp_sub_input_ranges",
    "float_to_unorm_verilog",
    "float_to_unorm_input_ranges",
    "unorm_to_float_verilog",
    "interpolation_verilog",
    "lzc_example_verilog",
    "lzc_example_input_ranges",
    "stress_wide_verilog",
    "stress_wide_input_ranges",
]
