"""Section IV-D model cost of *fixed* expression trees.

The extraction objective prices e-nodes inside the e-graph
(:mod:`repro.synth.cost`); this module prices a plain :class:`~repro.ir.expr.Expr`
tree the same way, which is what pipeline stages and reports need when they
compare a behavioural tree against an extracted one.

This lives in :mod:`repro.synth` (not :mod:`repro.opt`, its historical home)
so that :mod:`repro.pipeline.stages` can import it at module level:
``repro.opt`` imports the optimizer, which imports the pipeline package —
a cost helper there forces every consumer through that package-import cycle
(the old ``Extract.run`` hid it behind a lazy import).  ``repro.synth`` and
``repro.analysis`` sit below both packages, so the import DAG stays acyclic;
``tests/test_import_cycles.py`` pins this with clean-interpreter imports.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis import DatapathAnalysis, expr_ranges, expr_totals
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr
from repro.synth.cost import (
    CONST_HINT_POSITIONS,
    DelayArea,
    DelayAreaCost,
    lexicographic_key,
    operator_model,
)


def model_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Section IV-D model cost of a *fixed* expression tree.

    Computed directly over the tree: the tree range/totality analyses supply
    the widths and the constant-folding knowledge the e-class analysis would
    derive, and each operator is priced through the same
    :func:`~repro.synth.cost.operator_model` the extraction objective uses.
    (Earlier revisions loaded the tree into a throwaway e-graph per call —
    the dominant cost of reporting on large batches; the e-graph path
    survives as :func:`egraph_model_cost` and the test suite asserts parity.)

    Folding mirrors the e-class analysis: a total subterm whose range is a
    single value is a constant (zero cost), an ``ASSUME`` is a wire over its
    guarded child and folds to a constant when its *refined* range is a
    single value and the guarded child is total.
    """
    ranges = expr_ranges(expr, input_ranges)
    totals = expr_totals(expr, ranges)
    memo: dict[Expr, tuple[float, float]] = {}

    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if c not in memo)
            continue
        if totals[node] and ranges[node].as_point() is not None:
            # Folds to a literal constant (free).
            memo[node] = (0.0, 0.0)
        elif node.op is ops.ASSUME:
            guarded = node.children[0]
            if ranges[node].as_point() is not None and totals[guarded]:
                # Partial fold: ASSUME(x, C) == ASSUME(k, C) when the
                # refined range is {k} — costs as the constant.
                memo[node] = (0.0, 0.0)
            else:
                memo[node] = memo[guarded]
        else:
            kids = node.children
            # Mirrors the e-graph path: a child that folds (total +
            # singleton range) is a literal constant there.
            consts = [False] * len(kids)
            for position in CONST_HINT_POSITIONS.get(node.op, ()):
                child = kids[position]
                consts[position] = (
                    totals[child] and ranges[child].as_point() is not None
                )
            own_delay, own_area = operator_model(
                node.op, ranges[node], [ranges[c] for c in kids], consts
            )
            delay = own_delay + max((memo[c][0] for c in kids), default=0.0)
            area = own_area + sum(memo[c][1] for c in kids)
            memo[node] = (delay, area)

    delay, area = memo[expr]
    return DelayArea(delay, area, lexicographic_key(delay, area))


def dag_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Section IV-D model cost of the expression priced as a *DAG*.

    :func:`model_cost` prices the tree: a subterm shared by two parents
    contributes its area once per parent — the right reading when each
    parent instantiates its own hardware, and the objective the greedy
    extractor optimizes per root.  This function prices the shared
    implementation instead: every distinct hardware subterm contributes its
    own area exactly once (delay is identical — a shared node has one
    arrival time either way).  This is the objective of the ILP extraction
    in :mod:`repro.solve` and the metric its never-worse-than-greedy
    guarantee is stated in.

    Folding matches :func:`model_cost`: a total singleton-range subterm is
    a free constant (and its children are not descended into — they fold
    away with it), an ``ASSUME`` is a wire over its guarded child whose
    constraint children never contribute hardware.
    """
    ranges = expr_ranges(expr, input_ranges)
    totals = expr_totals(expr, ranges)
    #: node -> arrival delay of its output (hardware-reachable nodes only).
    delay_memo: dict[Expr, float] = {}
    #: nodes whose (node, True) completion entry is already on the stack —
    #: without this, a duplicated child (``x + x``) or a diamond would push
    #: a second completion entry and its area would accumulate twice.
    expanded: set[Expr] = set()
    area_total = 0.0

    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if not ready and (node in delay_memo or node in expanded):
            continue
        if totals[node] and ranges[node].as_point() is not None:
            delay_memo[node] = 0.0  # folds to a literal constant (free)
            continue
        if node.op is ops.ASSUME:
            guarded = node.children[0]
            if ranges[node].as_point() is not None and totals[guarded]:
                delay_memo[node] = 0.0  # partial fold (see model_cost)
            elif not ready:
                expanded.add(node)
                stack.append((node, True))
                # A wire: only the guarded child is hardware; constraint
                # children describe the assumption, they are never built.
                stack.append((guarded, False))
            else:
                delay_memo[node] = delay_memo[guarded]
            continue
        if not ready:
            expanded.add(node)
            stack.append((node, True))
            stack.extend(
                (c, False) for c in node.children if c not in delay_memo
            )
            continue
        kids = node.children
        consts = [False] * len(kids)
        for position in CONST_HINT_POSITIONS.get(node.op, ()):
            child = kids[position]
            consts[position] = (
                totals[child] and ranges[child].as_point() is not None
            )
        own_delay, own_area = operator_model(
            node.op, ranges[node], [ranges[c] for c in kids], consts
        )
        delay_memo[node] = own_delay + max(
            (delay_memo[c] for c in kids), default=0.0
        )
        area_total += own_area  # once per distinct node: the DAG reading

    delay = delay_memo[expr]
    return DelayArea(delay, area_total, lexicographic_key(delay, area_total))


def egraph_model_cost(
    expr: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> DelayArea:
    """Reference implementation of :func:`model_cost` through the e-graph.

    Loads the tree into a throwaway e-graph (no rewriting) so the extraction
    cost function sees e-class analysis widths, then costs it as-is.  Kept as
    the differential oracle for the tree path.
    """
    from repro.egraph import EGraph, Extractor  # heavy; only this oracle needs it

    egraph = EGraph([DatapathAnalysis(dict(input_ranges or {}))])
    root = egraph.add_expr(expr)
    egraph.rebuild()
    extractor = Extractor(egraph, DelayAreaCost())
    return extractor.cost_of(root)
