"""Theoretical per-operator delay and area models (Section IV-D).

"For each operator we compute an estimate based on a fixed component
architecture for the total number of two-input gates on the operator's
critical path as a function of operator precision."

Units: delay is in two-input-gate levels, area in two-input-gate
equivalents.  The fixed architectures:

===========  =======================================  =====================
operator     architecture                             delay / area
===========  =======================================  =====================
add/sub      Sklansky parallel-prefix                 2·lg(w)+3 / 5w+1.5w·lg(w)
compare      prefix borrow chain                      2·lg(w)+2 / 4w
eq/ne        XOR + AND-reduction tree                 lg(w)+2  / 4w
mux          per-bit 2:1                              2 / 3w
shift-var    barrel (one mux level per shift bit)     2·levels / 3w·levels
shift-const  wiring                                   0 / 0
lzc          priority-encode tree                     2·lg(w)+1 / 4w
mul          array + final adder                      4·lg(w)+6 / 6w²
bitwise      per-bit gate                             1 (2 for xor) / w
lnot         OR-reduction + invert                    lg(w)+1 / w
neg          invert + increment (half-sum chain)      2·lg(w)+2 / 3w
===========  =======================================  =====================

``lg`` is ``ceil(log2(max(w, 2)))``.  Constant operands make comparisons and
add/sub slightly cheaper, and shifts by constants free, which the model
recognizes through the ``const_operand`` hints.
"""

from __future__ import annotations

import math

from repro.ir import ops
from repro.ir.ops import Op

#: Operators that cost nothing: pure wiring / renaming.
FREE_OPS = frozenset({ops.VAR, ops.CONST, ops.TRUNC, ops.SLICE, ops.CONCAT})


def lg(width: int) -> int:
    """``ceil(log2(width))`` clamped below at 1."""
    return max(1, math.ceil(math.log2(max(width, 2))))


def delay_model(
    op: Op,
    width: int,
    operand_widths: tuple[int, ...] = (),
    shift_levels: int | None = None,
    const_operand: bool = False,
) -> float:
    """Critical-path gate levels through one operator instance.

    ``width`` is the operator's result width; ``operand_widths`` the
    children's widths; ``shift_levels`` the number of meaningful shift-amount
    bits for variable shifts (None means the shift amount is constant).
    """
    w = max([width, *operand_widths, 1])
    if op in FREE_OPS or op is ops.ASSUME:
        return 0.0
    if op in (ops.ADD, ops.SUB):
        if const_operand:
            return lg(w) + 2.0  # incrementer / decrementer
        return 2.0 * lg(w) + 3.0
    if op is ops.NEG:
        return 2.0 * lg(w) + 2.0
    if op in (ops.LT, ops.LE, ops.GT, ops.GE):
        cmp_w = max([*operand_widths, 1])
        base = 2.0 * lg(cmp_w) + 2.0
        return base - 1.0 if const_operand else base
    if op in (ops.EQ, ops.NE):
        cmp_w = max([*operand_widths, 1])
        return lg(cmp_w) + 2.0
    if op is ops.MUX:
        return 2.0
    if op in (ops.SHL, ops.SHR):
        if shift_levels is None or shift_levels <= 0:
            return 0.0
        return 2.0 * shift_levels
    if op is ops.LZC:
        return 2.0 * lg(w) + 1.0
    if op is ops.MUL:
        # Shift-and-add array (matches the netlist generator): linear rows.
        small = min([*operand_widths, w]) if operand_widths else w
        return 2.0 * max(small, 1) + 2.0 * lg(w) + 2.0
    if op in (ops.AND, ops.OR):
        return 1.0
    if op is ops.XOR:
        return 2.0
    if op is ops.NOT:
        return 1.0
    if op is ops.LNOT:
        operand = max([*operand_widths, 1])
        return lg(operand) + 1.0
    if op in (ops.MIN, ops.MAX, ops.ABS):
        return 2.0 * lg(w) + 4.0  # compare/negate then select
    raise ValueError(f"no delay model for {op}")


def area_model(
    op: Op,
    width: int,
    operand_widths: tuple[int, ...] = (),
    shift_levels: int | None = None,
    const_operand: bool = False,
) -> float:
    """Two-input-gate count of one operator instance."""
    w = max([width, *operand_widths, 1])
    if op in FREE_OPS or op is ops.ASSUME:
        return 0.0
    if op in (ops.ADD, ops.SUB):
        if const_operand:
            return 2.5 * w  # incrementer / decrementer
        return 5.0 * w + 1.5 * w * lg(w)
    if op is ops.NEG:
        return 3.0 * w
    if op in (ops.LT, ops.LE, ops.GT, ops.GE):
        cmp_w = max([*operand_widths, 1])
        area = 4.0 * cmp_w
        return area * 0.6 if const_operand else area
    if op in (ops.EQ, ops.NE):
        cmp_w = max([*operand_widths, 1])
        area = 4.0 * cmp_w
        return area * 0.5 if const_operand else area
    if op is ops.MUX:
        return 3.0 * w
    if op in (ops.SHL, ops.SHR):
        if shift_levels is None or shift_levels <= 0:
            return 0.0
        return 3.0 * w * shift_levels
    if op is ops.LZC:
        return 4.0 * w
    if op is ops.MUL:
        small = min([*operand_widths, w]) or w
        return 6.0 * w * max(small, 1)
    if op in (ops.AND, ops.OR):
        return 1.0 * w
    if op is ops.XOR:
        return 2.0 * w
    if op is ops.NOT:
        return 1.0 * w
    if op is ops.LNOT:
        return 1.0 * max([*operand_widths, 1])
    if op in (ops.MIN, ops.MAX):
        return 4.0 * w + 3.0 * w
    if op is ops.ABS:
        return 3.0 * w + 3.0 * w
    raise ValueError(f"no area model for {op}")
