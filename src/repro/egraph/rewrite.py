"""Rewrite rules: declarative (pattern -> pattern) and dynamic (Python).

A :class:`Rewrite` couples a *searcher* with an *applier*:

* the searcher produces ``(class_id, env)`` match candidates;
* the applier builds the right-hand side and unions it with the matched
  class (constructive application — the left-hand side stays in the graph,
  as Section II of the paper emphasizes).

Dynamic rules bypass the pattern language entirely: a callable inspects the
e-graph and returns the unions it wants.  The ASSUME machinery of Table I and
the analysis-driven rules ("x is provably constant here") are dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import (
    Pattern,
    as_pattern,
    ematch,
    instantiate,
    pattern_vars,
)

#: A condition receives (egraph, env) and vetoes the application when False.
Condition = Callable[[EGraph, dict], bool]

#: Dynamic searcher: egraph, per-op index -> iterable of (class_id, env).
Searcher = Callable[[EGraph, dict], Iterable[tuple[int, dict]]]

#: Dynamic applier: egraph, env, matched class -> replacement class id or
#: None to skip.  The rewrite unions the result with the matched class.
Applier = Callable[[EGraph, dict, int], "int | None"]


@dataclass
class Rewrite:
    """A named rewrite rule."""

    name: str
    searcher: "Pattern | Searcher"
    applier: "Pattern | Applier"
    conditions: tuple[Condition, ...] = ()
    #: Rules marked ``once`` stop firing after their first successful
    #: application (used for case-split introduction, Section V).
    once: bool = False

    def search(self, egraph: EGraph, index: dict, limit: int) -> list[tuple[int, dict]]:
        """All match candidates, capped at ``limit``."""
        if callable(self.searcher):
            found = []
            for item in self.searcher(egraph, index):
                found.append(item)
                if len(found) >= limit:
                    break
            return found
        return ematch(egraph, self.searcher, index, limit=limit)

    def apply(self, egraph: EGraph, class_id: int, env: dict) -> bool:
        """Apply to one match; returns True when the graph changed."""
        for cond in self.conditions:
            if not cond(egraph, env):
                return False
        before = egraph.version
        if callable(self.applier):
            new_id = self.applier(egraph, env, egraph.find(class_id))
        else:
            new_id = instantiate(egraph, self.applier, env)
        if new_id is None:
            return egraph.version != before
        egraph.union(class_id, new_id)
        return egraph.version != before

    def __repr__(self) -> str:
        return f"Rewrite({self.name})"


def rewrite(
    name: str,
    lhs: "Pattern | str",
    rhs: "Pattern | str | Applier",
    *conditions: Condition,
    once: bool = False,
) -> Rewrite:
    """Build a rule from s-expression strings (or a dynamic applier).

    >>> rewrite("mul-two", "(* ?a 2)", "(<< ?a 1)")
    Rewrite(mul-two)
    """
    lhs_pat = as_pattern(lhs)
    if callable(rhs):
        return Rewrite(name, lhs_pat, rhs, tuple(conditions), once)
    rhs_pat = as_pattern(rhs)
    missing = pattern_vars(rhs_pat) - pattern_vars(lhs_pat)
    if missing:
        raise ValueError(f"rule {name}: unbound RHS variables {sorted(missing)}")
    return Rewrite(name, lhs_pat, rhs_pat, tuple(conditions), once)


def birewrite(
    name: str, lhs: "Pattern | str", rhs: "Pattern | str", *conditions: Condition
) -> list[Rewrite]:
    """A rule applied in both directions (two :class:`Rewrite` objects)."""
    return [
        rewrite(f"{name}", lhs, rhs, *conditions),
        rewrite(f"{name}-rev", rhs, lhs, *conditions),
    ]


def dynamic(name: str, searcher: Searcher, applier: Applier, once: bool = False) -> Rewrite:
    """A fully dynamic rule."""
    return Rewrite(name, searcher, applier, (), once)
