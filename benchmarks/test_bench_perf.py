"""Perf trajectory harness for the saturation hot path.

Times the `fp_sub` optimize run (iter_limit=4, verification off) that the
engine work is benchmarked against, and emits ``BENCH_perf.json`` at the
repo root — wall time, nodes/sec and the per-phase split from
:class:`~repro.egraph.runner.IterationStats` — so the perf trajectory is
tracked across PRs.

Unlike the paper-figure benches this one is cheap (a few seconds) and runs
in the default test selection, acting as a regression guard: a change that
loses the incremental-engine speedup fails the assertion at the bottom.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import DESIGNS
from repro.pipeline import Budget, Job, RunRecord, execute_job, record_from_context

#: Wall time of the identical workload at the seed commit (2e25767),
#: measured back-to-back with the optimized engine on the same machine.
#: The profiling box cited in ISSUE 1 measured 12.7s for the same run.
SEED_BASELINE_WALL_S = 0.794
ISSUE_BASELINE_WALL_S = 12.7

REPEATS = 3
ITER_LIMIT = 4


#: Records kept in the ``BENCH_perf.json`` trajectory (oldest dropped).
RECORD_HISTORY_CAP = 50


def _run_once() -> tuple[float, "object"]:
    design = DESIGNS["fp_sub"]
    config = OptimizerConfig(
        iter_limit=ITER_LIMIT, node_limit=design.node_limit, verify=False
    )
    tool = DatapathOptimizer(design.input_ranges, config)
    t0 = time.perf_counter()
    result = tool.optimize_verilog(design.verilog)
    return time.perf_counter() - t0, result


def test_perf_fp_sub_optimize():
    walls = []
    result = None
    for _ in range(REPEATS):
        wall, result = _run_once()
        walls.append(wall)
    report = result.report
    wall = statistics.median(walls)
    speedup = SEED_BASELINE_WALL_S / wall

    payload = {
        "design": "fp_sub",
        "iter_limit": ITER_LIMIT,
        "verify": False,
        "repeats": REPEATS,
        "walls_s": [round(w, 4) for w in walls],
        "wall_s": round(wall, 4),
        "wall_min_s": round(min(walls), 4),
        "seed_baseline_wall_s": SEED_BASELINE_WALL_S,
        "issue_baseline_wall_s": ISSUE_BASELINE_WALL_S,
        "speedup_vs_seed": round(speedup, 2),
        "runner_time_s": round(report.total_time, 4),
        "stop_reason": report.stop_reason.value,
        "nodes": report.nodes,
        "classes": report.classes,
        "nodes_per_s": round(report.nodes / report.total_time, 1),
        "iterations": [
            {
                "index": it.index,
                "nodes_before": it.nodes_before,
                "nodes_after": it.nodes_after,
                "classes_before": it.classes_before,
                "classes_after": it.classes_after,
                "applied": sum(it.applied.values()),
                "search_s": round(it.search_time, 4),
                "apply_s": round(it.apply_time, 4),
                "rebuild_s": round(it.rebuild_time, 4),
            }
            for it in report.iterations
        ],
    }

    # Append this run to the trajectory through the Session record format —
    # the same serialization `repro bench --records` emits — so the perf
    # history is machine-readable alongside the headline payload.
    record = record_from_context(
        "perf:fp_sub", "fp_sub", "out", result.context
    )
    record = RunRecord.from_json(record.to_json())  # exercise the round trip
    out = Path(__file__).resolve().parents[1] / "BENCH_perf.json"
    history: list = []
    if out.exists():
        try:
            history = json.load(out.open()).get("records", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    entry = record.as_dict()
    entry["wall_s"] = round(wall, 4)
    history.append(entry)
    payload["records"] = history[-RECORD_HISTORY_CAP:]

    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\nfp_sub optimize (iter_limit={ITER_LIMIT}, verify off)")
    print(f"  wall {wall:.3f}s (seed {SEED_BASELINE_WALL_S}s, {speedup:.1f}x)")
    for it in payload["iterations"]:
        print(
            f"  it{it['index']}: {it['nodes_before']}->{it['nodes_after']} nodes, "
            f"search {it['search_s']}s apply {it['apply_s']}s "
            f"rebuild {it['rebuild_s']}s"
        )

    # Regression guard: an absolute bound rather than a speedup ratio, so a
    # CI runner a few times slower than the baseline machine doesn't
    # false-fail.  The incremental engine runs this in ~0.2s on the baseline
    # box; reverting to the seed engine costs ~0.8s there and well over 2s
    # on any plausible runner.
    assert wall < 2.0, (
        f"saturation hot path regressed: {wall:.3f}s median "
        f"(seed engine baseline {SEED_BASELINE_WALL_S}s on the same machine)"
    )

    # Bench-smoke mode (the CI `bench-smoke` job sets BENCH_SMOKE_FACTOR):
    # additionally compare this run's median against the *previous*
    # trajectory entry.  On one machine this is a tight back-to-back
    # ratio; in CI the previous entry may come from a different (faster)
    # box, which is why the bench-smoke job is advisory, not a merge gate.
    factor = float(os.environ.get("BENCH_SMOKE_FACTOR", "0") or 0)
    if factor and len(history) >= 2:
        previous = history[-2].get("wall_s")
        if previous:
            assert wall <= previous * factor, (
                f"fp_sub median regressed >{factor}x vs the last "
                f"BENCH_perf.json entry: {wall:.3f}s vs {previous:.3f}s"
            )


#: Minimum fraction of a governed run's wall the per-stage ledger must
#: account for.  Extraction and verification used to run entirely outside
#: the budget; this canary fails if a future stage re-opens that escape
#: hatch (an unledgered stage shows up as ledger coverage dropping).
LEDGER_COVERAGE_FLOOR = 0.95


def test_perf_fp_sub_budget_ledger_coverage():
    """The governed fp_sub run's ``RunRecord.budget`` ledger accounts for
    ~all of the total wall — no unledgered stages (the bench-smoke job's
    second assertion, alongside the median-regression factor)."""
    record = execute_job(
        Job(
            name="ledger:fp_sub",
            design="fp_sub",
            iter_limit=ITER_LIMIT,
            verify=True,
            # Generous: the ceiling must not bind — this measures coverage,
            # not degradation (verify on fp_sub degrades BDD -> random).
            budget=Budget(time_s=120.0),
        )
    )
    assert record.status == "ok", record.error
    stages = record.budget["stages"]
    for label in ("ingest", "saturate", "extract", "verify"):
        assert label in stages, f"stage {label!r} missing from the ledger"
    ledgered = sum(row["spent"]["time_s"] for row in stages.values())
    total = record.budget["spent"]["time_s"]
    coverage = ledgered / total if total else 1.0
    print(
        f"\nfp_sub governed run: {ledgered:.3f}s of {total:.3f}s ledgered "
        f"({coverage:.1%})"
    )
    assert coverage >= LEDGER_COVERAGE_FLOOR, (
        f"budget ledger covers only {coverage:.1%} of the run's wall — "
        "some stage is spending outside the ledger"
    )
