"""AST for the Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class VNum:
    """Numeric literal; ``width`` is None for unsized decimals."""

    value: int
    width: int | None = None


@dataclass(frozen=True, slots=True)
class VId:
    name: str


@dataclass(frozen=True, slots=True)
class VUnary:
    op: str  # '~' '-' '!' '&' '|' (reductions)
    operand: "VExpr"


@dataclass(frozen=True, slots=True)
class VBinary:
    op: str  # + - * & | ^ << >> < <= > >= == != && ||
    left: "VExpr"
    right: "VExpr"


@dataclass(frozen=True, slots=True)
class VTernary:
    cond: "VExpr"
    if_true: "VExpr"
    if_false: "VExpr"


@dataclass(frozen=True, slots=True)
class VConcat:
    parts: tuple["VExpr", ...]


@dataclass(frozen=True, slots=True)
class VRepl:
    times: int
    operand: "VExpr"


@dataclass(frozen=True, slots=True)
class VIndex:
    base: "VExpr"
    index: "VExpr"


@dataclass(frozen=True, slots=True)
class VRange:
    base: "VExpr"
    hi: int
    lo: int


VExpr = "VNum | VId | VUnary | VBinary | VTernary | VConcat | VRepl | VIndex | VRange"


@dataclass(frozen=True, slots=True)
class CaseLabel:
    """One casez label: value/mask pair (mask bit 0 = don't care)."""

    value: int
    mask: int
    width: int


@dataclass
class CaseStmt:
    """``case``/``casez`` assigning a single target variable."""

    subject: "VExpr"
    target: str
    arms: list[tuple[CaseLabel, "VExpr"]]
    default: "VExpr | None"
    is_casez: bool


@dataclass
class Net:
    """A declared input/output/wire."""

    name: str
    width: int
    direction: str  # 'input' | 'output' | 'wire'


@dataclass
class Module:
    name: str
    nets: dict[str, Net] = field(default_factory=dict)
    #: assignments in source order: (target name, expression)
    assigns: list[tuple[str, "VExpr"]] = field(default_factory=list)
    cases: list[CaseStmt] = field(default_factory=list)

    @property
    def inputs(self) -> list[Net]:
        return [n for n in self.nets.values() if n.direction == "input"]

    @property
    def outputs(self) -> list[Net]:
        return [n for n in self.nets.values() if n.direction == "output"]
