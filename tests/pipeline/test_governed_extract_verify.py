"""The budget escape hatches, closed: governed Extract and Verify.

Before this subsystem, extraction and BDD equivalence checks ran entirely
outside the budget — a pipeline handed a tight deadline could overshoot it
by an arbitrarily expensive extract or verify.  These tests pin the new
contracts with deterministic fake clocks:

* **anytime Extract** — the extractor's worklist fixpoint polls the
  governor's deadline once per step, so expiry is overshot by at most one
  worklist step; the stage returns its best-so-far checkpoint (falling back
  to the behavioural tree for roots the truncated fixpoint never costed),
  records ``ExtractReport.status == "deadline"`` and charges the ledger —
  never an exception;
* **interruptible Verify** — a BDD proof stops at the ``Budget.bdd_nodes``
  quota (degrading to randomized trials, ``method == "random"``) or at the
  deadline (``method == "timeout"`` when no confidence was reached), and
  the stage charges wall and BDD-node spend like every other stage — on
  the strict-raise path too, so failed runs stay diagnosable.
"""

from __future__ import annotations

import time

import pytest

from repro.egraph import EGraph, Extractor
from repro.egraph.extract import AstSizeCost
from repro.ir import var
from repro.pipeline import (
    Budget,
    Extract,
    Ingest,
    Job,
    Pipeline,
    RunRecord,
    Saturate,
    Verify,
    execute_job,
)
import repro.pipeline.stages as stages_mod
from repro.verify import EquivalenceResult
# Sibling-module import: pytest's prepend import mode puts this directory
# on sys.path for both the `pytest` and `python -m pytest` entry points
# (a `tests.pipeline.…` package import would only work under the latter).
from test_budget import FakeClock


def chain(length: int, width: int = 4):
    expr = var("x0", width)
    for i in range(1, length):
        expr = expr + var(f"x{i}", width)
    return expr


# --------------------------------------------------------------- anytime core
class TestAnytimeExtractor:
    def test_deadline_overshoot_is_at_most_one_worklist_step(self):
        """The fixpoint polls once per step, so with a clock that ticks 1s
        per read it executes exactly ``floor(deadline)`` steps."""
        g = EGraph()
        g.add_expr(chain(12))
        g.rebuild()
        clock = FakeClock(start=0.0, tick=1.0)
        extractor = Extractor(g, AstSizeCost(), deadline=5.5, clock=clock)
        assert extractor.complete is False
        assert extractor.steps == 5  # the 6th poll (t=6.0) tripped the stop
        # The checkpoint stays sound: anything costed extracts to a tree.
        for eclass in g.classes():
            if extractor.has_cost(eclass.id):
                assert extractor.try_expr_of(eclass.id) is not None

    def test_no_deadline_reproduces_the_complete_fixpoint(self):
        g = EGraph()
        root = g.add_expr(chain(8))
        g.rebuild()
        governed = Extractor(g, AstSizeCost(), deadline=None, clock=FakeClock(tick=1.0))
        plain = Extractor(g, AstSizeCost())
        assert governed.complete and plain.complete
        assert governed.cost_of(root) == plain.cost_of(root)
        assert governed.expr_of(root) == plain.expr_of(root)

    def test_expired_deadline_still_never_raises(self):
        g = EGraph()
        root = g.add_expr(chain(6))
        g.rebuild()
        extractor = Extractor(
            g, AstSizeCost(), deadline=-1.0, clock=FakeClock(tick=0.001)
        )
        assert extractor.complete is False
        assert extractor.steps == 0
        assert extractor.try_expr_of(root) is None  # uncosted, not an error


# ------------------------------------------------------------- Extract stage
class TestGovernedExtractStage:
    def _governed_ctx(self, *, budget, clock, saturate=True):
        stages = [Ingest(roots={"out": chain(8)})]
        if saturate:
            stages.append(
                Saturate(iter_limit=2, node_limit=4_000, time_limit=10**6)
            )
        stages.append(Extract())
        return Pipeline(stages).run(budget=budget, clock=clock)

    def test_deadline_checkpoint_returns_within_one_step_and_charges(self):
        """Saturation drains the whole pool; Extract must come back with
        its checkpoint (here: the behavioural fallback), a deadline-status
        report, and a ledger row — not an exception, not an overshoot."""
        clock = FakeClock(tick=0.001)
        ctx = self._governed_ctx(budget=Budget(time_s=0.05), clock=clock)
        assert ctx.extracted["out"] == ctx.roots["out"]
        report = ctx.extract_reports[-1]
        assert report.status == "deadline"
        assert report.roots == {"out": "fallback"}
        assert report.steps <= 1  # the pool was already dry at stage entry
        row = ctx.governor.ledger["extract"]
        assert row["spent"]["time_s"] > 0
        # Costs still land (fallback == original, so the keys agree).
        assert (
            ctx.optimized_costs["out"].key == ctx.original_costs["out"].key
        )

    def test_generous_deadline_extracts_normally(self):
        clock = FakeClock(tick=0.0001)
        ctx = self._governed_ctx(budget=Budget(time_s=10**6), clock=clock)
        report = ctx.extract_reports[-1]
        assert report.status == "complete"
        assert report.roots == {"out": "extracted"}
        assert report.steps > 0
        assert ctx.optimized_costs["out"].key <= ctx.original_costs["out"].key
        assert "extract" in ctx.governor.ledger

    def test_ungoverned_extract_has_no_ledger_but_reports_complete(self):
        ctx = Pipeline(
            [
                Ingest(roots={"out": chain(6)}),
                Saturate(iter_limit=1, node_limit=4_000),
                Extract(),
            ]
        ).run()
        assert ctx.governor is None
        assert ctx.extract_reports[-1].status == "complete"


# -------------------------------------------------------------- Verify stage
def _wide_pair():
    """An equivalence whose domain is far beyond the exhaustive budget, so
    the check must go through the BDD (or its degradations)."""
    x, y = var("x", 16), var("y", 16)
    return {"out": x + y}, x + y


class TestInterruptibleVerify:
    def _run_verify(self, budget, clock, *, random_trials=64):
        roots, _ = _wide_pair()
        ctx = Pipeline([Ingest(roots=roots)]).run(budget=budget, clock=clock)
        # Commuted operands: equivalent, but only a proof can know that.
        x, y = var("x", 16), var("y", 16)
        ctx.extracted["out"] = y + x
        Pipeline([Verify(strict=True, random_trials=random_trials)]).run(ctx=ctx)
        return ctx

    def test_bdd_quota_exhaustion_degrades_to_random(self):
        """The satellite contract: BDD quota dry -> randomized trials, and
        the governor's ledger agrees (bdd spend recorded, pool empty)."""
        clock = FakeClock(tick=0.0)
        ctx = self._run_verify(Budget(bdd_nodes=64), clock=clock)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "random"
        assert verdict.equivalent is None  # trials passed; not a proof
        assert verdict.trials == 64
        assert 0 < verdict.bdd_nodes  # the abandoned proof's spend
        row = ctx.governor.ledger["verify"]
        assert row["spent"]["bdd_nodes"] == verdict.bdd_nodes
        assert row["allocated"]["bdd_nodes"] == 64
        # Ledger and degradation agree: the pool really ran dry.
        assert ctx.governor.remaining().bdd_nodes == 0
        assert ctx.governor.exhausted()

    def test_expired_deadline_times_out_without_confidence(self):
        clock = FakeClock(start=100.0, tick=0.001)
        ctx = self._run_verify(Budget(deadline=1.0), clock=clock)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "timeout"
        assert verdict.equivalent is None
        assert verdict.trials == 0
        assert ctx.governor.ledger["verify"]["spent"]["time_s"] > 0

    def test_unlimited_pool_still_proves_by_bdd(self):
        clock = FakeClock(tick=0.0)
        ctx = self._run_verify(Budget(time_s=10**6), clock=clock)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "bdd"
        assert verdict.equivalent is True
        assert (
            ctx.governor.ledger["verify"]["spent"]["bdd_nodes"]
            == verdict.bdd_nodes
            > 0
        )

    def test_dry_bdd_pool_skips_the_proof_without_phantom_spend(self):
        """Quota 0 (e.g. an earlier output drained the pool) must go
        straight to randomized trials — no miter lowering, no node charge
        above the zero allocation."""
        clock = FakeClock(tick=0.0)
        ctx = self._run_verify(Budget(bdd_nodes=0), clock=clock)
        verdict = ctx.equivalence["out"]
        assert verdict.method == "random"
        assert verdict.bdd_nodes == 0
        assert ctx.governor.ledger["verify"]["spent"]["bdd_nodes"] == 0

    def test_generous_bdd_pool_never_loosens_the_engine_cap(self):
        """A Budget.bdd_nodes pool above the engine's 400k safety cap must
        tighten nothing — the allocated row reports the effective cap."""
        clock = FakeClock(tick=0.0)
        ctx = self._run_verify(Budget(bdd_nodes=5_000_000), clock=clock)
        row = ctx.governor.ledger["verify"]
        from repro.verify.equiv import DEFAULT_BDD_NODE_LIMIT

        assert row["allocated"]["bdd_nodes"] == DEFAULT_BDD_NODE_LIMIT
        # This proof fits comfortably, so it still lands as a bdd verdict.
        assert ctx.equivalence["out"].method == "bdd"

    def test_verify_budget_window_lands_in_the_ledger(self):
        """When the stage's deadline comes from its *own* budget (the
        governor has no time quota), the allocated row must report that
        window — not the governor's infinite one."""
        roots, _ = _wide_pair()
        clock = FakeClock(tick=0.0)
        ctx = Pipeline([Ingest(roots=roots)]).run(
            budget=Budget(nodes=50_000), clock=clock
        )
        x, y = var("x", 16), var("y", 16)
        ctx.extracted["out"] = y + x
        Pipeline([Verify(budget=Budget(time_s=1.0))]).run(ctx=ctx)
        allocated = ctx.governor.ledger["verify"]["allocated"]
        assert allocated["time_s"] == pytest.approx(1.0, abs=0.01)

    def test_verify_budget_bdd_ceiling_applies_without_a_governor(self):
        """``Verify(budget=...)`` is a self-contained ceiling too (the CLI's
        --verify-budget-ms path, which may run ungoverned)."""
        roots, _ = _wide_pair()
        ctx = Pipeline([Ingest(roots=roots)]).run()
        x, y = var("x", 16), var("y", 16)
        ctx.extracted["out"] = y + x
        Pipeline(
            [Verify(budget=Budget(bdd_nodes=64), random_trials=16)]
        ).run(ctx=ctx)
        assert ctx.equivalence["out"].method == "random"


# ------------------------------------------- failed runs stay diagnosable
class TestFailedRunsStayDiagnosable:
    def test_strict_verify_failure_still_records_timing_and_ledger(self):
        """The satellite bugfix: a raising stage's wall time must land in
        the context timings (and the governor ledger) before the re-raise."""
        x, y = var("x", 4), var("y", 4)
        ctx = Pipeline([Ingest(roots={"out": x + y})]).run(
            budget=Budget(time_s=10**6)
        )
        ctx.extracted["out"] = x - y  # provably different
        with pytest.raises(AssertionError, match="non-equivalent"):
            Pipeline([Verify(strict=True)]).run(ctx=ctx)
        assert "verify" in ctx.stage_timings()
        assert ctx.governor.ledger["verify"]["spent"]["time_s"] > 0
        assert ctx.equivalence["out"].equivalent is False

    def test_error_record_carries_stage_timings_and_budget(self, monkeypatch):
        """``execute_job`` condenses a failing run's partial context —
        stage timings, runtime, governor ledger — into the error record."""
        monkeypatch.setattr(
            stages_mod,
            "check_equivalent",
            lambda *a, **k: EquivalenceResult(
                False, "random", counterexample={}, trials=1
            ),
        )
        record = execute_job(
            Job(
                name="doomed",
                design="lzc_example",
                iter_limit=1,
                node_limit=4_000,
                verify=True,
                budget=Budget(time_s=60.0),
            )
        )
        assert record.status == "error"
        assert "non-equivalent" in record.error
        assert "verify" in record.stage_timings
        assert record.runtime_s > 0
        assert record.budget["stages"]["verify"]["spent"]["time_s"] >= 0
        # And the error record round-trips like any other.
        clone = RunRecord.from_json(record.to_json())
        assert clone.stage_timings == record.stage_timings


# ------------------------------------------------------------- record format
class TestRecordFormat:
    def test_record_carries_extract_status_and_verify_method(self):
        record = execute_job(
            Job(
                name="lzc",
                design="lzc_example",
                iter_limit=2,
                node_limit=8_000,
                verify=True,
                budget=Budget(time_s=60.0),
            )
        )
        assert record.status == "ok", record.error
        assert record.extract_status == "complete"
        assert record.verify_method in {"exhaustive", "bdd", "random"}
        clone = RunRecord.from_json(record.to_json())
        assert clone.extract_status == record.extract_status
        assert clone.verify_method == record.verify_method
        # Extract and verify spend are visible stage rows in the ledger.
        assert "extract" in record.budget["stages"]
        assert "verify" in record.budget["stages"]


# --------------------------------------------------------------- end-to-end
class TestBudgetedAcceptanceWithVerify:
    def test_stress_wide_2s_budget_including_verify(self):
        """The acceptance criterion: 8 shards *plus verification* under a
        2 s budget land within 1.25x + scheduling epsilon, with extract and
        verify spend visible in the record's ledger."""
        job = Job(
            name="budgeted+verify",
            design="stress_wide",
            iter_limit=8,
            node_limit=50_000,
            time_limit=10.0,
            auto_shard_nodes=1,
            verify=True,
            budget=Budget(time_s=2.0),
        )
        started = time.monotonic()
        record = execute_job(job)
        wall = time.monotonic() - started
        assert record.status == "ok", record.error
        assert record.shards == 8
        assert wall <= 2.0 * 1.25 + 0.5, (
            f"8-shard verified run took {wall:.2f}s against a 2s budget"
        )
        # Verification really happened (proved, or honestly degraded).
        assert record.verify_method in {"exhaustive", "bdd", "random", "timeout"}
        # Shards may disagree (early ones complete, a late one hits the
        # shared deadline); the record comma-joins the observed statuses.
        assert set(record.extract_status.split(",")) <= {"complete", "deadline"}
        stages = record.budget["stages"]
        assert "verify" in stages
        assert any(label.startswith("shard:") for label in stages)
        # No unledgered wall: the stage rows cover ~all of the run's spend.
        ledgered = sum(row["spent"]["time_s"] for row in stages.values())
        total = record.budget["spent"]["time_s"]
        assert ledgered >= 0.9 * total, (
            f"only {ledgered:.3f}s of {total:.3f}s ledgered"
        )
