"""Two-input-gate netlists with structural hashing, simulation and STA.

This is the target of :mod:`repro.synth.lower` and the measurement substrate
replacing the paper's commercial synthesis runs.  Gates are 2-input
(AND/OR/XOR/NAND/NOR/XNOR) plus NOT; wider structures are built from them by
the component generators.  ``add_gate`` constant-folds and structurally
hashes, so trivially redundant logic never enters the netlist.

Timing: unit delay per 2-input gate, 0.4 per inverter (inverters largely
fold into adjacent cells in real mapping).  Area: 1.0 per 2-input gate,
0.5 per inverter.  Absolute numbers are technology-free by design — the
reproduction targets *relative* delay/area (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

NOT_DELAY = 0.4
NOT_AREA = 0.5
GATE_DELAY = 1.0
GATE_AREA = 1.0

_EVAL = {
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "NAND": lambda a, b: 1 - (a & b),
    "NOR": lambda a, b: 1 - (a | b),
    "XNOR": lambda a, b: 1 - (a ^ b),
}

_SYMMETRIC = frozenset(_EVAL)


@dataclass(frozen=True, slots=True)
class Gate:
    """One logic gate: ``kind`` in AND/OR/XOR/NAND/NOR/XNOR/NOT."""

    kind: str
    inputs: tuple[int, ...]
    output: int
    tag: str = ""


@dataclass
class Signal:
    """A lowered IR value: LSB-first net list + signedness."""

    bits: list[int]
    signed: bool = False

    @property
    def width(self) -> int:
        return len(self.bits)


class Netlist:
    """A combinational gate network."""

    def __init__(self) -> None:
        self.gates: list[Gate] = []
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, Signal] = {}
        self._net_count = 2  # nets 0 and 1 are constant zero / one
        self._driver: dict[int, int] = {}  # net -> gate index
        self._hash: dict[tuple, int] = {}
        self._tag_stack: list[str] = []

    # ------------------------------------------------------------- structure
    @property
    def zero(self) -> int:
        """The constant-0 net."""
        return 0

    @property
    def one(self) -> int:
        """The constant-1 net."""
        return 1

    def new_net(self) -> int:
        net = self._net_count
        self._net_count += 1
        return net

    def add_input(self, name: str, width: int) -> list[int]:
        """Declare a primary input; returns its nets (LSB first)."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name}")
        nets = [self.new_net() for _ in range(width)]
        self.inputs[name] = nets
        return nets

    def set_output(self, name: str, signal: Signal) -> None:
        """Declare a primary output."""
        self.outputs[name] = signal

    def push_tag(self, tag: str) -> None:
        """Enter a component instance (gates get tagged for resynthesis)."""
        self._tag_stack.append(tag)

    def pop_tag(self) -> None:
        self._tag_stack.pop()

    # ---------------------------------------------------------------- gates
    def add_gate(self, kind: str, a: int, b: int | None = None) -> int:
        """Add a gate with constant folding and structural hashing."""
        if kind == "NOT":
            if a == 0:
                return 1
            if a == 1:
                return 0
            key = ("NOT", a)
        else:
            if kind in _SYMMETRIC and b is not None and b < a:
                a, b = b, a
            folded = self._fold(kind, a, b)
            if folded is not None:
                return folded
            key = (kind, a, b)
        cached = self._hash.get(key)
        if cached is not None:
            return cached
        out = self.new_net()
        inputs = (a,) if kind == "NOT" else (a, b)
        tag = self._tag_stack[-1] if self._tag_stack else ""
        self._driver[out] = len(self.gates)
        self.gates.append(Gate(kind, inputs, out, tag))
        self._hash[key] = out
        return out

    @staticmethod
    def _fold(kind: str, a: int, b: int) -> int | None:
        """Constant/identity folding for 2-input gates (nets 0/1 constant)."""
        if kind == "AND":
            if a == 0 or b == 0:
                return 0
            if a == 1:
                return b
            if b == 1:
                return a
            if a == b:
                return a
        elif kind == "OR":
            if a == 1 or b == 1:
                return 1
            if a == 0:
                return b
            if b == 0:
                return a
            if a == b:
                return a
        elif kind == "XOR":
            if a == b:
                return 0
            if a == 0:
                return b
            if b == 0:
                return a
        elif kind == "NAND":
            if a == 0 or b == 0:
                return 1
        elif kind == "NOR":
            if a == 1 or b == 1:
                return 0
        elif kind == "XNOR":
            if a == b:
                return 1
        return None

    # -------------------------------------------------------------- shortcuts
    def g_not(self, a: int) -> int:
        return self.add_gate("NOT", a)

    def g_and(self, a: int, b: int) -> int:
        return self.add_gate("AND", a, b)

    def g_or(self, a: int, b: int) -> int:
        return self.add_gate("OR", a, b)

    def g_xor(self, a: int, b: int) -> int:
        return self.add_gate("XOR", a, b)

    def g_mux(self, sel: int, when1: int, when0: int) -> int:
        """2:1 mux from three gates."""
        if when1 == when0:
            return when1
        if sel == 1:
            return when1
        if sel == 0:
            return when0
        return self.g_or(self.g_and(sel, when1), self.g_and(self.g_not(sel), when0))

    def reduce(self, kind: str, nets: Iterable[int]) -> int:
        """Balanced reduction tree (e.g. OR-reduce for a zero test)."""
        level = list(nets)
        if not level:
            raise ValueError("empty reduction")
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_gate(kind, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # -------------------------------------------------------------- analysis
    def area(self) -> float:
        """Total gate area (2-input gate equivalents)."""
        return sum(NOT_AREA if g.kind == "NOT" else GATE_AREA for g in self.gates)

    def arrival_times(self) -> dict[int, float]:
        """Arrival time of every net (gates are already topological)."""
        arrival: dict[int, float] = {0: 0.0, 1: 0.0}
        for nets in self.inputs.values():
            for net in nets:
                arrival[net] = 0.0
        for gate in self.gates:
            cost = NOT_DELAY if gate.kind == "NOT" else GATE_DELAY
            arrival[gate.output] = cost + max(
                (arrival.get(i, 0.0) for i in gate.inputs), default=0.0
            )
        return arrival

    def critical_path_delay(self) -> float:
        """Longest input-to-output path in gate levels."""
        arrival = self.arrival_times()
        worst = 0.0
        for signal in self.outputs.values():
            for net in signal.bits:
                worst = max(worst, arrival.get(net, 0.0))
        return worst

    def critical_tags(self) -> list[str]:
        """Component tags along the critical path, output to input."""
        arrival = self.arrival_times()
        worst_net, worst_time = None, -1.0
        for signal in self.outputs.values():
            for net in signal.bits:
                if arrival.get(net, 0.0) > worst_time:
                    worst_net, worst_time = net, arrival.get(net, 0.0)
        tags: list[str] = []
        net = worst_net
        while net is not None and net in self._driver:
            gate = self.gates[self._driver[net]]
            if gate.tag and (not tags or tags[-1] != gate.tag):
                tags.append(gate.tag)
            net = max(
                (i for i in gate.inputs),
                key=lambda i: arrival.get(i, 0.0),
                default=None,
            )
            if net is not None and net not in self._driver:
                break
        return tags

    # ------------------------------------------------------------ simulation
    def simulate(self, env: Mapping[str, int]) -> dict[str, int]:
        """Evaluate the netlist; inputs and outputs are Python integers.

        Output signals marked ``signed`` are reconstructed as negative
        integers when their sign bit is set.
        """
        values: dict[int, int] = {0: 0, 1: 1}
        for name, nets in self.inputs.items():
            word = env[name]
            if word < 0 or word >= (1 << len(nets)):
                raise ValueError(f"input {name}={word} out of range")
            for position, net in enumerate(nets):
                values[net] = (word >> position) & 1
        for gate in self.gates:
            if gate.kind == "NOT":
                values[gate.output] = 1 - values[gate.inputs[0]]
            else:
                a, b = (values[i] for i in gate.inputs)
                values[gate.output] = _EVAL[gate.kind](a, b)
        out: dict[str, int] = {}
        for name, signal in self.outputs.items():
            word = 0
            for position, net in enumerate(signal.bits):
                word |= values[net] << position
            if signal.signed and signal.bits and values[signal.bits[-1]]:
                word -= 1 << signal.width
            out[name] = word
        return out

    def stats(self) -> str:
        """One-line summary."""
        return (
            f"{len(self.gates)} gates, area {self.area():.1f}, "
            f"delay {self.critical_path_delay():.1f}"
        )
