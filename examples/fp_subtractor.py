"""The Section V case study: half-precision floating-point subtraction.

Run:  python examples/fp_subtractor.py

Optimizes the naive (Figure 2a) mantissa datapath, compares it against the
hand-written dual-path architecture of Figure 2b, verifies everything
equivalent, and synthesizes all three through the gate-level flow.
"""

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import (
    fp_sub_behavioural_verilog,
    fp_sub_dual_path_ir,
    fp_sub_input_ranges,
)
from repro.rtl import module_to_ir
from repro.synth import min_delay_point
from repro.verify import check_equivalent


def main() -> None:
    source = fp_sub_behavioural_verilog()
    ranges = fp_sub_input_ranges()
    behavioural = module_to_ir(source)["out"]
    dual_path = fp_sub_dual_path_ir()

    print("verifying the Figure 2b dual-path reference ...")
    print(" ", check_equivalent(behavioural, dual_path, ranges, random_trials=8000))

    print("running the optimizer (this is the paper's 11-iteration run) ...")
    config = OptimizerConfig(iter_limit=9, node_limit=16_000, verify=False)
    result = DatapathOptimizer(ranges, config).optimize_verilog(source).outputs["out"]
    print(" ", result.report.summary())
    print(" ", check_equivalent(behavioural, result.optimized, ranges,
                                random_trials=5000))

    print("\ngate-level synthesis at minimum delay:")
    for name, expr in (
        ("behavioural (Fig. 2a)", behavioural),
        ("dual-path   (Fig. 2b)", dual_path),
        ("tool output          ", result.optimized),
    ):
        point = min_delay_point(expr, ranges)
        print(f"  {name}: delay {point.delay:6.1f}  area {point.area:8.1f}")

    print("\noptimized RTL (truncated):")
    print(result.emit_verilog("fp_sub_optimized")[:1200])


if __name__ == "__main__":
    main()
