"""Property-based invariants of cone extraction / shard planning.

Random multi-output designs (hypothesis) pin down the shard-planner
contract the pipeline relies on:

* an input variable's range context lands in *exactly* the shards whose
  cones reach it;
* the union of the shards reconstructs the design (every output once,
  its root unchanged);
* shards share no mutable state — the planner hands out fresh containers,
  and per-shard pipeline runs get disjoint e-graphs/analysis state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sharding import plan_shards, should_shard
from repro.intervals import IntervalSet
from repro.ir import cone_inputs, cone_size, shared_weight, lzc, mux, var
from repro.ir.expr import Expr

VARS = [var(f"v{i}", 6) for i in range(6)]


@st.composite
def expr_tree(draw, depth: int = 3) -> Expr:
    """A random small expression over the shared variable pool."""
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(VARS))
    kind = draw(st.integers(0, 4))
    a = draw(expr_tree(depth=depth - 1))
    b = draw(expr_tree(depth=depth - 1))
    if kind == 0:
        return a + b
    if kind == 1:
        return a * b
    if kind == 2:
        return a - b
    if kind == 3:
        return mux(a, b, a + b)
    return lzc(a + b, 7)


@st.composite
def design(draw):
    """A random multi-output design: 2-5 named roots + range constraints."""
    n_outputs = draw(st.integers(2, 5))
    roots = {f"o{i}": draw(expr_tree()) for i in range(n_outputs)}
    constrained = draw(st.lists(st.sampled_from(VARS), unique=True, max_size=4))
    ranges = {
        v.var_name: IntervalSet.of(draw(st.integers(0, 10)), 63)
        for v in constrained
    }
    return roots, ranges


@settings(max_examples=60, deadline=None)
@given(design())
def test_inputs_land_in_exactly_the_shards_that_need_them(data):
    roots, ranges = data
    plan = plan_shards(roots, ranges)
    for shard in plan.shards:
        reachable = set(cone_inputs(shard.roots.values()))
        # Constraint context: exactly the constrained inputs the cone reads.
        assert set(shard.input_ranges) == reachable & set(ranges)
        for name, iset in shard.input_ranges.items():
            assert iset == ranges[name]


@settings(max_examples=60, deadline=None)
@given(design(), st.integers(1, 4))
def test_shard_union_reconstructs_the_design(data, max_shards):
    roots, ranges = data
    for plan in (
        plan_shards(roots, ranges),
        plan_shards(roots, ranges, max_shards=max_shards),
    ):
        rebuilt: dict = {}
        for shard in plan.shards:
            for output, expr in shard.roots.items():
                assert output not in rebuilt, "output appears in two shards"
                rebuilt[output] = expr
        assert rebuilt == roots
    assert len(plan.shards) <= max_shards


@settings(max_examples=40, deadline=None)
@given(design())
def test_shards_share_no_mutable_state(data):
    roots, ranges = data
    plan = plan_shards(roots, ranges)
    containers = [id(s.roots) for s in plan.shards]
    containers += [id(s.input_ranges) for s in plan.shards]
    assert len(set(containers)) == len(containers), "aliased shard containers"
    # Planner must not alias (or mutate) the caller's dicts either.
    for shard in plan.shards:
        assert shard.roots is not roots
        assert shard.input_ranges is not ranges
    snapshot_roots, snapshot_ranges = dict(roots), dict(ranges)
    plan_shards(roots, ranges, max_shards=1)
    assert roots == snapshot_roots and ranges == snapshot_ranges


@settings(max_examples=30, deadline=None)
@given(design())
def test_planning_is_deterministic(data):
    roots, ranges = data
    first = plan_shards(roots, ranges, max_shards=2)
    second = plan_shards(roots, ranges, max_shards=2)
    assert [s.name for s in first.shards] == [s.name for s in second.shards]
    assert [s.roots for s in first.shards] == [s.roots for s in second.shards]


@settings(max_examples=40, deadline=None)
@given(design())
def test_clustering_merges_the_heaviest_overlap_first(data):
    """Clustering one step (k = n-1 shards) merges a pair with maximal
    shared-subexpression weight."""
    roots, ranges = data
    if len(roots) < 3:
        return
    plan = plan_shards(roots, ranges, max_shards=len(roots) - 1)
    merged = next(s for s in plan.shards if len(s.roots) == 2)
    a, b = (roots[name] for name in merged.outputs)
    achieved = shared_weight([a], [b])
    best = max(
        shared_weight([roots[x]], [roots[y]])
        for x in roots
        for y in roots
        if x < y
    )
    assert achieved == best


def test_should_shard_policy():
    x, y = var("x", 8), var("y", 8)
    wide = {"a": x + y, "b": x * y, "c": x - y}
    assert should_shard(wide, 2)
    assert not should_shard(wide, None)  # no threshold, no auto-split
    assert not should_shard(wide, 10_000)  # too small
    assert not should_shard({"a": x + y}, 1)  # single output
    assert cone_size(wide.values()) >= 5


def test_per_shard_pipeline_state_is_disjoint():
    """Running two shards' pipelines yields disjoint e-graphs and analysis
    state: mutating one shard's run leaves the other's results untouched."""
    from repro.pipeline import Ingest, Pipeline, Saturate

    x, y = var("x", 8), var("y", 8)
    plan = plan_shards({"a": x + y, "b": x * y}, {"x": IntervalSet.of(1, 9)})
    contexts = [
        Pipeline([Ingest(roots=s.roots), Saturate(iter_limit=1)]).run(
            input_ranges=s.input_ranges
        )
        for s in plan.shards
    ]
    first, second = contexts
    assert first.egraph is not second.egraph
    before = second.egraph.node_count
    # Hammer the first shard's e-graph; the second must not move.
    first.egraph.add_expr((x + y) * (x + y))
    first.egraph.rebuild()
    assert second.egraph.node_count == before
    second.egraph.check_invariants()
