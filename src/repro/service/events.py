"""Per-job event feeds: the governor's ledger as a stream.

A tenant that submitted a job wants to watch it move — queued, running
(which stage, what spend), done or error — without holding a reference to
the daemon's internals.  :class:`EventFeed` is the pollable/iterable buffer
the queue emits into; :func:`events_from_record` reconstructs the running
timeline of a finished job from its :class:`~repro.pipeline.session.
RunRecord` (per-stage wall timings plus the governor's allocated-vs-spent
ledger), so the feed covers the job's whole wall without instrumenting the
pipeline stages themselves.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from typing import Iterator

from repro.pipeline.session import RunRecord

__all__ = ["Event", "EventFeed", "events_from_record"]


@dataclass(frozen=True)
class Event:
    """One step of a job's service lifecycle."""

    job: str
    tenant: str
    #: "queued" | "running" | "cached" | "done" | "error"
    kind: str
    #: Stage label for ``running`` events (e.g. ``"saturate"``).
    stage: str = ""
    #: Wall seconds this step covered: queue wait for ``queued``, the
    #: stage's wall for ``running``, the job's whole wall for terminals.
    wall_s: float = 0.0
    #: Governor spend for the step, when the ledger recorded any.
    spend: dict = field(default_factory=dict)
    #: Stop reason / error text / "cache" provenance for terminals.
    detail: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


def events_from_record(record: RunRecord) -> list[Event]:
    """Replay a finished job's lifecycle from its run record.

    Cache hits replay as ``queued → cached → done`` — the stage timings a
    copied record carries belong to the *original* run, so replaying them
    would fabricate work the service never did.
    """
    events = [
        Event(
            job=record.job,
            tenant=record.tenant,
            kind="queued",
            wall_s=record.queue_wait_s,
        )
    ]
    if record.cache_hit:
        events.append(
            Event(job=record.job, tenant=record.tenant, kind="cached")
        )
    else:
        ledger = record.budget.get("stages", {}) if record.budget else {}
        for stage, wall in record.stage_timings.items():
            if "/" in stage:
                # Shard-internal breakdown nests *inside* the shard stage's
                # wall; replaying it too would double-count the window.
                continue
            entry = ledger.get(stage)
            events.append(
                Event(
                    job=record.job,
                    tenant=record.tenant,
                    kind="running",
                    stage=stage,
                    wall_s=wall,
                    spend=dict(entry["spent"]) if entry else {},
                )
            )
    terminal = "done" if record.status == "ok" else "error"
    detail = "cache" if record.cache_hit else (record.error or record.stop_reason)
    events.append(
        Event(
            job=record.job,
            tenant=record.tenant,
            kind=terminal,
            wall_s=record.runtime_s,
            detail=detail,
        )
    )
    return events


class EventFeed:
    """Append-only, thread-safe event buffer with poll cursors.

    ``poll(cursor)`` returns everything emitted since the cursor plus the
    new cursor — the daemon's ``status`` verb is one poll.  Iteration
    snapshots the buffer (safe while emitters keep appending).
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: list[Event]) -> None:
        with self._lock:
            self._events.extend(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            snapshot = list(self._events)
        return iter(snapshot)

    def poll(self, cursor: int = 0) -> tuple[int, list[Event]]:
        """Events appended since ``cursor``, plus the advanced cursor."""
        with self._lock:
            fresh = self._events[cursor:]
            return len(self._events), fresh

    def for_job(self, job: str) -> list[Event]:
        return [event for event in self if event.job == job]

    def coverage(self, job: str) -> float:
        """Fraction of the job's wall its ``running`` events account for.

        1.0 means the feed explains the whole wall; the service-level
        acceptance bar is >= 0.95.  Jobs with no terminal event (still
        running) or zero wall report 0.0 / 1.0 respectively.
        """
        events = self.for_job(job)
        total = next(
            (e.wall_s for e in events if e.kind in ("done", "error")), None
        )
        if total is None:
            return 0.0
        if total == 0.0 or any(e.kind == "cached" for e in events):
            return 1.0
        covered = sum(e.wall_s for e in events if e.kind == "running")
        return min(1.0, covered / total)
