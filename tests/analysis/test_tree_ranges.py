"""Tree-level range analysis, including the ASSUME refinement used when
lowering extracted designs."""

from repro.analysis import expr_ranges, expr_width
from repro.intervals import IntervalSet
from repro.ir import (
    assume, eq, ge, gt, le, lnot, lt, lzc, mux, ne, trunc, var,
)


X = var("x", 8)
Y = var("y", 8)


def test_basic_transfer():
    ranges = expr_ranges(X + Y)
    assert ranges[X + Y] == IntervalSet.of(0, 510)


def test_input_ranges_applied():
    ranges = expr_ranges(X + 1, {"x": IntervalSet.of(10, 20)})
    assert ranges[X + 1] == IntervalSet.of(11, 21)


def test_mux_condition_pruning():
    dead = mux(gt(X, 300), Y, X)
    ranges = expr_ranges(dead)
    assert ranges[dead] == IntervalSet.of(0, 255)


def test_expr_width():
    assert expr_width(X + Y) == 9
    assert expr_width(X - Y) == 9   # signed
    assert expr_width(trunc(X, 3)) == 3


class TestAssumeRefinement:
    def test_direct_constraints(self):
        for cond, expected in [
            (gt(X, 10), IntervalSet.of(11, 255)),
            (ge(X, 10), IntervalSet.of(10, 255)),
            (lt(X, 10), IntervalSet.of(0, 9)),
            (le(X, 10), IntervalSet.of(0, 10)),
            (eq(X, 10), IntervalSet.point(10)),
            (ne(X, 0), IntervalSet.of(1, 255)),
        ]:
            wrapped = assume(X, cond)
            assert expr_ranges(wrapped)[wrapped] == expected, cond

    def test_reversed_operands(self):
        wrapped = assume(X, gt(128, X))
        assert expr_ranges(wrapped)[wrapped] == IntervalSet.of(0, 127)

    def test_lnot_constraint(self):
        wrapped = assume(X, lnot(X))
        assert expr_ranges(wrapped)[wrapped].as_point() == 0

    def test_lnot_of_comparison(self):
        wrapped = assume(X, lnot(gt(X, 1)))
        assert expr_ranges(wrapped)[wrapped] == IntervalSet.of(0, 1)

    def test_self_constraint(self):
        wrapped = assume(X, X)
        assert expr_ranges(wrapped)[wrapped] == IntervalSet.of(1, 255)

    def test_infeasible_constraint_is_empty(self):
        wrapped = assume(X, gt(X, 300))
        assert expr_ranges(wrapped)[wrapped].is_empty

    def test_refinement_feeds_parents(self):
        """The reason assumes are kept in extracted trees: downstream
        operators see the refined width."""
        guarded = assume(X, gt(X, 199)) + 1
        ranges = expr_ranges(guarded)
        assert ranges[guarded] == IntervalSet.of(201, 256)

    def test_multiple_constraints(self):
        wrapped = assume(X, gt(X, 10), lt(X, 20))
        assert expr_ranges(wrapped)[wrapped] == IntervalSet.of(11, 19)

    def test_figure1_tree_refinement(self):
        """The ExpDiff-style refinement at tree level."""
        ed = var("ed", 5)
        near = assume(ed, lnot(gt(ed, 1)))
        shifted = lzc(var("m", 11), 11) + near
        ranges = expr_ranges(shifted)
        assert ranges[near] == IntervalSet.of(0, 1)
