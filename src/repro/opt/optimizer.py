"""The one-call optimizer: a preset over the composable pipeline.

:class:`DatapathOptimizer` keeps the paper's fixed flow — ingest ->
case-split -> saturate -> extract -> verify — but since the pipeline
redesign it is a thin facade: :meth:`DatapathOptimizer.build_pipeline`
assembles :mod:`repro.pipeline` stages from an :class:`OptimizerConfig`,
and the ``optimize_*`` entrypoints run that pipeline and repackage the
context into the stable :class:`OptimizationResult` / :class:`ModuleResult`
shapes.  Anything beyond the preset (phased rule schedules, objective
sweeps, batch/parallel runs) composes the stages directly or goes through
:class:`repro.pipeline.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.egraph import EGraph, RunnerReport
from repro.egraph.rewrite import Rewrite
from repro.intervals import IntervalSet
from repro.ir.expr import Expr
from repro.pipeline import (
    Budget,
    CaseSplit,
    Extract,
    Ingest,
    Job,
    MergeShards,
    Pipeline,
    PipelineContext,
    SaveEGraph,
    Saturate,
    Shard,
    ShardSchedule,
    Verify,
    WarmStart,
    job_schedule_key,
)
from repro.rewrites import compose_rules
from repro.rtl import emit_verilog
from repro.synth.cost import DelayArea, default_key
from repro.verify import EquivalenceResult


@dataclass
class OptimizerConfig:
    """Knobs of the tool (defaults follow the paper's settings)."""

    #: equality-saturation iterations (the paper's case study uses 11; the
    #: small Section VI cases use 6).
    iter_limit: int = 8
    node_limit: int = 30_000
    time_limit: float = 60.0
    #: case-split threshold for ``a - (b >> c)`` (Section V splits at c > 1);
    #: None disables case splitting.
    split_threshold: int | None = 1
    #: ablation switches (benchmarks exercise these) — these drop whole
    #: rulesets from the composition, see
    #: :func:`repro.rewrites.rulesets.compose_rules`.
    enable_assume: bool = True
    enable_condition_rewriting: bool = True
    #: verify the optimized design against the original after extraction.
    verify: bool = True
    #: intra-design cone sharding (see :mod:`repro.pipeline.shard`): cluster
    #: output cones down to at most this many shared-nothing shards (0 = off
    #: unless ``auto_shard_nodes`` triggers).  The sharded flow extracts with
    #: the default objective inside each shard, so a custom
    #: ``extraction_key`` composes with the monolithic flow only.
    shards: int = 0
    #: auto-split threshold: a multi-output design whose DAG reaches this
    #: size shards per output cone (None disables auto-splitting).
    auto_shard_nodes: int | None = None
    #: fan shards out over a process pool.
    shard_parallel: bool = False
    #: one accounted resource pool for the whole run (wall clock / nodes /
    #: iterations / matches — see :mod:`repro.pipeline.budget`): every stage
    #: and every shard draws from it and races a single deadline.  The
    #: per-stage knobs above still apply as ceilings.  None = ungoverned.
    budget: Budget | None = None
    #: how a shared budget splits across shards: ``fair`` | ``weighted``
    #: (by cone size) | ``adaptive`` (fast shards' slack flows to slow ones).
    budget_policy: str = "adaptive"
    #: a further ceiling on the ``Verify`` stage alone (``time_s`` spans
    #: from stage start, ``bdd_nodes`` caps BDD growth before the check
    #: degrades to randomized trials).  None = only the run budget governs.
    verify_budget: Budget | None = None
    #: assert e-graph invariants after every runner iteration (tests only;
    #: the check sweeps the whole graph).
    check_invariants: bool = False
    #: seed saturation from a persisted e-graph artifact at this path
    #: (monolithic flow only; an incompatible artifact cold-starts).
    warm_start: str | None = None
    #: persist the saturated e-graph to this path for later warm starts
    #: (after Saturate monolithically, after the stitch when sharded).
    save_egraph: str | None = None
    #: sharded flow only: re-union the shard e-graphs after the merge and
    #: run a short budgeted stitch saturation to recover cross-cone sharing.
    stitch: bool = False
    #: extraction objective: ``"greedy"`` (classic per-root tree-cost
    #: extractor) or ``"ilp"`` (governed branch-and-bound refinement to
    #: DAG-cost optimality, :class:`repro.solve.extract_opt.OptimalExtract`;
    #: monolithic flow only).
    extract_objective: str = "greedy"
    #: extraction objective key (delay, area) -> ordering key.
    extraction_key = staticmethod(default_key)

    def rules(self) -> list[Rewrite]:
        """The composed single-phase rule selection for this config."""
        return compose_rules(
            self.split_threshold,
            self.enable_assume,
            self.enable_condition_rewriting,
        )

    def schedule_key(self) -> str:
        """Artifact-compatibility key — identical to the service's for the
        same knobs, so CLI-saved artifacts and daemon-saved ones interop."""
        return job_schedule_key(
            Job(
                name="",
                design="",
                split_threshold=self.split_threshold,
                enable_assume=self.enable_assume,
                enable_condition=self.enable_condition_rewriting,
                extract_objective=self.extract_objective,
            )
        )


@dataclass
class OptimizationResult:
    """Everything produced for one design root."""

    original: Expr
    optimized: Expr
    original_cost: DelayArea
    optimized_cost: DelayArea
    report: RunnerReport
    equivalence: EquivalenceResult | None
    runtime: float
    input_ranges: dict[str, IntervalSet] = field(default_factory=dict)

    @property
    def delay_improvement(self) -> float:
        """Fractional model-delay reduction (0.33 = 33% faster)."""
        if self.original_cost.delay == 0:
            return 0.0
        return 1.0 - self.optimized_cost.delay / self.original_cost.delay

    @property
    def area_improvement(self) -> float:
        """Fractional model-area reduction."""
        if self.original_cost.area == 0:
            return 0.0
        return 1.0 - self.optimized_cost.area / self.original_cost.area

    def emit_verilog(self, module_name: str = "optimized", output: str = "out") -> str:
        """Render the optimized design as Verilog."""
        return emit_verilog({output: self.optimized}, module_name, self.input_ranges)


@dataclass
class ModuleResult:
    """Results for a whole module (one entry per output port).

    ``egraph`` is the saturated monolithic e-graph — or ``None`` for a
    sharded run, where each cone saturated in its own (worker-local) graph
    and there is no single e-graph to hand back.  ``report`` is the last
    saturation report; per-output reports live on the
    :class:`OptimizationResult` entries (in a sharded run each output
    carries its own shard's report).
    """

    outputs: dict[str, OptimizationResult]
    egraph: EGraph | None
    report: RunnerReport
    #: The pipeline context of the run (per-stage timings, artifacts).
    context: PipelineContext | None = None

    def emit_verilog(self, module_name: str = "optimized") -> str:
        exprs = {name: r.optimized for name, r in self.outputs.items()}
        ranges = next(iter(self.outputs.values())).input_ranges if self.outputs else {}
        return emit_verilog(exprs, module_name, ranges)


class DatapathOptimizer:
    """Parse, rewrite, extract, verify — the paper's tool."""

    def __init__(
        self,
        input_ranges: Mapping[str, IntervalSet] | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        self.input_ranges = dict(input_ranges or {})
        self.config = config if config is not None else OptimizerConfig()

    # ------------------------------------------------------------- pipeline
    def build_pipeline(
        self,
        source: str | None = None,
        roots: Mapping[str, Expr] | None = None,
        user_splits: Sequence[Expr] = (),
    ) -> Pipeline:
        """The stage list this config's one-call entrypoints run."""
        config = self.config
        sharding = config.shards > 0 or config.auto_shard_nodes is not None
        if sharding:
            if config.warm_start:
                raise ValueError(
                    "warm-start composes with the monolithic flow only"
                )
            if config.extraction_key is not default_key:
                # Same rationale: shards extract with the default objective
                # (the schedule that crosses process boundaries carries no
                # callables), and silently swapping the objective would be
                # worse than refusing.
                raise ValueError(
                    "a custom extraction_key composes with the monolithic "
                    "flow only"
                )
            if config.extract_objective != "greedy":
                # Shards extract inside their worker schedules; the ILP
                # refinement plans its own per-output cones and would
                # double-decompose.
                raise ValueError(
                    "extract_objective='ilp' composes with the monolithic "
                    "flow only"
                )
            stages = [
                # Parse only: each shard ingests its cone into its own
                # e-graph, so the monolithic graph would be discarded work.
                Ingest(
                    source=source,
                    roots=dict(roots) if roots else None,
                    seed_egraph=False,
                ),
                Shard(
                    ShardSchedule(
                        iter_limit=config.iter_limit,
                        node_limit=config.node_limit,
                        time_limit=config.time_limit,
                        split_threshold=config.split_threshold,
                        enable_assume=config.enable_assume,
                        enable_condition=config.enable_condition_rewriting,
                        check_invariants=config.check_invariants,
                        budget_policy=config.budget_policy,
                        # Designer case splits ride into the shards and are
                        # cone-sliced there: each shard applies exactly the
                        # splits its cone can see, instead of the old
                        # behaviour of refusing to compose at all.
                        splits=tuple(user_splits),
                        ship_egraph=config.stitch,
                    ),
                    max_shards=config.shards if config.shards > 0 else None,
                    auto_threshold=config.auto_shard_nodes,
                    parallel=config.shard_parallel,
                ),
                MergeShards(
                    stitch=config.stitch,
                    stitch_rules=config.rules() if config.stitch else None,
                ),
            ]
            if config.save_egraph:
                stages.append(
                    SaveEGraph(config.save_egraph, schedule=config.schedule_key())
                )
            if config.verify:
                stages.append(Verify(strict=True, budget=config.verify_budget))
            return Pipeline(stages)
        if config.stitch:
            raise ValueError("stitch requires a sharded flow")
        warm = bool(config.warm_start)
        stages = [
            Ingest(
                source=source,
                roots=dict(roots) if roots else None,
                seed_egraph=not warm,
            )
        ]
        if warm:
            stages.append(
                WarmStart(config.warm_start, schedule=config.schedule_key())
            )
        if user_splits:
            stages.append(CaseSplit(user_splits))
        stages.append(
            Saturate(
                config.rules(),
                iter_limit=config.iter_limit,
                node_limit=config.node_limit,
                time_limit=config.time_limit,
                check_invariants=config.check_invariants,
            )
        )
        if config.save_egraph:
            stages.append(
                SaveEGraph(config.save_egraph, schedule=config.schedule_key())
            )
        # ASSUME wrappers are kept in the extracted tree: the tree-level
        # range analysis re-derives the constraint refinements from them, so
        # netlist lowering and Verilog emission see the reduced bitwidths.
        if config.extract_objective == "ilp":
            # Runtime import: opt sits below solve in the package DAG.
            from repro.solve.extract_opt import OptimalExtract

            stages.append(
                OptimalExtract(key=config.extraction_key, strip_assumes=False)
            )
        elif config.extract_objective == "greedy":
            stages.append(Extract(key=config.extraction_key, strip_assumes=False))
        else:
            raise ValueError(
                f"unknown extract objective: {config.extract_objective!r}"
            )
        if config.verify:
            stages.append(Verify(strict=True, budget=config.verify_budget))
        return Pipeline(stages)

    # ----------------------------------------------------------------- entry
    def optimize_expr(
        self, expr: Expr, user_splits: Sequence[Expr] = ()
    ) -> OptimizationResult:
        """Optimize a single IR expression."""
        result = self.optimize_exprs({"out": expr}, user_splits)
        return result.outputs["out"]

    def optimize_verilog(
        self, source: str, user_splits: Sequence[Expr] = ()
    ) -> ModuleResult:
        """Optimize every output of a Verilog module (joint e-graph)."""
        pipeline = self.build_pipeline(source=source, user_splits=user_splits)
        return self._package(self._run(pipeline))

    def optimize_exprs(
        self, roots: Mapping[str, Expr], user_splits: Sequence[Expr] = ()
    ) -> ModuleResult:
        """Optimize several roots sharing one e-graph."""
        pipeline = self.build_pipeline(roots=roots, user_splits=user_splits)
        return self._package(self._run(pipeline))

    def _run(self, pipeline: Pipeline) -> PipelineContext:
        """Run a built pipeline under this config's resource governance."""
        return pipeline.run(
            input_ranges=self.input_ranges,
            budget=self.config.budget,
            budget_policy=self.config.budget_policy,
        )

    # ------------------------------------------------------------- plumbing
    def _package(self, ctx: PipelineContext) -> ModuleResult:
        """Repackage a finished context into the stable result shape."""
        report = ctx.report
        runtime = ctx.total_seconds
        # Sharded runs: each output's report is its own shard's, not the
        # last one that happened to finish.
        report_by_output = {
            output: result.reports[-1]
            for result in ctx.shard_results
            for output in result.outputs
            if result.reports
        }
        outputs = {
            name: OptimizationResult(
                original=expr,
                optimized=ctx.extracted[name],
                original_cost=ctx.original_costs[name],
                optimized_cost=ctx.optimized_costs[name],
                report=report_by_output.get(name, report),
                equivalence=ctx.equivalence.get(name),
                runtime=runtime,
                input_ranges=dict(ctx.input_ranges),
            )
            for name, expr in ctx.roots.items()
        }
        return ModuleResult(
            outputs=outputs, egraph=ctx.egraph, report=report, context=ctx
        )
