"""Range analysis over plain expression *trees* (no e-graph).

Used after extraction: the netlist lowering and the Verilog emitter need a
width for every node of the chosen design.  The analysis is the same
transfer system as the e-class analysis but without ASSUME refinement —
extracted designs have their ASSUME wrappers stripped, and any remaining
ASSUME is treated as a wire over its guarded child.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.transfer import iset_transfer
from repro.intervals import IntervalSet
from repro.ir import ops
from repro.ir.expr import Expr


def expr_ranges(
    root: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> dict[Expr, IntervalSet]:
    """Map every distinct subterm to a sound range over-approximation."""
    input_ranges = dict(input_ranges or {})
    memo: dict[Expr, IntervalSet] = {}
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if c not in memo)
            continue
        if node.op is ops.VAR:
            name, width = node.attrs
            iset = IntervalSet.unsigned(width)
            if name in input_ranges:
                iset = iset.intersect(input_ranges[name])
            memo[node] = iset
        elif node.op is ops.CONST:
            memo[node] = IntervalSet.point(node.value)
        elif node.op is ops.ASSUME:
            memo[node] = _refine_assume(node, memo)
        else:
            kids = [memo[c] for c in node.children]
            memo[node] = iset_transfer(node.op, node.attrs, kids)
    return memo


def _refine_assume(node: Expr, memo: dict[Expr, IntervalSet]) -> IntervalSet:
    """Eq. (3)/(4) refinement on *trees* (structural Constr matching).

    Extracted designs keep their ASSUME wrappers precisely so that this
    refinement can reproduce the e-graph's width knowledge when lowering to
    gates or emitting Verilog: the guarded expression's range is intersected
    with the interval implied by each syntactically recognizable constraint.
    """
    target = node.children[0]
    refined = memo[target]
    for constraint in node.children[1:]:
        cond = memo[constraint]
        if cond.is_empty or cond.as_point() == 0:
            return IntervalSet.empty()
        implied = _decode_tree_constr(constraint, target, memo)
        if implied is not None:
            refined = refined.intersect(implied)
    return refined


def _decode_tree_constr(
    constraint: Expr, target: Expr, memo: dict[Expr, IntervalSet]
) -> IntervalSet | None:
    """Interval implied for ``target`` by ``constraint`` being true."""
    if constraint == target:
        return IntervalSet.top().remove_point(0)
    op = constraint.op
    if op is ops.LNOT:
        inner = constraint.children[0]
        if inner == target:
            return IntervalSet.point(0)
        # ~(cmp) inverts the comparison.
        flipped = _invert_comparison(inner)
        if flipped is not None:
            return _decode_tree_constr(flipped, target, memo)
        return None
    if op not in (ops.LT, ops.LE, ops.GT, ops.GE, ops.EQ, ops.NE):
        return None
    left, right = constraint.children
    if left == target:
        k = memo[right].as_point()
        on_left = True
    elif right == target:
        k = memo[left].as_point()
        on_left = False
    else:
        return None
    if k is None:
        return None
    if op is ops.EQ:
        return IntervalSet.point(k)
    if op is ops.NE:
        return IntervalSet.top().remove_point(k)
    if (op is ops.LT and on_left) or (op is ops.GT and not on_left):
        return IntervalSet.of(None, k - 1)
    if (op is ops.LE and on_left) or (op is ops.GE and not on_left):
        return IntervalSet.of(None, k)
    if (op is ops.GT and on_left) or (op is ops.LT and not on_left):
        return IntervalSet.of(k + 1, None)
    return IntervalSet.of(k, None)


_INVERSIONS = {
    ops.LT: ops.GE, ops.LE: ops.GT, ops.GT: ops.LE,
    ops.GE: ops.LT, ops.EQ: ops.NE, ops.NE: ops.EQ,
}


def _invert_comparison(node: Expr) -> Expr | None:
    flipped = _INVERSIONS.get(node.op)
    if flipped is None:
        return None
    return Expr(flipped, (), node.children)


def expr_totals(
    root: Expr, ranges: Mapping[Expr, IntervalSet]
) -> dict[Expr, bool]:
    """Totality of every subterm (mirrors the e-class analysis's flag).

    ``ranges`` must cover every subterm of ``root`` (use
    :func:`expr_ranges`).  The rules are those of
    :meth:`~repro.analysis.datapath.DatapathAnalysis.make`: leaves are
    total, ``ASSUME`` is never total, a mux is total when its condition is
    and so is every branch it can select, strict operators are total when
    all operands are and the operands provably stay in the operator's
    defined domain.
    """
    from repro.analysis.datapath import defined_everywhere

    memo: dict[Expr, bool] = {}
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            stack.extend((c, False) for c in node.children if c not in memo)
            continue
        if node.op in (ops.VAR, ops.CONST):
            memo[node] = True
        elif node.op is ops.ASSUME:
            memo[node] = False
        elif node.op is ops.MUX:
            cond, if_true, if_false = node.children
            verdict = ranges[cond].truthiness()
            memo[node] = memo[cond] and (
                (verdict is True and memo[if_true])
                or (verdict is False and memo[if_false])
                or (memo[if_true] and memo[if_false])
            )
        else:
            kid_isets = [ranges[c] for c in node.children]
            memo[node] = all(memo[c] for c in node.children) and defined_everywhere(
                node.op, node.attrs, kid_isets
            )
    return memo


def expr_width(
    root: Expr, input_ranges: Mapping[str, IntervalSet] | None = None
) -> int:
    """Storage width of the root under the tree range analysis."""
    width = expr_ranges(root, input_ranges)[root].storage_width()
    return width if width is not None else 64
