"""Equality-saturation runner with an egg-style backoff scheduler.

The runner repeatedly (1) searches every enabled rule against a per-iteration
node index, (2) applies all matches constructively, (3) rebuilds congruence
and the analyses, until saturation or a node / iteration / time limit —
mirroring ``egg::Runner``.

The :class:`BackoffScheduler` keeps match-hungry rules (associativity,
commutativity) from drowning the graph: any rule producing more than its
budget of matches in one iteration is banned for exponentially growing
spans, exactly like egg's ``BackoffScheduler``.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Sequence

from repro.egraph.egraph import EGraph
from repro.egraph.query import QueryPlan
from repro.egraph.rewrite import Rewrite

if TYPE_CHECKING:  # import at runtime happens lazily (package-cycle-free)
    from repro.pipeline.budget import Budget


class StopReason(Enum):
    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration limit"
    NODE_LIMIT = "node limit"
    TIME_LIMIT = "time limit"
    MATCH_LIMIT = "match limit"


@dataclass
class IterationStats:
    """Per-iteration bookkeeping (sizes match the paper's Section V stats).

    Sizes are recorded both at iteration start (``*_before``) and after the
    rebuild (``*_after``), so real per-iteration growth is reported instead
    of the start-of-iteration snapshot being silently overwritten.
    """

    index: int
    nodes_before: int
    classes_before: int
    nodes_after: int = 0
    classes_after: int = 0
    #: E-node count at the end of the apply phase, before the rebuild's
    #: congruence merges deflate it — the capacity the iteration actually
    #: consumed (what a shared budget pool is charged).
    nodes_peak: int = 0
    applied: dict[str, int] = field(default_factory=dict)
    search_time: float = 0.0
    apply_time: float = 0.0
    rebuild_time: float = 0.0

    @property
    def nodes(self) -> int:
        """Size after the iteration's rebuild (backwards-compatible alias)."""
        return self.nodes_after

    @property
    def classes(self) -> int:
        """Classes after the iteration's rebuild (backwards-compatible)."""
        return self.classes_after

    @property
    def node_growth(self) -> int:
        """E-nodes added by this iteration."""
        return self.nodes_after - self.nodes_before

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (drives ``RunRecord`` / perf logs)."""
        return {
            "index": self.index,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "nodes_peak": self.nodes_peak,
            "classes_before": self.classes_before,
            "classes_after": self.classes_after,
            "applied": dict(self.applied),
            "search_s": round(self.search_time, 6),
            "apply_s": round(self.apply_time, 6),
            "rebuild_s": round(self.rebuild_time, 6),
        }


@dataclass
class RunnerReport:
    """Outcome of a saturation run."""

    stop_reason: StopReason
    iterations: list[IterationStats]
    total_time: float
    #: The budget the run was governed by (legacy-kwarg runs carry their
    #: shimmed equivalent).
    budget: "Budget | None" = None

    @property
    def nodes(self) -> int:
        return self.iterations[-1].nodes if self.iterations else 0

    @property
    def classes(self) -> int:
        return self.iterations[-1].classes if self.iterations else 0

    @property
    def nodes_grown(self) -> int:
        """E-nodes the run consumed (what a shared pool is charged).

        Measured to the final iteration's pre-rebuild *peak*: a run stopped
        on ``NODE_LIMIT`` charges the capacity that tripped the limit even
        when the closing rebuild merges the graph back below it — so a
        governor's ledger always agrees with the stop reason.
        """
        if not self.iterations:
            return 0
        last = self.iterations[-1]
        return max(
            0,
            max(last.nodes_peak, last.nodes_after)
            - self.iterations[0].nodes_before,
        )

    @property
    def matches_applied(self) -> int:
        """Total successful rule applications across all iterations."""
        return sum(sum(it.applied.values()) for it in self.iterations)

    def spent(self) -> dict:
        """The ledger row this run consumed (allocated-vs-spent reporting)."""
        return {
            "time_s": round(self.total_time, 6),
            "nodes": self.nodes_grown,
            "iters": len(self.iterations),
            "matches": self.matches_applied,
        }

    def summary(self) -> str:
        """One-line human summary."""
        grown = sum(it.node_growth for it in self.iterations)
        return (
            f"{len(self.iterations)} iterations, {self.nodes} nodes "
            f"(+{grown} grown), {self.classes} classes, "
            f"stopped: {self.stop_reason.value}, {self.total_time:.2f}s"
        )

    def as_dict(self) -> dict:
        """JSON-serializable report (drives ``RunRecord`` / perf logs)."""
        out = {
            "stop_reason": self.stop_reason.value,
            "total_time_s": round(self.total_time, 6),
            "nodes": self.nodes,
            "classes": self.classes,
            "iterations": [it.as_dict() for it in self.iterations],
        }
        if self.budget is not None:
            out["budget"] = {
                "allocated": self.budget.as_dict(include_deadline=False),
                "spent": self.spent(),
            }
        return out


#: Per-rule match budget before the backoff scheduler bans a rule.  Tuned
#: for a single output cone; multi-output monolithic runs scale it by the
#: root count (see :class:`repro.pipeline.stages.Saturate`) so one shared
#: e-graph is not starved relative to per-output shards.
DEFAULT_MATCH_LIMIT = 1_000


class BackoffScheduler:
    """Ban rules that over-match, with doubling ban lengths."""

    def __init__(
        self, match_limit: int = DEFAULT_MATCH_LIMIT, ban_length: int = 2
    ) -> None:
        self.match_limit = match_limit
        self.ban_length = ban_length
        self._banned_until: dict[str, int] = {}
        self._times_banned: dict[str, int] = {}

    def enabled(self, rule: Rewrite, iteration: int) -> bool:
        return self._banned_until.get(rule.name, -1) < iteration

    def budget(self, rule: Rewrite) -> int:
        shift = self._times_banned.get(rule.name, 0)
        return self.match_limit << shift

    def record(self, rule: Rewrite, matches: int, iteration: int) -> None:
        if matches < self.budget(rule):
            return
        banned = self._times_banned.get(rule.name, 0)
        self._times_banned[rule.name] = banned + 1
        self._banned_until[rule.name] = iteration + (self.ban_length << banned)


#: Shimmed defaults for the deprecated ``iter_limit``/``node_limit``/
#: ``time_limit`` kwargs (their historical values).
_LEGACY_ITERS = 16
_LEGACY_NODES = 50_000
_LEGACY_TIME_S = 120.0


class Runner:
    """Drive a set of rewrites over an e-graph until a stop condition.

    The stop condition is a :class:`~repro.pipeline.budget.Budget` — wall
    clock (relative span and/or inherited absolute deadline), e-node cap,
    iteration quota, match quota.  The legacy ``iter_limit`` / ``node_limit``
    / ``time_limit`` kwargs still work as a deprecated shim that builds an
    equivalent budget; new call sites should pass ``budget=``, which is how
    a pipeline's :class:`~repro.pipeline.budget.ResourceGovernor` threads
    one shared deadline through nested saturation stages instead of letting
    each restart the clock.
    """

    def __init__(
        self,
        egraph: EGraph,
        rules: Sequence[Rewrite],
        iter_limit: int | None = None,
        node_limit: int | None = None,
        time_limit: float | None = None,
        scheduler: BackoffScheduler | None = None,
        check_invariants: bool = False,
        *,
        budget: "Budget | None" = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        from repro.pipeline.budget import Budget  # runtime: cycle-free

        self.egraph = egraph
        self.rules = list(rules)
        legacy = {
            key: value
            for key, value in (
                ("iter_limit", iter_limit),
                ("node_limit", node_limit),
                ("time_limit", time_limit),
            )
            if value is not None
        }
        if budget is not None:
            if legacy:
                raise ValueError(
                    "pass either budget= or the legacy "
                    f"{sorted(legacy)} kwargs, not both"
                )
        else:
            if legacy:
                warnings.warn(
                    "Runner(iter_limit=..., node_limit=..., time_limit=...) "
                    "is deprecated; pass budget=Budget(iters=..., nodes=..., "
                    "time_s=...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            budget = Budget(
                iters=iter_limit if iter_limit is not None else _LEGACY_ITERS,
                nodes=node_limit if node_limit is not None else _LEGACY_NODES,
                time_s=time_limit if time_limit is not None else _LEGACY_TIME_S,
            )
        self.budget = budget
        self.clock = clock if clock is not None else time.monotonic
        self.scheduler = scheduler if scheduler is not None else BackoffScheduler()
        #: Assert e-graph invariants after every rebuild (tests only — the
        #: check is a full sweep).
        self.check_invariants = check_invariants
        self._spent_once_rules: set[str] = set()
        #: Compiled multi-pattern plan (flat-core e-graphs only): all
        #: pattern-searcher rules lowered once, searched in one batched
        #: per-op scan each iteration.  Legacy graphs keep the generic
        #: pattern-at-a-time path.
        self._plan = QueryPlan(self.rules) if hasattr(egraph, "core") else None

    # Legacy views of the budget (read-only; the shim keeps old call sites
    # and introspection working).
    @property
    def iter_limit(self) -> int | None:
        return self.budget.iters

    @property
    def node_limit(self) -> int | None:
        return self.budget.nodes

    @property
    def time_limit(self) -> float | None:
        return self.budget.time_s

    def run(self) -> RunnerReport:
        """Run to saturation or budget exhaustion; the e-graph is mutated
        in place.

        The time budget is a *deadline* threaded through the search and
        apply loops, so one slow phase cannot blow arbitrarily past it —
        the run stops mid-iteration (after a rebuild that leaves the
        e-graph consistent) with ``StopReason.TIME_LIMIT``.  When the
        budget carries an absolute deadline (inherited from a governor or
        parent shard), that instant wins over ``start + time_s``: nested
        runs race one shared clock rather than each restarting it.
        """
        clock = self.clock
        start = clock()
        deadline = self.budget.deadline_at(start)
        node_limit = self.budget.nodes if self.budget.nodes is not None else math.inf
        match_limit = (
            self.budget.matches if self.budget.matches is not None else math.inf
        )
        iter_limit = self.budget.iters
        matches_seen = 0
        iterations: list[IterationStats] = []
        stop: StopReason | None = None

        self.egraph.rebuild()
        if self.check_invariants:
            self.egraph.check_invariants()
        iteration = 0
        while iter_limit is None or iteration < iter_limit:
            if self.egraph.node_count > node_limit:
                # A seed already over budget (warm start, oversized ingest)
                # cannot admit a single application: skip the search phase
                # it would pay for nothing.
                stop = StopReason.NODE_LIMIT
                break
            stats = IterationStats(
                index=iteration,
                nodes_before=self.egraph.node_count,
                classes_before=self.egraph.class_count,
            )
            version_before = self.egraph.version
            index: dict | None = None

            # --- search phase -------------------------------------------
            t0 = clock()
            matches: list[tuple[Rewrite, list[tuple[int, dict]]]] = []
            plan_results: dict[str, list] = {}
            if self._plan is not None and clock() <= deadline:
                budgets = {
                    rule.name: self.scheduler.budget(rule)
                    for rule in self.rules
                    if rule.name in self._plan
                    and not (rule.once and rule.name in self._spent_once_rules)
                    and self.scheduler.enabled(rule, iteration)
                }
                if budgets:
                    plan_results = self._plan.search(self.egraph.core, budgets)
            for rule in self.rules:
                if clock() > deadline:
                    stop = StopReason.TIME_LIMIT
                    break
                if rule.once and rule.name in self._spent_once_rules:
                    continue
                if not self.scheduler.enabled(rule, iteration):
                    continue
                found = plan_results.get(rule.name)
                if found is None:
                    # Dynamic rule, legacy graph, or the plan was skipped
                    # (deadline already blown): generic search path.
                    if index is None:
                        index = self.egraph.nodes_by_op()
                    found = rule.search(
                        self.egraph, index, self.scheduler.budget(rule)
                    )
                self.scheduler.record(rule, len(found), iteration)
                if found:
                    matches.append((rule, found))
                    matches_seen += len(found)
                    if matches_seen > match_limit:
                        stop = StopReason.MATCH_LIMIT
                        break
            stats.search_time = clock() - t0

            # --- apply phase --------------------------------------------
            t0 = clock()
            if stop is None:
                for rule, found in matches:
                    applied = 0
                    for class_id, env in found:
                        if rule.apply(self.egraph, class_id, env):
                            applied += 1
                        if self.egraph.node_count > node_limit:
                            stop = StopReason.NODE_LIMIT
                            break
                        if clock() > deadline:
                            stop = StopReason.TIME_LIMIT
                            break
                    if applied:
                        stats.applied[rule.name] = applied
                        if rule.once:
                            self._spent_once_rules.add(rule.name)
                    if stop is not None:
                        break
            stats.apply_time = clock() - t0
            stats.nodes_peak = self.egraph.node_count

            # --- rebuild phase (always: leave the graph consistent) -----
            t0 = clock()
            self.egraph.rebuild()
            stats.rebuild_time = clock() - t0

            stats.nodes_after = self.egraph.node_count
            stats.classes_after = self.egraph.class_count
            iterations.append(stats)
            if self.check_invariants:
                self.egraph.check_invariants()

            if stop is not None:
                break
            if self.egraph.version == version_before:
                stop = StopReason.SATURATED
                break
            if self.egraph.node_count > node_limit:
                stop = StopReason.NODE_LIMIT
                break
            if clock() > deadline:
                stop = StopReason.TIME_LIMIT
                break
            iteration += 1

        return RunnerReport(
            stop_reason=stop if stop is not None else StopReason.ITERATION_LIMIT,
            iterations=iterations,
            total_time=clock() - start,
            budget=self.budget,
        )
