"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) and prints the same rows/series the paper reports.
Absolute numbers are in technology-free gate units (unit-delay gates), so
the *shape* — who wins and by roughly what factor — is the reproduction
target, not the paper's ns/µm² (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import Design
from repro.ir.expr import Expr
from repro.rtl import module_to_ir
from repro.synth import SynthesisPoint, min_delay_point
from repro.verify import EquivalenceResult, check_equivalent


@dataclass
class BenchRun:
    """One optimized design plus its measurement points.

    Two measurement layers (see EXPERIMENTS.md): the Section IV-D *model*
    cost — the paper's own extraction objective, where constraint-aware
    wins are directly visible — and the gate-level *netlist* min-delay
    synthesis point, our substitute for the commercial flow.
    """

    design: Design
    behavioural: Expr
    optimized: Expr
    behavioural_point: SynthesisPoint
    optimized_point: SynthesisPoint
    model_before: "object"
    model_after: "object"
    equivalence: EquivalenceResult
    egraph_nodes: int
    egraph_classes: int
    iterations: int
    runtime: float


def run_design(design: Design, verify_trials: int = 3000) -> BenchRun:
    """Optimize one benchmark and synthesize both versions at min delay."""
    behavioural = module_to_ir(design.verilog)[design.output]
    config = OptimizerConfig(
        iter_limit=design.iterations,
        node_limit=design.node_limit,
        verify=False,
    )
    tool = DatapathOptimizer(design.input_ranges, config)
    result = tool.optimize_verilog(design.verilog).outputs[design.output]
    equivalence = check_equivalent(
        behavioural, result.optimized, design.input_ranges,
        random_trials=verify_trials,
    )
    assert equivalence.ok, f"{design.name}: optimizer broke equivalence"
    return BenchRun(
        design=design,
        behavioural=behavioural,
        optimized=result.optimized,
        behavioural_point=min_delay_point(behavioural, design.input_ranges),
        optimized_point=min_delay_point(result.optimized, design.input_ranges),
        model_before=result.original_cost,
        model_after=result.optimized_cost,
        equivalence=equivalence,
        egraph_nodes=result.report.nodes,
        egraph_classes=result.report.classes,
        iterations=len(result.report.iterations),
        runtime=result.runtime,
    )


def table_row(run: BenchRun) -> str:
    """A Table III style row: netlist min-delay point plus model cost."""
    b, o = run.behavioural_point, run.optimized_point
    d_pct = 100.0 * (o.delay - b.delay) / b.delay
    a_pct = 100.0 * (o.area - b.area) / b.area
    mb, mo = run.model_before, run.model_after
    md = 100.0 * (mo.delay - mb.delay) / mb.delay if mb.delay else 0.0
    ma = 100.0 * (mo.area - mb.area) / mb.area if mb.area else 0.0
    return (
        f"{run.design.name:<16} netlist {b.delay:>6.1f}/{b.area:>7.1f} -> "
        f"{o.delay:>6.1f} ({d_pct:+3.0f}%) /{o.area:>7.1f} ({a_pct:+3.0f}%)  "
        f"model ({md:+3.0f}% / {ma:+3.0f}%)  [{run.equivalence}]"
    )
