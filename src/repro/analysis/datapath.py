"""The interval + totality e-class analysis (the paper's program analysis).

``make`` is the abstract transfer function of every IR operator over
:class:`~repro.intervals.IntervalSet`; ``join`` intersects (see
arXiv:2205.14989); ``modify`` performs constant folding — gated on totality,
and in the partial (ASSUME) case folding *under the same constraints*, which
is the upward knowledge propagation of Section IV-B.
"""

from __future__ import annotations

from repro.analysis.absval import AbsVal
from repro.analysis.constr import constraint_refinement
from repro.analysis.transfer import iset_transfer
from repro.egraph.egraph import Analysis, EGraph
from repro.egraph.enode import ENode
from repro.intervals import IntervalSet
from repro.ir import ops

ANALYSIS_NAME = "datapath"


def range_of(egraph: EGraph, class_id: int) -> IntervalSet:
    """The interval abstraction of a class."""
    return egraph.data(class_id, ANALYSIS_NAME).iset


def total_of(egraph: EGraph, class_id: int) -> bool:
    """Whether the class provably never evaluates to ``*``."""
    return egraph.data(class_id, ANALYSIS_NAME).total


def range_width(iset: IntervalSet, default: int = 64) -> int:
    """Storage bitwidth implied by a range (empty -> 1, unbounded -> default).

    The single home of the width policy: both the e-graph cost path
    (:func:`width_of`) and the tree cost path
    (:func:`repro.synth.cost.operator_model`) price widths through here.
    """
    width = iset.storage_width()
    if width is None:
        return default
    return max(width, 1)


def width_of(egraph: EGraph, class_id: int, default: int = 64) -> int:
    """Storage bitwidth implied by the class's range (drives the cost model).

    Empty (dead) classes report width 1; unbounded ranges report ``default``.
    """
    return range_width(range_of(egraph, class_id), default)


class DatapathAnalysis(Analysis):
    """Interval + totality analysis with ASSUME-aware refinement.

    ``input_ranges`` optionally narrows input variables (the paper's "input
    constraints", e.g. ``x >= 128`` in Figure 1) — a variable's abstraction
    is the declared unsigned range intersected with its entry here.
    """

    name = ANALYSIS_NAME

    #: Bound on the per-analysis ``make`` memo table.
    MAKE_CACHE_CAP = 1 << 17

    def __init__(
        self,
        input_ranges: dict[str, IntervalSet] | None = None,
        constr_cache: bool = True,
    ) -> None:
        self.input_ranges = dict(input_ranges or {})
        # ``make`` is a pure function of (op, attrs, child data) for every
        # operator except ASSUME (whose refinement reads constraint-class
        # membership from the e-graph) and the leaves (cheap).  Rebuild
        # re-runs ``make`` on mostly-unchanged e-nodes every iteration, so
        # the hit rate is high.  AbsVal hashes cheaply: its IntervalSet is
        # hash-consed with a cached hash.
        self._make_cache: dict[tuple, AbsVal] = {}
        # Constraint-class membership scan cache (class id -> (rev,
        # candidates)); ``constr_cache=False`` keeps the uncached reference
        # path for differential tests.
        self._constr_cache: dict | None = {} if constr_cache else None

    # ------------------------------------------------------------------- make
    def make(self, egraph: EGraph, enode: ENode) -> AbsVal:
        op = enode.op

        if op is ops.VAR:
            name, width = enode.attrs
            iset = IntervalSet.unsigned(width)
            if name in self.input_ranges:
                iset = iset.intersect(self.input_ranges[name])
            return AbsVal(iset, True)
        if op is ops.CONST:
            return AbsVal(IntervalSet.point(enode.attrs[0]), True)

        kids = [egraph.data(c, self.name) for c in enode.children]

        if op is ops.ASSUME:
            guarded = kids[0]
            cache = self._constr_cache
            if cache is not None and len(cache) >= self.MAKE_CACHE_CAP:
                cache.clear()
            refinement = constraint_refinement(
                egraph, self.name, enode.children[1:], enode.children[0],
                self._constr_cache,
            )
            return AbsVal(guarded.iset.intersect(refinement), False)

        key = (op, enode.attrs, tuple(kids))
        cached = self._make_cache.get(key)
        if cached is not None:
            return cached

        kid_isets = [k.iset for k in kids]
        if op is ops.MUX:
            cond, if_true, if_false = kids
            verdict = cond.iset.truthiness()
            # A mux is total when its condition is total and every branch it
            # can actually select is total.
            total = cond.total and (
                (verdict is True and if_true.total)
                or (verdict is False and if_false.total)
                or (if_true.total and if_false.total)
            )
        else:
            total = all(k.total for k in kids) and defined_everywhere(
                op, enode.attrs, kid_isets
            )
        result = AbsVal(iset_transfer(op, enode.attrs, kid_isets), total)

        if len(self._make_cache) >= self.MAKE_CACHE_CAP:
            self._make_cache.clear()
        self._make_cache[key] = result
        return result

    # ------------------------------------------------------------------- join
    def join(self, left: AbsVal, right: AbsVal) -> AbsVal:
        return left.join(right)

    # ----------------------------------------------------------------- modify
    def modify(self, egraph: EGraph, class_id: int) -> None:
        class_id = egraph.find(class_id)
        data: AbsVal = egraph.data(class_id, self.name)
        value = data.iset.as_point()
        if value is None:
            return

        if data.total:
            # Total class with singleton range: it *is* that constant.
            if egraph.class_const(class_id) is None:
                const_id = egraph.add_const(value)
                egraph.union(class_id, const_id)
            return

        # Partial class: fold under the same constraints —
        # ASSUME(x, C) == ASSUME(value, C) when the refined range is {value}.
        # Crucially this is sound only when x itself is *total*: a partial x
        # contributes its own failure domain, which ASSUME(value, C) would
        # erase.  (Nested-ASSUME chains first collapse via Table I row 3,
        # after which the guarded child is a total expression.)
        for enode in list(egraph[class_id].nodes):
            if enode.op is not ops.ASSUME:
                continue
            if not egraph.data(enode.children[0], self.name).total:
                continue
            const_id = egraph.add_const(value)
            folded = ENode(
                ops.ASSUME, (), (const_id,) + tuple(enode.children[1:])
            )
            if egraph.lookup(folded) == class_id:
                continue
            new_id = egraph.add_enode(folded)
            egraph.union(class_id, new_id)
            break


def _definitely_nonneg(iset: IntervalSet) -> bool:
    low = iset.min()
    return low is not None and low >= 0


def defined_everywhere(op, attrs: tuple, kids: list[IntervalSet]) -> bool:
    """Can this strict operator ever yield ``*`` on in-range operands?

    Bitwise operators are undefined (``*``) on negative values, shifts on
    negative amounts, LZC/NOT outside their declared width, CONCAT when the
    low part overflows its field — the analysis must prove the operands stay
    inside the defined domain before the node can be called total.
    """
    a = kids[0] if kids else IntervalSet.empty()
    b = kids[1] if len(kids) > 1 else IntervalSet.empty()
    if op in (ops.SHL, ops.SHR):
        return _definitely_nonneg(b)
    if op in (ops.AND, ops.OR, ops.XOR):
        return _definitely_nonneg(a) and _definitely_nonneg(b)
    if op in (ops.NOT, ops.LZC):
        (width,) = attrs
        return a.issubset(IntervalSet.unsigned(width))
    if op is ops.SLICE:
        return _definitely_nonneg(a)
    if op is ops.CONCAT:
        (rhs_width,) = attrs
        return _definitely_nonneg(a) and b.issubset(IntervalSet.unsigned(rhs_width))
    return True
