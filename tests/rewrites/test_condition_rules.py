"""Table II: condition rewriting turns Expr conditions into Constr form."""

from repro.analysis import DatapathAnalysis, range_of
from repro.egraph import EGraph, Runner
from repro.intervals import IntervalSet
from repro.ir import var
from repro.ir.expr import assume, ge, gt, le, lnot, lt, ne, eq
from repro.rewrites.condition import condition_rules
from repro.rewrites.arith import arith_rules
from repro.pipeline.budget import Budget


def saturate(expr, extra_rules=(), iters=6, **ranges):
    g = EGraph([DatapathAnalysis(dict(ranges))])
    root = g.add_expr(expr)
    g.rebuild()
    rules = condition_rules() + list(extra_rules)
    Runner(g, rules, budget=Budget(iters=iters, nodes=6000)).run()
    return g, root


class TestTransformationRules:
    def test_section_iv_c_example(self):
        """ASSUME(a-b, a>b): rewriting a>b -> a-b>0 triggers eq. (4)."""
        a, b = var("a", 8), var("b", 8)
        g, root = saturate(assume(a - b, gt(a, b)))
        assert range_of(g, root) == IntervalSet.of(1, 255)

    def test_lt_variant(self):
        a, b = var("a", 8), var("b", 8)
        g, root = saturate(assume(a - b, lt(a, b)))
        assert range_of(g, root) == IntervalSet.of(-255, -1)

    def test_eq_variant(self):
        a, b = var("a", 8), var("b", 8)
        g, root = saturate(assume(a - b, eq(a, b)))
        assert range_of(g, root).as_point() == 0

    def test_le_needs_constant_fold(self):
        """a <= b -> a < b+1: the +1 must constant-fold for Constr to see it."""
        a = var("a", 8)
        g, root = saturate(assume(a, le(a, 9)))
        assert range_of(g, root) == IntervalSet.of(0, 9)

    def test_ge_chain(self):
        a = var("a", 8)
        g, root = saturate(assume(a, ge(a, 9)))
        assert range_of(g, root) == IntervalSet.of(9, 255)


class TestInversionRules:
    def test_paper_equation_9(self):
        """ASSUME(ExpDiff, ~(ExpDiff>1)) refines to [0, 1] via two
        sequential condition rewrites — exactly the Section V flow."""
        ed = var("ExpDiff", 5)
        g, root = saturate(assume(ed, lnot(gt(ed, 1))))
        assert range_of(g, root) == IntervalSet.of(0, 1)

    def test_not_lt(self):
        a = var("a", 8)
        g, root = saturate(assume(a, lnot(lt(a, 10))))
        assert range_of(g, root) == IntervalSet.of(10, 255)

    def test_not_eq(self):
        a = var("a", 8)
        g, root = saturate(assume(a, lnot(eq(a, 0))))
        assert range_of(g, root) == IntervalSet.of(1, 255)

    def test_not_ne(self):
        a = var("a", 8)
        g, root = saturate(assume(a, lnot(ne(a, 3))))
        assert range_of(g, root).as_point() == 3

    def test_not_le_with_arith(self):
        a = var("a", 8)
        g, root = saturate(assume(a, lnot(le(a, 100))), extra_rules=arith_rules())
        assert range_of(g, root) == IntervalSet.of(101, 255)
