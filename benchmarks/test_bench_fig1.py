"""Figure 1: the LZC input-constraint example.

``LZC(x + y)`` at 9 bits with the input constraint ``x >= 128``: the paper's
e-graph learns ``LZC(x+y) <= 1`` and adds ``LZC(a) -> LZC(a >> 7)``, i.e.
only the top two bits feed a 2-bit LZC.  This bench runs the tool on the
design, checks the narrowed LZC was discovered and extracted, and reports
the gate-level savings.
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_design
from repro.designs import DESIGNS
from repro.ir import ops

pytestmark = pytest.mark.slow

_CACHE: dict = {}


def _run():
    if "run" not in _CACHE:
        _CACHE["run"] = run_design(DESIGNS["lzc_example"])
    return _CACHE["run"]


def test_fig1_narrowed_lzc_extracted(benchmark):
    run = benchmark.pedantic(_run, iterations=1, rounds=1)
    lzc_widths = [
        node.attrs[0] for node in run.optimized.walk() if node.op is ops.LZC
    ]
    print(f"\nFigure 1: extracted LZC widths: {lzc_widths}")
    assert lzc_widths, "optimized design lost its LZC"
    # The 9-bit LZC must have narrowed (paper: 2-bit operand).
    assert min(lzc_widths) <= 2

    shift_found = any(
        node.op is ops.SHR and node.children[1].is_const
        and node.children[1].value == 7
        for node in run.optimized.walk()
    )
    assert shift_found, "expected the  >> 7  of Figure 1 in the datapath"


def test_fig1_hardware_savings():
    run = _run()
    b, o = run.behavioural_point, run.optimized_point
    print(
        f"\nFigure 1 example: behavioural {b.delay:.1f}/{b.area:.1f} -> "
        f"optimized {o.delay:.1f}/{o.area:.1f} (gate units)"
    )
    assert o.area < b.area
    assert o.delay <= b.delay
    assert run.equivalence.ok
