"""Shift and truncation algebra (bitwidth-reduction support).

Shift-combination rules require non-negative shift amounts (a negative shift
is ``*`` concretely, and e.g. ``(a << -1) >> 1`` is not ``a``); the analysis
provides the proof through the :func:`~repro.rewrites.soundness.nonneg`
guard.
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite, dynamic
from repro.egraph.egraph import EGraph
from repro.ir import ops
from repro.rewrites.soundness import drule, nonneg, range_le


def shift_rules() -> list[Rewrite]:
    """Shift / truncate algebra."""
    return [
        drule("shl-zero", "(<< ?a 0)", "?a"),
        drule("shr-zero", "(>> ?a 0)", "?a"),
        drule("shl-shl", "(<< (<< ?a ?b) ?c)", "(<< ?a (+ ?b ?c))", nonneg("b", "c")),
        drule("shl-split", "(<< ?a (+ ?b ?c))", "(<< (<< ?a ?b) ?c)", nonneg("b", "c")),
        drule("shr-shr", "(>> (>> ?a ?b) ?c)", "(>> ?a (+ ?b ?c))", nonneg("b", "c")),
        drule("shl-shr-cancel", "(>> (<< ?a ?b) ?b)", "?a", nonneg("b")),
        # Exact floor identities: a*2^k / 2^c is a shift by |k - c| (the
        # alignment collapse that exposes the near/far paths, Section V).
        drule(
            "shr-shl-le",
            "(>> (<< ?a ?k) ?c)",
            "(<< ?a (- ?k ?c))",
            nonneg("c"),
            range_le("c", "k"),
        ),
        drule(
            "shr-shl-ge",
            "(>> (<< ?a ?k) ?c)",
            "(>> ?a (- ?c ?k))",
            nonneg("k"),
            range_le("k", "c"),
        ),
        # Factor a common left shift out of a subtraction / addition:
        # (a<<j) - (b<<k)  ->  ((a << (j-k)) - b) << k   (k <= j).
        drule(
            "shl-sub-align",
            "(- (<< ?a ?j) (<< ?b ?k))",
            "(<< (- (<< ?a (- ?j ?k)) ?b) ?k)",
            nonneg("k"),
            range_le("k", "j"),
        ),
        drule(
            "shl-add-align",
            "(+ (<< ?a ?j) (<< ?b ?k))",
            "(<< (+ (<< ?a (- ?j ?k)) ?b) ?k)",
            nonneg("k"),
            range_le("k", "j"),
        ),
        # Left shifts distribute over +/- exactly (integers, s >= 0).
        drule("shl-add", "(<< (+ ?a ?b) ?c)", "(+ (<< ?a ?c) (<< ?b ?c))", nonneg("c")),
        drule("shl-add-rev", "(+ (<< ?a ?c) (<< ?b ?c))", "(<< (+ ?a ?b) ?c)", nonneg("c")),
        drule("shl-sub", "(<< (- ?a ?b) ?c)", "(- (<< ?a ?c) (<< ?b ?c))", nonneg("c")),
        drule("shl-sub-rev", "(- (<< ?a ?c) (<< ?b ?c))", "(<< (- ?a ?b) ?c)", nonneg("c")),
        # Truncation of a truncation keeps the narrower width.
        trunc_trunc_rule(),
        # trunc distributes over | and & (bit-masking view).
        drule("trunc-or", "(trunc ?w (| ?a ?b))", "(| (trunc ?w ?a) (trunc ?w ?b))", nonneg("a", "b")),
        drule("trunc-and", "(trunc ?w (& ?a ?b))", "(& (trunc ?w ?a) (trunc ?w ?b))", nonneg("a", "b")),
    ]


def trunc_trunc_rule() -> Rewrite:
    """``TRUNC_v(TRUNC_w(a)) -> TRUNC_min(v,w)(a)``."""

    def search(egraph: EGraph, index: dict):
        for class_id, enode in index.get(ops.TRUNC, ()):
            (outer_w,) = enode.attrs
            child = egraph.find(enode.children[0])
            for inner in egraph[child].nodes:
                if inner.op is ops.TRUNC:
                    (inner_w,) = inner.attrs
                    yield egraph.find(class_id), {
                        "a": egraph.find(inner.children[0]),
                        "w": min(outer_w, inner_w),
                    }

    def apply(egraph: EGraph, env: dict, class_id: int):
        return egraph.add_node(ops.TRUNC, (env["w"],), (egraph.find(env["a"]),))

    return dynamic("trunc-trunc", search, apply)
