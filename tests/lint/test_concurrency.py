"""Concurrency checker: synthetic worker races plus the real repo staying clean."""

from __future__ import annotations

import pytest

from repro.lint.concurrency import check_concurrency
from repro.lint.model import SourceTree, load_source_tree

ENTRIES = {"repro.pipeline.session": ("execute_job",)}


def rule_ids(findings):
    return {f.rule_id for f in findings}


class TestSyntheticRaces:
    def test_direct_write_in_worker_is_flagged(self):
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "CACHE = {}\n\n"
                    "def execute_job(job):\n"
                    "    CACHE[job] = 1\n",
            }
        )
        [finding] = check_concurrency(t, ENTRIES)
        assert finding.rule_id == "CC-SHARED"
        assert finding.detail["target"] == "repro.pipeline.session.CACHE"

    def test_write_through_callee_is_flagged(self):
        # The race sits two hops down the call graph, in another module.
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "from repro.synth.cost import price\n\n"
                    "def execute_job(job):\n"
                    "    return price(job)\n",
                "repro.synth.cost":
                    "MEMO = {}\n\n"
                    "def price(job):\n"
                    "    MEMO[job] = 1\n"
                    "    return MEMO[job]\n",
            }
        )
        [finding] = check_concurrency(t, ENTRIES)
        assert finding.detail["target"] == "repro.synth.cost.MEMO"

    def test_mutator_method_call_is_flagged(self):
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "SEEN = set()\n\n"
                    "def execute_job(job):\n"
                    "    SEEN.add(job)\n",
            }
        )
        assert rule_ids(check_concurrency(t, ENTRIES)) == {"CC-SHARED"}

    def test_global_statement_rebind_is_flagged(self):
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "COUNT = 0\n\n"
                    "def execute_job(job):\n"
                    "    global COUNT\n"
                    "    COUNT = COUNT + 1\n",
            }
        )
        assert rule_ids(check_concurrency(t, ENTRIES)) == {"CC-SHARED"}

    def test_local_mutation_is_clean(self):
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "def execute_job(job):\n"
                    "    memo = {}\n"
                    "    memo[job] = 1\n"
                    "    return memo\n",
            }
        )
        assert check_concurrency(t, ENTRIES) == []

    def test_write_outside_worker_reachability_is_clean(self):
        # A registry decorated at import time mutates module state, but no
        # worker entry point ever reaches it.
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "def execute_job(job):\n"
                    "    return job\n",
                "repro.designs.registry":
                    "TABLE = {}\n\n"
                    "def register(design):\n"
                    "    TABLE[design] = design\n",
            }
        )
        assert check_concurrency(t, ENTRIES) == []

    def test_audited_write_is_clean(self):
        t = SourceTree.from_sources(
            {
                "repro.pipeline.session":
                    "from repro.rewrites.rulesets import compose\n\n"
                    "def execute_job(job):\n"
                    "    return compose(job)\n",
                "repro.rewrites.rulesets":
                    "_COMPOSE_CACHE = {}\n\n"
                    "def compose(key):\n"
                    "    _COMPOSE_CACHE[key] = key\n"
                    "    return _COMPOSE_CACHE[key]\n",
            }
        )
        assert check_concurrency(t, ENTRIES) == []


class TestRealRepo:
    @pytest.fixture(scope="class")
    def repo_tree(self):
        return load_source_tree()

    def test_worker_reachable_writes_are_all_audited(self, repo_tree):
        findings = check_concurrency(repo_tree)
        assert findings == [], [f.fid for f in findings]
