"""Quickstart: optimize a small Verilog datapath end to end.

Run:  python examples/quickstart.py

The design saturates a sum against a threshold the analysis can prove
unreachable, and keeps an absolute-value unit alive only on a branch where
its operand is provably non-negative — the two signature moves of
constraint-aware optimization (Sections III/IV of the paper).
"""

from repro import DatapathOptimizer, OptimizerConfig

SOURCE = """
module saturating_add (
  input [7:0] a,
  input [7:0] b,
  output [8:0] out
);
  wire [8:0] sum = a + b;
  wire [8:0] clamped = (sum > 9'd510) ? 9'd510 : sum;
  assign out = clamped;
endmodule
"""


def main() -> None:
    tool = DatapathOptimizer(config=OptimizerConfig(iter_limit=6))
    module = tool.optimize_verilog(SOURCE)
    result = module.outputs["out"]

    print("=== original ===")
    print(SOURCE)
    print("=== optimized ===")
    print(result.emit_verilog("saturating_add_opt"))
    print(
        f"model delay {result.original_cost.delay:.1f} -> "
        f"{result.optimized_cost.delay:.1f} gate levels, "
        f"area {result.original_cost.area:.1f} -> "
        f"{result.optimized_cost.area:.1f} gate equivalents"
    )
    print(f"equivalence: {result.equivalence}")
    # a + b <= 510 always, so the clamp is dead: the mux must be gone.
    assert result.equivalence is not None and result.equivalence.ok


if __name__ == "__main__":
    main()
