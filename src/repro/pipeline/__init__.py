"""Composable optimization pipelines (the tool, taken apart).

The paper's fixed flow — ingest RTL, constraint-aware equality saturation,
cost-based extraction, verification — generalizes (as in its successor
ROVER) into stages over a shared context:

>>> from repro.pipeline import Ingest, Saturate, Extract, Pipeline
>>> from repro.rewrites import structural_ruleset, compose_rules
>>> pipe = Pipeline([
...     Ingest(source=verilog),
...     Saturate(structural_ruleset(), iter_limit=2),   # phase 1
...     Saturate(compose_rules(), iter_limit=4),        # phase 2
...     Extract(),
... ])                                                  # doctest: +SKIP
>>> ctx = pipe.run(input_ranges={"x": IntervalSet.of(128, 255)})  # doctest: +SKIP

Batch work goes through :class:`Session` — named :class:`Job`\\ s over the
designs registry, optionally on a process pool, each producing a
JSON-round-trippable :class:`RunRecord`.

:class:`~repro.opt.optimizer.DatapathOptimizer` remains the one-call preset
over exactly these stages.
"""

from repro.pipeline.budget import (
    ALLOCATORS,
    AdaptiveSplit,
    Budget,
    BudgetAllocator,
    BudgetPool,
    FairSplit,
    ResourceGovernor,
    VerifyAwareSplit,
    WeightedSplit,
    allocator_for,
)
from repro.pipeline.context import PipelineContext
from repro.pipeline.pipeline import Pipeline, run_stages
from repro.pipeline.session import (
    Job,
    RunRecord,
    Session,
    execute_job,
    job_design,
    job_schedule_key,
    job_stages,
    record_from_context,
    resolve_design,
)
from repro.pipeline.shard import (
    MergeShards,
    Shard,
    ShardResult,
    ShardSchedule,
    ShardTask,
    run_shard_task,
)
from repro.pipeline.stages import (
    CaseSplit,
    Emit,
    Extract,
    Ingest,
    SaveEGraph,
    Saturate,
    Stage,
    Verify,
    WarmStart,
)

__all__ = [
    "Budget",
    "BudgetAllocator",
    "BudgetPool",
    "FairSplit",
    "WeightedSplit",
    "AdaptiveSplit",
    "VerifyAwareSplit",
    "ALLOCATORS",
    "allocator_for",
    "ResourceGovernor",
    "PipelineContext",
    "Pipeline",
    "run_stages",
    "Stage",
    "Ingest",
    "WarmStart",
    "CaseSplit",
    "Saturate",
    "SaveEGraph",
    "Extract",
    "Verify",
    "Emit",
    "Shard",
    "MergeShards",
    "ShardSchedule",
    "ShardTask",
    "ShardResult",
    "run_shard_task",
    "Session",
    "Job",
    "RunRecord",
    "execute_job",
    "job_design",
    "job_schedule_key",
    "job_stages",
    "record_from_context",
    "resolve_design",
]
