"""Brute-force oracle tests for the extraction ILP's branch-and-bound.

The solver's claim is global optimality over the 0/1 program (DAG cost,
lazy cycle exclusion).  These tests hold it to that claim the only way that
means anything: seeded-random problems small enough to enumerate
exhaustively, solved both ways, keys compared exactly.  The fuzz problems
deliberately include shared children (where tree-greedy and DAG-optimal
diverge), extra candidates with arbitrary back edges (so the lazy cycle
constraint is exercised), and pure cycle rings (no acyclic selection at
all — both sides must say so).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.solve.ilp import (
    Candidate,
    ExtractionProblem,
    brute_force,
    evaluate_selection,
    feasible_selection,
    solve_extraction,
)


def random_problem(rng: random.Random, classes: int) -> ExtractionProblem:
    """A small random program with a guaranteed acyclic skeleton.

    Class ``i``'s first candidate only points at higher-numbered classes,
    so a feasible selection always exists; every further candidate draws
    children from the *whole* id space, so cycles (including mutual ones)
    appear and the lazy exclusion constraint does real work.
    """
    candidates: dict[int, tuple[Candidate, ...]] = {}
    for cid in range(classes):
        members = []
        forward = tuple(
            sorted(
                rng.sample(
                    range(cid + 1, classes),
                    k=rng.randint(0, min(2, classes - cid - 1)),
                )
            )
        )
        members.append(
            Candidate(
                forward,
                delay=float(rng.randint(1, 8)),
                area=float(rng.randint(1, 8)),
                payload=f"skeleton:{cid}",
            )
        )
        for extra in range(rng.randint(0, 2)):
            anywhere = tuple(
                rng.sample(range(classes), k=rng.randint(0, 2))
            )
            members.append(
                Candidate(
                    anywhere,
                    delay=float(rng.randint(0, 8)),
                    area=float(rng.randint(0, 8)),
                    payload=f"extra:{cid}:{extra}",
                )
            )
        candidates[cid] = tuple(members)
    roots = tuple(sorted(rng.sample(range(classes), k=rng.randint(1, 2))))
    return ExtractionProblem(roots=roots, candidates=candidates)


class TestOracleFuzz:
    def test_solver_matches_brute_force_on_random_programs(self):
        """200 seeded problems, exact key equality against enumeration."""
        rng = random.Random(0x51317)
        for trial in range(200):
            problem = random_problem(rng, classes=rng.randint(2, 6))
            oracle = brute_force(problem)
            result = solve_extraction(problem)
            assert oracle is not None  # the skeleton guarantees feasibility
            assert result is not None
            assert result.status == "optimal", f"trial {trial}"
            assert result.key == oracle.key, (
                f"trial {trial}: solver {result.key} != oracle {oracle.key}"
            )
            # The returned selection really evaluates to the claimed key.
            check = evaluate_selection(problem, result.selection)
            assert check is not None and check[0] == result.key

    def test_descent_off_still_matches_oracle(self):
        """The proof must not depend on the warm-improvement phase."""
        rng = random.Random(0xBEEF)
        for _ in range(60):
            problem = random_problem(rng, classes=rng.randint(2, 5))
            oracle = brute_force(problem)
            result = solve_extraction(problem, descend=False)
            assert result is not None and oracle is not None
            assert result.key == oracle.key

    def test_warm_start_never_worsens_the_answer(self):
        """Any feasible warm start — even a deliberately bad one — leaves
        the optimum unchanged and the incumbent never above it."""
        rng = random.Random(0xABC)
        for _ in range(60):
            problem = random_problem(rng, classes=rng.randint(2, 5))
            oracle = brute_force(problem)
            warm = feasible_selection(problem)
            assert warm is not None
            result = solve_extraction(problem, incumbent=warm)
            assert result is not None and oracle is not None
            assert result.key == oracle.key


class TestCycles:
    def _ring(self, size: int) -> ExtractionProblem:
        return ExtractionProblem(
            roots=(0,),
            candidates={
                cid: (Candidate(((cid + 1) % size,), 1.0, 1.0),)
                for cid in range(size)
            },
        )

    def test_pure_cycle_is_infeasible_for_both(self):
        problem = self._ring(3)
        assert brute_force(problem) is None
        assert solve_extraction(problem) is None
        assert feasible_selection(problem) is None

    def test_cycle_with_escape_takes_the_escape(self):
        """The ring is cheaper per edge, but only the expensive leaf can
        appear in an acyclic selection."""
        problem = ExtractionProblem(
            roots=(0,),
            candidates={
                0: (Candidate((1,), 1.0, 1.0), Candidate((), 9.0, 9.0)),
                1: (Candidate((0,), 1.0, 1.0),),
            },
        )
        oracle = brute_force(problem)
        result = solve_extraction(problem)
        assert oracle is not None and result is not None
        assert result.key == oracle.key
        assert result.selection[0] == 1  # the escape leaf

    def test_evaluate_rejects_cyclic_and_partial_selections(self):
        problem = self._ring(2)
        assert evaluate_selection(problem, {0: 0, 1: 0}) is None  # cycle
        assert evaluate_selection(problem, {0: 0}) is None  # missing choice


class TestSharingObjective:
    def test_dag_cost_prefers_the_shared_subterm(self):
        """The defining divergence from the greedy tree objective: a class
        reused by two parents is paid once, so sharing an expensive block
        beats duplicating cheap ones when tree cost says otherwise."""
        # root -> (a, a) via candidate 0 (delay 1, area 1); the shared `a`
        # costs 10.  Alternative: root realized as one fat leaf, area 13.
        problem = ExtractionProblem(
            roots=(0,),
            candidates={
                0: (
                    Candidate((1, 1), 1.0, 1.0),
                    Candidate((), 11.0, 13.0),
                ),
                1: (Candidate((), 10.0, 10.0),),
            },
        )
        result = solve_extraction(problem)
        assert result is not None
        # Shared: delay 11, area 11 — tree cost would have priced area 21.
        assert (result.delay, result.area) == (11.0, 11.0)
        assert result.selection[0] == 0

    def test_anytime_expiry_returns_the_incumbent_not_none(self):
        rng = random.Random(7)
        problem = random_problem(rng, classes=6)
        warm = feasible_selection(problem)
        assert warm is not None
        warm_key = evaluate_selection(problem, warm)[0]
        expired = solve_extraction(
            problem, incumbent=warm, deadline=-math.inf, clock=lambda: 0.0
        )
        assert expired is not None
        assert expired.status == "incumbent"
        assert expired.key <= warm_key  # never worse than the warm start

    def test_step_quota_expiry_is_anytime_too(self):
        rng = random.Random(8)
        problem = random_problem(rng, classes=6)
        result = solve_extraction(problem, max_steps=1)
        assert result is not None
        assert result.status == "incumbent"
        full = solve_extraction(problem)
        assert full is not None and full.key <= result.key
