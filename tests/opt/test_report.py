"""Cost reporting helpers."""

import pytest

from repro import DatapathOptimizer, OptimizerConfig
from repro.designs import DESIGNS
from repro.intervals import IntervalSet
from repro.ir import abs_, assume, gt, lzc, mux, var
from repro.opt import egraph_model_cost, format_comparison, model_cost
from repro.rtl import module_to_ir


def test_model_cost_tracks_widths():
    x, y = var("x", 8), var("y", 8)
    narrow = model_cost(x + y, {"x": IntervalSet.of(0, 3), "y": IntervalSet.of(0, 3)})
    wide = model_cost(x + y)
    assert narrow.area < wide.area
    assert narrow.delay <= wide.delay


def test_model_cost_uses_refinements():
    """Figure 1 again, at the reporting layer: the constrained LZC design
    must model-cost less than the unconstrained one."""
    x, y = var("x", 8), var("y", 8)
    design = lzc(x + y, 9)
    constrained = model_cost(design, {"x": IntervalSet.of(128, 255)})
    free = model_cost(design)
    assert constrained.area <= free.area


def test_mux_condition_costs():
    x, y = var("x", 8), var("y", 8)
    cost = model_cost(mux(gt(x, y), x, y))
    assert cost.delay > 0 and cost.area > 0


class TestTreeEgraphParity:
    """The tree-level cost must agree exactly with the e-graph oracle."""

    @pytest.mark.parametrize("name", sorted(DESIGNS))
    def test_parity_on_registry_behavioural_trees(self, name):
        design = DESIGNS[name]
        for expr in module_to_ir(design.verilog).values():
            tree = model_cost(expr, design.input_ranges)
            oracle = egraph_model_cost(expr, design.input_ranges)
            assert (tree.delay, tree.area) == (oracle.delay, oracle.area)

    def test_parity_on_extracted_tree_with_assumes(self):
        """Extracted designs keep ASSUME wrappers — the partial-constant
        folding path must match too."""
        design = DESIGNS["fp_sub"]
        config = OptimizerConfig(iter_limit=4, node_limit=8_000, verify=False)
        result = (
            DatapathOptimizer(design.input_ranges, config)
            .optimize_verilog(design.verilog)
            .outputs["out"]
        )
        assert any(n.op.name == "ASSUME" for n in result.optimized.walk())
        tree = model_cost(result.optimized, design.input_ranges)
        oracle = egraph_model_cost(result.optimized, design.input_ranges)
        assert (tree.delay, tree.area) == (oracle.delay, oracle.area)

    def test_parity_on_hand_written_shapes(self):
        x, y = var("x", 8), var("y", 8)
        cases = [
            (mux(gt(x - 128, 0), abs_(x - 128), 0), None),
            (lzc(x + y, 9), {"x": IntervalSet.of(128, 255)}),
            (assume(x + y, gt(x, 200)), None),
            ((x << 2) >> y, {"y": IntervalSet.of(0, 3)}),
            (x * 0 + 7, None),  # folds entirely to a constant
        ]
        for expr, ranges in cases:
            tree = model_cost(expr, ranges)
            oracle = egraph_model_cost(expr, ranges)
            assert (tree.delay, tree.area) == (oracle.delay, oracle.area), expr


def test_format_comparison_table():
    text = format_comparison(
        [("fp_sub", 10.0, 100.0, 8.0, 60.0), ("other", 5.0, 50.0, 5.0, 40.0)]
    )
    assert "fp_sub" in text
    assert "-20%" in text or "-20 %" in text.replace("( ", "(")
    assert "-40%" in text.replace(" ", "") or "-40" in text
