"""Concrete semantics over ``Z' = Z ∪ {*}`` (eq. (1) of the paper).

``*`` (:data:`BOT`) models "failing an assertion": an ``ASSUME`` whose
constraint does not hold.  Every operator is strict in ``*`` **except** the
ternary ``MUX``, which returns ``*`` only when the condition is ``*`` or the
*reachable* branch is ``*`` — exactly the special treatment Section III-B
prescribes.

Bitwise operators and slices are defined on non-negative operands only;
applying them to a negative value yields ``*`` (such applications never occur
in well-formed designs, and the abstract domain proves it).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.ir import ops
from repro.ir.expr import Expr


class _Bot:
    """Singleton for the ``*`` element of ``Z'``."""

    _instance: "_Bot | None" = None

    def __new__(cls) -> "_Bot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


BOT = _Bot()

Value = "int | _Bot"


def input_variables(expr: Expr) -> dict[str, int]:
    """Map of variable name -> declared width over the whole tree."""
    out: dict[str, int] = {}
    for node in expr.walk():
        if node.op is ops.VAR:
            name, width = node.attrs
            if out.get(name, width) != width:
                raise ValueError(f"variable {name} used at two widths")
            out[name] = width
    return out


def evaluate(expr: Expr, env: Mapping[str, int]) -> "int | _Bot":
    """Evaluate ``expr`` under ``env``; may return :data:`BOT`.

    Uses an explicit stack with memoization so deep designs do not hit the
    recursion limit.
    """
    memo: dict[Expr, "int | _Bot"] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if node in memo:
            continue
        if not ready:
            stack.append((node, True))
            for child in node.children:
                if child not in memo:
                    stack.append((child, False))
            continue
        kids = [memo[c] for c in node.children]
        memo[node] = _apply(node, kids, env)
    return memo[expr]


def evaluate_total(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate and require a non-``*`` result."""
    result = evaluate(expr, env)
    if result is BOT:
        raise ValueError(f"expression evaluated to * under {dict(env)!r}")
    return result


def _apply(node: Expr, kids: list, env: Mapping[str, int]):
    """Apply one operator to already-evaluated children."""
    op = node.op

    if op is ops.VAR:
        name, width = node.attrs
        value = env[name]
        if not 0 <= value < (1 << width):
            raise ValueError(f"input {name}={value} outside [0, 2^{width})")
        return value
    if op is ops.CONST:
        return node.attrs[0]

    if op is ops.MUX:
        cond, if_true, if_false = kids
        if cond is BOT:
            return BOT
        return if_true if cond != 0 else if_false

    if op is ops.ASSUME:
        value = kids[0]
        for c in kids[1:]:
            if c is BOT or c == 0:
                return BOT
        return value

    # Every remaining operator is strict in *.
    if any(k is BOT for k in kids):
        return BOT

    if op is ops.ADD:
        return kids[0] + kids[1]
    if op is ops.SUB:
        return kids[0] - kids[1]
    if op is ops.MUL:
        return kids[0] * kids[1]
    if op is ops.NEG:
        return -kids[0]
    if op is ops.SHL:
        if kids[1] < 0:
            return BOT
        return kids[0] << kids[1]
    if op is ops.SHR:
        if kids[1] < 0:
            return BOT
        return kids[0] >> kids[1]
    if op is ops.AND:
        if kids[0] < 0 or kids[1] < 0:
            return BOT
        return kids[0] & kids[1]
    if op is ops.OR:
        if kids[0] < 0 or kids[1] < 0:
            return BOT
        return kids[0] | kids[1]
    if op is ops.XOR:
        if kids[0] < 0 or kids[1] < 0:
            return BOT
        return kids[0] ^ kids[1]
    if op is ops.NOT:
        (width,) = node.attrs
        if not 0 <= kids[0] < (1 << width):
            return BOT
        return ((1 << width) - 1) - kids[0]
    if op is ops.LNOT:
        return 1 if kids[0] == 0 else 0
    if op is ops.LT:
        return int(kids[0] < kids[1])
    if op is ops.LE:
        return int(kids[0] <= kids[1])
    if op is ops.GT:
        return int(kids[0] > kids[1])
    if op is ops.GE:
        return int(kids[0] >= kids[1])
    if op is ops.EQ:
        return int(kids[0] == kids[1])
    if op is ops.NE:
        return int(kids[0] != kids[1])
    if op is ops.LZC:
        (width,) = node.attrs
        if not 0 <= kids[0] < (1 << width):
            return BOT
        return width - kids[0].bit_length()
    if op is ops.TRUNC:
        (width,) = node.attrs
        return kids[0] % (1 << width)
    if op is ops.SLICE:
        hi, lo = node.attrs
        if kids[0] < 0:
            return BOT
        return (kids[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op is ops.CONCAT:
        (rhs_width,) = node.attrs
        msbs, lsbs = kids
        if msbs < 0 or not 0 <= lsbs < (1 << rhs_width):
            return BOT
        return (msbs << rhs_width) | lsbs
    if op is ops.ABS:
        return abs(kids[0])
    if op is ops.MIN:
        return min(kids[0], kids[1])
    if op is ops.MAX:
        return max(kids[0], kids[1])

    raise NotImplementedError(f"no semantics for {op}")


def random_env(widths: Mapping[str, int], rng) -> dict[str, int]:
    """Uniformly random assignment to the given variables."""
    return {name: rng.randrange(1 << width) for name, width in widths.items()}


def exhaustive_envs(widths: Mapping[str, int]) -> Iterator[dict[str, int]]:
    """Iterate every assignment (use only when the input space is small)."""
    names = sorted(widths)
    totals = [1 << widths[n] for n in names]
    count = 1
    for t in totals:
        count *= t
    index = [0] * len(names)
    for _ in range(count):
        yield dict(zip(names, index, strict=True))
        for i in range(len(names)):
            index[i] += 1
            if index[i] < totals[i]:
                break
            index[i] = 0
