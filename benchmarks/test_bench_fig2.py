"""Section V case study: FP subtractor e-graph growth and architecture.

The paper reports: 11 iterations of rewriting grow an e-graph of roughly
40,000 nodes and 14,000 classes (22 minutes, Rust); the extracted design is
the dual-path architecture of Figure 2b, verified equivalent by DPV.

This bench reports our growth trajectory (same order of magnitude, Python
time scale), verifies equivalence of the extracted design, and compares the
tool's output against both the behavioural input and the hand-written
Figure 2b reference (which our equivalence checker also validates against
the behavioural design — the checker must accept a *true* architectural
rewrite).
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_design
from repro.designs import DESIGNS, fp_sub_dual_path_ir
from repro.synth import min_delay_point
from repro.verify import check_equivalent

pytestmark = pytest.mark.slow

_CACHE: dict = {}


def _run():
    if "run" not in _CACHE:
        _CACHE["run"] = run_design(DESIGNS["fp_sub"])
    return _CACHE["run"]


def test_fig2_egraph_growth(benchmark):
    run = benchmark.pedantic(_run, iterations=1, rounds=1)
    print(
        f"\nSection V stats: {run.iterations} iterations, "
        f"{run.egraph_nodes} nodes, {run.egraph_classes} classes, "
        f"{run.runtime:.1f}s (paper: 11 iters, ~40k nodes, ~14k classes)"
    )
    assert run.egraph_nodes > 1_000, "e-graph barely grew; rewrites not firing"
    assert run.equivalence.ok


def test_fig2b_reference_is_equivalent():
    """The hand-written dual-path (Fig. 2b) equals the behavioural design."""
    run = _run()
    dual = fp_sub_dual_path_ir()
    verdict = check_equivalent(
        run.behavioural, dual, run.design.input_ranges, random_trials=8000
    )
    print(f"\nFig. 2b reference vs behavioural: {verdict}")
    assert verdict.ok


def test_fig2b_reference_dominates_behavioural():
    """Fig. 2b's dual path is smaller at comparable delay (the paper's
    motivation for the whole case study)."""
    run = _run()
    dual_point = min_delay_point(fp_sub_dual_path_ir(), run.design.input_ranges)
    b = run.behavioural_point
    print(
        f"\nFig. 2b reference: delay {dual_point.delay:.1f} area "
        f"{dual_point.area:.1f} vs behavioural {b.delay:.1f}/{b.area:.1f}"
    )
    assert dual_point.area < b.area * 0.8
    assert dual_point.delay <= b.delay * 1.05


def test_tool_output_not_worse_than_behavioural():
    run = _run()
    b, o = run.behavioural_point, run.optimized_point
    print(f"\ntool: delay {o.delay:.1f}/{o.area:.1f} vs behav {b.delay:.1f}/{b.area:.1f}")
    # Honest partial reproduction (see EXPERIMENTS.md E2): the tool's output
    # must improve at least one axis without a large regression on the
    # other; full Fig. 2b dominance is reached by the hand-written
    # reference, tested above.
    assert o.delay <= b.delay * 1.05
    assert o.area <= b.area * 1.25
    assert o.delay < b.delay or o.area < b.area
