"""Architectural linter: synthetic violations plus the real repo staying clean."""

from __future__ import annotations

import pytest

from repro.lint.arch import (
    ENTRY_POINTS,
    LAYERS,
    MODULE_UNITS,
    check_arch,
    check_clocks,
    check_globals,
    check_layers,
    check_stdlib,
    unit_of,
)
from repro.lint.model import SourceTree, load_source_tree


def tree(**sources):
    return SourceTree.from_sources(
        {name.replace("_", "."): text for name, text in sources.items()}
    )


def rule_ids(findings):
    return {f.rule_id for f in findings}


# ---------------------------------------------------------------- layer map
class TestLayers:
    def test_upward_eager_import_is_flagged(self):
        t = tree(
            repro_ir="import repro.pipeline\n",
            repro_pipeline="",
        )
        findings = check_layers(t)
        assert rule_ids(findings) == {"AR-LAYER"}
        [finding] = findings
        assert not finding.detail["lazy"]

    def test_downward_import_is_clean(self):
        t = tree(
            repro_pipeline="import repro.ir\n",
            repro_ir="",
        )
        assert check_layers(t) == []

    def test_upward_lazy_import_is_flagged_as_waivable(self):
        t = tree(
            repro_ir="def f():\n    import repro.pipeline\n",
            repro_pipeline="",
        )
        [finding] = check_layers(t)
        assert finding.rule_id == "AR-LAYER" and finding.detail["lazy"]

    def test_module_level_cycle_is_flagged_even_within_a_unit(self):
        t = tree(
            **{
                "repro.ir.a": "import repro.ir.b\n",
                "repro.ir.b": "import repro.ir.a\n",
            }
        )
        findings = check_layers(t)
        assert any(f.anchor.startswith("cycle:") for f in findings)

    def test_unmapped_module_is_flagged(self):
        t = tree(
            **{
                "repro.mystery": "import repro.ir\n",
                "repro.ir": "",
            }
        )
        assert any(f.anchor.endswith(":unmapped") for f in check_layers(t))

    def test_budget_carveout_sits_below_the_engine(self):
        assert unit_of("repro.pipeline.budget") == "budget"
        assert unit_of("repro.pipeline.pipeline") == "pipeline"
        assert LAYERS.index("budget") < LAYERS.index("egraph")

    def test_every_mapped_unit_is_a_layer(self):
        assert set(MODULE_UNITS.values()) <= set(LAYERS)


# ------------------------------------------------------------- stdlib policy
class TestStdlibPolicy:
    def test_budget_module_may_not_import_the_package(self):
        t = tree(
            **{
                "repro.pipeline.budget": "import repro.ir\n",
                "repro.ir": "",
            }
        )
        assert rule_ids(check_stdlib(t)) == {"AR-STDLIB"}

    def test_solve_unit_may_not_import_third_party(self):
        t = tree(**{"repro.solve.ilp": "import numpy\n"})
        assert rule_ids(check_stdlib(t)) == {"AR-STDLIB"}

    def test_solve_unit_may_import_stdlib_and_package(self):
        t = tree(
            **{
                "repro.solve.ilp": "import itertools\nimport repro.ir\n",
                "repro.ir": "",
            }
        )
        assert check_stdlib(t) == []


# ------------------------------------------------------------------- clocks
class TestClocks:
    def test_bare_clock_call_is_flagged(self):
        t = tree(
            repro_pipeline="import time\n\ndef f():\n    return time.monotonic()\n"
        )
        [finding] = check_clocks(t)
        assert finding.rule_id == "AR-CLOCK"
        assert finding.anchor.endswith(":f")

    def test_from_import_alias_is_flagged(self):
        t = tree(
            repro_pipeline="from time import perf_counter\n\n"
            "def f():\n    return perf_counter()\n"
        )
        assert rule_ids(check_clocks(t)) == {"AR-CLOCK"}

    def test_injectable_default_reference_is_sanctioned(self):
        t = tree(
            repro_pipeline="import time\n\n"
            "def f(clock=None):\n"
            "    timer = clock if clock is not None else time.monotonic\n"
            "    return timer()\n"
        )
        assert check_clocks(t) == []

    def test_budget_unit_owns_the_real_clock(self):
        t = tree(
            **{
                "repro.pipeline.budget":
                    "import time\n\ndef now():\n    return time.monotonic()\n"
            }
        )
        assert check_clocks(t) == []


# ------------------------------------------------------------------ globals
class TestGlobals:
    def test_mutable_module_global_is_flagged(self):
        t = tree(repro_ir="CACHE = {}\n")
        [finding] = check_globals(t)
        assert finding.rule_id == "AR-GLOBAL"
        assert finding.anchor == "repro.ir:CACHE"

    def test_allowlisted_global_is_clean(self):
        t = tree(**{"repro.ir.ops": "OPS_BY_NAME = {}\n"})
        assert check_globals(t) == []

    def test_immutable_global_is_clean(self):
        t = tree(repro_ir="NAMES = ('a', 'b')\nLIMIT = 3\n")
        assert check_globals(t) == []


# ------------------------------------------------------------- the real repo
class TestRealRepo:
    @pytest.fixture(scope="class")
    def repo_tree(self):
        return load_source_tree()

    def test_repo_architecture_is_clean_modulo_waivers(self, repo_tree):
        from repro.lint import run_lint

        report = run_lint(only=("arch",), tree=repo_tree)
        assert report.findings == [], [f.fid for f in report.findings]

    def test_entry_points_include_the_linter_itself(self):
        assert "repro.lint" in ENTRY_POINTS
